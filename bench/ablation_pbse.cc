// Ablations of pbSE design choices called out in DESIGN.md:
//   1. coverage element in the BBV featurization (Fig 4 quantified over
//      all targets): trap phases found with vs without;
//   2. trap-run threshold N (paper: 5% of intervals): sweep 2%..20%;
//   3. phase scheduling TimePeriod: coverage after a fixed budget for
//      several period settings;
//   4. seed scale: phase count and coverage as the seed grows.
#include "bench_common.h"
#include "concolic/concolic_executor.h"
#include "phase/phase_analysis.h"

using namespace pbse;
using namespace pbse::bench;

namespace {

concolic::ConcolicResult concolic_for(const ir::Module& module,
                                      const std::vector<std::uint8_t>& seed) {
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions copts;
  copts.interval_ticks = 1024;
  copts.record_trace = false;
  return run_concolic(executor, "main", seed, copts);
}

void ablation_coverage_element() {
  print_header("Ablation 1: coverage element in BBVs (trap phases found)");
  TextTable table;
  table.header({"driver", "intervals", "traps BBV-only", "traps BBV+cov"});
  for (const auto& target : targets::all_targets()) {
    ir::Module module = targets::build_target(target.source());
    const auto concolic = concolic_for(module, target.seed(8));
    if (concolic.bbvs.empty()) continue;
    phase::PhaseOptions without;
    without.coverage_weight = 0.0;
    phase::PhaseOptions with;
    const auto a = phase::analyze_phases(concolic.bbvs, without);
    const auto b = phase::analyze_phases(concolic.bbvs, with);
    table.row({target.driver, std::to_string(concolic.bbvs.size()),
               std::to_string(a.num_trap_phases),
               std::to_string(b.num_trap_phases)});
  }
  std::printf("%s", table.render().c_str());
}

void ablation_trap_threshold() {
  print_header("Ablation 2: trap-run threshold N (fraction of intervals)");
  ir::Module module = build_by_driver("gif2tiff");
  const auto concolic = concolic_for(module, targets::make_mgif_seed(8));
  TextTable table;
  table.header({"threshold", "chosen k", "phases", "trap phases"});
  for (const double fraction : {0.02, 0.05, 0.10, 0.20}) {
    phase::PhaseOptions options;
    options.trap_run_fraction = fraction;
    const auto analysis = phase::analyze_phases(concolic.bbvs, options);
    table.row({fmt_percent(fraction), std::to_string(analysis.chosen_k),
               std::to_string(analysis.phases.size()),
               std::to_string(analysis.num_trap_phases)});
  }
  std::printf("%s", table.render().c_str());
}

void ablation_time_period(const BenchConfig& config) {
  print_header("Ablation 3: Algorithm 3 TimePeriod (coverage after budget)");
  ir::Module module = build_by_driver("readelf");
  const auto seed = targets::make_melf_seed(6);
  TextTable table;
  table.header({"TimePeriod (ticks)", "covered BBs", "bugs"});
  for (const std::uint64_t period : {5'000ull, 30'000ull, 120'000ull}) {
    core::PbseOptions options;
    options.time_period_ticks = period;
    core::PbseDriver driver(module, "main", options);
    if (!driver.prepare(seed)) continue;
    driver.run(config.hour10 - driver.clock().now());
    table.row({std::to_string(period),
               std::to_string(driver.executor().num_covered()),
               std::to_string(driver.executor().bugs().size())});
  }
  std::printf("%s", table.render().c_str());
}

void ablation_seed_scale(const BenchConfig& config) {
  print_header("Ablation 4: seed size vs phases and coverage (readelf)");
  ir::Module module = build_by_driver("readelf");
  TextTable table;
  table.header({"seed bytes", "c-time", "phases", "traps", "covered BBs"});
  for (const unsigned scale : {1u, 4u, 10u, 20u}) {
    const auto seed = targets::make_melf_seed(scale);
    core::PbseDriver driver(module, "main");
    if (!driver.prepare(seed)) continue;
    driver.run(config.hour1);
    table.row({std::to_string(seed.size()),
               std::to_string(driver.c_time_ticks()),
               std::to_string(driver.phases().phases.size()),
               std::to_string(driver.phases().num_trap_phases),
               std::to_string(driver.executor().num_covered())});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parse_args(argc, argv);
  ablation_coverage_element();
  ablation_trap_threshold();
  ablation_time_period(config);
  ablation_seed_scale(config);
  return 0;
}
