// Ablations of pbSE design choices called out in DESIGN.md:
//   1. coverage element in the BBV featurization (Fig 4 quantified over
//      all targets): trap phases found with vs without;
//   2. trap-run threshold N (paper: 5% of intervals): sweep 2%..20%;
//   3. phase scheduling TimePeriod: coverage after a fixed budget for
//      several period settings;
//   4. seed scale: phase count and coverage as the seed grows.
//   5. interpolant subsumption + fingerprint dedup (DESIGN.md §10): pbSE
//      with pruning on vs off; fails (exit 1) if pruning loses coverage.
//      Writes BENCH_ablation_subsumption.json so check.sh can pin both
//      modes against a committed golden. --only=subsumption runs just
//      this section.
#include "bench_common.h"
#include "bench_json.h"
#include "concolic/concolic_executor.h"
#include "phase/phase_analysis.h"

using namespace pbse;
using namespace pbse::bench;

namespace {

concolic::ConcolicResult concolic_for(const ir::Module& module,
                                      const std::vector<std::uint8_t>& seed) {
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions copts;
  copts.interval_ticks = 1024;
  copts.record_trace = false;
  return run_concolic(executor, "main", seed, copts);
}

void ablation_coverage_element() {
  print_header("Ablation 1: coverage element in BBVs (trap phases found)");
  TextTable table;
  table.header({"driver", "intervals", "traps BBV-only", "traps BBV+cov"});
  for (const auto& target : targets::all_targets()) {
    ir::Module module = targets::build_target(target.source());
    const auto concolic = concolic_for(module, target.seed(8));
    if (concolic.bbvs.empty()) continue;
    phase::PhaseOptions without;
    without.coverage_weight = 0.0;
    phase::PhaseOptions with;
    const auto a = phase::analyze_phases(concolic.bbvs, without);
    const auto b = phase::analyze_phases(concolic.bbvs, with);
    table.row({target.driver, std::to_string(concolic.bbvs.size()),
               std::to_string(a.num_trap_phases),
               std::to_string(b.num_trap_phases)});
  }
  std::printf("%s", table.render().c_str());
}

void ablation_trap_threshold() {
  print_header("Ablation 2: trap-run threshold N (fraction of intervals)");
  ir::Module module = build_by_driver("gif2tiff");
  const auto concolic = concolic_for(module, targets::make_mgif_seed(8));
  TextTable table;
  table.header({"threshold", "chosen k", "phases", "trap phases"});
  for (const double fraction : {0.02, 0.05, 0.10, 0.20}) {
    phase::PhaseOptions options;
    options.trap_run_fraction = fraction;
    const auto analysis = phase::analyze_phases(concolic.bbvs, options);
    table.row({fmt_percent(fraction), std::to_string(analysis.chosen_k),
               std::to_string(analysis.phases.size()),
               std::to_string(analysis.num_trap_phases)});
  }
  std::printf("%s", table.render().c_str());
}

void ablation_time_period(const BenchConfig& config) {
  print_header("Ablation 3: Algorithm 3 TimePeriod (coverage after budget)");
  ir::Module module = build_by_driver("readelf");
  const auto seed = targets::make_melf_seed(6);
  TextTable table;
  table.header({"TimePeriod (ticks)", "covered BBs", "bugs"});
  for (const std::uint64_t period : {5'000ull, 30'000ull, 120'000ull}) {
    core::PbseOptions options;
    options.time_period_ticks = period;
    core::PbseDriver driver(module, "main", options);
    if (!driver.prepare(seed)) continue;
    driver.run(config.hour10 - driver.clock().now());
    table.row({std::to_string(period),
               std::to_string(driver.executor().num_covered()),
               std::to_string(driver.executor().bugs().size())});
  }
  std::printf("%s", table.render().c_str());
}

void ablation_seed_scale(const BenchConfig& config) {
  print_header("Ablation 4: seed size vs phases and coverage (readelf)");
  ir::Module module = build_by_driver("readelf");
  TextTable table;
  table.header({"seed bytes", "c-time", "phases", "traps", "covered BBs"});
  for (const unsigned scale : {1u, 4u, 10u, 20u}) {
    const auto seed = targets::make_melf_seed(scale);
    core::PbseDriver driver(module, "main");
    if (!driver.prepare(seed)) continue;
    driver.run(config.hour1);
    table.row({std::to_string(seed.size()),
               std::to_string(driver.c_time_ticks()),
               std::to_string(driver.phases().phases.size()),
               std::to_string(driver.phases().num_trap_phases),
               std::to_string(driver.executor().num_covered())});
  }
  std::printf("%s", table.render().c_str());
}

int ablation_subsumption(const BenchConfig& config) {
  print_header("Ablation 5: interpolant subsumption + fingerprint dedup");
  // (pbSE, KLEE-default) campaign pairs on readelf, pruning on vs off. An
  // off campaign IS the pre-subsumption engine (no probes, no fingerprint
  // maintenance, zero tick deltas), so pinning its covered/ticks numbers
  // against a committed golden proves the off path didn't drift; each on
  // campaign must cover at least as much as its off twin — pruning may
  // trade explored states for ticks but never covered blocks.
  const auto seed = targets::make_melf_seed(6);
  std::vector<core::Campaign> campaigns;
  for (const bool pruning : {true, false}) {
    const char* suffix = pruning ? "on" : "off";
    campaigns.push_back(
        {std::string("pbse-") + suffix,
         [pruning, &seed, &config](const core::CampaignContext& ctx) {
           ir::Module module = build_by_driver("readelf");
           core::PbseOptions options;
           options.solver.shared_cache = ctx.shared_cache;
           options.executor.use_subsumption = pruning && config.subsumption;
           options.executor.use_fingerprint_dedup =
               pruning && config.fingerprint_dedup;
           options.executor.campaign_index =
               static_cast<std::uint32_t>(ctx.index);
           core::PbseDriver driver(module, "main", options);
           core::CampaignOutcome out;
           if (!driver.prepare(seed)) return out;
           driver.run(config.hour10 - driver.clock().now());
           out.covered = driver.executor().num_covered();
           out.ticks = driver.clock().now();
           out.stats = driver.stats();
           return out;
         }});
    // A plain KLEE campaign alongside pbSE: barren subsumption mostly bites
    // in long searcher-driven symbolic runs, so the gate should watch one.
    campaigns.push_back(
        {std::string("klee-default-") + suffix,
         [pruning, &config](const core::CampaignContext& ctx) {
           ir::Module module = build_by_driver("readelf");
           core::KleeRunOptions options;
           options.sym_file_size = 100;
           options.solver.shared_cache = ctx.shared_cache;
           options.executor.use_subsumption = pruning && config.subsumption;
           options.executor.use_fingerprint_dedup =
               pruning && config.fingerprint_dedup;
           options.executor.campaign_index =
               static_cast<std::uint32_t>(ctx.index);
           core::KleeRun run(module, "main", options);
           run.run(config.hour10);
           core::CampaignOutcome out;
           out.covered = run.executor().num_covered();
           out.ticks = run.clock().now();
           out.stats = run.stats();
           return out;
         }});
  }
  core::ParallelCampaignRunner runner(config.parallel());
  const auto outcomes = runner.run(campaigns);

  std::uint64_t kills = 0, explored = 0;
  TextTable table;
  table.header({"campaign", "covered BBs", "ticks", "pruned", "explored"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const core::CampaignOutcome& o = outcomes[i];
    const std::uint64_t k = o.stats.get("executor.subsumed_unsat") +
                            o.stats.get("executor.subsumed_barren") +
                            o.stats.get("executor.subsumed_seedstates") +
                            o.stats.get("executor.fingerprint_kills") +
                            o.stats.get("executor.fingerprint_shared_kills");
    const std::uint64_t e =
        o.stats.get("executor.forks") + o.stats.get("concolic.seed_states");
    if (o.name.size() > 3 && o.name.rfind("-on") == o.name.size() - 3) {
      kills += k;
      explored += e;
    }
    table.row({o.name, std::to_string(o.covered), std::to_string(o.ticks),
               std::to_string(k), std::to_string(e)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("pruned fraction: %.1f%% of explored states (on campaigns)\n",
              explored > 0 ? 100.0 * static_cast<double>(kills) /
                                 static_cast<double>(explored)
                           : 0.0);

  write_bench_json("BENCH_ablation_subsumption.json", "ablation_subsumption",
                   config.jobs, config.share_cache, runner, outcomes);

  // Campaigns come in (on, off) pairs per driver: pruning may never lose
  // covered blocks on the gate workload.
  int rc = 0;
  for (std::size_t i = 0; i + 2 < outcomes.size(); i += 1) {
    if (outcomes[i].name.rfind("-on") == outcomes[i].name.size() - 3) {
      const core::CampaignOutcome& off = outcomes[i + 2];
      if (outcomes[i].covered < off.covered) {
        std::fprintf(stderr, "FAIL: %s covered %llu < %s %llu\n",
                     outcomes[i].name.c_str(),
                     static_cast<unsigned long long>(outcomes[i].covered),
                     off.name.c_str(),
                     static_cast<unsigned long long>(off.covered));
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = parse_args(argc, argv);
  const auto want = [&config](const char* section) {
    return config.only.empty() || config.only == section;
  };
  if (want("coverage-element")) ablation_coverage_element();
  if (want("trap-threshold")) ablation_trap_threshold();
  if (want("time-period")) ablation_time_period(config);
  if (want("seed-scale")) ablation_seed_scale(config);
  int rc = 0;
  if (want("subsumption")) rc = ablation_subsumption(config);
  return rc;
}
