// Shared infrastructure for the table/figure harnesses.
//
// All experiment budgets are virtual-clock ticks. The mapping used
// throughout (documented in DESIGN.md): "1h" of the paper's wall-clock
// = kTicksPerHour ticks. Pass --quick to any bench to divide budgets by
// 10 (CI smoke mode), --jobs=N to run campaigns on N worker threads, and
// --no-share-cache to give every campaign a private solver cache (bit-exact
// serial/parallel parity; see DESIGN.md "Parallel campaigns").
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/driver.h"
#include "core/parallel.h"
#include "obs/trace.h"
#include "support/argparse.h"
#include "support/table.h"
#include "targets/targets.h"

namespace pbse::bench {

inline constexpr std::uint64_t kTicksPerHour = 1'000'000;

struct BenchConfig {
  std::uint64_t hour1 = kTicksPerHour;
  std::uint64_t hour10 = 10 * kTicksPerHour;
  bool quick = false;
  unsigned jobs = 1;
  bool share_cache = true;
  /// Interpolant-based state subsumption (--no-subsumption turns it off;
  /// both flags off reproduces the pre-subsumption engine tick-for-tick).
  bool subsumption = true;
  /// Fingerprint-based exact-duplicate state dedup (--no-fingerprint-dedup).
  bool fingerprint_dedup = true;
  /// When non-empty, run only the section with this name (ablation
  /// harnesses; other benches ignore it).
  std::string only;
  std::string trace_path;

  core::ParallelOptions parallel() const {
    core::ParallelOptions p;
    p.jobs = jobs;
    p.share_solver_cache = share_cache;
    return p;
  }

  /// Applies the subsumption/dedup flags and the campaign's identity (for
  /// cross-worker fingerprint attribution) to a campaign's executor
  /// options. Every campaign body should call this.
  void apply_pruning(vm::ExecutorOptions& exec, std::size_t campaign_index) const {
    exec.use_subsumption = subsumption;
    exec.use_fingerprint_dedup = fingerprint_dedup;
    exec.campaign_index = static_cast<std::uint32_t>(campaign_index);
  }
};

inline BenchConfig parse_args(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
      config.hour1 /= 10;
      config.hour10 /= 10;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      std::string error;
      if (!support::parse_positive_count("--jobs", argv[i] + 7, config.jobs,
                                         error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--no-share-cache") == 0) {
      config.share_cache = false;
    } else if (std::strcmp(argv[i], "--no-subsumption") == 0) {
      config.subsumption = false;
    } else if (std::strcmp(argv[i], "--no-fingerprint-dedup") == 0) {
      config.fingerprint_dedup = false;
    } else if (std::strncmp(argv[i], "--only=", 7) == 0) {
      config.only = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      config.trace_path = argv[i] + 8;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--jobs=N] [--no-share-cache] "
                   "[--no-subsumption] [--no-fingerprint-dedup] "
                   "[--only=SECTION] [--trace=PATH]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (!config.trace_path.empty())
    obs::start_tracing_to_file(config.trace_path);
  return config;
}

/// Builds a fresh module for a Table III-ordered target by driver name.
inline ir::Module build_by_driver(const std::string& driver) {
  for (const auto& t : targets::all_targets()) {
    if (t.driver == driver) return targets::build_target(t.source());
  }
  std::fprintf(stderr, "unknown target driver: %s\n", driver.c_str());
  std::abort();
}

inline const targets::TargetInfo& target_by_driver(const std::string& driver) {
  for (const auto& t : targets::all_targets())
    if (t.driver == driver) return t;
  std::fprintf(stderr, "unknown target driver: %s\n", driver.c_str());
  std::abort();
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace pbse::bench
