// Machine-readable bench output: every table bench writes BENCH_pbse.json
// (overwriting; the "bench" field says which harness produced it) so the
// perf trajectory — wall-clock, coverage, solver-cache hit-rate — can be
// tracked across PRs without scraping the text tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/parallel.h"

namespace pbse::bench {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Writes the canonical BENCH_pbse.json for one bench run.
inline void write_bench_json(const std::string& path, const std::string& bench,
                             unsigned jobs, bool share_cache,
                             const core::ParallelCampaignRunner& runner,
                             const std::vector<core::CampaignOutcome>& outcomes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::uint64_t covered = 0, bugs = 0, ticks = 0;
  for (const auto& o : outcomes) {
    covered += o.covered;
    bugs += o.bugs;
    ticks += o.ticks;
  }
  const Stats& agg = runner.aggregate_stats();
  const std::uint64_t shared_hits = agg.get("cache.shared_hits");
  const std::uint64_t shared_misses = agg.get("cache.shared_misses");
  const std::uint64_t l1_hits = agg.get("solver.cache_hits");
  const std::uint64_t queries = agg.get("solver.queries");
  // Incremental-pipeline hit classes (solver.h): queries resolved without
  // reaching the backtracking search. Deterministic under fixed jobs and
  // --no-share-cache, so bench_diff.py gates on them.
  const std::uint64_t partition_hits = agg.get("solver.partition_hits");
  const std::uint64_t model_reuse = agg.get("solver.model_reuse");
  const std::uint64_t model_replays = agg.get("solver.model_replays");
  const std::uint64_t domain_memo_hits = agg.get("solver.domain_memo_hits");
  // Subsumption / fingerprint hit classes (executor.cc): states terminated
  // at block entry without solver work, plus the denominator (forked +
  // activated states) the ≥15% pruning target in EXPERIMENTS.md is
  // measured against.
  const std::uint64_t subsumed_unsat = agg.get("executor.subsumed_unsat");
  const std::uint64_t subsumed_barren = agg.get("executor.subsumed_barren");
  const std::uint64_t subsumed_seedstates =
      agg.get("executor.subsumed_seedstates");
  const std::uint64_t fingerprint_kills = agg.get("executor.fingerprint_kills");
  const std::uint64_t fingerprint_shared_kills =
      agg.get("executor.fingerprint_shared_kills");
  const std::uint64_t interpolants_published =
      agg.get("solver.interpolants_published");
  const std::uint64_t states_forked = agg.get("executor.forks");
  const double denom = static_cast<double>(shared_hits + shared_misses);
  const double hit_rate = denom > 0 ? shared_hits / denom : 0.0;

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(bench).c_str());
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"share_cache\": %s,\n", share_cache ? "true" : "false");
  std::fprintf(f, "  \"wall_seconds\": %.3f,\n", runner.wall_seconds());
  std::fprintf(f, "  \"total_covered\": %llu,\n",
               static_cast<unsigned long long>(covered));
  std::fprintf(f, "  \"total_bugs\": %llu,\n",
               static_cast<unsigned long long>(bugs));
  std::fprintf(f, "  \"total_ticks\": %llu,\n",
               static_cast<unsigned long long>(ticks));
  std::fprintf(f, "  \"solver_cache\": {\n");
  std::fprintf(f, "    \"shared_hits\": %llu,\n",
               static_cast<unsigned long long>(shared_hits));
  std::fprintf(f, "    \"shared_misses\": %llu,\n",
               static_cast<unsigned long long>(shared_misses));
  std::fprintf(f, "    \"shared_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(f, "    \"shard_contention\": %llu,\n",
               static_cast<unsigned long long>(agg.get("cache.shared_contention")));
  std::fprintf(f, "    \"shared_entries\": %llu,\n",
               static_cast<unsigned long long>(agg.get("cache.shared_entries")));
  std::fprintf(f, "    \"l1_hits\": %llu,\n",
               static_cast<unsigned long long>(l1_hits));
  std::fprintf(f, "    \"partition_hits\": %llu,\n",
               static_cast<unsigned long long>(partition_hits));
  std::fprintf(f, "    \"model_reuse\": %llu,\n",
               static_cast<unsigned long long>(model_reuse));
  std::fprintf(f, "    \"model_replays\": %llu,\n",
               static_cast<unsigned long long>(model_replays));
  std::fprintf(f, "    \"domain_memo_hits\": %llu,\n",
               static_cast<unsigned long long>(domain_memo_hits));
  std::fprintf(f, "    \"subsumed_unsat\": %llu,\n",
               static_cast<unsigned long long>(subsumed_unsat));
  std::fprintf(f, "    \"subsumed_barren\": %llu,\n",
               static_cast<unsigned long long>(subsumed_barren));
  std::fprintf(f, "    \"subsumed_seedstates\": %llu,\n",
               static_cast<unsigned long long>(subsumed_seedstates));
  std::fprintf(f, "    \"fingerprint_kills\": %llu,\n",
               static_cast<unsigned long long>(fingerprint_kills));
  std::fprintf(f, "    \"fingerprint_shared_kills\": %llu,\n",
               static_cast<unsigned long long>(fingerprint_shared_kills));
  std::fprintf(f, "    \"interpolants_published\": %llu,\n",
               static_cast<unsigned long long>(interpolants_published));
  std::fprintf(f, "    \"states_forked\": %llu,\n",
               static_cast<unsigned long long>(states_forked));
  std::fprintf(f, "    \"queries\": %llu\n",
               static_cast<unsigned long long>(queries));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"campaigns\": [\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"covered\": %llu, \"ticks\": %llu, "
                 "\"bugs\": %llu, \"wall_seconds\": %.3f}%s\n",
                 json_escape(o.name).c_str(),
                 static_cast<unsigned long long>(o.covered),
                 static_cast<unsigned long long>(o.ticks),
                 static_cast<unsigned long long>(o.bugs), o.wall_seconds,
                 i + 1 < outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (wall %.2fs, %u jobs, cache hit-rate %.1f%%)\n",
              path.c_str(), runner.wall_seconds(), jobs, hit_rate * 100.0);
}

}  // namespace pbse::bench
