// Fig 1: basic-block distribution over time, concrete vs symbolic
// execution, for readelf, gif2tiff and pngtest.
//
// Reproduces the paper's plotting scheme: blocks are indexed by FIRST
// APPEARANCE in the concrete execution (re-entries keep their index);
// blocks first reached by symbolic execution get fresh indices above the
// concrete maximum. Output: one "series" block per sub-figure with
// `time_ticks block_index` rows (plus a summary of the boxes the paper
// highlights: blocks concrete execution reaches that symbolic execution
// misses within the hour).
#include <unordered_map>

#include "bench_common.h"
#include "concolic/concolic_executor.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);
  const int max_rows = config.quick ? 50 : 400;

  for (const char* driver : {"readelf", "gif2tiff", "pngtest"}) {
    ir::Module module = build_by_driver(driver);
    const auto& info = target_by_driver(driver);
    const auto seed = info.seed(6);

    // --- (a) concrete execution ----------------------------------------
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    vm::Executor executor(module, solver, clock, stats);
    concolic::ConcolicOptions copts;
    auto concrete = run_concolic(executor, "main", seed, copts);

    std::unordered_map<std::uint32_t, std::uint32_t> index_of;
    std::uint32_t next_index = 0;
    auto index_block = [&](std::uint32_t bb) {
      auto it = index_of.find(bb);
      if (it == index_of.end())
        it = index_of.emplace(bb, next_index++).first;
      return it->second;
    };

    print_header((std::string("Fig 1 concrete: ") + driver).c_str());
    std::printf("seed=%zu bytes, %zu block entries, %llu ticks\n",
                seed.size(), concrete.trace.size(),
                static_cast<unsigned long long>(concrete.ticks_used));
    // Index EVERY entry (first-appearance order), then print a sample.
    for (const auto& [ticks, bb] : concrete.trace) {
      (void)ticks;
      index_block(bb);
    }
    const std::size_t stride =
        std::max<std::size_t>(1, concrete.trace.size() / max_rows);
    for (std::size_t i = 0; i < concrete.trace.size(); i += stride) {
      std::printf("%llu %u\n",
                  static_cast<unsigned long long>(concrete.trace[i].first),
                  index_block(concrete.trace[i].second));
    }
    const std::uint32_t concrete_max = next_index;

    // --- (b) symbolic execution (default searcher, 1h) ------------------
    core::KleeRunOptions options;
    options.sym_file_size = 1000;
    core::KleeRun run(module, "main", options);
    // Sample the coverage log as the time series.
    run.run(config.hour1);

    print_header((std::string("Fig 1 symbolic: ") + driver).c_str());
    std::uint32_t beyond = 0;
    for (const auto& event : run.executor().coverage_log()) {
      const auto it = index_of.find(event.global_bb);
      const std::uint32_t index =
          it != index_of.end() ? it->second : next_index++;
      if (it == index_of.end()) ++beyond;
      std::printf("%llu %u\n", static_cast<unsigned long long>(event.ticks),
                  index);
    }

    // The paper's "boxes": concretely-reached blocks symbolic misses.
    std::uint32_t missed = 0;
    for (const auto& [bb, idx] : index_of) {
      (void)idx;
      if (idx < concrete_max && !run.executor().covered()[bb]) ++missed;
    }
    std::printf(
        "summary %s: concrete_blocks=%u symbolic_covered=%llu "
        "concrete_blocks_missed_by_symbolic=%u new_blocks_only_symbolic=%u\n",
        driver, concrete_max,
        static_cast<unsigned long long>(run.executor().num_covered()), missed,
        beyond);
  }
  return 0;
}
