// Fig 4: phase division of gif2tiff with and without the code-coverage
// element appended to the BBVs. The paper's point: BBV-only clustering
// scatters phases and finds 2 trap phases, while BBV+coverage groups
// contiguous intervals and finds 4.
//
// Output: per featurization, the chosen k, the per-interval phase
// assignment string, and the trap-phase list with their longest contiguous
// runs. The check is num_traps(with coverage) > num_traps(without).
#include "bench_common.h"
#include "concolic/concolic_executor.h"
#include "phase/phase_analysis.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  (void)parse_args(argc, argv);

  ir::Module module = build_by_driver("gif2tiff");
  const auto seed = targets::make_mgif_seed(8);

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions copts;
  copts.interval_ticks = 1024;
  const auto concolic = run_concolic(executor, "main", seed, copts);

  print_header("Fig 4: phase division of gif2tiff (BBV vs BBV+coverage)");
  std::printf("seed=%zu bytes, %zu BBV intervals\n", seed.size(),
              concolic.bbvs.size());

  std::uint32_t traps_without = 0, traps_with = 0;
  for (const bool with_coverage : {false, true}) {
    phase::PhaseOptions options;
    options.coverage_weight = with_coverage ? 4.0 : 0.0;
    const auto analysis = phase::analyze_phases(concolic.bbvs, options);

    std::printf("\n%s: k=%u, %u trap phase(s)\n",
                with_coverage ? "(b) BBV + coverage element"
                              : "(a) BBV only",
                analysis.chosen_k, analysis.num_trap_phases);
    std::string assignment;
    for (const std::uint32_t p : analysis.interval_phase)
      assignment += static_cast<char>('A' + (p % 26));
    std::printf("interval phases: %s\n", assignment.c_str());
    for (const auto& phase : analysis.phases) {
      std::printf("  phase %u: %zu intervals, longest run %u%s\n", phase.id,
                  phase.intervals.size(), phase.longest_run,
                  phase.is_trap ? "  <- trap phase (tp)" : "");
    }
    (with_coverage ? traps_with : traps_without) = analysis.num_trap_phases;
  }

  std::printf(
      "\nsummary: traps(BBV)=%u traps(BBV+coverage)=%u  (paper: 2 vs 4)\n",
      traps_without, traps_with);
  return 0;
}
