// Fig 5: code distribution of tiff2rgba's concrete execution with a normal
// seed (a) versus the bug-triggering seed (b), with pbSE's phase bands for
// the normal run. The buggy seed runs into the Fig 6 CIELab out-of-bounds
// read after some execution time; pbSE's phase division localizes the bug
// into one of its trap phases.
#include <unordered_map>

#include "bench_common.h"
#include "concolic/concolic_executor.h"
#include "phase/phase_analysis.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);
  const int max_rows = config.quick ? 40 : 300;

  ir::Module module = build_by_driver("tiff2rgba");

  std::unordered_map<std::uint32_t, std::uint32_t> index_of;
  std::uint32_t next_index = 0;
  auto index_block = [&](std::uint32_t bb) {
    auto it = index_of.find(bb);
    if (it == index_of.end()) it = index_of.emplace(bb, next_index++).first;
    return it->second;
  };

  struct RunResult {
    concolic::ConcolicResult concolic;
    std::size_t bugs;
  };
  auto run_seed = [&](const std::vector<std::uint8_t>& seed) {
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    vm::Executor executor(module, solver, clock, stats);
    concolic::ConcolicOptions copts;
    copts.interval_ticks = 512;
    auto r = run_concolic(executor, "main", seed, copts);
    return RunResult{std::move(r), executor.bugs().size()};
  };

  const auto normal = run_seed(targets::make_mtif_seed(6));
  const auto buggy = run_seed(targets::make_mtif_buggy_seed());

  // Phase bands for the normal run (top portion of the paper's Fig 5a).
  const auto analysis = phase::analyze_phases(normal.concolic.bbvs);

  print_header("Fig 5(a): tiff2rgba concrete execution, normal seed");
  std::printf("bugs=%zu, %zu intervals, %u phases (%u traps)\n", normal.bugs,
              normal.concolic.bbvs.size(),
              static_cast<unsigned>(analysis.phases.size()),
              analysis.num_trap_phases);
  std::string bands;
  for (const std::uint32_t p : analysis.interval_phase)
    bands += static_cast<char>('A' + (p % 26));
  std::printf("phase bands: %s\n", bands.c_str());
  {
    const auto& trace = normal.concolic.trace;
    const std::size_t stride = std::max<std::size_t>(1, trace.size() / max_rows);
    for (std::size_t i = 0; i < trace.size(); i += stride)
      std::printf("%llu %u\n",
                  static_cast<unsigned long long>(trace[i].first),
                  index_block(trace[i].second));
  }

  print_header("Fig 5(b): tiff2rgba concrete execution, buggy seed");
  std::printf("bugs=%zu (expected 1: the Fig 6 CIELab OOB read)\n",
              buggy.bugs);
  {
    const auto& trace = buggy.concolic.trace;
    const std::size_t stride = std::max<std::size_t>(1, trace.size() / max_rows);
    for (std::size_t i = 0; i < trace.size(); i += stride)
      std::printf("%llu %u\n",
                  static_cast<unsigned long long>(trace[i].first),
                  index_block(trace[i].second));
    if (!trace.empty())
      std::printf("bug triggered at tick %llu of %llu\n",
                  static_cast<unsigned long long>(trace.back().first),
                  static_cast<unsigned long long>(buggy.concolic.ticks_used));
  }
  return 0;
}
