// google-benchmark microbenchmarks of the engine's hot paths: expression
// interning/folding, concrete evaluation, solver queries (cache on/off,
// independence on/off), k-means clustering, and raw interpretation speed.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "concolic/concolic_executor.h"
#include "core/driver.h"
#include "expr/evaluator.h"
#include "obs/trace.h"
#include "phase/kmeans.h"
#include "serialize/campaign_codec.h"
#include "serialize/pbss.h"
#include "serialize/state_codec.h"
#include "solver/interpolant.h"
#include "solver/solver.h"
#include "targets/targets.h"
#include "vm/executor.h"

namespace {

using namespace pbse;

ExprRef build_sum_chain(const ArrayRef& array, unsigned n) {
  ExprRef sum = mk_const(0, 32);
  for (unsigned i = 0; i < n; ++i)
    sum = mk_add(sum, mk_zext(mk_read(array, i), 32));
  return sum;
}

void BM_ExprConstruction(benchmark::State& state) {
  auto array = std::make_shared<Array>("bench", 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_sum_chain(array, static_cast<unsigned>(state.range(0))));
  }
}
BENCHMARK(BM_ExprConstruction)->Arg(16)->Arg(256);

void BM_ExprEvaluation(benchmark::State& state) {
  auto array = std::make_shared<Array>("bench", 4096);
  const ExprRef sum = build_sum_chain(array, 256);
  Assignment a;
  auto& bytes = a.mutable_bytes(array);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(sum, a));
  }
}
BENCHMARK(BM_ExprEvaluation);

void BM_SolverMagicBytes(benchmark::State& state) {
  const bool use_cache = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto array = std::make_shared<Array>("bench", 64);
    VClock clock;
    Stats stats;
    SolverOptions options;
    options.use_cache = use_cache;
    Solver solver(clock, stats, options);
    ConstraintSet cs;
    state.ResumeTiming();
    // 16 repeated magic-byte satisfiability queries.
    for (unsigned i = 0; i < 16; ++i) {
      const ExprRef q = mk_eq(mk_read(array, i % 4), mk_const(0x7f, 8));
      Assignment model;
      benchmark::DoNotOptimize(solver.check_sat(cs, q, &model));
    }
  }
}
BENCHMARK(BM_SolverMagicBytes)->Arg(0)->Arg(1);

void BM_SolverLoopBound(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto array = std::make_shared<Array>("bench", 64);
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    ConstraintSet cs;
    const ExprRef count =
        mk_or(mk_zext(mk_read(array, 0), 32),
              mk_shl(mk_zext(mk_read(array, 1), 32), mk_const(8, 32)));
    cs.add(mk_ult(mk_const(0, 32), count));
    state.ResumeTiming();
    for (unsigned i = 1; i <= 8; ++i) {
      const ExprRef q = mk_ult(mk_const(i, 32), count);
      benchmark::DoNotOptimize(solver.check_sat(cs, q));
    }
  }
}
BENCHMARK(BM_SolverLoopBound);

void BM_ConcreteInterpretation(benchmark::State& state) {
  ir::Module module = targets::build_target(targets::pngtest_source());
  const auto seed = targets::make_mpng_seed(4);
  for (auto _ : state) {
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    vm::Executor executor(module, solver, clock, stats);
    concolic::ConcolicOptions options;
    options.record_trace = false;
    auto result = run_concolic(executor, "main", seed, options);
    benchmark::DoNotOptimize(result.instructions);
    state.counters["insts"] = static_cast<double>(result.instructions);
  }
}
BENCHMARK(BM_ConcreteInterpretation);

void BM_KMeans(benchmark::State& state) {
  // 200 points, 64 dims, clustered around 4 centers.
  Rng data_rng(42);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(64);
    const int center = i % 4;
    for (int d = 0; d < 64; ++d)
      p[d] = center * 10.0 + data_rng.uniform();
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(
        phase::kmeans(points, static_cast<std::uint32_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(4)->Arg(16);

// --- Per-stage solver micro-benchmarks (incremental pipeline) ---------------
// One benchmark per reuse stage of solver.h's pipeline, so a perf
// regression names the stage that caused it.

// Stage: exact-cache hit. The warm-up query pays the search; every timed
// query after it is answered by the L1 exact entry.
void BM_SolverExactCacheHit(benchmark::State& state) {
  auto array = std::make_shared<Array>("bench", 64);
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  ConstraintSet cs;
  cs.add(mk_ult(mk_const(0x10, 8), mk_read(array, 0)));
  const ExprRef q = mk_eq(mk_read(array, 0), mk_const(0x7f, 8));
  Assignment model;
  solver.check_sat(cs, q, &model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.check_sat(cs, q, &model));
  }
}
BENCHMARK(BM_SolverExactCacheHit);

// Stage: partition slicing. The persistent union-find makes a slice a few
// find()s regardless of how many unrelated constraints the path has
// accumulated; the arg sets that unrelated-constraint count.
void BM_SolverPartitionSlice(benchmark::State& state) {
  auto array = std::make_shared<Array>("bench", 4096);
  ConstraintSet cs;
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (unsigned i = 0; i < n; ++i)
    cs.add(mk_ult(mk_const(0, 8), mk_read(array, 2 * i)));
  const ExprRef q = mk_eq(mk_read(array, 0), mk_const(1, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.slice(q).constraints.size());
  }
}
BENCHMARK(BM_SolverPartitionSlice)->Arg(64)->Arg(1024);

// Stage: counterexample replay. The untimed setup query searches and files
// its model under the partition key; the timed query is fresh (exact-cache
// miss) but satisfied by that model, so it resolves by replay. A fresh
// solver per iteration keeps the timed query from degrading into an
// exact-cache hit.
void BM_SolverModelReplay(benchmark::State& state) {
  auto array = std::make_shared<Array>("bench", 64);
  for (auto _ : state) {
    state.PauseTiming();
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    ConstraintSet cs;
    const ExprRef q1 = mk_eq(mk_read(array, 0), mk_const(0x7f, 8));
    solver.check_sat(cs, q1);
    cs.add(q1);
    const ExprRef q2 = mk_ult(mk_const(0x10, 8), mk_read(array, 0));
    state.ResumeTiming();
    Assignment model;
    benchmark::DoNotOptimize(solver.check_sat(cs, q2, &model));
  }
}
BENCHMARK(BM_SolverModelReplay);

// Stage: domain propagation, memo off vs on. A loop-bound chain re-queries
// a growing list; with the memo each query seeds from the memoized prefix
// domains and only propagates the delta. Caches are off so every timed
// query actually reaches propagation.
void BM_SolverDomainPropagation(benchmark::State& state) {
  const bool memo = state.range(0) != 0;
  auto array = std::make_shared<Array>("bench", 64);
  const ExprRef count =
      mk_or(mk_zext(mk_read(array, 0), 32),
            mk_shl(mk_zext(mk_read(array, 1), 32), mk_const(8, 32)));
  for (auto _ : state) {
    state.PauseTiming();
    VClock clock;
    Stats stats;
    SolverOptions options;
    options.use_cache = false;
    options.use_cex_cache = false;
    options.use_domain_memo = memo;
    Solver solver(clock, stats, options);
    ConstraintSet cs;
    cs.add(mk_ult(mk_const(0, 32), count));
    state.ResumeTiming();
    for (unsigned i = 1; i <= 8; ++i) {
      const ExprRef q = mk_ult(mk_const(i, 32), count);
      benchmark::DoNotOptimize(solver.check_sat(cs, q));
      cs.add(q);
    }
  }
}
BENCHMARK(BM_SolverDomainPropagation)->Arg(0)->Arg(1);

// --- Subsumption-layer micro-benchmarks (DESIGN.md §10) ---------------------

// Interpolant-table probe at a populated location: the per-block-entry
// cost paid by every symbolic state when subsumption is on. Arg is the
// probing state's constraint count; the table holds kMaxPerKey summaries
// at the location. Worst case (all summaries scanned, no hit) — a real
// probe exits early on the first subsuming summary.
void BM_InterpolantLookup(benchmark::State& state) {
  InterpolantTable table;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  // Summaries that share a prefix with the probe but each contain one
  // hash the probe lacks, forcing std::includes to scan.
  for (std::size_t c = 0; c < InterpolantTable::kMaxPerKey; ++c) {
    std::vector<std::uint64_t> core;
    for (std::size_t i = 0; i < 8; ++i)
      core.push_back(mix_constraint_hash(i * 3 + c * 101 + 1));
    std::sort(core.begin(), core.end());
    table.add_barren(/*location=*/7, core);
  }
  std::vector<std::uint64_t> hashes;
  for (std::size_t i = 0; i < n; ++i)
    hashes.push_back(mix_constraint_hash(i + 1));
  std::sort(hashes.begin(), hashes.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.barren_subsumes(7, hashes));
    benchmark::DoNotOptimize(table.barren_subsumes(8, hashes));  // empty loc
  }
}
BENCHMARK(BM_InterpolantLookup)->Arg(16)->Arg(256);

// Incremental fingerprint maintenance: the per-byte XOR update the
// executor pays on every store when pruning is on (old term out, new term
// in). Arg bytes per iteration — compare ns/byte against store dispatch
// cost in BM_ConcreteInterpretation.
void BM_FingerprintUpdate(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t fp = 0, old_hash = 0x1234, new_hash = 0x5678;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < n; ++i)
      fp ^= vm::fp_term(3, i, old_hash) ^ vm::fp_term(3, i, new_hash);
    benchmark::DoNotOptimize(fp);
    std::swap(old_hash, new_hash);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_FingerprintUpdate)->Arg(8)->Arg(64);

// The disabled-path cost of an instrumentation site: one relaxed atomic
// load and a branch, with no argument evaluation. Compare against
// BM_TraceBaselineLoop to see the delta per call.
void BM_TraceDisabledInstant(benchmark::State& state) {
  const obs::MetricId name = obs::intern_metric("bench.trace_disabled");
  std::uint64_t tick = 0;
  for (auto _ : state) {
    obs::trace_instant(obs::Category::kOther, name, tick);
    benchmark::DoNotOptimize(++tick);
  }
}
BENCHMARK(BM_TraceDisabledInstant);

void BM_TraceBaselineLoop(benchmark::State& state) {
  std::uint64_t tick = 0;
  for (auto _ : state) benchmark::DoNotOptimize(++tick);
}
BENCHMARK(BM_TraceBaselineLoop);

// --- pbss snapshot cost (DESIGN.md §11) --------------------------------------

// Serializing one mid-run ExecutionState: expr DAG (hash-consing preserved
// via the dedup table), COW memory objects, constraint partitions, stack.
// The state is evolved past the readelf header checks so it carries a
// realistic path condition; range(0) picks how deep.
void BM_SnapshotState(benchmark::State& state) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  VClock clock;
  Stats stats;
  Solver solver{clock, stats};
  vm::Executor executor(module, solver, clock, stats);
  auto input = std::make_shared<Array>("file", 100);
  auto subject = executor.make_initial_state("main", input, {});
  std::vector<std::unique_ptr<vm::ExecutionState>> forked;
  for (int i = 0; i < state.range(0) && !subject->done(); ++i) {
    executor.step(*subject, forked);
    // Depth-first down the first child keeps ONE state growing instead of
    // hopping across shallow siblings.
    if (subject->done() && !forked.empty()) {
      subject = std::move(forked.back());
      forked.pop_back();
    }
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    serialize::StateCodec codec;
    serialize::Encoder enc;
    codec.encode_state(enc, *subject);
    bytes = enc.size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SnapshotState)->Arg(200)->Arg(2000);

// Whole-campaign snapshot (what pbse-serve pays at every checkpoint): all
// engine states + searcher position + solver caches + coverage/stats.
void BM_SnapshotCampaign(benchmark::State& state) {
  const ir::Module module = targets::build_target(targets::readelf_source());
  core::KleeRun run(module, "main", {});
  run.run(static_cast<VClock::Ticks>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto snap = serialize::CampaignCodec::snapshot(run);
    bytes = snap.size();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.counters["states"] = static_cast<double>(run.num_states());
}
BENCHMARK(BM_SnapshotCampaign)->Arg(20'000)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
