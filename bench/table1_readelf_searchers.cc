// Table I: basic blocks covered by symbolic execution of readelf with each
// KLEE searcher (dfs, bfs, random-state, random-path, covnew, md2u and the
// default interleaved searcher) at four symbolic-file sizes, measured at
// "1h" and "10h" of virtual time — plus the pbSE rows with two seed sizes,
// reporting c-time (concolic) and p-time (phase analysis) like the paper.
//
// Expected shape (paper): random-path / default lead the KLEE field;
// random-state, covnew and md2u plateau early; dfs is poor at 1h but
// catches up by 10h; pbSE roughly doubles the best KLEE result.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);
  ir::Module module = build_by_driver("readelf");

  print_header("Table I: BBs covered on readelf, per searcher");
  std::printf("(module has %u basic blocks; '1h' = %llu ticks)\n",
              module.total_blocks(),
              static_cast<unsigned long long>(config.hour1));

  TextTable table;
  table.header({"searcher", "sym-10 1h", "10h", "sym-100 1h", "10h",
                "sym-1000 1h", "10h", "sym-10000 1h", "10h"});

  const search::SearcherKind kinds[] = {
      search::SearcherKind::kDefault,     search::SearcherKind::kRandomPath,
      search::SearcherKind::kRandomState, search::SearcherKind::kCovNew,
      search::SearcherKind::kMD2U,        search::SearcherKind::kDFS,
      search::SearcherKind::kBFS,
  };
  const std::uint32_t sizes[] = {10, 100, 1000, 10000};

  for (const auto kind : kinds) {
    std::vector<std::string> row{search::searcher_kind_name(kind)};
    for (const std::uint32_t size : sizes) {
      core::KleeRunOptions options;
      options.searcher = kind;
      options.sym_file_size = size;
      core::KleeRun run(module, "main", options);
      run.run(config.hour1);
      row.push_back(std::to_string(run.executor().num_covered()));
      run.run(config.hour10 - config.hour1);
      row.push_back(std::to_string(run.executor().num_covered()));
    }
    table.row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  // pbSE rows: a small and a large seed, reporting c-time / p-time.
  TextTable pbse_table;
  pbse_table.header({"pbSE", "c-time", "p-time", "1h", "10h"});
  for (const unsigned scale : {2u, 12u}) {
    const auto seed = targets::make_melf_seed(scale);
    core::PbseDriver driver(module, "main");
    if (!driver.prepare(seed)) continue;
    const std::uint64_t used = driver.clock().now();
    driver.run(config.hour1 > used ? config.hour1 - used : 0);
    const std::uint64_t h1 = driver.executor().num_covered();
    driver.run(config.hour10 - driver.clock().now());
    pbse_table.row({"seed(" + std::to_string(seed.size()) + ")",
                    std::to_string(driver.c_time_ticks()) + "t",
                    std::to_string(driver.p_time_ticks()) + "t",
                    std::to_string(h1),
                    std::to_string(driver.executor().num_covered())});
  }
  std::printf("%s", pbse_table.render().c_str());
  return 0;
}
