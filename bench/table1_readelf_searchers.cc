// Table I: basic blocks covered by symbolic execution of readelf with each
// KLEE searcher (dfs, bfs, random-state, random-path, covnew, md2u and the
// default interleaved searcher) at four symbolic-file sizes, measured at
// "1h" and "10h" of virtual time — plus the pbSE rows with two seed sizes,
// reporting c-time (concolic) and p-time (phase analysis) like the paper.
//
// Every (searcher, size) cell pair is an independent campaign run through
// ParallelCampaignRunner (--jobs=N), all campaigns optionally sharing the
// sharded solver cache. Each campaign builds its own module inside the
// worker: the expression interner is thread-local, so expressions must be
// created on the thread that uses them.
//
// Expected shape (paper): random-path / default lead the KLEE field;
// random-state, covnew and md2u plateau early; dfs is poor at 1h but
// catches up by 10h; pbSE roughly doubles the best KLEE result.
#include "bench_common.h"
#include <cstdlib>

#include "bench_json.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);

  print_header("Table I: BBs covered on readelf, per searcher");
  {
    const ir::Module probe = build_by_driver("readelf");
    std::printf("(module has %u basic blocks; '1h' = %llu ticks; jobs=%u)\n",
                probe.total_blocks(),
                static_cast<unsigned long long>(config.hour1), config.jobs);
  }

  const search::SearcherKind kinds[] = {
      search::SearcherKind::kDefault,     search::SearcherKind::kRandomPath,
      search::SearcherKind::kRandomState, search::SearcherKind::kCovNew,
      search::SearcherKind::kMD2U,        search::SearcherKind::kDFS,
      search::SearcherKind::kBFS,
  };
  const std::uint32_t sizes[] = {10, 100, 1000, 10000};

  std::vector<core::Campaign> campaigns;
  for (const auto kind : kinds) {
    for (const std::uint32_t size : sizes) {
      const std::string name = std::string(search::searcher_kind_name(kind)) +
                               "/sym-" + std::to_string(size);
      campaigns.push_back({name, [kind, size, &config](
                                     const core::CampaignContext& ctx) {
        ir::Module module = build_by_driver("readelf");
        core::KleeRunOptions options;
        options.searcher = kind;
        options.sym_file_size = size;
        options.solver.shared_cache = ctx.shared_cache;
        config.apply_pruning(options.executor, ctx.index);
        core::KleeRun run(module, "main", options);
        run.run(config.hour1);
        const std::uint64_t h1 = run.executor().num_covered();
        run.run(config.hour10 - config.hour1);
        core::CampaignOutcome out;
        out.covered = run.executor().num_covered();
        out.ticks = run.clock().now();
        out.stats = run.stats();
        out.rows = {{std::to_string(h1), std::to_string(out.covered)}};
        return out;
      }});
    }
  }
  for (const unsigned scale : {2u, 12u}) {
    campaigns.push_back({"pbse/seed-scale-" + std::to_string(scale),
                         [scale, &config](const core::CampaignContext& ctx) {
      ir::Module module = build_by_driver("readelf");
      const auto seed = targets::make_melf_seed(scale);
      core::PbseOptions options;
      options.solver.shared_cache = ctx.shared_cache;
      config.apply_pruning(options.executor, ctx.index);
      core::PbseDriver driver(module, "main", options);
      core::CampaignOutcome out;
      if (!driver.prepare(seed)) return out;
      const std::uint64_t used = driver.clock().now();
      driver.run(config.hour1 > used ? config.hour1 - used : 0);
      const std::uint64_t h1 = driver.executor().num_covered();
      driver.run(config.hour10 - driver.clock().now());
      out.covered = driver.executor().num_covered();
      out.ticks = driver.clock().now();
      out.stats = driver.stats();
      out.rows = {{"seed(" + std::to_string(seed.size()) + ")",
                   std::to_string(driver.c_time_ticks()) + "t",
                   std::to_string(driver.p_time_ticks()) + "t",
                   std::to_string(h1), std::to_string(out.covered)}};
      return out;
    }});
  }

  core::ParallelCampaignRunner runner(config.parallel());
  const auto outcomes = runner.run(campaigns);

  // Reassemble the paper's row layout from campaign order: 4 size cells
  // per searcher, then the pbSE rows.
  TextTable table;
  table.header({"searcher", "sym-10 1h", "10h", "sym-100 1h", "10h",
                "sym-1000 1h", "10h", "sym-10000 1h", "10h"});
  std::size_t cursor = 0;
  for (const auto kind : kinds) {
    std::vector<std::string> row{search::searcher_kind_name(kind)};
    for (std::size_t s = 0; s < 4; ++s, ++cursor) {
      const auto& cells = outcomes[cursor].rows;
      row.push_back(cells.empty() ? "-" : cells[0][0]);
      row.push_back(cells.empty() ? "-" : cells[0][1]);
    }
    table.row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  TextTable pbse_table;
  pbse_table.header({"pbSE", "c-time", "p-time", "1h", "10h"});
  for (; cursor < outcomes.size(); ++cursor)
    if (!outcomes[cursor].rows.empty())
      pbse_table.row(std::vector<std::string>(outcomes[cursor].rows[0]));
  std::printf("%s", pbse_table.render().c_str());

  if (std::getenv("PBSE_DUMP_STATS") != nullptr)
    for (const auto& [name, value] : runner.aggregate_stats().all())
      std::printf("STAT %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
  write_bench_json("BENCH_pbse.json", "table1_readelf_searchers", config.jobs,
                   config.share_cache, runner, outcomes);
  return 0;
}
