// Table II: basic blocks covered on readelf, gif2tiff, pngtest and
// dwarfdump by KLEE's two best searchers (random-path, covnew) across four
// symbolic-file sizes at 1h/10h, versus pbSE at 1h/10h, plus the "inc"
// column: pbSE's 10h improvement over the best KLEE cell.
//
// 4 programs × (8 KLEE configurations + 1 pbSE run) = 36 independent
// campaigns, scheduled by ParallelCampaignRunner (--jobs=N). Campaigns on
// the same program issue many structurally identical solver queries, which
// is exactly what the shared sharded cache exploits.
//
// Expected shape (paper): pbSE gains roughly +109% / +134% / +121% / +112%
// on the four programs; we check the factor is ~2x, not the digits.
#include <algorithm>

#include "bench_common.h"
#include "bench_json.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);

  print_header("Table II: BBs covered (random-path & covnew vs pbSE)");

  // Per-target concolic seed scale for the pbSE campaigns. Pinned per
  // target rather than a blanket 6: the seed scale sets how much input the
  // seed run drags symbolically, and gif2tiff's LZW decoder blows past the
  // instruction cap at scale >= 2 (concolic blowup), while pngtest's
  // chunk walk saturates at 2. readelf/dwarfdump need 6 to reach their
  // deep section/DIE tables. Changing a scale redefines this benchmark:
  // goldens straddling such a change are different experiments, so
  // cross-change deltas for the retuned targets attribute nothing (see
  // EXPERIMENTS.md, Table II comparability note).
  struct TargetScale {
    const char* driver;
    std::uint32_t seed_scale;
  };
  const TargetScale targets[] = {
      {"readelf", 6}, {"gif2tiff", 1}, {"pngtest", 2}, {"dwarfdump", 6}};
  const search::SearcherKind kinds[] = {search::SearcherKind::kRandomPath,
                                        search::SearcherKind::kCovNew};
  const std::uint32_t sizes[] = {10, 100, 1000, 10000};

  std::vector<core::Campaign> campaigns;
  for (const auto& target : targets) {
    const char* driver = target.driver;
    for (const auto kind : kinds) {
      for (const std::uint32_t size : sizes) {
        const std::string name = std::string(driver) + "/" +
                                 search::searcher_kind_name(kind) + "/sym-" +
                                 std::to_string(size);
        campaigns.push_back({name, [driver, kind, size, &config](
                                       const core::CampaignContext& ctx) {
          ir::Module module = build_by_driver(driver);
          core::KleeRunOptions options;
          options.searcher = kind;
          options.sym_file_size = size;
          options.solver.shared_cache = ctx.shared_cache;
          core::KleeRun run(module, "main", options);
          run.run(config.hour1);
          const std::uint64_t h1 = run.executor().num_covered();
          run.run(config.hour10 - config.hour1);
          core::CampaignOutcome out;
          out.covered = run.executor().num_covered();
          out.ticks = run.clock().now();
          out.stats = run.stats();
          out.rows = {{std::to_string(h1), std::to_string(out.covered)}};
          return out;
        }});
      }
    }
    const std::uint32_t seed_scale = target.seed_scale;
    campaigns.push_back({std::string(driver) + "/pbse",
                         [driver, seed_scale,
                          &config](const core::CampaignContext& ctx) {
      ir::Module module = build_by_driver(driver);
      const auto& info = target_by_driver(driver);
      const auto seed = info.seed(seed_scale);
      core::PbseOptions options;
      options.solver.shared_cache = ctx.shared_cache;
      core::PbseDriver pbse_driver(module, "main", options);
      core::CampaignOutcome out;
      out.rows = {{"0", "0"}};
      if (!pbse_driver.prepare(seed)) return out;
      const std::uint64_t used = pbse_driver.clock().now();
      pbse_driver.run(config.hour1 > used ? config.hour1 - used : 0);
      const std::uint64_t h1 = pbse_driver.executor().num_covered();
      pbse_driver.run(config.hour10 - pbse_driver.clock().now());
      out.covered = pbse_driver.executor().num_covered();
      out.ticks = pbse_driver.clock().now();
      out.stats = pbse_driver.stats();
      out.rows = {{std::to_string(h1), std::to_string(out.covered)}};
      return out;
    }});
  }

  core::ParallelCampaignRunner runner(config.parallel());
  const auto outcomes = runner.run(campaigns);

  // Reassemble rows: per program, 8 KLEE campaigns then the pbSE campaign.
  TextTable table;
  table.header({"program", "rp s10 1h", "10h", "s100 1h", "10h", "s1000 1h",
                "10h", "s10000 1h", "10h", "cn s10 1h", "10h", "s100 1h",
                "10h", "s1000 1h", "10h", "s10000 1h", "10h", "pbSE 1h",
                "10h", "inc"});
  std::size_t cursor = 0;
  for (const auto& target : targets) {
    const char* driver = target.driver;
    ir::Module module = build_by_driver(driver);
    std::vector<std::string> row{std::string(driver) + "(" +
                                 std::to_string(module.total_blocks()) + "bb)"};
    std::uint64_t best_klee = 0;
    for (std::size_t k = 0; k < 8; ++k, ++cursor) {
      const auto& out = outcomes[cursor];
      row.push_back(out.rows.empty() ? "-" : out.rows[0][0]);
      row.push_back(out.rows.empty() ? "-" : out.rows[0][1]);
      best_klee = std::max(best_klee, out.covered);
    }
    const auto& pbse_out = outcomes[cursor++];
    row.push_back(pbse_out.rows.empty() ? "-" : pbse_out.rows[0][0]);
    row.push_back(pbse_out.rows.empty() ? "-" : pbse_out.rows[0][1]);
    const double inc =
        best_klee == 0
            ? 0.0
            : (static_cast<double>(pbse_out.covered) / best_klee) - 1.0;
    row.push_back(fmt_percent(inc));
    table.row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  write_bench_json("BENCH_pbse.json", "table2_coverage", config.jobs,
                   config.share_cache, runner, outcomes);
  return 0;
}
