// Table II: basic blocks covered on readelf, gif2tiff, pngtest and
// dwarfdump by KLEE's two best searchers (random-path, covnew) across four
// symbolic-file sizes at 1h/10h, versus pbSE at 1h/10h, plus the "inc"
// column: pbSE's 10h improvement over the best KLEE cell.
//
// Expected shape (paper): pbSE gains roughly +109% / +134% / +121% / +112%
// on the four programs; we check the factor is ~2x, not the digits.
#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);

  print_header("Table II: BBs covered (random-path & covnew vs pbSE)");

  TextTable table;
  table.header({"program", "rp s10 1h", "10h", "s100 1h", "10h", "s1000 1h",
                "10h", "s10000 1h", "10h", "cn s10 1h", "10h", "s100 1h",
                "10h", "s1000 1h", "10h", "s10000 1h", "10h", "pbSE 1h",
                "10h", "inc"});

  const char* drivers[] = {"readelf", "gif2tiff", "pngtest", "dwarfdump"};
  const std::uint32_t sizes[] = {10, 100, 1000, 10000};

  for (const char* driver : drivers) {
    ir::Module module = build_by_driver(driver);
    std::vector<std::string> row{std::string(driver) + "(" +
                                 std::to_string(module.total_blocks()) + "bb)"};
    std::uint64_t best_klee = 0;
    for (const auto kind :
         {search::SearcherKind::kRandomPath, search::SearcherKind::kCovNew}) {
      for (const std::uint32_t size : sizes) {
        core::KleeRunOptions options;
        options.searcher = kind;
        options.sym_file_size = size;
        core::KleeRun run(module, "main", options);
        run.run(config.hour1);
        row.push_back(std::to_string(run.executor().num_covered()));
        run.run(config.hour10 - config.hour1);
        const std::uint64_t c10 = run.executor().num_covered();
        row.push_back(std::to_string(c10));
        best_klee = std::max(best_klee, c10);
      }
    }

    const auto& info = target_by_driver(driver);
    const auto seed = info.seed(6);
    core::PbseDriver pbse_driver(module, "main");
    std::uint64_t pbse_1h = 0, pbse_10h = 0;
    if (pbse_driver.prepare(seed)) {
      const std::uint64_t used = pbse_driver.clock().now();
      pbse_driver.run(config.hour1 > used ? config.hour1 - used : 0);
      pbse_1h = pbse_driver.executor().num_covered();
      pbse_driver.run(config.hour10 - pbse_driver.clock().now());
      pbse_10h = pbse_driver.executor().num_covered();
    }
    row.push_back(std::to_string(pbse_1h));
    row.push_back(std::to_string(pbse_10h));
    const double inc =
        best_klee == 0 ? 0.0
                       : (static_cast<double>(pbse_10h) / best_klee) - 1.0;
    row.push_back(fmt_percent(inc));
    table.row(std::move(row));
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
