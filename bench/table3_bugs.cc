// Table III: bugs found by pbSE. For every package/driver we run pbSE from
// two seed sizes and report, per discovered bug site: the seed size
// (s-size), the number of trap phases identified (t-p), the phase index in
// which the bug was found (b-p, "seed" when the seed itself tripped it),
// and the real-world CVE the injected bug is an analog of.
//
// Expected shape (paper): 21 bugs total — 2 libpng, 5 libtiff, 10
// libdwarf, 4 binutils/readelf; none in tcpdump.
#include <map>
#include <set>

#include "bench_common.h"
#include "vm/bugs.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);

  print_header("Table III: bugs found by pbSE");

  TextTable table;
  table.header({"package", "test-driver", "s-size", "t-p", "b-p", "kind",
                "site", "CVE-analog"});

  std::map<std::string, unsigned> per_package;
  unsigned total = 0;

  for (const auto& target : targets::all_targets()) {
    ir::Module module = targets::build_target(target.source());
    std::set<std::string> seen_sites;  // dedup across this driver's seeds
    std::size_t cve_cursor = 0;
    bool any = false;

    // The paper tests several seeds per tool; we use two scales. For
    // tiff2rgba the second "seed" is the Fig 5 CIELab-triggering file.
    std::vector<std::vector<std::uint8_t>> seeds = {target.seed(4),
                                                    target.seed(9)};
    if (target.driver == "tiff2rgba")
      seeds.push_back(targets::make_mtif_buggy_seed());

    for (const auto& seed : seeds) {
      core::PbseDriver driver(module, "main");
      if (!driver.prepare(seed)) continue;
      if (config.hour10 > driver.clock().now())
        driver.run(config.hour10 - driver.clock().now());

      const auto& bugs = driver.executor().bugs();
      const auto& phases = driver.bug_phases();
      for (std::size_t i = 0; i < bugs.size(); ++i) {
        if (!seen_sites.insert(bugs[i].site_key()).second) continue;
        const std::string site =
            bugs[i].function + ":" + std::to_string(bugs[i].line);
        const std::string cve = cve_cursor < target.cve_analogs.size()
                                    ? target.cve_analogs[cve_cursor]
                                    : "N";
        ++cve_cursor;
        table.row({target.package, target.driver, std::to_string(seed.size()),
                   std::to_string(driver.phases().num_trap_phases),
                   phases[i] == ~0u ? "seed" : std::to_string(phases[i]),
                   vm::bug_kind_name(bugs[i].kind), site, cve});
        ++per_package[target.package];
        ++total;
        any = true;
      }
    }
    if (!any)
      table.row({target.package, target.driver, "-", "-", "-", "(no bugs)",
                 "-", "-"});
  }
  table.separator();
  for (const auto& [pkg, n] : per_package)
    table.row({pkg, "", "", "", "", "total: " + std::to_string(n), "", ""});
  std::printf("%s", table.render().c_str());
  std::printf("total unique bug sites found: %u  (paper: 21)\n", total);
  return 0;
}
