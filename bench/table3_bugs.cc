// Table III: bugs found by pbSE. For every package/driver we run pbSE from
// two seed sizes and report, per discovered bug site: the seed size
// (s-size), the number of trap phases identified (t-p), the phase index in
// which the bug was found (b-p, "seed" when the seed itself tripped it),
// and the real-world CVE the injected bug is an analog of.
//
// Each (target, seed) pair is one campaign; campaigns return their raw bug
// rows and site keys, and cross-seed dedup / CVE assignment happens at
// assembly so the result is identical at any --jobs level.
//
// Expected shape (paper): 21 bugs total — 2 libpng, 5 libtiff, 10
// libdwarf, 4 binutils/readelf; none in tcpdump.
#include <map>
#include <set>

#include "bench_common.h"
#include "bench_json.h"
#include "vm/bugs.h"

int main(int argc, char** argv) {
  using namespace pbse;
  using namespace pbse::bench;

  const BenchConfig config = parse_args(argc, argv);

  print_header("Table III: bugs found by pbSE");

  // The paper tests several seeds per tool; we use two scales. For
  // tiff2rgba the third "seed" is the Fig 5 CIELab-triggering file.
  std::vector<core::Campaign> campaigns;
  std::vector<std::size_t> campaigns_per_target;
  for (const auto& target : targets::all_targets()) {
    std::size_t n = 2;
    if (target.driver == "tiff2rgba") n = 3;
    campaigns_per_target.push_back(n);
    for (std::size_t s = 0; s < n; ++s) {
      const targets::TargetInfo* tptr = &target;
      campaigns.push_back({target.driver + "/seed" + std::to_string(s),
                           [tptr, s, &config](const core::CampaignContext& ctx) {
        ir::Module module = targets::build_target(tptr->source());
        const std::vector<std::uint8_t> seed =
            s == 0 ? tptr->seed(4)
                   : (s == 1 ? tptr->seed(9) : targets::make_mtif_buggy_seed());
        core::PbseOptions options;
        options.solver.shared_cache = ctx.shared_cache;
        core::PbseDriver driver(module, "main", options);
        core::CampaignOutcome out;
        if (!driver.prepare(seed)) return out;
        if (config.hour10 > driver.clock().now())
          driver.run(config.hour10 - driver.clock().now());
        out.covered = driver.executor().num_covered();
        out.ticks = driver.clock().now();
        out.stats = driver.stats();
        const auto& bugs = driver.executor().bugs();
        const auto& phases = driver.bug_phases();
        out.bugs = bugs.size();
        for (std::size_t i = 0; i < bugs.size(); ++i) {
          const std::string site =
              bugs[i].function + ":" + std::to_string(bugs[i].line);
          out.rows.push_back(
              {bugs[i].site_key(), std::to_string(seed.size()),
               std::to_string(driver.phases().num_trap_phases),
               phases[i] == ~0u ? "seed" : std::to_string(phases[i]),
               vm::bug_kind_name(bugs[i].kind), site});
        }
        return out;
      }});
    }
  }

  core::ParallelCampaignRunner runner(config.parallel());
  const auto outcomes = runner.run(campaigns);

  TextTable table;
  table.header({"package", "test-driver", "s-size", "t-p", "b-p", "kind",
                "site", "CVE-analog"});

  std::map<std::string, unsigned> per_package;
  unsigned total = 0;
  std::size_t cursor = 0, target_idx = 0;
  for (const auto& target : targets::all_targets()) {
    std::set<std::string> seen_sites;  // dedup across this driver's seeds
    std::size_t cve_cursor = 0;
    bool any = false;
    for (std::size_t s = 0; s < campaigns_per_target[target_idx]; ++s) {
      for (const auto& row : outcomes[cursor + s].rows) {
        if (!seen_sites.insert(row[0]).second) continue;
        const std::string cve = cve_cursor < target.cve_analogs.size()
                                    ? target.cve_analogs[cve_cursor]
                                    : "N";
        ++cve_cursor;
        table.row({target.package, target.driver, row[1], row[2], row[3],
                   row[4], row[5], cve});
        ++per_package[target.package];
        ++total;
        any = true;
      }
    }
    cursor += campaigns_per_target[target_idx];
    ++target_idx;
    if (!any)
      table.row({target.package, target.driver, "-", "-", "-", "(no bugs)",
                 "-", "-"});
  }
  table.separator();
  for (const auto& [pkg, n] : per_package)
    table.row({pkg, "", "", "", "", "total: " + std::to_string(n), "", ""});
  std::printf("%s", table.render().c_str());
  std::printf("total unique bug sites found: %u  (paper: 21)\n", total);

  write_bench_json("BENCH_pbse.json", "table3_bugs", config.jobs,
                   config.share_cache, runner, outcomes);
  return 0;
}
