file(REMOVE_RECURSE
  "CMakeFiles/ablation_pbse.dir/ablation_pbse.cc.o"
  "CMakeFiles/ablation_pbse.dir/ablation_pbse.cc.o.d"
  "ablation_pbse"
  "ablation_pbse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pbse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
