# Empty compiler generated dependencies file for ablation_pbse.
# This may be replaced when dependencies are built.
