# Empty dependencies file for fig1_bb_distribution.
# This may be replaced when dependencies are built.
