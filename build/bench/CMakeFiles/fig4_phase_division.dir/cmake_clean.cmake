file(REMOVE_RECURSE
  "CMakeFiles/fig4_phase_division.dir/fig4_phase_division.cc.o"
  "CMakeFiles/fig4_phase_division.dir/fig4_phase_division.cc.o.d"
  "fig4_phase_division"
  "fig4_phase_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_phase_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
