# Empty compiler generated dependencies file for fig4_phase_division.
# This may be replaced when dependencies are built.
