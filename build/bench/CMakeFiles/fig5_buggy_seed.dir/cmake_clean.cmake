file(REMOVE_RECURSE
  "CMakeFiles/fig5_buggy_seed.dir/fig5_buggy_seed.cc.o"
  "CMakeFiles/fig5_buggy_seed.dir/fig5_buggy_seed.cc.o.d"
  "fig5_buggy_seed"
  "fig5_buggy_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_buggy_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
