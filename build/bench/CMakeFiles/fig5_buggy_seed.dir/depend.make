# Empty dependencies file for fig5_buggy_seed.
# This may be replaced when dependencies are built.
