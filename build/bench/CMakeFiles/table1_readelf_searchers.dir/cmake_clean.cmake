file(REMOVE_RECURSE
  "CMakeFiles/table1_readelf_searchers.dir/table1_readelf_searchers.cc.o"
  "CMakeFiles/table1_readelf_searchers.dir/table1_readelf_searchers.cc.o.d"
  "table1_readelf_searchers"
  "table1_readelf_searchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_readelf_searchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
