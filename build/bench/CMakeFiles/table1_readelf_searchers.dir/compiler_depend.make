# Empty compiler generated dependencies file for table1_readelf_searchers.
# This may be replaced when dependencies are built.
