
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/find_png_cves.cpp" "examples/CMakeFiles/find_png_cves.dir/find_png_cves.cpp.o" "gcc" "examples/CMakeFiles/find_png_cves.dir/find_png_cves.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pbse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/targets/CMakeFiles/pbse_targets.dir/DependInfo.cmake"
  "/root/repo/build/src/searchers/CMakeFiles/pbse_searchers.dir/DependInfo.cmake"
  "/root/repo/build/src/phase/CMakeFiles/pbse_phase.dir/DependInfo.cmake"
  "/root/repo/build/src/concolic/CMakeFiles/pbse_concolic.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pbse_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/pbse_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pbse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/pbse_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pbse_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pbse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
