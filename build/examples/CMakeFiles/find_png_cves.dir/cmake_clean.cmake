file(REMOVE_RECURSE
  "CMakeFiles/find_png_cves.dir/find_png_cves.cpp.o"
  "CMakeFiles/find_png_cves.dir/find_png_cves.cpp.o.d"
  "find_png_cves"
  "find_png_cves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_png_cves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
