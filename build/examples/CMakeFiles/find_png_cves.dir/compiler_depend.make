# Empty compiler generated dependencies file for find_png_cves.
# This may be replaced when dependencies are built.
