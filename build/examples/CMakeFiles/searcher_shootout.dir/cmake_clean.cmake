file(REMOVE_RECURSE
  "CMakeFiles/searcher_shootout.dir/searcher_shootout.cpp.o"
  "CMakeFiles/searcher_shootout.dir/searcher_shootout.cpp.o.d"
  "searcher_shootout"
  "searcher_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/searcher_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
