# Empty dependencies file for searcher_shootout.
# This may be replaced when dependencies are built.
