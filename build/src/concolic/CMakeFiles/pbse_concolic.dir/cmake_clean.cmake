file(REMOVE_RECURSE
  "CMakeFiles/pbse_concolic.dir/bbv.cc.o"
  "CMakeFiles/pbse_concolic.dir/bbv.cc.o.d"
  "CMakeFiles/pbse_concolic.dir/concolic_executor.cc.o"
  "CMakeFiles/pbse_concolic.dir/concolic_executor.cc.o.d"
  "libpbse_concolic.a"
  "libpbse_concolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_concolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
