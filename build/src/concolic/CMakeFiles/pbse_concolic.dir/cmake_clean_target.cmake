file(REMOVE_RECURSE
  "libpbse_concolic.a"
)
