# Empty dependencies file for pbse_concolic.
# This may be replaced when dependencies are built.
