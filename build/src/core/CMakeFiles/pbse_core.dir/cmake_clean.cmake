file(REMOVE_RECURSE
  "CMakeFiles/pbse_core.dir/driver.cc.o"
  "CMakeFiles/pbse_core.dir/driver.cc.o.d"
  "CMakeFiles/pbse_core.dir/pbse.cc.o"
  "CMakeFiles/pbse_core.dir/pbse.cc.o.d"
  "CMakeFiles/pbse_core.dir/seed_select.cc.o"
  "CMakeFiles/pbse_core.dir/seed_select.cc.o.d"
  "libpbse_core.a"
  "libpbse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
