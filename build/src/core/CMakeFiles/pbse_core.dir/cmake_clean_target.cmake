file(REMOVE_RECURSE
  "libpbse_core.a"
)
