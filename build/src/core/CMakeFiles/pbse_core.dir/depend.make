# Empty dependencies file for pbse_core.
# This may be replaced when dependencies are built.
