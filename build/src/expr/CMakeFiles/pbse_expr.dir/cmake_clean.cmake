file(REMOVE_RECURSE
  "CMakeFiles/pbse_expr.dir/evaluator.cc.o"
  "CMakeFiles/pbse_expr.dir/evaluator.cc.o.d"
  "CMakeFiles/pbse_expr.dir/expr.cc.o"
  "CMakeFiles/pbse_expr.dir/expr.cc.o.d"
  "libpbse_expr.a"
  "libpbse_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
