file(REMOVE_RECURSE
  "libpbse_expr.a"
)
