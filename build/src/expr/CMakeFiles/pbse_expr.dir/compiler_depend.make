# Empty compiler generated dependencies file for pbse_expr.
# This may be replaced when dependencies are built.
