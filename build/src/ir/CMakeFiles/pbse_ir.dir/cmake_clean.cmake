file(REMOVE_RECURSE
  "CMakeFiles/pbse_ir.dir/builder.cc.o"
  "CMakeFiles/pbse_ir.dir/builder.cc.o.d"
  "CMakeFiles/pbse_ir.dir/cfg.cc.o"
  "CMakeFiles/pbse_ir.dir/cfg.cc.o.d"
  "CMakeFiles/pbse_ir.dir/ir.cc.o"
  "CMakeFiles/pbse_ir.dir/ir.cc.o.d"
  "CMakeFiles/pbse_ir.dir/parser.cc.o"
  "CMakeFiles/pbse_ir.dir/parser.cc.o.d"
  "CMakeFiles/pbse_ir.dir/printer.cc.o"
  "CMakeFiles/pbse_ir.dir/printer.cc.o.d"
  "CMakeFiles/pbse_ir.dir/verifier.cc.o"
  "CMakeFiles/pbse_ir.dir/verifier.cc.o.d"
  "libpbse_ir.a"
  "libpbse_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
