file(REMOVE_RECURSE
  "libpbse_ir.a"
)
