# Empty dependencies file for pbse_ir.
# This may be replaced when dependencies are built.
