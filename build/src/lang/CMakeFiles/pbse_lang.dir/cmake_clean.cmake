file(REMOVE_RECURSE
  "CMakeFiles/pbse_lang.dir/codegen.cc.o"
  "CMakeFiles/pbse_lang.dir/codegen.cc.o.d"
  "CMakeFiles/pbse_lang.dir/lexer.cc.o"
  "CMakeFiles/pbse_lang.dir/lexer.cc.o.d"
  "CMakeFiles/pbse_lang.dir/parser.cc.o"
  "CMakeFiles/pbse_lang.dir/parser.cc.o.d"
  "libpbse_lang.a"
  "libpbse_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
