file(REMOVE_RECURSE
  "libpbse_lang.a"
)
