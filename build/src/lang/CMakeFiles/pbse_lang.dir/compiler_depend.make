# Empty compiler generated dependencies file for pbse_lang.
# This may be replaced when dependencies are built.
