file(REMOVE_RECURSE
  "CMakeFiles/pbse_phase.dir/kmeans.cc.o"
  "CMakeFiles/pbse_phase.dir/kmeans.cc.o.d"
  "CMakeFiles/pbse_phase.dir/phase_analysis.cc.o"
  "CMakeFiles/pbse_phase.dir/phase_analysis.cc.o.d"
  "libpbse_phase.a"
  "libpbse_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
