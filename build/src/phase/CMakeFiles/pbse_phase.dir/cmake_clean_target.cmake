file(REMOVE_RECURSE
  "libpbse_phase.a"
)
