# Empty compiler generated dependencies file for pbse_phase.
# This may be replaced when dependencies are built.
