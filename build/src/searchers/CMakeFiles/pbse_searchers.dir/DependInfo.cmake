
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/searchers/basic.cc" "src/searchers/CMakeFiles/pbse_searchers.dir/basic.cc.o" "gcc" "src/searchers/CMakeFiles/pbse_searchers.dir/basic.cc.o.d"
  "/root/repo/src/searchers/engine.cc" "src/searchers/CMakeFiles/pbse_searchers.dir/engine.cc.o" "gcc" "src/searchers/CMakeFiles/pbse_searchers.dir/engine.cc.o.d"
  "/root/repo/src/searchers/random_path.cc" "src/searchers/CMakeFiles/pbse_searchers.dir/random_path.cc.o" "gcc" "src/searchers/CMakeFiles/pbse_searchers.dir/random_path.cc.o.d"
  "/root/repo/src/searchers/searcher.cc" "src/searchers/CMakeFiles/pbse_searchers.dir/searcher.cc.o" "gcc" "src/searchers/CMakeFiles/pbse_searchers.dir/searcher.cc.o.d"
  "/root/repo/src/searchers/weighted.cc" "src/searchers/CMakeFiles/pbse_searchers.dir/weighted.cc.o" "gcc" "src/searchers/CMakeFiles/pbse_searchers.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/pbse_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pbse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pbse_support.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/pbse_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pbse_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
