file(REMOVE_RECURSE
  "CMakeFiles/pbse_searchers.dir/basic.cc.o"
  "CMakeFiles/pbse_searchers.dir/basic.cc.o.d"
  "CMakeFiles/pbse_searchers.dir/engine.cc.o"
  "CMakeFiles/pbse_searchers.dir/engine.cc.o.d"
  "CMakeFiles/pbse_searchers.dir/random_path.cc.o"
  "CMakeFiles/pbse_searchers.dir/random_path.cc.o.d"
  "CMakeFiles/pbse_searchers.dir/searcher.cc.o"
  "CMakeFiles/pbse_searchers.dir/searcher.cc.o.d"
  "CMakeFiles/pbse_searchers.dir/weighted.cc.o"
  "CMakeFiles/pbse_searchers.dir/weighted.cc.o.d"
  "libpbse_searchers.a"
  "libpbse_searchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_searchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
