file(REMOVE_RECURSE
  "libpbse_searchers.a"
)
