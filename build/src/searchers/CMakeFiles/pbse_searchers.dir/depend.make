# Empty dependencies file for pbse_searchers.
# This may be replaced when dependencies are built.
