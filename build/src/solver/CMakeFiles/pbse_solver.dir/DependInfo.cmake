
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/constraint_set.cc" "src/solver/CMakeFiles/pbse_solver.dir/constraint_set.cc.o" "gcc" "src/solver/CMakeFiles/pbse_solver.dir/constraint_set.cc.o.d"
  "/root/repo/src/solver/independence.cc" "src/solver/CMakeFiles/pbse_solver.dir/independence.cc.o" "gcc" "src/solver/CMakeFiles/pbse_solver.dir/independence.cc.o.d"
  "/root/repo/src/solver/interval.cc" "src/solver/CMakeFiles/pbse_solver.dir/interval.cc.o" "gcc" "src/solver/CMakeFiles/pbse_solver.dir/interval.cc.o.d"
  "/root/repo/src/solver/search_solver.cc" "src/solver/CMakeFiles/pbse_solver.dir/search_solver.cc.o" "gcc" "src/solver/CMakeFiles/pbse_solver.dir/search_solver.cc.o.d"
  "/root/repo/src/solver/solver.cc" "src/solver/CMakeFiles/pbse_solver.dir/solver.cc.o" "gcc" "src/solver/CMakeFiles/pbse_solver.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/pbse_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pbse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
