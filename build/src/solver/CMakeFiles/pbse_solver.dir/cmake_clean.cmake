file(REMOVE_RECURSE
  "CMakeFiles/pbse_solver.dir/constraint_set.cc.o"
  "CMakeFiles/pbse_solver.dir/constraint_set.cc.o.d"
  "CMakeFiles/pbse_solver.dir/independence.cc.o"
  "CMakeFiles/pbse_solver.dir/independence.cc.o.d"
  "CMakeFiles/pbse_solver.dir/interval.cc.o"
  "CMakeFiles/pbse_solver.dir/interval.cc.o.d"
  "CMakeFiles/pbse_solver.dir/search_solver.cc.o"
  "CMakeFiles/pbse_solver.dir/search_solver.cc.o.d"
  "CMakeFiles/pbse_solver.dir/solver.cc.o"
  "CMakeFiles/pbse_solver.dir/solver.cc.o.d"
  "libpbse_solver.a"
  "libpbse_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
