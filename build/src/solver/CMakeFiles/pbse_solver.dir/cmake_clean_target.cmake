file(REMOVE_RECURSE
  "libpbse_solver.a"
)
