# Empty dependencies file for pbse_solver.
# This may be replaced when dependencies are built.
