file(REMOVE_RECURSE
  "CMakeFiles/pbse_support.dir/log.cc.o"
  "CMakeFiles/pbse_support.dir/log.cc.o.d"
  "CMakeFiles/pbse_support.dir/table.cc.o"
  "CMakeFiles/pbse_support.dir/table.cc.o.d"
  "libpbse_support.a"
  "libpbse_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
