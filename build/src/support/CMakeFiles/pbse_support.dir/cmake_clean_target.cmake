file(REMOVE_RECURSE
  "libpbse_support.a"
)
