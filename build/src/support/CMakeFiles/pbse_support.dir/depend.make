# Empty dependencies file for pbse_support.
# This may be replaced when dependencies are built.
