
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/targets/corpus.cc" "src/targets/CMakeFiles/pbse_targets.dir/corpus.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/corpus.cc.o.d"
  "/root/repo/src/targets/dwarfdump.cc" "src/targets/CMakeFiles/pbse_targets.dir/dwarfdump.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/dwarfdump.cc.o.d"
  "/root/repo/src/targets/gif2tiff.cc" "src/targets/CMakeFiles/pbse_targets.dir/gif2tiff.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/gif2tiff.cc.o.d"
  "/root/repo/src/targets/pngtest.cc" "src/targets/CMakeFiles/pbse_targets.dir/pngtest.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/pngtest.cc.o.d"
  "/root/repo/src/targets/readelf.cc" "src/targets/CMakeFiles/pbse_targets.dir/readelf.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/readelf.cc.o.d"
  "/root/repo/src/targets/tcpdump.cc" "src/targets/CMakeFiles/pbse_targets.dir/tcpdump.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/tcpdump.cc.o.d"
  "/root/repo/src/targets/tiff_tools.cc" "src/targets/CMakeFiles/pbse_targets.dir/tiff_tools.cc.o" "gcc" "src/targets/CMakeFiles/pbse_targets.dir/tiff_tools.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/pbse_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pbse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pbse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
