file(REMOVE_RECURSE
  "CMakeFiles/pbse_targets.dir/corpus.cc.o"
  "CMakeFiles/pbse_targets.dir/corpus.cc.o.d"
  "CMakeFiles/pbse_targets.dir/dwarfdump.cc.o"
  "CMakeFiles/pbse_targets.dir/dwarfdump.cc.o.d"
  "CMakeFiles/pbse_targets.dir/gif2tiff.cc.o"
  "CMakeFiles/pbse_targets.dir/gif2tiff.cc.o.d"
  "CMakeFiles/pbse_targets.dir/pngtest.cc.o"
  "CMakeFiles/pbse_targets.dir/pngtest.cc.o.d"
  "CMakeFiles/pbse_targets.dir/readelf.cc.o"
  "CMakeFiles/pbse_targets.dir/readelf.cc.o.d"
  "CMakeFiles/pbse_targets.dir/tcpdump.cc.o"
  "CMakeFiles/pbse_targets.dir/tcpdump.cc.o.d"
  "CMakeFiles/pbse_targets.dir/tiff_tools.cc.o"
  "CMakeFiles/pbse_targets.dir/tiff_tools.cc.o.d"
  "libpbse_targets.a"
  "libpbse_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
