file(REMOVE_RECURSE
  "libpbse_targets.a"
)
