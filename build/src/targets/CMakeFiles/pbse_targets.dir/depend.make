# Empty dependencies file for pbse_targets.
# This may be replaced when dependencies are built.
