file(REMOVE_RECURSE
  "CMakeFiles/pbse.dir/pbse_cli.cc.o"
  "CMakeFiles/pbse.dir/pbse_cli.cc.o.d"
  "pbse"
  "pbse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
