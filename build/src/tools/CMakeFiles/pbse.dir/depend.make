# Empty dependencies file for pbse.
# This may be replaced when dependencies are built.
