
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/bugs.cc" "src/vm/CMakeFiles/pbse_vm.dir/bugs.cc.o" "gcc" "src/vm/CMakeFiles/pbse_vm.dir/bugs.cc.o.d"
  "/root/repo/src/vm/executor.cc" "src/vm/CMakeFiles/pbse_vm.dir/executor.cc.o" "gcc" "src/vm/CMakeFiles/pbse_vm.dir/executor.cc.o.d"
  "/root/repo/src/vm/memory.cc" "src/vm/CMakeFiles/pbse_vm.dir/memory.cc.o" "gcc" "src/vm/CMakeFiles/pbse_vm.dir/memory.cc.o.d"
  "/root/repo/src/vm/state.cc" "src/vm/CMakeFiles/pbse_vm.dir/state.cc.o" "gcc" "src/vm/CMakeFiles/pbse_vm.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pbse_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/pbse_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/pbse_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pbse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
