file(REMOVE_RECURSE
  "CMakeFiles/pbse_vm.dir/bugs.cc.o"
  "CMakeFiles/pbse_vm.dir/bugs.cc.o.d"
  "CMakeFiles/pbse_vm.dir/executor.cc.o"
  "CMakeFiles/pbse_vm.dir/executor.cc.o.d"
  "CMakeFiles/pbse_vm.dir/memory.cc.o"
  "CMakeFiles/pbse_vm.dir/memory.cc.o.d"
  "CMakeFiles/pbse_vm.dir/state.cc.o"
  "CMakeFiles/pbse_vm.dir/state.cc.o.d"
  "libpbse_vm.a"
  "libpbse_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbse_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
