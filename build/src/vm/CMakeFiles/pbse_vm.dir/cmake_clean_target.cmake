file(REMOVE_RECURSE
  "libpbse_vm.a"
)
