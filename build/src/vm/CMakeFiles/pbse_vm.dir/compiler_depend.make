# Empty compiler generated dependencies file for pbse_vm.
# This may be replaced when dependencies are built.
