file(REMOVE_RECURSE
  "CMakeFiles/engine_budget_test.dir/engine_budget_test.cc.o"
  "CMakeFiles/engine_budget_test.dir/engine_budget_test.cc.o.d"
  "engine_budget_test"
  "engine_budget_test.pdb"
  "engine_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
