# Empty dependencies file for engine_budget_test.
# This may be replaced when dependencies are built.
