# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/searcher_test[1]_include.cmake")
include("/root/repo/build/tests/concolic_test[1]_include.cmake")
include("/root/repo/build/tests/phase_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/bugs_test[1]_include.cmake")
include("/root/repo/build/tests/solver_property_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/expr_simplify_test[1]_include.cmake")
include("/root/repo/build/tests/engine_budget_test[1]_include.cmake")
include("/root/repo/build/tests/ir_parser_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/targets_test[1]_include.cmake")
