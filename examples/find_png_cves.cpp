// Domain example: hunt the two libpng CVE analogs in the pngtest target
// (CVE-2015-7981: tIME month-0 OOB read in png_convert_to_rfc1123;
//  CVE-2015-8540: all-spaces keyword underflow in png_check_keyword),
// the paper's Sec. IV-C libpng case study.
//
// Shows the pbSE workflow on a registered target: pick the seed, inspect
// the phase division, run the phase scheduler, and dump each bug with the
// generated witness file.
#include <cstdio>

#include "core/driver.h"
#include "core/seed_select.h"
#include "targets/targets.h"

int main() {
  using namespace pbse;

  ir::Module module = targets::build_target(targets::pngtest_source());
  std::printf("pngtest: %zu functions, %u basic blocks\n",
              module.num_functions(), module.total_blocks());

  // The paper picks among available seeds by "smallest 10, best coverage".
  std::vector<std::vector<std::uint8_t>> seeds;
  for (unsigned scale : {2u, 4u, 6u, 9u, 14u})
    seeds.push_back(targets::make_mpng_seed(scale));
  std::vector<core::SeedScore> scores;
  const std::size_t chosen = core::select_seed(module, "main", seeds, &scores);
  for (const auto& s : scores)
    std::printf("seed #%zu: %zu bytes -> %llu blocks%s\n", s.index, s.size,
                static_cast<unsigned long long>(s.coverage),
                s.index == chosen ? "   <- selected" : "");

  core::PbseDriver driver(module, "main");
  if (!driver.prepare(seeds[chosen])) {
    std::fprintf(stderr, "prepare failed\n");
    return 1;
  }
  std::printf("\nphases (execution order, * = trap):\n");
  for (const auto& phase : driver.phases().phases)
    std::printf("  phase %u%s: %zu intervals, first at tick %llu\n", phase.id,
                phase.is_trap ? "*" : "", phase.intervals.size(),
                static_cast<unsigned long long>(phase.first_ticks));

  driver.run(4'000'000);

  const auto& bugs = driver.executor().bugs();
  std::printf("\n%zu bug(s) found:\n", bugs.size());
  for (std::size_t i = 0; i < bugs.size(); ++i) {
    const auto& bug = bugs[i];
    const std::uint32_t phase = driver.bug_phases()[i];
    std::printf("- %s in %s:%u (phase %s)\n", vm::bug_kind_name(bug.kind),
                bug.function.c_str(), bug.line,
                phase == ~0u ? "seed" : std::to_string(phase).c_str());
    std::printf("  witness (first 32 bytes):");
    for (std::size_t b = 0; b < bug.input.size() && b < 32; ++b)
      std::printf(" %02x", bug.input[b]);
    std::printf("\n");
  }
  std::printf("\n(the CVE analogs live in png_convert_to_rfc1123 and "
              "png_check_keyword)\n");
  return 0;
}
