// Domain example: visualize a program's phase structure the way the
// paper's Sec. II does — run a seed concolically, print an ASCII
// BB-distribution plot (time -> block index) and the phase bands that
// pbSE's k-means clustering finds, with trap phases marked.
//
//   $ ./examples/phase_explorer [readelf|gif2tiff|pngtest|dwarfdump|...]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "concolic/concolic_executor.h"
#include "phase/phase_analysis.h"
#include "solver/solver.h"
#include "targets/targets.h"
#include "vm/executor.h"

int main(int argc, char** argv) {
  using namespace pbse;

  const char* driver = argc > 1 ? argv[1] : "readelf";
  const targets::TargetInfo* info = nullptr;
  for (const auto& t : targets::all_targets())
    if (t.driver == driver) info = &t;
  if (info == nullptr) {
    std::fprintf(stderr, "unknown target '%s'; available:", driver);
    for (const auto& t : targets::all_targets())
      std::fprintf(stderr, " %s", t.driver.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  ir::Module module = targets::build_target(info->source());
  const auto seed = info->seed(8);

  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions options;
  options.interval_ticks = 1024;
  const auto result = run_concolic(executor, "main", seed, options);

  std::printf("%s: seed %zu bytes, %llu ticks, %zu block entries, %zu BBVs\n",
              driver, seed.size(),
              static_cast<unsigned long long>(result.ticks_used),
              result.trace.size(), result.bbvs.size());

  // ASCII scatter: x = time buckets, y = first-touch block index buckets.
  constexpr int kCols = 72;
  constexpr int kRows = 20;
  std::unordered_map<std::uint32_t, std::uint32_t> index_of;
  std::uint32_t next = 0;
  std::vector<std::pair<int, int>> points;
  const std::uint64_t t0 = result.trace.empty() ? 0 : result.trace[0].first;
  const std::uint64_t t1 =
      result.trace.empty() ? 1 : result.trace.back().first - t0 + 1;
  for (const auto& [ticks, bb] : result.trace) {
    auto it = index_of.find(bb);
    if (it == index_of.end()) it = index_of.emplace(bb, next++).first;
    points.emplace_back(static_cast<int>((ticks - t0) * kCols / t1),
                        it->second);
  }
  const std::uint32_t max_index = std::max(1u, next);
  std::vector<std::string> grid(kRows, std::string(kCols, ' '));
  for (const auto& [x, y] : points) {
    const int row = kRows - 1 - static_cast<int>(
        static_cast<std::uint64_t>(y) * (kRows - 1) / max_index);
    grid[row][std::min(x, kCols - 1)] = '.';
  }
  std::printf("\nBB index (first-touch) over time:\n");
  for (const auto& line : grid) std::printf("|%s|\n", line.c_str());

  // Phase bands under the x-axis.
  const auto analysis = phase::analyze_phases(result.bbvs);
  std::string bands(kCols, ' ');
  for (std::size_t i = 0; i < result.bbvs.size(); ++i) {
    const std::uint64_t mid =
        (result.bbvs[i].start_ticks + result.bbvs[i].end_ticks) / 2;
    if (mid < t0) continue;
    const int x = std::min<int>(static_cast<int>((mid - t0) * kCols / t1),
                                kCols - 1);
    const std::uint32_t p = analysis.interval_phase[i];
    bands[x] = static_cast<char>(
        (analysis.phases[p].is_trap ? 'A' : 'a') + (p % 26));
  }
  std::printf("|%s|\n", bands.c_str());
  std::printf("phase bands: capital letter = trap phase; k=%u, %u trap(s)\n",
              analysis.chosen_k, analysis.num_trap_phases);
  for (const auto& phase : analysis.phases)
    std::printf("  %c: %zu intervals%s\n",
                static_cast<char>((phase.is_trap ? 'A' : 'a') + phase.id % 26),
                phase.intervals.size(), phase.is_trap ? "  [trap]" : "");
  return 0;
}
