// Quickstart: compile a tiny MiniC program, run KLEE-style symbolic
// execution on it, then run pbSE, and compare what each found.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: minic::compile ->
// ir::Module -> core::KleeRun / core::PbseDriver -> coverage, bugs and
// generated test cases.
#include <cstdio>

#include "core/driver.h"
#include "ir/verifier.h"
#include "lang/codegen.h"

namespace {

// A miniature "file parser" with a header check, an input-dependent loop
// (the paper's trap pattern) and an out-of-bounds bug hidden behind it.
constexpr const char* kProgram = R"(
u8 table[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };

u32 parse_records(u8* f, u32 size, u32 count) {
  u32 sum = 0;
  for (u32 i = 0; i < count; ++i) {           // count comes from the input
    if (8 + i * 2 + 2 > size) { return 0; }
    u32 kind = (u32)f[8 + i * 2];
    u32 value = (u32)f[8 + i * 2 + 1];
    if (kind == 1) { sum += value; }
    else if (kind == 2) { sum += table[value]; }  // <-- OOB when value > 7
    else { sum += 1; }
  }
  return sum;
}

u32 main(u8* file, u32 size) {
  if (size < 8) { return 1; }
  if (file[0] != 'Q' || file[1] != 'S') { return 2; }   // magic
  u32 count = (u32)file[2] | ((u32)file[3] << 8);
  out(parse_records(file, size, count));
  return 0;
}
)";

}  // namespace

int main() {
  using namespace pbse;

  // 1. Compile MiniC to the Mini-IR.
  ir::Module module;
  std::string error;
  if (!minic::compile(kProgram, module, error)) {
    std::fprintf(stderr, "compile error: %s\n", error.c_str());
    return 1;
  }
  module.finalize();
  for (const auto& problem : ir::verify(module))
    std::fprintf(stderr, "verifier: %s\n", problem.c_str());
  std::printf("compiled: %zu functions, %u basic blocks\n",
              module.num_functions(), module.total_blocks());

  // 2. Plain symbolic execution (KLEE-style) with the default searcher.
  core::KleeRunOptions klee_options;
  klee_options.sym_file_size = 32;
  core::KleeRun klee(module, "main", klee_options);
  klee.run(200'000);
  std::printf("\n[klee] covered %llu blocks, %zu bug(s), %zu test case(s)\n",
              static_cast<unsigned long long>(klee.executor().num_covered()),
              klee.executor().bugs().size(),
              klee.executor().test_cases().size());
  for (const auto& bug : klee.executor().bugs())
    std::printf("[klee] bug: %s at %s:%u\n", vm::bug_kind_name(bug.kind),
                bug.function.c_str(), bug.line);

  // 3. pbSE: concolic run on a seed, phase analysis, phase scheduling.
  const std::vector<std::uint8_t> seed = {'Q', 'S', 4, 0,  0, 0, 0, 0,
                                          1,   10,  2, 3,  1, 7, 2, 5};
  core::PbseDriver pbse(module, "main");
  if (!pbse.prepare(seed)) {
    std::fprintf(stderr, "pbSE: seed produced no symbolic branches\n");
    return 1;
  }
  std::printf(
      "\n[pbse] concolic: %llu ticks, %zu phases (%u traps), %zu seedStates\n",
      static_cast<unsigned long long>(pbse.c_time_ticks()),
      pbse.phases().phases.size(), pbse.phases().num_trap_phases,
      pbse.concolic_result().seed_states.size());
  pbse.run(200'000);
  std::printf("[pbse] covered %llu blocks, %zu bug(s)\n",
              static_cast<unsigned long long>(pbse.executor().num_covered()),
              pbse.executor().bugs().size());
  for (const auto& bug : pbse.executor().bugs()) {
    std::printf("[pbse] bug: %s at %s:%u, witness bytes:",
                vm::bug_kind_name(bug.kind), bug.function.c_str(), bug.line);
    for (std::size_t i = 0; i < bug.input.size() && i < 12; ++i)
      std::printf(" %02x", bug.input[i]);
    std::printf("\n");
  }
  return 0;
}
