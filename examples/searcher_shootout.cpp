// Domain example: race every searcher (and pbSE) on one target and print
// a coverage-over-time table — a small interactive version of Table I.
//
//   $ ./examples/searcher_shootout [driver] [budget_ticks]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/driver.h"
#include "targets/targets.h"

int main(int argc, char** argv) {
  using namespace pbse;

  const char* driver = argc > 1 ? argv[1] : "dwarfdump";
  const std::uint64_t budget =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000'000ull;

  const targets::TargetInfo* info = nullptr;
  for (const auto& t : targets::all_targets())
    if (t.driver == driver) info = &t;
  if (info == nullptr) {
    std::fprintf(stderr, "unknown target '%s'\n", driver);
    return 1;
  }
  ir::Module module = targets::build_target(info->source());
  std::printf("%s (%u blocks), budget %llu ticks\n", driver,
              module.total_blocks(),
              static_cast<unsigned long long>(budget));

  constexpr int kCheckpoints = 5;
  std::printf("%-14s", "strategy");
  for (int c = 1; c <= kCheckpoints; ++c)
    std::printf("  %3d%%", c * 100 / kCheckpoints);
  std::printf("   bugs\n");

  for (const auto kind :
       {search::SearcherKind::kDefault, search::SearcherKind::kRandomPath,
        search::SearcherKind::kRandomState, search::SearcherKind::kCovNew,
        search::SearcherKind::kMD2U, search::SearcherKind::kDFS,
        search::SearcherKind::kBFS}) {
    core::KleeRunOptions options;
    options.searcher = kind;
    options.sym_file_size = 1000;
    core::KleeRun run(module, "main", options);
    std::printf("%-14s", search::searcher_kind_name(kind));
    for (int c = 1; c <= kCheckpoints; ++c) {
      run.run(budget / kCheckpoints);
      std::printf(" %5llu",
                  static_cast<unsigned long long>(run.executor().num_covered()));
    }
    std::printf("  %5zu\n", run.executor().bugs().size());
  }

  core::PbseDriver pbse(module, "main");
  if (pbse.prepare(info->seed(6))) {
    std::printf("%-14s", "pbSE");
    for (int c = 1; c <= kCheckpoints; ++c) {
      const std::uint64_t target_ticks =
          budget * static_cast<std::uint64_t>(c) / kCheckpoints;
      if (target_ticks > pbse.clock().now())
        pbse.run(target_ticks - pbse.clock().now());
      std::printf(" %5llu", static_cast<unsigned long long>(
                                pbse.executor().num_covered()));
    }
    std::printf("  %5zu\n", pbse.executor().bugs().size());
  }
  return 0;
}
