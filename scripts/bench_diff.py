#!/usr/bin/env python3
"""Compares two BENCH_pbse.json files on their deterministic fields.

Wall-clock fields (wall_seconds) vary run to run and are ignored; coverage,
ticks, bug counts, and solver-cache counters are virtual-clock-deterministic
for a fixed bench configuration, so any drift is a real behaviour change and
fails the check. Usage: bench_diff.py <golden.json> <fresh.json>
"""
import json
import sys


def deterministic(d):
    out = {k: d[k] for k in ("bench", "jobs", "share_cache", "total_covered",
                             "total_bugs", "total_ticks")}
    out["solver_cache"] = {k: v for k, v in d["solver_cache"].items()}
    out["campaigns"] = [{k: c[k] for k in ("name", "covered", "ticks", "bugs")}
                        for c in d["campaigns"]]
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    golden_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(golden_path) as f:
        golden = deterministic(json.load(f))
    with open(fresh_path) as f:
        fresh = deterministic(json.load(f))
    if golden == fresh:
        print(f"bench_diff: {fresh_path} matches {golden_path}")
        return 0
    print(f"bench_diff: DRIFT between {golden_path} and {fresh_path}:",
          file=sys.stderr)
    for key in golden:
        if golden[key] != fresh[key]:
            print(f"  {key}: {golden[key]!r} -> {fresh[key]!r}",
                  file=sys.stderr)
    print("If the change is intended, regenerate the golden with:\n"
          "  ./build/bench/table1_readelf_searchers --quick --jobs=2 "
          "--no-share-cache", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
