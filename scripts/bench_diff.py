#!/usr/bin/env python3
"""Compares two BENCH_pbse.json files on their deterministic fields.

Wall-clock fields (wall_seconds) vary run to run and are ignored; coverage,
ticks, bug counts, and solver-cache counters — including the incremental
pipeline's hit classes (partition_hits, model_reuse, model_replays,
domain_memo_hits) and the subsumption layer's kill classes (subsumed_*,
fingerprint_kills, interpolants_published) — are virtual-clock-deterministic
for a fixed bench configuration, so any drift is a real behaviour change and
fails the check.
Usage: bench_diff.py <golden.json> <fresh.json>
"""
import json
import sys

# The solver_cache contract: every key the bench emits that is deterministic
# under fixed jobs + --no-share-cache. A key absent from an (older) file
# diffs as 0, so adding a counter forces a golden regeneration exactly once.
SOLVER_CACHE_KEYS = (
    "shared_hits",
    "shared_misses",
    "shared_hit_rate",
    "shard_contention",
    "shared_entries",
    "l1_hits",
    "partition_hits",
    "model_reuse",
    "model_replays",
    "domain_memo_hits",
    "subsumed_unsat",
    "subsumed_barren",
    "subsumed_seedstates",
    "fingerprint_kills",
    "fingerprint_shared_kills",
    "interpolants_published",
    "states_forked",
    "queries",
)


def deterministic(d):
    out = {k: d[k] for k in ("bench", "jobs", "share_cache", "total_covered",
                             "total_bugs", "total_ticks")}
    out["solver_cache"] = {k: d["solver_cache"].get(k, 0)
                           for k in SOLVER_CACHE_KEYS}
    out["campaigns"] = [{k: c[k] for k in ("name", "covered", "ticks", "bugs")}
                        for c in d["campaigns"]]
    return out


def report_drift(key, old, new, indent="  "):
    if isinstance(old, dict) and isinstance(new, dict):
        for k in old:
            if old[k] != new.get(k):
                report_drift(f"{key}.{k}", old[k], new.get(k), indent)
        return
    if isinstance(old, list) and isinstance(new, list) and len(old) == len(new):
        for i, (a, b) in enumerate(zip(old, new)):
            if a != b:
                report_drift(f"{key}[{i}]", a, b, indent)
        return
    print(f"{indent}{key}: {old!r} -> {new!r}", file=sys.stderr)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    golden_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(golden_path) as f:
        golden = deterministic(json.load(f))
    with open(fresh_path) as f:
        fresh = deterministic(json.load(f))
    if golden == fresh:
        print(f"bench_diff: {fresh_path} matches {golden_path}")
        return 0
    print(f"bench_diff: DRIFT between {golden_path} and {fresh_path}:",
          file=sys.stderr)
    for key in golden:
        if golden[key] != fresh[key]:
            report_drift(key, golden[key], fresh[key])
    print("If the change is intended, regenerate the golden with:\n"
          "  ./build/bench/table1_readelf_searchers --quick --jobs=2 "
          "--no-share-cache", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
