#!/usr/bin/env bash
# CI gate: configure, build, run the test suite. Exits nonzero on any
# failure. Usage: scripts/check.sh [build-dir] (default: build).
#
# -o pipefail matters here: the test and bench stages pipe through tee so
# the log survives in the build dir, and without pipefail a pipeline's exit
# status is tee's (always 0), silently masking the real failure.
set -euo pipefail
cd "$(dirname "$0")/.."

trap 'echo "check.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Prefer Ninja, but only on a fresh build dir: forcing a generator onto
# an existing cache makes cmake abort.
GEN=()
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
  GEN=(-G Ninja)
fi

cmake -S . -B "$BUILD_DIR" "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -j "$JOBS" --output-on-failure 2>&1 \
  | tee "$BUILD_DIR/ctest.log"

# Golden bench check: regenerate the small-workload bench and diff its
# deterministic fields (coverage/ticks/bugs/solver hit-class counters;
# wall-clock is ignored) against the committed BENCH_pbse.json.
# --no-share-cache keeps the run bit-exact regardless of worker scheduling.
cp BENCH_pbse.json "$BUILD_DIR/BENCH_golden.json"
"./$BUILD_DIR/bench/table1_readelf_searchers" --quick --jobs=2 --no-share-cache 2>&1 \
  | tee "$BUILD_DIR/bench.log"
python3 scripts/bench_diff.py "$BUILD_DIR/BENCH_golden.json" BENCH_pbse.json
# Deterministic fields match: restore the committed file so the only diff a
# passing run leaves behind is nothing at all (wall_seconds would churn).
mv "$BUILD_DIR/BENCH_golden.json" BENCH_pbse.json

# Subsumption ablation gate (DESIGN.md §10): runs pbSE with pruning on and
# off side by side. The binary itself exits nonzero if the pruned run loses
# coverage; the diff then pins both modes' deterministic numbers (the off
# campaign IS the pre-subsumption engine) against the committed golden.
cp BENCH_ablation_subsumption.json "$BUILD_DIR/BENCH_abl_golden.json"
"./$BUILD_DIR/bench/ablation_pbse" --quick --only=subsumption --jobs=2 --no-share-cache 2>&1 \
  | tee "$BUILD_DIR/ablation.log"
python3 scripts/bench_diff.py "$BUILD_DIR/BENCH_abl_golden.json" BENCH_ablation_subsumption.json
mv "$BUILD_DIR/BENCH_abl_golden.json" BENCH_ablation_subsumption.json

# Server smoke (DESIGN.md §11): daemon up, job over the socket, kill -9
# mid-job, restart, and the recovered job's final coverage must match the
# uninterrupted reference run of the same spec.
bash scripts/server_smoke.sh "$BUILD_DIR" 2>&1 | tee "$BUILD_DIR/server_smoke.log"

echo "check.sh: OK"
