#!/usr/bin/env bash
# pbse-serve smoke test: daemon up, job over the socket, checkpointing,
# and the hard guarantee — kill -9 mid-job, restart, and the recovered
# job's final coverage matches an uninterrupted run of the same spec.
#
# Usage: scripts/server_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/src/tools/pbse-serve"
CLIENT="$BUILD_DIR/src/tools/pbse-client"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/pbse-smoke.XXXXXX")"

SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

[ -x "$SERVE" ] || { echo "server_smoke: $SERVE not built"; exit 1; }
[ -x "$CLIENT" ] || { echo "server_smoke: $CLIENT not built"; exit 1; }

JOB_ARGS=(readelf --mode=pbse --budget=200000 --slice=50000)

wait_for_socket() {
  local sock="$1" i
  for i in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    sleep 0.05
  done
  echo "server_smoke: $sock never appeared"; return 1
}

extract() {  # extract <key> <text with key=value pairs>
  sed -n "s/.*$1=\([0-9]*\).*/\1/p" <<<"$2" | head -1
}

# --- Phase 1: uninterrupted reference run ----------------------------------
SOCK_A="$WORK/a.sock"
"$SERVE" --socket="$SOCK_A" --state-dir="$WORK/state-a" --workers=2 >"$WORK/a.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SOCK_A"

REF_OUT="$("$CLIENT" --socket="$SOCK_A" submit "${JOB_ARGS[@]}" --wait)"
echo "server_smoke: reference  $REF_OUT" | tail -1
REF_TICKS="$(extract ticks "$REF_OUT")"
REF_COVERED="$(extract covered "$REF_OUT")"
REF_BUGS="$(extract bugs "$REF_OUT")"
[ -n "$REF_COVERED" ] || { echo "server_smoke: reference run produced no coverage line"; exit 1; }

"$CLIENT" --socket="$SOCK_A" shutdown >/dev/null
wait "$SERVER_PID" || true
SERVER_PID=""

# --- Phase 2: start the same job, kill -9 after the first checkpoint -------
SOCK_B="$WORK/b.sock"
STATE_B="$WORK/state-b"
"$SERVE" --socket="$SOCK_B" --state-dir="$STATE_B" --workers=2 >"$WORK/b.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SOCK_B"
"$CLIENT" --socket="$SOCK_B" submit "${JOB_ARGS[@]}" >/dev/null

for i in $(seq 1 200); do
  [ -f "$STATE_B/job-1.pbss" ] && break
  sleep 0.05
done
[ -f "$STATE_B/job-1.pbss" ] || { echo "server_smoke: no checkpoint appeared"; exit 1; }
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "server_smoke: killed daemon mid-job after first checkpoint"

# --- Phase 3: restart on the same state dir; drain the recovered job -------
"$SERVE" --socket="$SOCK_B" --state-dir="$STATE_B" --workers=2 --oneshot >"$WORK/c.log" 2>&1 &
SERVER_PID=$!
wait "$SERVER_PID"
SERVER_PID=""
grep -q "1 jobs recovered" "$WORK/c.log" || {
  echo "server_smoke: restart did not recover the interrupted job"; cat "$WORK/c.log"; exit 1; }

# --- Phase 4: compare the recovered job's final record to the reference ----
"$SERVE" --socket="$SOCK_B" --state-dir="$STATE_B" --workers=1 >"$WORK/d.log" 2>&1 &
SERVER_PID=$!
wait_for_socket "$SOCK_B"
STATUS="$("$CLIENT" --socket="$SOCK_B" status 1)"
"$CLIENT" --socket="$SOCK_B" shutdown >/dev/null
wait "$SERVER_PID" || true
SERVER_PID=""

state="$(sed -n 's/.*"state":"\([a-z]*\)".*/\1/p' <<<"$STATUS")"
got_ticks="$(sed -n 's/.*"ticks":\([0-9]*\).*/\1/p' <<<"$STATUS")"
got_covered="$(sed -n 's/.*"covered":\([0-9]*\).*/\1/p' <<<"$STATUS")"
got_bugs="$(sed -n 's/.*"bugs":\([0-9]*\).*/\1/p' <<<"$STATUS")"
echo "server_smoke: recovered  state=$state ticks=$got_ticks covered=$got_covered bugs=$got_bugs"

[ "$state" = "done" ] || { echo "server_smoke: recovered job not done"; exit 1; }
[ "$got_ticks" = "$REF_TICKS" ] || { echo "server_smoke: ticks diverged ($got_ticks != $REF_TICKS)"; exit 1; }
[ "$got_covered" = "$REF_COVERED" ] || { echo "server_smoke: coverage diverged ($got_covered != $REF_COVERED)"; exit 1; }
[ "$got_bugs" = "$REF_BUGS" ] || { echo "server_smoke: bugs diverged ($got_bugs != $REF_BUGS)"; exit 1; }

echo "server_smoke: OK (crash recovery matches uninterrupted run)"
