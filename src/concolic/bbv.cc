#include "concolic/bbv.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace pbse::concolic {

std::vector<std::vector<double>> featurize_bbvs(const std::vector<BBV>& bbvs,
                                                double coverage_weight) {
  // Stable column order: ascending block id over the union of seen blocks.
  std::map<std::uint32_t, std::size_t> column_of;
  for (const BBV& v : bbvs)
    for (const auto& [bb, c] : v.counts) {
      (void)c;
      column_of.emplace(bb, 0);
    }
  std::size_t next = 0;
  for (auto& [bb, col] : column_of) col = next++;

  const std::size_t dims = column_of.size() + (coverage_weight > 0 ? 1 : 0);
  std::vector<std::vector<double>> points;
  points.reserve(bbvs.size());
  for (const BBV& v : bbvs) {
    std::vector<double> p(dims, 0.0);
    const double total = static_cast<double>(v.total_entries());
    if (total > 0) {
      for (const auto& [bb, c] : v.counts)
        p[column_of[bb]] = static_cast<double>(c) / total;
    }
    if (coverage_weight > 0) p[dims - 1] = v.coverage * coverage_weight;
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace pbse::concolic
