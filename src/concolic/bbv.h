// Basic Block Vectors (paper Sec. III-B1): per-interval execution counts of
// every basic block, plus the code-coverage element pbSE appends so that
// densely-repeating (trap) phases cluster together.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pbse::concolic {

/// One gathering interval's block-entry histogram.
struct BBV {
  std::uint64_t start_ticks = 0;
  std::uint64_t end_ticks = 0;
  /// Sparse entry counts: global block id -> number of entries.
  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  /// Fraction of all blocks covered at gather time — the extra element
  /// pbSE adds to the vector (Sec. III-B1, Fig 4).
  double coverage = 0.0;

  std::uint64_t total_entries() const {
    std::uint64_t n = 0;
    for (const auto& [bb, c] : counts) n += c;
    return n;
  }
};

/// Dense, L1-normalized feature matrix over a BBV sequence.
/// Column space = union of blocks seen; optionally appends the coverage
/// element scaled by `coverage_weight` (0 disables it — the Fig 4(a)
/// ablation).
std::vector<std::vector<double>> featurize_bbvs(const std::vector<BBV>& bbvs,
                                                double coverage_weight);

}  // namespace pbse::concolic
