#include "concolic/concolic_executor.h"

namespace pbse::concolic {

ConcolicResult run_concolic(vm::Executor& executor, const std::string& entry,
                            const std::vector<std::uint8_t>& seed,
                            const ConcolicOptions& options) {
  ConcolicResult result;
  result.seed = seed;
  result.input_array = std::make_shared<Array>(
      "file", static_cast<std::uint32_t>(seed.size()));

  auto seed_assignment = std::make_shared<Assignment>();
  seed_assignment->set(result.input_array, seed);
  CachingEvaluator seed_eval(seed_assignment);

  const std::uint64_t t0 = executor.clock().now();

  // BBV gathering state, fed by the block-entry hook (trackBB in
  // Algorithm 2).
  BBV current;
  current.start_ticks = t0;
  std::uint64_t interval_start = t0;

  auto flush_interval = [&](std::uint64_t now) {
    current.end_ticks = now;
    current.coverage =
        static_cast<double>(executor.num_covered()) /
        static_cast<double>(executor.module().total_blocks());
    result.bbvs.push_back(std::move(current));
    current = BBV{};
    current.start_ticks = now;
    interval_start = now;
  };

  executor.on_block_entered = [&](const vm::ExecutionState&,
                                  std::uint32_t bb) {
    ++current.counts[bb];
    if (options.record_trace)
      result.trace.emplace_back(executor.clock().now(), bb);
  };

  auto state = executor.make_initial_state(entry, result.input_array, seed);

  while (!state->done() && result.instructions < options.max_instructions) {
    executor.step_concolic(*state, *seed_assignment, seed_eval,
                           result.seed_states, options.offpath_bug_checks);
    ++result.instructions;
    const std::uint64_t now = executor.clock().now();
    if (now - interval_start >= options.interval_ticks)
      flush_interval(now);  // Algorithm 2 line 27: logToBBVs
  }
  flush_interval(executor.clock().now());
  executor.on_block_entered = nullptr;

  result.termination = state->termination;
  result.ticks_used = executor.clock().now() - t0;
  return result;
}

}  // namespace pbse::concolic
