#include "concolic/concolic_executor.h"

#include "obs/trace.h"

namespace pbse::concolic {

namespace {

struct ConcolicIds {
  /// Log2 histogram: virtual ticks per closed BBV interval.
  obs::MetricId interval_ticks =
      obs::intern_metric("concolic.interval_ticks");
  obs::MetricId intervals = obs::intern_metric("concolic.intervals");
  obs::MetricId ev_run = obs::intern_metric("concolic_run");
  obs::MetricId ev_bbv_close = obs::intern_metric("bbv_close");
  obs::MetricId arg_blocks = obs::intern_metric("blocks");
  obs::MetricId arg_ticks = obs::intern_metric("ticks");
  obs::MetricId arg_insts = obs::intern_metric("insts");
  obs::MetricId arg_seed_states = obs::intern_metric("seed_states");
};

const ConcolicIds& ids() {
  static const ConcolicIds c;
  return c;
}

}  // namespace

ConcolicResult run_concolic(vm::Executor& executor, const std::string& entry,
                            const std::vector<std::uint8_t>& seed,
                            const ConcolicOptions& options) {
  ConcolicResult result;
  result.seed = seed;
  result.input_array = std::make_shared<Array>(
      "file", static_cast<std::uint32_t>(seed.size()));

  auto seed_assignment = std::make_shared<Assignment>();
  seed_assignment->set(result.input_array, seed);
  CachingEvaluator seed_eval(seed_assignment);

  const std::uint64_t t0 = executor.clock().now();

  // BBV gathering state, fed by the block-entry hook (trackBB in
  // Algorithm 2).
  BBV current;
  current.start_ticks = t0;
  std::uint64_t interval_start = t0;

  auto flush_interval = [&](std::uint64_t now) {
    current.end_ticks = now;
    current.coverage =
        static_cast<double>(executor.num_covered()) /
        static_cast<double>(executor.module().total_blocks());
    executor.stats().add(ids().intervals);
    executor.stats().observe(ids().interval_ticks, now - interval_start);
    obs::trace_instant(obs::Category::kConcolic, ids().ev_bbv_close, now,
                       current.counts.size(), ids().arg_blocks,
                       now - interval_start, ids().arg_ticks);
    result.bbvs.push_back(std::move(current));
    current = BBV{};
    current.start_ticks = now;
    interval_start = now;
  };

  executor.on_block_entered = [&](const vm::ExecutionState&,
                                  std::uint32_t bb) {
    ++current.counts[bb];
    if (options.record_trace)
      result.trace.emplace_back(executor.clock().now(), bb);
  };

  auto state = executor.make_initial_state(entry, result.input_array, seed);

  obs::trace_begin(obs::Category::kConcolic, ids().ev_run, t0, seed.size());
  while (!state->done() && result.instructions < options.max_instructions) {
    executor.step_concolic(*state, *seed_assignment, seed_eval,
                           result.seed_states, options.offpath_bug_checks);
    ++result.instructions;
    const std::uint64_t now = executor.clock().now();
    if (now - interval_start >= options.interval_ticks)
      flush_interval(now);  // Algorithm 2 line 27: logToBBVs
  }
  flush_interval(executor.clock().now());
  executor.on_block_entered = nullptr;

  result.termination = state->termination;
  result.ticks_used = executor.clock().now() - t0;
  obs::trace_end(obs::Category::kConcolic, ids().ev_run,
                 executor.clock().now(), result.instructions,
                 ids().arg_insts, result.seed_states.size(),
                 ids().arg_seed_states);
  return result;
}

}  // namespace pbse::concolic
