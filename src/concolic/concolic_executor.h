// Concolic execution (paper Algorithm 2): run the target on a concrete
// seed while maintaining the symbolic state in lockstep, gathering BBVs per
// time interval and recording a seedState at every symbolic branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "concolic/bbv.h"
#include "vm/executor.h"

namespace pbse::concolic {

struct ConcolicOptions {
  /// BBV gathering interval in virtual-clock ticks.
  std::uint64_t interval_ticks = 2048;
  /// Safety cap on interpreted instructions.
  std::uint64_t max_instructions = 20'000'000;
  /// Record the full (ticks, block) entry trace (Fig 1 / Fig 5 plots).
  bool record_trace = true;
  /// Report feasible-but-off-seed guard violations of internal buffers
  /// (KLEE seeded-mode semantics; finds the straight-line libpng month
  /// bug). Turn off for pure concrete replay of a test case.
  bool offpath_bug_checks = true;
};

struct ConcolicResult {
  std::vector<BBV> bbvs;
  std::vector<vm::ForkRecord> seed_states;
  /// The full block-entry trace: (ticks, global block id).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> trace;
  std::uint64_t ticks_used = 0;      // the paper's "c-time"
  std::uint64_t instructions = 0;
  vm::TerminationReason termination = vm::TerminationReason::kRunning;
  ArrayRef input_array;
  std::vector<std::uint8_t> seed;
};

/// Runs `entry(file, size)` concolically on `seed`. The executor's coverage
/// map accumulates the concrete path's blocks (pbSE counts those too).
ConcolicResult run_concolic(vm::Executor& executor, const std::string& entry,
                            const std::vector<std::uint8_t>& seed,
                            const ConcolicOptions& options = {});

}  // namespace pbse::concolic
