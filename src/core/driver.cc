#include "core/driver.h"

#include "core/seed_select.h"

namespace pbse::core {

KleeRun::KleeRun(const ir::Module& module, const std::string& entry,
                 KleeRunOptions options)
    : options_(options), rng_(options.rng_seed) {
  solver_ = std::make_unique<Solver>(clock_, stats_, options_.solver);
  executor_ = std::make_unique<vm::Executor>(module, *solver_, clock_, stats_,
                                             options_.executor);
  searcher_ = search::make_searcher(options_.searcher, *executor_, rng_);
  engine_ = std::make_unique<search::SymbolicEngine>(*executor_, *searcher_,
                                                     options_.engine);
  auto input = std::make_shared<Array>("file", options_.sym_file_size);
  engine_->add_state(executor_->make_initial_state(entry, input, {}));
}

void KleeRun::run(VClock::Ticks budget) {
  engine_->run(Deadline(clock_, budget));
}

void KleeRun::run_sliced(VClock::Ticks budget,
                         const std::function<bool()>& batch_stop) {
  engine_->run(Deadline(clock_, budget), {}, batch_stop);
}

PbseTestingResult pbse_testing(
    const ir::Module& module, const std::string& entry,
    const std::vector<std::vector<std::uint8_t>>& seeds, VClock::Ticks budget,
    const PbseOptions& options) {
  PbseTestingResult result;
  result.chosen_seed_index = select_seed(module, entry, seeds);
  result.driver = std::make_unique<PbseDriver>(module, entry, options);
  if (result.driver->prepare(seeds[result.chosen_seed_index]))
    result.driver->run(budget);
  return result;
}

}  // namespace pbse::core
