// Convenience drivers:
//  * KleeRun — plain KLEE-style symbolic execution with a chosen searcher
//    and a whole-file symbolic input of a given size (the baselines in
//    Tables I and II).
//  * pbse_testing — the full Algorithm 1 entry point: pick a seed with the
//    paper's heuristic, run concolic + phase analysis + scheduling.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pbse.h"
#include "searchers/engine.h"

namespace pbse::core {

struct KleeRunOptions {
  search::SearcherKind searcher = search::SearcherKind::kDefault;
  /// Size of the whole-file symbolic input ("sym-10" ... "sym-10000").
  std::uint32_t sym_file_size = 100;
  std::uint64_t rng_seed = 1;
  SolverOptions solver;
  vm::ExecutorOptions executor;
  search::EngineOptions engine;
};

/// A resumable KLEE-style run: call run() repeatedly to extend the budget
/// (Table I reports the same run at 1h and at 10h).
class KleeRun {
 public:
  KleeRun(const ir::Module& module, const std::string& entry,
          KleeRunOptions options = {});

  /// Runs for `budget` more ticks.
  void run(VClock::Ticks budget);

  /// Runs for at most `budget` more ticks, also stopping at the first
  /// BATCH boundary where `batch_stop` returns true. Because batches are
  /// never truncated, a run sliced this way and resumed from a snapshot
  /// consumes the searcher/RNG streams exactly like run(budget) would —
  /// the server's checkpointing depends on that equivalence.
  void run_sliced(VClock::Ticks budget,
                  const std::function<bool()>& batch_stop);

  vm::Executor& executor() { return *executor_; }
  VClock& clock() { return clock_; }
  Stats& stats() { return stats_; }
  std::size_t num_states() const { return engine_->num_states(); }

 private:
  friend class pbse::serialize::CampaignCodec;

  KleeRunOptions options_;
  VClock clock_;
  Stats stats_;
  Rng rng_;
  std::unique_ptr<Solver> solver_;
  std::unique_ptr<vm::Executor> executor_;
  std::unique_ptr<search::Searcher> searcher_;
  std::unique_ptr<search::SymbolicEngine> engine_;
};

struct PbseTestingResult {
  std::size_t chosen_seed_index = 0;
  std::unique_ptr<PbseDriver> driver;
};

/// Algorithm 1 with the paper's seed-selection heuristic. Runs prepare()
/// and then run() for `budget` ticks.
PbseTestingResult pbse_testing(const ir::Module& module,
                               const std::string& entry,
                               const std::vector<std::vector<std::uint8_t>>& seeds,
                               VClock::Ticks budget,
                               const PbseOptions& options = {});

}  // namespace pbse::core
