#include "core/parallel.h"

#include <chrono>
#include <exception>
#include <mutex>

#include "obs/trace.h"
#include "support/thread_pool.h"

namespace pbse::core {

ParallelCampaignRunner::ParallelCampaignRunner(ParallelOptions options)
    : options_(options) {
  if (options_.share_solver_cache)
    shared_cache_ = std::make_shared<ShardedQueryCache>(options_.cache_shards);
}

std::vector<CampaignOutcome> ParallelCampaignRunner::run(
    const std::vector<Campaign>& campaigns) {
  aggregate_.clear();
  std::vector<CampaignOutcome> outcomes(campaigns.size());
  std::vector<std::exception_ptr> errors(campaigns.size());

  const auto wall_start = std::chrono::steady_clock::now();
  {
    // jobs <= 1 → inline mode: tasks run on this thread at submit() time,
    // in campaign order, with zero scheduling nondeterminism.
    ThreadPool pool(options_.jobs <= 1 ? 0 : options_.jobs);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(campaigns.size());
    for (std::size_t i = 0; i < campaigns.size(); ++i) {
      tasks.push_back([this, &campaigns, &outcomes, &errors, i] {
        CampaignContext ctx;
        ctx.index = i;
        ctx.shared_cache = shared_cache_;
        // Every event this thread emits while the body runs carries the
        // campaign's index; the campaign name is the event name.
        obs::CampaignScope scope(static_cast<std::uint32_t>(i));
        const obs::MetricId ev = obs::intern_metric(campaigns[i].name);
        obs::trace_begin(obs::Category::kCampaign, ev, 0);
        const auto start = std::chrono::steady_clock::now();
        try {
          outcomes[i] = campaigns[i].body(ctx);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        obs::trace_end(obs::Category::kCampaign, ev, outcomes[i].ticks);
        outcomes[i].name = campaigns[i].name;
        outcomes[i].wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
      });
    }
    // run_all would re-throw on task failure; errors are captured per
    // campaign above so every campaign settles first.
    pool.run_all(std::move(tasks));
  }
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

  for (const auto& e : errors)
    if (e != nullptr) std::rethrow_exception(e);

  for (const auto& o : outcomes) aggregate_.merge(o.stats);
  aggregate_.add("parallel.campaigns", outcomes.size());
  aggregate_.add("parallel.jobs", options_.jobs == 0 ? 1 : options_.jobs);
  if (shared_cache_ != nullptr) {
    const ShardedQueryCache::Counters c = shared_cache_->counters();
    aggregate_.add("cache.shared_hits", c.hits);
    aggregate_.add("cache.shared_misses", c.misses);
    aggregate_.add("cache.shared_contention", c.contention);
    aggregate_.add("cache.shared_entries", shared_cache_->size());
    aggregate_.add("cache.shared_fingerprints",
                   shared_cache_->num_fingerprints());
  }
  return outcomes;
}

}  // namespace pbse::core
