// Parallel campaign runner: executes independent pbSE / KLEE campaigns
// concurrently on a thread pool.
//
// The unit of scale-out is a whole campaign (one target × searcher ×
// configuration run), mirroring how the paper's experiments — and
// campaign-level trials in learned-search-heuristics work — parallelize.
// Each campaign owns its VClock, Stats, Solver and Executor and builds its
// own module and expressions (the expression interner is thread-local), so
// a campaign's virtual-time trajectory is independent of scheduling and
// its results are bit-identical to a serial run of the same campaign.
//
// Campaigns optionally share a ShardedQueryCache (L2): structurally
// identical solver queries issued by different campaigns — common when
// several searchers explore the same target — are solved once. Sharing is
// sound (SAT models are re-verified per hit, UNSAT keys are definitive)
// but makes a campaign's virtual-time accounting depend on which cache
// entries other campaigns published first; disable it when bit-exact
// equality between `--jobs 1` and `--jobs N` matters more than throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "solver/cache.h"
#include "support/stats.h"

namespace pbse::core {

struct ParallelOptions {
  /// Worker threads. 0 or 1 runs campaigns inline on the calling thread.
  unsigned jobs = 1;
  /// Cross-campaign solver-cache sharing (see the header comment).
  bool share_solver_cache = true;
  unsigned cache_shards = 16;
};

/// Handed to every campaign body.
struct CampaignContext {
  std::size_t index = 0;
  /// Null when sharing is off; otherwise plug into SolverOptions.
  std::shared_ptr<ShardedQueryCache> shared_cache;
};

/// What a campaign reports back. `rows` carries bench-specific table
/// payloads (single-row benches use rows[0]); the named fields feed
/// BENCH_pbse.json and aggregate stats.
struct CampaignOutcome {
  std::string name;
  std::uint64_t covered = 0;
  std::uint64_t ticks = 0;
  std::uint64_t bugs = 0;
  double wall_seconds = 0;
  Stats stats;
  std::vector<std::vector<std::string>> rows;
};

struct Campaign {
  std::string name;
  std::function<CampaignOutcome(const CampaignContext&)> body;
};

class ParallelCampaignRunner {
 public:
  explicit ParallelCampaignRunner(ParallelOptions options = {});

  /// Runs every campaign and returns outcomes in CAMPAIGN ORDER (never
  /// completion order), so downstream reporting is deterministic. If any
  /// campaign throws, all campaigns still settle, then the first exception
  /// by campaign index is re-thrown.
  std::vector<CampaignOutcome> run(const std::vector<Campaign>& campaigns);

  /// Campaign stats merged together, plus the shared-cache counters
  /// ("cache.shared_hits" / "cache.shared_misses" /
  /// "cache.shared_contention" / "cache.shared_entries") and the runner's
  /// own bookkeeping. Valid after run().
  const Stats& aggregate_stats() const { return aggregate_; }

  /// Wall-clock of the last run() in seconds.
  double wall_seconds() const { return wall_seconds_; }

  const std::shared_ptr<ShardedQueryCache>& shared_cache() const {
    return shared_cache_;
  }

 private:
  ParallelOptions options_;
  std::shared_ptr<ShardedQueryCache> shared_cache_;
  Stats aggregate_;
  double wall_seconds_ = 0;
};

}  // namespace pbse::core
