#include "core/pbse.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"
#include "support/log.h"

namespace pbse::core {

namespace {

struct CoreIds {
  obs::MetricId seed_states_total =
      obs::intern_metric("pbse.seed_states_total");
  obs::MetricId seed_states_kept =
      obs::intern_metric("pbse.seed_states_kept");
  obs::MetricId seed_states_activated =
      obs::intern_metric("pbse.seed_states_activated");
  obs::MetricId turns = obs::intern_metric("pbse.turns");
  /// Log2 histogram: live states in a phase at the end of each turn.
  obs::MetricId states_per_phase =
      obs::intern_metric("pbse.states_per_phase");
  obs::MetricId ev_analysis = obs::intern_metric("phase_analysis");
  obs::MetricId ev_turn = obs::intern_metric("turn");
  obs::MetricId ev_activate = obs::intern_metric("phase_activate");
  obs::MetricId ev_retired = obs::intern_metric("phase_retired");
  obs::MetricId arg_phase = obs::intern_metric("phase");
  obs::MetricId arg_turn = obs::intern_metric("turn");
  obs::MetricId arg_phases = obs::intern_metric("phases");
  obs::MetricId arg_traps = obs::intern_metric("traps");
  obs::MetricId arg_states = obs::intern_metric("states");
  obs::MetricId arg_cover = obs::intern_metric("cover");
  obs::MetricId arg_reason = obs::intern_metric("reason");
};

const CoreIds& ids() {
  static const CoreIds c;
  return c;
}

/// Why a phase left the Algorithm 3 rotation (the a0 of `phase_retired`).
enum class RetireReason : std::uint64_t { kExhausted = 0 };

}  // namespace

PbseDriver::PbseDriver(const ir::Module& module, const std::string& entry,
                       PbseOptions options)
    : module_(module),
      entry_(entry),
      options_(options),
      rng_(options.rng_seed) {
  solver_ = std::make_unique<Solver>(clock_, stats_, options_.solver);
  executor_ = std::make_unique<vm::Executor>(module_, *solver_, clock_,
                                             stats_, options_.executor);
}

bool PbseDriver::prepare(const std::vector<std::uint8_t>& seed) {
  // --- Step 1: concolic execution (Algorithm 2). -------------------------
  const std::uint64_t t0 = clock_.now();
  concolic_ = run_concolic(*executor_, entry_, seed, options_.concolic);
  c_time_ = clock_.now() - t0;
  // Bugs hit by the seed itself belong to no phase.
  bug_phases_.assign(executor_->bugs().size(), ~std::uint32_t{0});

  // --- Step 2: phase parsing. --------------------------------------------
  obs::trace_begin(obs::Category::kPhase, ids().ev_analysis, clock_.now(),
                   concolic_.bbvs.size());
  analysis_ = phase::analyze_phases(concolic_.bbvs, options_.phase);
  // Charge the clustering work to the virtual clock (the paper's p-time).
  p_time_ = analysis_.work / 8 + 1;
  clock_.advance(p_time_);
  obs::trace_end(obs::Category::kPhase, ids().ev_analysis, clock_.now(),
                 analysis_.phases.size(), ids().arg_phases,
                 analysis_.num_trap_phases, ids().arg_traps);

  if (concolic_.seed_states.empty() || analysis_.phases.empty()) return false;

  // SeedState selection (Sec. III-B3): same fork point -> keep earliest.
  // Algorithm 2 already dedups at record time, so this is a defensive
  // second pass over whatever the concolic step produced.
  std::unordered_map<std::uint64_t, const vm::ForkRecord*> earliest;
  for (const vm::ForkRecord& r : concolic_.seed_states) {
    const std::uint64_t key = (std::uint64_t{r.fork_bb} << 32) | r.fork_inst;
    auto it = earliest.find(key);
    if (it == earliest.end() || r.fork_ticks < it->second->fork_ticks)
      earliest[key] = &r;
  }
  stats_.add(ids().seed_states_total, concolic_.seed_states.size());
  stats_.add(ids().seed_states_kept, earliest.size());

  // Map retained seedStates to phases by fork time (Sec. III-B2).
  phase_seed_states_.assign(analysis_.phases.size(), {});
  for (const auto& [key, record] : earliest) {
    (void)key;
    const std::uint32_t phase_id =
        phase::phase_of_ticks(analysis_, concolic_.bbvs, record->fork_ticks);
    phase_seed_states_[phase_id].push_back(*record);
  }
  // Within a phase, activate seedStates in fork order (earlier constraints
  // are simpler — same rationale as the paper's phase ordering).
  for (auto& list : phase_seed_states_)
    std::stable_sort(list.begin(), list.end(),
                     [](const vm::ForkRecord& a, const vm::ForkRecord& b) {
                       return a.fork_ticks < b.fork_ticks;
                     });

  // Build per-phase runtimes (phases are already ordered by first-BBV time).
  runtimes_.clear();
  for (const phase::Phase& p : analysis_.phases) {
    PhaseRuntime rt;
    rt.phase_id = p.id;
    rt.searcher = search::make_searcher(options_.phase_searcher, *executor_,
                                        rng_);
    rt.engine = std::make_unique<search::SymbolicEngine>(
        *executor_, *rt.searcher, options_.engine);
    rt.pending = std::move(phase_seed_states_[p.id]);
    phase_seed_states_[p.id] = {};  // moved out; keep sizes via runtimes
    runtimes_.push_back(std::move(rt));
  }
  // Restore the per-phase lists for introspection (copy from runtimes).
  for (std::size_t i = 0; i < runtimes_.size(); ++i)
    phase_seed_states_[runtimes_[i].phase_id] = runtimes_[i].pending;
  return true;
}

void PbseDriver::activate_pending(PhaseRuntime& phase) {
  for (vm::ForkRecord& record : phase.pending) {
    // Lazy pass-through: validate (or repair) the seedState's model against
    // its flipped branch constraint before scheduling it.
    auto state = std::make_unique<vm::ExecutionState>(*record.state);
    state->id = executor_->allocate_state_id();
    if (!executor_->validate_model(*state)) continue;
    phase.engine->add_state(std::move(state));
    stats_.add(ids().seed_states_activated);
  }
  obs::trace_instant(obs::Category::kSched, ids().ev_activate, clock_.now(),
                     phase.phase_id, ids().arg_phase,
                     phase.engine->num_states(), ids().arg_states);
  phase.pending.clear();
  phase.started = true;
}

void PbseDriver::begin_run() {
  cursor_.i = 0;
  cursor_.live.clear();
  for (std::uint32_t r = 0; r < runtimes_.size(); ++r)
    cursor_.live.push_back(r);
}

bool PbseDriver::step_turn(const Deadline& overall) {
  // One iteration of Algorithm 3's rotation loop.
  auto& live = cursor_.live;
  if (live.empty() || overall.expired()) return false;

  const std::size_t phase_index = cursor_.i % live.size();
  const std::uint64_t turn = cursor_.i / live.size() + 1;
  ++cursor_.i;
  PhaseRuntime& phase = runtimes_[live[phase_index]];

  if (!phase.started) activate_pending(phase);
  if (phase.searcher->empty()) {
    obs::trace_instant(
        obs::Category::kSched, ids().ev_retired, clock_.now(),
        phase.phase_id, ids().arg_phase,
        static_cast<std::uint64_t>(RetireReason::kExhausted),
        ids().arg_reason);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(phase_index));
    // Re-balance i so the rotation stays aligned after erasure.
    if (!live.empty()) cursor_.i = (cursor_.i - 1) % live.size();
    return !live.empty();
  }

  const std::uint64_t phase_start = clock_.now();
  const std::uint64_t period = turn * options_.time_period_ticks;
  const std::uint64_t covered_before = executor_->num_covered();
  obs::trace_begin(obs::Category::kSched, ids().ev_turn, phase_start,
                   phase.phase_id, ids().arg_phase, turn, ids().arg_turn);
  std::uint64_t last_cover_epoch = executor_->coverage_epoch();
  std::uint64_t last_cover_ticks = clock_.now();
  const std::size_t bugs_before = executor_->bugs().size();

  auto stop = [&]() {
    if (executor_->coverage_epoch() != last_cover_epoch) {
      last_cover_epoch = executor_->coverage_epoch();
      last_cover_ticks = clock_.now();
    }
    // Keep running while within the period, or while still covering new
    // code (Algorithm 3 line 15).
    if (clock_.now() - phase_start <= period) return false;
    return clock_.now() - last_cover_ticks > options_.no_new_cover_window;
  };
  phase.engine->run(overall, stop);

  // Tag bugs found during this turn with the phase id.
  for (std::size_t b = bugs_before; b < executor_->bugs().size(); ++b)
    bug_phases_.push_back(phase.phase_id);

  stats_.add(ids().turns);
  stats_.observe(ids().states_per_phase, phase.engine->num_states());
  obs::trace_end(obs::Category::kSched, ids().ev_turn, clock_.now(),
                 phase.engine->num_states(), ids().arg_states,
                 executor_->num_covered() - covered_before,
                 ids().arg_cover);

  PBSE_LOG_DEBUG << "pbse phase " << phase.phase_id << " turn " << turn
                 << ": states=" << phase.engine->num_states()
                 << " covered=" << executor_->num_covered()
                 << " clock=" << clock_.now();
  return true;
}

void PbseDriver::run(VClock::Ticks budget) {
  begin_run();
  const Deadline overall(clock_, budget);
  while (step_turn(overall)) {
  }
}

}  // namespace pbse::core
