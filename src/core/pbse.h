// pbSE: the phase-based symbolic execution driver — the paper's primary
// contribution (Algorithms 1 and 3).
//
// Pipeline:
//   prepare():  concolic execution on the seed (Algorithm 2) -> BBVs and
//               seedStates; phase analysis (k-means over coverage-augmented
//               BBVs, trap-phase identification); seedState dedup (same
//               fork point -> keep earliest) and mapping to phases by fork
//               time.
//   run():      Algorithm 3 — round-robin over phases ordered by first-BBV
//               time. Each turn gives a phase turnNum * TimePeriod ticks;
//               the phase keeps running past its period only while it still
//               covers new code. Empty phases are retired.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concolic/concolic_executor.h"
#include "phase/phase_analysis.h"
#include "searchers/engine.h"
#include "searchers/searcher.h"
#include "solver/solver.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/vclock.h"
#include "vm/executor.h"

namespace pbse::serialize {
class CampaignCodec;
}

namespace pbse::core {

struct PbseOptions {
  concolic::ConcolicOptions concolic;
  phase::PhaseOptions phase;
  /// Algorithm 3's TimePeriod (ticks per phase per first-turn visit).
  std::uint64_t time_period_ticks = 30'000;
  /// A phase past its period stops once it has not covered new code for
  /// this many ticks (isCoverNewInst window).
  std::uint64_t no_new_cover_window = 8'000;
  /// Searcher used inside each phase.
  search::SearcherKind phase_searcher = search::SearcherKind::kDefault;
  search::EngineOptions engine;
  vm::ExecutorOptions executor;
  SolverOptions solver;
  std::uint64_t rng_seed = 1;
};

class PbseDriver {
 public:
  PbseDriver(const ir::Module& module, const std::string& entry,
             PbseOptions options = {});

  /// Step 1+2 of Algorithm 1: concolic execution and phase parsing.
  /// Returns false if the seed path executed no symbolic branch (nothing
  /// to schedule).
  bool prepare(const std::vector<std::uint8_t>& seed);

  /// Step 3: phase-scheduled symbolic execution until the deadline.
  /// Resets the rotation cursor at entry — calling run() again re-visits
  /// retired phases exactly as the original driver did (the benches rely
  /// on this when extending a 1h run to 10h).
  void run(VClock::Ticks budget);

  // --- Sliced execution (server checkpointing) ----------------------------
  // run(budget) == begin_run() followed by step_turn(overall) until false.
  // A server job instead calls step_turn once per slice and snapshots
  // between calls; because a turn is a deterministic unit, the sliced run
  // is tick- and RNG-identical to the monolithic one.

  /// Resets the Algorithm 3 rotation to its start (all phases live, turn
  /// counter zero). run() does this implicitly; a RESTORED driver must NOT
  /// call it — the deserialized cursor already points mid-rotation.
  void begin_run();

  /// Executes one rotation step (retire an empty phase, or run one phase
  /// turn) against `overall`. Returns true while live phases and budget
  /// remain. Cursor state persists across calls.
  bool step_turn(const Deadline& overall);

  // --- Introspection ------------------------------------------------------
  vm::Executor& executor() { return *executor_; }
  const concolic::ConcolicResult& concolic_result() const { return concolic_; }
  const phase::PhaseAnalysisResult& phases() const { return analysis_; }
  VClock& clock() { return clock_; }
  Stats& stats() { return stats_; }

  std::uint64_t c_time_ticks() const { return c_time_; }
  std::uint64_t p_time_ticks() const { return p_time_; }

  /// Phase id in which each executor bug (by index) was found; phase id
  /// ~0u marks bugs found during the concolic step itself.
  const std::vector<std::uint32_t>& bug_phases() const { return bug_phases_; }

  /// SeedStates retained per phase after dedup (for tests/reporting).
  const std::vector<std::vector<vm::ForkRecord>>& phase_seed_states() const {
    return phase_seed_states_;
  }

 private:
  friend class pbse::serialize::CampaignCodec;

  struct PhaseRuntime {
    std::uint32_t phase_id = 0;
    std::unique_ptr<search::Searcher> searcher;
    std::unique_ptr<search::SymbolicEngine> engine;
    std::vector<vm::ForkRecord> pending;  // not yet activated
    bool started = false;
  };

  /// Algorithm 3's rotation position: the turn counter and the indices of
  /// runtimes_ still in the rotation. Index-based (not pointer-based) so a
  /// snapshot can persist it directly.
  struct TurnCursor {
    std::uint64_t i = 0;
    std::vector<std::uint32_t> live;
  };

  void activate_pending(PhaseRuntime& phase);

  const ir::Module& module_;
  std::string entry_;
  PbseOptions options_;

  VClock clock_;
  Stats stats_;
  Rng rng_;
  std::unique_ptr<Solver> solver_;
  std::unique_ptr<vm::Executor> executor_;

  concolic::ConcolicResult concolic_;
  phase::PhaseAnalysisResult analysis_;
  std::vector<std::vector<vm::ForkRecord>> phase_seed_states_;
  std::vector<PhaseRuntime> runtimes_;
  std::vector<std::uint32_t> bug_phases_;
  TurnCursor cursor_;

  std::uint64_t c_time_ = 0;
  std::uint64_t p_time_ = 0;
};

}  // namespace pbse::core
