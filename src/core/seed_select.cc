#include "core/seed_select.h"

#include <algorithm>
#include <cassert>

#include "concolic/concolic_executor.h"
#include "solver/solver.h"
#include "vm/executor.h"

namespace pbse::core {

std::size_t select_seed(const ir::Module& module, const std::string& entry,
                        const std::vector<std::vector<std::uint8_t>>& seeds,
                        std::vector<SeedScore>* scores_out,
                        std::uint64_t max_instructions) {
  assert(!seeds.empty());

  // The 10 smallest seeds (stable on ties).
  std::vector<std::size_t> order(seeds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return seeds[a].size() < seeds[b].size();
  });
  if (order.size() > 10) order.resize(10);

  std::vector<SeedScore> scores;
  std::size_t best = order[0];
  std::uint64_t best_cov = 0;
  for (std::size_t index : order) {
    // Fresh, throwaway measurement environment per candidate.
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    vm::Executor executor(module, solver, clock, stats);
    concolic::ConcolicOptions opts;
    opts.record_trace = false;
    opts.max_instructions = max_instructions;
    const auto run = run_concolic(executor, entry, seeds[index], opts);
    (void)run;
    SeedScore score;
    score.index = index;
    score.size = seeds[index].size();
    score.coverage = executor.num_covered();
    scores.push_back(score);
    if (score.coverage > best_cov) {
      best_cov = score.coverage;
      best = index;
    }
  }
  if (scores_out != nullptr) *scores_out = std::move(scores);
  return best;
}

}  // namespace pbse::core
