// Seed selection heuristic (paper Sec. III-B4): when multiple seeds are
// available, consider only the 10 smallest and pick the one with the
// highest concrete-execution coverage among those.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace pbse::core {

struct SeedScore {
  std::size_t index = 0;       // index into the input seed list
  std::size_t size = 0;        // seed length in bytes
  std::uint64_t coverage = 0;  // blocks covered by a concrete run
};

/// Scores every candidate (concrete run of `entry` on each seed, with an
/// instruction cap) and applies the paper's heuristic. Returns the index of
/// the chosen seed; `scores_out` (optional) receives all measured scores.
std::size_t select_seed(const ir::Module& module, const std::string& entry,
                        const std::vector<std::vector<std::uint8_t>>& seeds,
                        std::vector<SeedScore>* scores_out = nullptr,
                        std::uint64_t max_instructions = 2'000'000);

}  // namespace pbse::core
