#include "expr/evaluator.h"

#include <cassert>
#include <unordered_map>

namespace pbse {

namespace {

/// Computes one node's value assuming every kid is already in `memo`.
std::uint64_t eval_node(const Expr* e, const Assignment& a,
                        const std::unordered_map<const Expr*, std::uint64_t>& memo) {
  auto kid = [&memo, e](std::size_t i) { return memo.at(e->kid(i).get()); };
  std::uint64_t r = 0;
  switch (e->kind()) {
    case ExprKind::kConstant:
      r = e->constant_value();
      break;
    case ExprKind::kRead:
      r = a.byte(e->array().get(), e->read_index());
      break;
    case ExprKind::kSelect:
      r = kid(0) != 0 ? kid(1) : kid(2);
      break;
    case ExprKind::kConcat:
      r = (kid(0) << e->kid(1)->width()) | kid(1);
      break;
    case ExprKind::kExtract:
      r = kid(0) >> e->extract_offset();
      break;
    case ExprKind::kZExt:
      r = kid(0);
      break;
    case ExprKind::kSExt:
      r = static_cast<std::uint64_t>(sign_extend(kid(0), e->kid(0)->width()));
      break;
    case ExprKind::kNot:
      r = ~kid(0);
      break;
    default: {
      const std::uint64_t x = kid(0);
      const std::uint64_t y = kid(1);
      const unsigned ow = e->kid(0)->width();
      const std::int64_t sx = sign_extend(x, ow);
      const std::int64_t sy = sign_extend(y, ow);
      switch (e->kind()) {
        case ExprKind::kAdd: r = x + y; break;
        case ExprKind::kSub: r = x - y; break;
        case ExprKind::kMul: r = x * y; break;
        case ExprKind::kUDiv: r = (y == 0) ? 0 : x / y; break;
        case ExprKind::kSDiv:
          r = (sy == 0) ? 0 : static_cast<std::uint64_t>(sx / sy);
          break;
        case ExprKind::kURem: r = (y == 0) ? 0 : x % y; break;
        case ExprKind::kSRem:
          r = (sy == 0) ? 0 : static_cast<std::uint64_t>(sx % sy);
          break;
        case ExprKind::kAnd: r = x & y; break;
        case ExprKind::kOr: r = x | y; break;
        case ExprKind::kXor: r = x ^ y; break;
        case ExprKind::kShl: r = (y >= ow) ? 0 : x << y; break;
        case ExprKind::kLShr: r = (y >= ow) ? 0 : x >> y; break;
        case ExprKind::kAShr:
          r = (y >= ow) ? static_cast<std::uint64_t>(sx < 0 ? -1 : 0)
                        : static_cast<std::uint64_t>(sx >> y);
          break;
        case ExprKind::kEq: r = (x == y); break;
        case ExprKind::kUlt: r = (x < y); break;
        case ExprKind::kUle: r = (x <= y); break;
        case ExprKind::kSlt: r = (sx < sy); break;
        case ExprKind::kSle: r = (sx <= sy); break;
        default: assert(false && "unhandled expr kind");
      }
      break;
    }
  }
  return truncate_to_width(r, e->width());
}

/// Iterative post-order evaluation: expression chains (loop accumulators,
/// checksums) reach depths far beyond the C++ stack, so no recursion.
std::uint64_t eval_impl(const Expr* root, const Assignment& a,
                        std::unordered_map<const Expr*, std::uint64_t>& memo) {
  {
    auto it = memo.find(root);
    if (it != memo.end()) return it->second;
  }
  std::vector<std::pair<const Expr*, bool>> stack;
  stack.emplace_back(root, false);
  while (!stack.empty()) {
    auto [e, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(e) != 0) continue;
    if (expanded) {
      memo.emplace(e, eval_node(e, a, memo));
      continue;
    }
    stack.emplace_back(e, true);
    for (std::size_t i = 0; i < e->num_kids(); ++i) {
      const Expr* k = e->kid(i).get();
      if (memo.count(k) == 0) stack.emplace_back(k, false);
    }
  }
  return memo.at(root);
}

}  // namespace

std::uint64_t evaluate(const ExprRef& e, const Assignment& assignment) {
  std::unordered_map<const Expr*, std::uint64_t> memo;
  return eval_impl(e.get(), assignment, memo);
}

bool evaluate_bool(const ExprRef& e, const Assignment& assignment) {
  assert(e->width() == 1);
  return evaluate(e, assignment) != 0;
}

std::uint64_t CachingEvaluator::evaluate(const ExprRef& e) {
  return eval_impl(e.get(), *assignment_, memo_);
}

std::size_t expr_cost(const ExprRef& e) {
  // Hash-consing keeps nodes alive for the thread, so a thread-local memo
  // keyed by node pointer is stable (the interner is thread-local too).
  thread_local auto* memo = new std::unordered_map<const Expr*, std::size_t>();
  auto it = memo->find(e.get());
  if (it != memo->end()) return it->second;
  const std::size_t cost = expr_dag_size(e);
  memo->emplace(e.get(), cost);
  return cost;
}

}  // namespace pbse
