// Concrete evaluation of symbolic expressions under a byte assignment.
//
// Used by: the concolic executor (concrete half of the lockstep), the
// solver's backtracking search (candidate checking), and test-case replay.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace pbse {

/// Maps symbolic arrays to concrete byte contents. Arrays not present
/// evaluate to zero bytes (KLEE's convention for unconstrained bytes).
class Assignment {
 public:
  void set(const ArrayRef& array, std::vector<std::uint8_t> bytes) {
    bytes_[array.get()] = std::move(bytes);
  }

  /// Value of `array[index]`; 0 when unassigned or out of range.
  std::uint8_t byte(const Array* array, std::uint32_t index) const {
    auto it = bytes_.find(array);
    if (it == bytes_.end() || index >= it->second.size()) return 0;
    return it->second[index];
  }

  /// Mutable access for the solver's search (creates the entry zero-filled
  /// at the array's declared size).
  std::vector<std::uint8_t>& mutable_bytes(const ArrayRef& array) {
    auto it = bytes_.find(array.get());
    if (it == bytes_.end()) {
      it = bytes_.emplace(array.get(),
                          std::vector<std::uint8_t>(array->size(), 0)).first;
    }
    return it->second;
  }

  const std::unordered_map<const Array*, std::vector<std::uint8_t>>& all() const {
    return bytes_;
  }

 private:
  std::unordered_map<const Array*, std::vector<std::uint8_t>> bytes_;
};

/// Evaluates `e` under `assignment`. Total: division by zero yields 0
/// (matching the folding convention; the VM guards real divisions).
/// Result is zero-extended to 64 bits.
std::uint64_t evaluate(const ExprRef& e, const Assignment& assignment);

/// Evaluates a width-1 expression as a truth value.
bool evaluate_bool(const ExprRef& e, const Assignment& assignment);

/// Memoized evaluator over an IMMUTABLE assignment (a state's model).
/// Results persist across calls, so evaluating expressions that grow
/// incrementally (loop accumulators, checksums) costs only the new nodes —
/// this is what keeps long concrete-ish paths linear instead of quadratic.
class CachingEvaluator {
 public:
  explicit CachingEvaluator(std::shared_ptr<const Assignment> assignment)
      : assignment_(std::move(assignment)) {}

  std::uint64_t evaluate(const ExprRef& e);
  bool evaluate_bool(const ExprRef& e) { return evaluate(e) != 0; }

  /// The assignment this cache is valid for (identity-compared by callers
  /// to detect model replacement).
  const std::shared_ptr<const Assignment>& assignment() const {
    return assignment_;
  }

 private:
  std::shared_ptr<const Assignment> assignment_;
  std::unordered_map<const Expr*, std::uint64_t> memo_;
};

/// Deterministic work measure of an expression: its DAG node count,
/// memoized process-globally. The solver charges this per evaluation so
/// virtual time reflects real constraint complexity.
std::size_t expr_cost(const ExprRef& e);

}  // namespace pbse
