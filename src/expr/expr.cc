#include "expr/expr.h"

#include <cassert>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pbse {

namespace {

std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::uint64_t truncate_to_width(std::uint64_t v, unsigned width) {
  return v & width_mask(width);
}

std::int64_t sign_extend(std::uint64_t v, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width == 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
  v &= width_mask(width);
  return static_cast<std::int64_t>((v ^ sign_bit) - sign_bit);
}

const char* expr_kind_name(ExprKind kind) {
  switch (kind) {
    case ExprKind::kConstant: return "Const";
    case ExprKind::kRead: return "Read";
    case ExprKind::kSelect: return "Select";
    case ExprKind::kConcat: return "Concat";
    case ExprKind::kExtract: return "Extract";
    case ExprKind::kZExt: return "ZExt";
    case ExprKind::kSExt: return "SExt";
    case ExprKind::kNot: return "Not";
    case ExprKind::kAdd: return "Add";
    case ExprKind::kSub: return "Sub";
    case ExprKind::kMul: return "Mul";
    case ExprKind::kUDiv: return "UDiv";
    case ExprKind::kSDiv: return "SDiv";
    case ExprKind::kURem: return "URem";
    case ExprKind::kSRem: return "SRem";
    case ExprKind::kAnd: return "And";
    case ExprKind::kOr: return "Or";
    case ExprKind::kXor: return "Xor";
    case ExprKind::kShl: return "Shl";
    case ExprKind::kLShr: return "LShr";
    case ExprKind::kAShr: return "AShr";
    case ExprKind::kEq: return "Eq";
    case ExprKind::kUlt: return "Ult";
    case ExprKind::kUle: return "Ule";
    case ExprKind::kSlt: return "Slt";
    case ExprKind::kSle: return "Sle";
  }
  return "?";
}

Expr::Expr(ExprKind kind, unsigned width, std::uint64_t value, ArrayRef array,
           std::vector<ExprRef> kids)
    : kind_(kind),
      width_(width),
      value_(value),
      array_(std::move(array)),
      kids_(std::move(kids)) {
  // Content-based hashing (array by name+size, kids by their own hashes):
  // pointer addresses must never leak into hashes, because hash order
  // feeds canonicalization and search tie-breaking, and determinism across
  // runs and processes is a design goal.
  std::size_t h = hash_combine(static_cast<std::size_t>(kind_), width_);
  h = hash_combine(h, static_cast<std::size_t>(value_));
  if (array_ != nullptr) {
    h = hash_combine(h, std::hash<std::string>{}(array_->name()));
    h = hash_combine(h, array_->size());
  }
  for (const auto& k : kids_) h = hash_combine(h, k->hash());
  hash_ = h;
}

namespace {

struct InternHash {
  std::size_t operator()(const ExprRef& e) const { return e->hash(); }
};

struct InternEq {
  bool operator()(const ExprRef& a, const ExprRef& b) const {
    if (a->kind() != b->kind() || a->width() != b->width()) return false;
    if (a->constant_value() != b->constant_value()) return false;
    if (a->array().get() != b->array().get()) return false;
    if (a->num_kids() != b->num_kids()) return false;
    for (std::size_t i = 0; i < a->num_kids(); ++i)
      if (a->kid(i).get() != b->kid(i).get()) return false;
    return true;
  }
};

// Thread-local interning table: each campaign thread hash-conses its own
// nodes, so structural equality stays a pointer comparison within a thread
// and construction needs no locks. Nodes are kept alive for the thread's
// lifetime (they are tiny and heavily shared); results that outlive the
// thread hold their own ExprRefs. Campaigns must therefore build and run
// on a single thread — the ParallelDriver's campaign-per-worker model.
std::unordered_set<ExprRef, InternHash, InternEq>& intern_table() {
  thread_local auto* table =
      new std::unordered_set<ExprRef, InternHash, InternEq>();
  return *table;
}

ExprRef intern(ExprKind kind, unsigned width, std::uint64_t value,
               ArrayRef array, std::vector<ExprRef> kids) {
  auto node = std::make_shared<const Expr>(kind, width, value, std::move(array),
                                           std::move(kids));
  auto [it, inserted] = intern_table().insert(node);
  return *it;
}

}  // namespace

std::size_t intern_table_size() { return intern_table().size(); }

ExprRef mk_raw(ExprKind kind, unsigned width, std::uint64_t value,
               ArrayRef array, std::vector<ExprRef> kids) {
  return intern(kind, width, value, std::move(array), std::move(kids));
}

bool expr_equal(const ExprRef& a, const ExprRef& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  return InternEq{}(a, b) ||
         (a->hash() == b->hash() && a->to_string() == b->to_string());
}

// --- Builders -------------------------------------------------------------

ExprRef mk_const(std::uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  return intern(ExprKind::kConstant, width, truncate_to_width(value, width),
                nullptr, {});
}

ExprRef mk_bool(bool v) { return mk_const(v ? 1 : 0, 1); }

ExprRef mk_read(ArrayRef array, std::uint32_t index) {
  assert(array != nullptr && index < array->size());
  return intern(ExprKind::kRead, 8, index, std::move(array), {});
}

ExprRef mk_select(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  assert(cond->width() == 1 && then_e->width() == else_e->width());
  if (cond->is_true()) return then_e;
  if (cond->is_false()) return else_e;
  if (expr_equal(then_e, else_e)) return then_e;
  // select(c, 1, 0) over width-1 operands is just c.
  if (then_e->width() == 1 && then_e->is_true() && else_e->is_false()) return cond;
  if (then_e->width() == 1 && then_e->is_false() && else_e->is_true())
    return mk_lnot(cond);
  const unsigned w = then_e->width();
  return intern(ExprKind::kSelect, w, 0, nullptr,
                {std::move(cond), std::move(then_e), std::move(else_e)});
}

ExprRef mk_concat(ExprRef high, ExprRef low) {
  const unsigned w = high->width() + low->width();
  assert(w <= 64);
  if (high->is_constant() && low->is_constant()) {
    return mk_const((high->constant_value() << low->width()) |
                        low->constant_value(),
                    w);
  }
  // Concat of a constant zero high part is a zext.
  if (high->is_constant() && high->constant_value() == 0)
    return mk_zext(std::move(low), w);
  // Reassembly of adjacent extracts of the same value folds back into one
  // extract: Concat(Extract(X, o+k, a), Extract(X, o, k)) == Extract(X, o,
  // a+k). This collapses load-after-store roundtrips to the stored value.
  if (high->kind() == ExprKind::kExtract && low->kind() == ExprKind::kExtract &&
      high->kid(0).get() == low->kid(0).get() &&
      high->extract_offset() == low->extract_offset() + low->width()) {
    return mk_extract(high->kid(0), low->extract_offset(), w);
  }
  return intern(ExprKind::kConcat, w, 0, nullptr, {std::move(high), std::move(low)});
}

ExprRef mk_extract(ExprRef e, unsigned offset, unsigned width) {
  assert(offset + width <= e->width() && width >= 1);
  if (offset == 0 && width == e->width()) return e;
  if (e->is_constant()) return mk_const(e->constant_value() >> offset, width);
  if (e->kind() == ExprKind::kConcat) {
    const ExprRef& high = e->kid(0);
    const ExprRef& low = e->kid(1);
    if (offset + width <= low->width()) return mk_extract(low, offset, width);
    if (offset >= low->width())
      return mk_extract(high, offset - low->width(), width);
  }
  if (e->kind() == ExprKind::kZExt || e->kind() == ExprKind::kSExt) {
    const ExprRef& src = e->kid(0);
    if (offset + width <= src->width()) return mk_extract(src, offset, width);
    if (e->kind() == ExprKind::kZExt && offset >= src->width())
      return mk_const(0, width);
  }
  return intern(ExprKind::kExtract, width, offset, nullptr, {std::move(e)});
}

ExprRef mk_zext(ExprRef e, unsigned width) {
  assert(width >= e->width() && width <= 64);
  if (width == e->width()) return e;
  if (e->is_constant()) return mk_const(e->constant_value(), width);
  if (e->kind() == ExprKind::kZExt) return mk_zext(e->kid(0), width);
  return intern(ExprKind::kZExt, width, 0, nullptr, {std::move(e)});
}

ExprRef mk_sext(ExprRef e, unsigned width) {
  assert(width >= e->width() && width <= 64);
  if (width == e->width()) return e;
  if (e->is_constant())
    return mk_const(static_cast<std::uint64_t>(
                        sign_extend(e->constant_value(), e->width())),
                    width);
  return intern(ExprKind::kSExt, width, 0, nullptr, {std::move(e)});
}

ExprRef mk_not(ExprRef e) {
  if (e->is_constant()) return mk_const(~e->constant_value(), e->width());
  if (e->kind() == ExprKind::kNot) return e->kid(0);
  const unsigned w = e->width();
  return intern(ExprKind::kNot, w, 0, nullptr, {std::move(e)});
}

namespace {

bool fold_binop(ExprKind kind, const ExprRef& a, const ExprRef& b,
                std::uint64_t& out) {
  if (!a->is_constant() || !b->is_constant()) return false;
  const unsigned w = a->width();
  const std::uint64_t x = a->constant_value();
  const std::uint64_t y = b->constant_value();
  const std::int64_t sx = sign_extend(x, w);
  const std::int64_t sy = sign_extend(y, w);
  switch (kind) {
    case ExprKind::kAdd: out = x + y; break;
    case ExprKind::kSub: out = x - y; break;
    case ExprKind::kMul: out = x * y; break;
    case ExprKind::kUDiv: out = (y == 0) ? 0 : x / y; break;
    case ExprKind::kSDiv:
      out = (sy == 0) ? 0 : static_cast<std::uint64_t>(sx / sy);
      break;
    case ExprKind::kURem: out = (y == 0) ? 0 : x % y; break;
    case ExprKind::kSRem:
      out = (sy == 0) ? 0 : static_cast<std::uint64_t>(sx % sy);
      break;
    case ExprKind::kAnd: out = x & y; break;
    case ExprKind::kOr: out = x | y; break;
    case ExprKind::kXor: out = x ^ y; break;
    case ExprKind::kShl: out = (y >= w) ? 0 : x << y; break;
    case ExprKind::kLShr: out = (y >= w) ? 0 : x >> y; break;
    case ExprKind::kAShr:
      out = (y >= w) ? static_cast<std::uint64_t>(sx < 0 ? -1 : 0)
                     : static_cast<std::uint64_t>(sx >> y);
      break;
    case ExprKind::kEq: out = (x == y); break;
    case ExprKind::kUlt: out = (x < y); break;
    case ExprKind::kUle: out = (x <= y); break;
    case ExprKind::kSlt: out = (sx < sy); break;
    case ExprKind::kSle: out = (sx <= sy); break;
    default: return false;
  }
  return true;
}

bool is_commutative(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd:
    case ExprKind::kMul:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kEq:
      return true;
    default:
      return false;
  }
}

ExprRef mk_binop(ExprKind kind, ExprRef a, ExprRef b) {
  assert(a->width() == b->width());
  const unsigned operand_w = a->width();
  const bool is_cmp = kind == ExprKind::kEq || kind == ExprKind::kUlt ||
                      kind == ExprKind::kUle || kind == ExprKind::kSlt ||
                      kind == ExprKind::kSle;
  const unsigned result_w = is_cmp ? 1 : operand_w;
  std::uint64_t folded;
  if (fold_binop(kind, a, b, folded))
    return mk_const(truncate_to_width(folded, result_w), result_w);
  // Canonicalize commutative operators: constant operand on the right,
  // otherwise order by hash so (a op b) and (b op a) intern identically.
  if (is_commutative(kind)) {
    if (a->is_constant() || (!b->is_constant() && a->hash() > b->hash()))
      std::swap(a, b);
  }
  return intern(kind, result_w, 0, nullptr, {std::move(a), std::move(b)});
}

}  // namespace

ExprRef mk_add(ExprRef a, ExprRef b) {
  if (a->is_constant() && a->constant_value() == 0) return b;
  if (b->is_constant() && b->constant_value() == 0) return a;
  return mk_binop(ExprKind::kAdd, std::move(a), std::move(b));
}

ExprRef mk_sub(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 0) return a;
  if (expr_equal(a, b)) return mk_const(0, a->width());
  return mk_binop(ExprKind::kSub, std::move(a), std::move(b));
}

ExprRef mk_mul(ExprRef a, ExprRef b) {
  if (a->is_constant()) std::swap(a, b);
  if (b->is_constant()) {
    if (b->constant_value() == 0) return b;
    if (b->constant_value() == 1) return a;
  }
  return mk_binop(ExprKind::kMul, std::move(a), std::move(b));
}

ExprRef mk_udiv(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 1) return a;
  return mk_binop(ExprKind::kUDiv, std::move(a), std::move(b));
}

ExprRef mk_sdiv(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 1) return a;
  return mk_binop(ExprKind::kSDiv, std::move(a), std::move(b));
}

ExprRef mk_urem(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 1)
    return mk_const(0, a->width());
  return mk_binop(ExprKind::kURem, std::move(a), std::move(b));
}

ExprRef mk_srem(ExprRef a, ExprRef b) {
  return mk_binop(ExprKind::kSRem, std::move(a), std::move(b));
}

ExprRef mk_and(ExprRef a, ExprRef b) {
  if (a->is_constant()) std::swap(a, b);
  if (b->is_constant()) {
    if (b->constant_value() == 0) return b;
    if (b->constant_value() == truncate_to_width(~std::uint64_t{0}, b->width()))
      return a;
  }
  if (expr_equal(a, b)) return a;
  return mk_binop(ExprKind::kAnd, std::move(a), std::move(b));
}

ExprRef mk_or(ExprRef a, ExprRef b) {
  if (a->is_constant()) std::swap(a, b);
  if (b->is_constant()) {
    if (b->constant_value() == 0) return a;
    if (b->constant_value() == truncate_to_width(~std::uint64_t{0}, b->width()))
      return b;
  }
  if (expr_equal(a, b)) return a;
  return mk_binop(ExprKind::kOr, std::move(a), std::move(b));
}

ExprRef mk_xor(ExprRef a, ExprRef b) {
  if (a->is_constant()) std::swap(a, b);
  if (b->is_constant() && b->constant_value() == 0) return a;
  if (expr_equal(a, b)) return mk_const(0, a->width());
  return mk_binop(ExprKind::kXor, std::move(a), std::move(b));
}

ExprRef mk_shl(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 0) return a;
  return mk_binop(ExprKind::kShl, std::move(a), std::move(b));
}

ExprRef mk_lshr(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 0) return a;
  return mk_binop(ExprKind::kLShr, std::move(a), std::move(b));
}

ExprRef mk_ashr(ExprRef a, ExprRef b) {
  if (b->is_constant() && b->constant_value() == 0) return a;
  return mk_binop(ExprKind::kAShr, std::move(a), std::move(b));
}

ExprRef mk_eq(ExprRef a, ExprRef b) {
  if (expr_equal(a, b)) return mk_bool(true);
  // Eq(x, true/false) on width-1 collapses to x / not x.
  if (a->width() == 1) {
    if (a->is_true()) return b;
    if (a->is_false()) return mk_lnot(b);
    if (b->is_true()) return a;
    if (b->is_false()) return mk_lnot(a);
  }
  return mk_binop(ExprKind::kEq, std::move(a), std::move(b));
}

ExprRef mk_ne(ExprRef a, ExprRef b) { return mk_lnot(mk_eq(std::move(a), std::move(b))); }

ExprRef mk_ult(ExprRef a, ExprRef b) {
  if (expr_equal(a, b)) return mk_bool(false);
  if (b->is_constant() && b->constant_value() == 0) return mk_bool(false);
  return mk_binop(ExprKind::kUlt, std::move(a), std::move(b));
}

ExprRef mk_ule(ExprRef a, ExprRef b) {
  if (expr_equal(a, b)) return mk_bool(true);
  if (a->is_constant() && a->constant_value() == 0) return mk_bool(true);
  return mk_binop(ExprKind::kUle, std::move(a), std::move(b));
}

ExprRef mk_ugt(ExprRef a, ExprRef b) { return mk_ult(std::move(b), std::move(a)); }
ExprRef mk_uge(ExprRef a, ExprRef b) { return mk_ule(std::move(b), std::move(a)); }

ExprRef mk_slt(ExprRef a, ExprRef b) {
  if (expr_equal(a, b)) return mk_bool(false);
  return mk_binop(ExprKind::kSlt, std::move(a), std::move(b));
}

ExprRef mk_sle(ExprRef a, ExprRef b) {
  if (expr_equal(a, b)) return mk_bool(true);
  return mk_binop(ExprKind::kSle, std::move(a), std::move(b));
}

ExprRef mk_sgt(ExprRef a, ExprRef b) { return mk_slt(std::move(b), std::move(a)); }
ExprRef mk_sge(ExprRef a, ExprRef b) { return mk_sle(std::move(b), std::move(a)); }

ExprRef mk_lnot(ExprRef e) {
  assert(e->width() == 1);
  if (e->is_constant()) return mk_bool(e->constant_value() == 0);
  // De-double-negate via Eq(e, false) normal form: Not over width-1 is Xor 1.
  if (e->kind() == ExprKind::kXor && e->kid(1)->is_true()) return e->kid(0);
  // Invert comparisons directly where an inverse kind exists.
  switch (e->kind()) {
    case ExprKind::kUlt: return mk_ule(e->kid(1), e->kid(0));
    case ExprKind::kUle: return mk_ult(e->kid(1), e->kid(0));
    case ExprKind::kSlt: return mk_sle(e->kid(1), e->kid(0));
    case ExprKind::kSle: return mk_slt(e->kid(1), e->kid(0));
    default: break;
  }
  return mk_binop(ExprKind::kXor, std::move(e), mk_bool(true));
}

ExprRef mk_land(ExprRef a, ExprRef b) {
  assert(a->width() == 1 && b->width() == 1);
  return mk_and(std::move(a), std::move(b));
}

ExprRef mk_lor(ExprRef a, ExprRef b) {
  assert(a->width() == 1 && b->width() == 1);
  return mk_or(std::move(a), std::move(b));
}

// --- Traversals -----------------------------------------------------------

void collect_reads(const ExprRef& e, std::vector<ReadSite>& out) {
  // Iterative: chains can be deeper than the C++ stack allows.
  std::unordered_set<const Expr*> seen;
  std::vector<const Expr*> stack{e.get()};
  while (!stack.empty()) {
    const Expr* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    if (node->kind() == ExprKind::kRead) {
      out.push_back(ReadSite{node->array(), node->read_index()});
      continue;
    }
    for (std::size_t i = 0; i < node->num_kids(); ++i)
      stack.push_back(node->kid(i).get());
  }
}

const std::vector<ReadSite>& cached_reads(const ExprRef& e) {
  // Thread-local like the interner: keyed by node pointers, which are only
  // meaningful within the thread that interned them.
  thread_local auto* memo =
      new std::unordered_map<const Expr*, std::vector<ReadSite>>();
  auto it = memo->find(e.get());
  if (it != memo->end()) return it->second;
  std::vector<ReadSite> reads;
  collect_reads(e, reads);
  return memo->emplace(e.get(), std::move(reads)).first->second;
}

std::size_t expr_dag_size(const ExprRef& e) {
  std::unordered_set<const Expr*> seen;
  std::vector<const Expr*> stack{e.get()};
  while (!stack.empty()) {
    const Expr* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    for (std::size_t i = 0; i < node->num_kids(); ++i)
      stack.push_back(node->kid(i).get());
  }
  return seen.size();
}

std::string Expr::to_string() const {
  std::ostringstream out;
  switch (kind_) {
    case ExprKind::kConstant:
      out << value_ << ":w" << width_;
      break;
    case ExprKind::kRead:
      out << "(Read " << array_->name() << ' ' << value_ << ')';
      break;
    case ExprKind::kExtract:
      out << "(Extract w" << width_ << " off" << value_ << ' '
          << kids_[0]->to_string() << ')';
      break;
    default: {
      out << '(' << expr_kind_name(kind_) << " w" << width_;
      for (const auto& k : kids_) out << ' ' << k->to_string();
      out << ')';
      break;
    }
  }
  return out.str();
}

}  // namespace pbse
