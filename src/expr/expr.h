// Symbolic bitvector expressions — the analog of KLEE's Expr library.
//
// Expressions are immutable, hash-consed DAG nodes over:
//   * constants of 1..64 bits,
//   * byte reads from named symbolic arrays (the symbolic input file),
//   * the usual arithmetic / bitwise / comparison / cast operators.
//
// Hash-consing makes structural equality a pointer comparison, which the
// solver caches rely on. Construction performs constant folding and a set
// of local simplifications, so the engine can build expressions naively.
//
// The interning table is THREAD-LOCAL: expressions built on different
// threads never alias, so independent campaigns can run on worker threads
// without locks. A single campaign (and all expressions it compares by
// pointer) must stay on one thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pbse {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// A named symbolic byte array, e.g. the symbolic input file "file".
/// Arrays are compared by identity; create one per symbolic object.
class Array {
 public:
  Array(std::string name, std::uint32_t size)
      : name_(std::move(name)), size_(size) {}

  const std::string& name() const { return name_; }
  std::uint32_t size() const { return size_; }

 private:
  std::string name_;
  std::uint32_t size_;
};

using ArrayRef = std::shared_ptr<const Array>;

enum class ExprKind : std::uint8_t {
  kConstant,
  kRead,     // byte read from a symbolic array at a concrete index
  kSelect,   // ite(cond, then, else)
  kConcat,   // high ++ low
  kExtract,  // bits [offset, offset+width) of the operand
  kZExt,
  kSExt,
  kNot,      // bitwise not
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  kEq,   // width-1 result
  kUlt,
  kUle,
  kSlt,
  kSle,
};

/// Returns a printable operator name ("Add", "Eq", ...).
const char* expr_kind_name(ExprKind kind);

/// Immutable expression node. Always held via ExprRef; construct through
/// the mk_* builder functions below (which fold and intern).
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  /// Bit width of the value this expression denotes (1..64).
  unsigned width() const { return width_; }

  bool is_constant() const { return kind_ == ExprKind::kConstant; }
  /// Constant value, valid only when is_constant(). Zero-extended to 64 bits.
  std::uint64_t constant_value() const { return value_; }
  /// True if this is the width-1 constant 1 / 0.
  bool is_true() const { return is_constant() && width_ == 1 && value_ == 1; }
  bool is_false() const { return is_constant() && width_ == 1 && value_ == 0; }

  /// Read node accessors (valid only when kind() == kRead).
  const ArrayRef& array() const { return array_; }
  std::uint32_t read_index() const { return static_cast<std::uint32_t>(value_); }

  /// Extract offset (valid only when kind() == kExtract).
  unsigned extract_offset() const { return static_cast<unsigned>(value_); }

  std::size_t num_kids() const { return kids_.size(); }
  const ExprRef& kid(std::size_t i) const { return kids_[i]; }

  /// Structural hash, cached at construction.
  std::size_t hash() const { return hash_; }

  /// Renders the expression as an s-expression, e.g. "(Add w8 (Read file 3) 1)".
  std::string to_string() const;

  // Internal: used by the interner. Prefer the mk_* functions.
  Expr(ExprKind kind, unsigned width, std::uint64_t value, ArrayRef array,
       std::vector<ExprRef> kids);

 private:
  ExprKind kind_;
  unsigned width_;
  std::uint64_t value_;  // constant value / read index / extract offset
  ArrayRef array_;
  std::vector<ExprRef> kids_;
  std::size_t hash_;
};

/// True if `a` and `b` are structurally identical (pointer equality thanks
/// to hash-consing, with a structural fallback).
bool expr_equal(const ExprRef& a, const ExprRef& b);

// --- Width arithmetic helpers -------------------------------------------

/// Masks `v` down to `width` bits.
std::uint64_t truncate_to_width(std::uint64_t v, unsigned width);
/// Interprets the low `width` bits of `v` as signed and sign-extends to 64.
std::int64_t sign_extend(std::uint64_t v, unsigned width);

// --- Builders ------------------------------------------------------------
// All builders constant-fold when possible and apply local rewrites.

ExprRef mk_const(std::uint64_t value, unsigned width);
ExprRef mk_bool(bool v);
/// One byte (width 8) read from `array` at concrete index `index`.
ExprRef mk_read(ArrayRef array, std::uint32_t index);
ExprRef mk_select(ExprRef cond, ExprRef then_e, ExprRef else_e);
/// Concatenation: result width = high.width + low.width (<= 64).
ExprRef mk_concat(ExprRef high, ExprRef low);
ExprRef mk_extract(ExprRef e, unsigned offset, unsigned width);
ExprRef mk_zext(ExprRef e, unsigned width);
ExprRef mk_sext(ExprRef e, unsigned width);
ExprRef mk_not(ExprRef e);

ExprRef mk_add(ExprRef a, ExprRef b);
ExprRef mk_sub(ExprRef a, ExprRef b);
ExprRef mk_mul(ExprRef a, ExprRef b);
/// Unsigned/signed division and remainder. Division by constant zero is the
/// caller's responsibility to guard (the VM forks a div-by-zero check
/// first); folding x/0 yields 0 to keep the evaluator total.
ExprRef mk_udiv(ExprRef a, ExprRef b);
ExprRef mk_sdiv(ExprRef a, ExprRef b);
ExprRef mk_urem(ExprRef a, ExprRef b);
ExprRef mk_srem(ExprRef a, ExprRef b);
ExprRef mk_and(ExprRef a, ExprRef b);
ExprRef mk_or(ExprRef a, ExprRef b);
ExprRef mk_xor(ExprRef a, ExprRef b);
ExprRef mk_shl(ExprRef a, ExprRef b);
ExprRef mk_lshr(ExprRef a, ExprRef b);
ExprRef mk_ashr(ExprRef a, ExprRef b);

// Comparisons produce width-1 expressions.
ExprRef mk_eq(ExprRef a, ExprRef b);
ExprRef mk_ne(ExprRef a, ExprRef b);
ExprRef mk_ult(ExprRef a, ExprRef b);
ExprRef mk_ule(ExprRef a, ExprRef b);
ExprRef mk_ugt(ExprRef a, ExprRef b);
ExprRef mk_uge(ExprRef a, ExprRef b);
ExprRef mk_slt(ExprRef a, ExprRef b);
ExprRef mk_sle(ExprRef a, ExprRef b);
ExprRef mk_sgt(ExprRef a, ExprRef b);
ExprRef mk_sge(ExprRef a, ExprRef b);

/// Logical negation of a width-1 expression.
ExprRef mk_lnot(ExprRef e);
/// Logical and/or of width-1 expressions (no short-circuit semantics here;
/// the frontend lowers && / || to control flow).
ExprRef mk_land(ExprRef a, ExprRef b);
ExprRef mk_lor(ExprRef a, ExprRef b);

/// Interns a node with EXACTLY the given shape — no folding, no rewrites.
/// For deserialization only (src/serialize): a snapshotted node is already
/// in builder normal form, and re-interning its exact (kind, width, value,
/// array, kids) tuple is the only construction guaranteed to reproduce it
/// bit-for-bit regardless of which builder rewrite originally emitted it.
/// Engine code must keep using the mk_* builders.
ExprRef mk_raw(ExprKind kind, unsigned width, std::uint64_t value,
               ArrayRef array, std::vector<ExprRef> kids);

/// Collects the distinct (array, index) byte reads appearing in `e`,
/// appending to `out` (deduplicated). Used by the solver's independence
/// slicing and the backtracking search.
struct ReadSite {
  ArrayRef array;
  std::uint32_t index;
};
void collect_reads(const ExprRef& e, std::vector<ReadSite>& out);

/// Memoized variant: the deduplicated read sites of `e`, cached
/// process-globally by node identity (hash-consing keeps nodes alive).
const std::vector<ReadSite>& cached_reads(const ExprRef& e);

/// Number of nodes in the DAG (each shared node counted once).
std::size_t expr_dag_size(const ExprRef& e);

/// Interner statistics (for tests / benches).
std::size_t intern_table_size();

}  // namespace pbse
