#include "ir/builder.h"

namespace pbse::ir {

Instruction& Builder::append(Instruction inst) {
  inst.line = line_;
  auto& insts = fn_.block(bb_).insts;
  insts.push_back(std::move(inst));
  return insts.back();
}

bool Builder::block_terminated() const {
  const auto& insts = fn_.block(bb_).insts;
  return !insts.empty() && insts.back().is_terminator();
}

Operand Builder::emit_alloca(std::uint64_t size) {
  Instruction inst;
  inst.op = Opcode::kAlloca;
  inst.alloca_size = size;
  inst.result = fn_.new_reg(Type::ptr_ty());
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::ptr_ty());
}

Operand Builder::emit_load(Operand ptr, unsigned width) {
  assert(ptr.type.is_ptr());
  Instruction inst;
  inst.op = Opcode::kLoad;
  inst.width = width;
  inst.ops = {ptr};
  inst.result = fn_.new_reg(Type::int_ty(width));
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::int_ty(width));
}

void Builder::emit_store(Operand ptr, Operand value) {
  assert(ptr.type.is_ptr() && value.type.is_int());
  Instruction inst;
  inst.op = Opcode::kStore;
  inst.ops = {ptr, value};
  append(std::move(inst));
}

Operand Builder::emit_gep(Operand ptr, Operand offset_bytes) {
  assert(ptr.type.is_ptr() && offset_bytes.type.is_int());
  Instruction inst;
  inst.op = Opcode::kGep;
  inst.ops = {ptr, offset_bytes};
  inst.result = fn_.new_reg(Type::ptr_ty());
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::ptr_ty());
}

Operand Builder::emit_bin(BinOp op, Operand a, Operand b) {
  assert(a.type.is_int() && a.type == b.type);
  Instruction inst;
  inst.op = Opcode::kBin;
  inst.bin = op;
  inst.width = a.type.width;
  inst.ops = {a, b};
  inst.result = fn_.new_reg(a.type);
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, a.type);
}

Operand Builder::emit_cmp(CmpPred pred, Operand a, Operand b) {
  assert(a.type == b.type);
  Instruction inst;
  inst.op = Opcode::kCmp;
  inst.pred = pred;
  inst.width = 1;
  inst.ops = {a, b};
  inst.result = fn_.new_reg(Type::int_ty(1));
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::int_ty(1));
}

Operand Builder::emit_cast(CastOp op, Operand v, unsigned width) {
  assert(v.type.is_int());
  if (v.type.width == width) return v;
  Instruction inst;
  inst.op = Opcode::kCast;
  inst.cast = op;
  inst.width = width;
  inst.ops = {v};
  inst.result = fn_.new_reg(Type::int_ty(width));
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::int_ty(width));
}

Operand Builder::emit_select(Operand cond, Operand a, Operand b) {
  assert(cond.type == Type::int_ty(1) && a.type == b.type);
  Instruction inst;
  inst.op = Opcode::kSelect;
  inst.width = a.type.width;
  inst.ops = {cond, a, b};
  inst.result = fn_.new_reg(a.type);
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, a.type);
}

void Builder::emit_br(Operand cond, std::uint32_t then_bb,
                      std::uint32_t else_bb) {
  assert(cond.type == Type::int_ty(1));
  Instruction inst;
  inst.op = Opcode::kBr;
  inst.ops = {cond};
  inst.bb_then = then_bb;
  inst.bb_else = else_bb;
  append(std::move(inst));
}

void Builder::emit_jmp(std::uint32_t target) {
  Instruction inst;
  inst.op = Opcode::kJmp;
  inst.bb_then = target;
  append(std::move(inst));
}

Operand Builder::emit_call(std::uint32_t callee,
                           std::initializer_list<Operand> args) {
  return emit_call(callee, std::vector<Operand>(args));
}

Operand Builder::emit_call(std::uint32_t callee,
                           const std::vector<Operand>& args) {
  const Function* target = module_.function(callee);
  assert(target->params().size() == args.size());
  Instruction inst;
  inst.op = Opcode::kCall;
  inst.callee = callee;
  inst.ops = args;
  const Type ret = target->ret_type();
  if (!ret.is_void()) {
    inst.width = ret.width;
    inst.result = fn_.new_reg(ret);
  }
  append(std::move(inst));
  if (ret.is_void()) return Operand::none();
  return Operand::reg_of(fn_.num_regs() - 1, ret);
}

void Builder::emit_ret(Operand value) {
  Instruction inst;
  inst.op = Opcode::kRet;
  inst.ops = {value};
  append(std::move(inst));
}

void Builder::emit_ret_void() {
  Instruction inst;
  inst.op = Opcode::kRet;
  append(std::move(inst));
}

void Builder::emit_unreachable() {
  Instruction inst;
  inst.op = Opcode::kUnreachable;
  append(std::move(inst));
}

Operand Builder::emit_intrinsic(Intrinsic which,
                                const std::vector<Operand>& args,
                                unsigned result_width) {
  Instruction inst;
  inst.op = Opcode::kIntrinsic;
  inst.intrinsic = which;
  inst.ops = args;
  if (result_width > 0) {
    inst.width = result_width;
    inst.result = fn_.new_reg(Type::int_ty(result_width));
  }
  append(std::move(inst));
  if (result_width == 0) return Operand::none();
  return Operand::reg_of(fn_.num_regs() - 1, Type::int_ty(result_width));
}

Operand Builder::emit_slot_get(std::uint32_t slot) {
  assert(slot < fn_.num_slots());
  Instruction inst;
  inst.op = Opcode::kSlotGet;
  inst.slot = slot;
  inst.result = fn_.new_reg(Type::ptr_ty());
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::ptr_ty());
}

void Builder::emit_slot_set(std::uint32_t slot, Operand value) {
  assert(slot < fn_.num_slots() && value.type.is_ptr());
  Instruction inst;
  inst.op = Opcode::kSlotSet;
  inst.slot = slot;
  inst.ops = {value};
  append(std::move(inst));
}

Operand Builder::emit_global_addr(std::uint32_t global_index) {
  assert(global_index < module_.num_globals());
  Instruction inst;
  inst.op = Opcode::kGlobalAddr;
  inst.slot = global_index;
  inst.result = fn_.new_reg(Type::ptr_ty());
  append(std::move(inst));
  return Operand::reg_of(fn_.num_regs() - 1, Type::ptr_ty());
}

}  // namespace pbse::ir
