// Instruction-emission helper used by the MiniC code generator and by
// tests that hand-construct IR.
#pragma once

#include <cassert>
#include <initializer_list>

#include "ir/ir.h"

namespace pbse::ir {

/// Appends instructions to a current insertion block, allocating result
/// registers and checking operand types as it goes.
class Builder {
 public:
  Builder(Module& module, Function& fn) : module_(module), fn_(fn) {}

  Module& module() { return module_; }
  Function& fn() { return fn_; }

  void set_insert(std::uint32_t bb) { bb_ = bb; }
  std::uint32_t insert_block() const { return bb_; }
  /// Sets the source line attached to subsequently emitted instructions.
  void set_line(std::uint32_t line) { line_ = line; }

  /// True if the current block already ends in a terminator (emission after
  /// that would be dead; codegen uses this to skip).
  bool block_terminated() const;

  Operand emit_alloca(std::uint64_t size);
  Operand emit_load(Operand ptr, unsigned width);
  void emit_store(Operand ptr, Operand value);
  Operand emit_gep(Operand ptr, Operand offset_bytes);
  Operand emit_bin(BinOp op, Operand a, Operand b);
  Operand emit_cmp(CmpPred pred, Operand a, Operand b);
  Operand emit_cast(CastOp op, Operand v, unsigned width);
  Operand emit_select(Operand cond, Operand a, Operand b);
  void emit_br(Operand cond, std::uint32_t then_bb, std::uint32_t else_bb);
  void emit_jmp(std::uint32_t target);
  /// Emits a call; returns the result operand (none for void callees).
  Operand emit_call(std::uint32_t callee, std::initializer_list<Operand> args);
  Operand emit_call(std::uint32_t callee, const std::vector<Operand>& args);
  void emit_ret(Operand value);
  void emit_ret_void();
  void emit_unreachable();
  /// Emits an intrinsic; returns result operand for value-producing ones.
  Operand emit_intrinsic(Intrinsic which, const std::vector<Operand>& args,
                         unsigned result_width = 0);
  Operand emit_slot_get(std::uint32_t slot);
  void emit_slot_set(std::uint32_t slot, Operand value);
  Operand emit_global_addr(std::uint32_t global_index);

  /// Convenience: integer constant operand.
  static Operand c(std::uint64_t v, unsigned width) {
    return Operand::constant(v, width);
  }

 private:
  Instruction& append(Instruction inst);

  Module& module_;
  Function& fn_;
  std::uint32_t bb_ = 0;
  std::uint32_t line_ = 0;
};

}  // namespace pbse::ir
