#include "ir/cfg.h"

#include <deque>

namespace pbse::ir {

std::vector<std::uint32_t> block_successors(const Function& fn,
                                            std::uint32_t bb) {
  const auto& insts = fn.block(bb).insts;
  if (insts.empty()) return {};
  const Instruction& term = insts.back();
  switch (term.op) {
    case Opcode::kBr:
      if (term.bb_then == term.bb_else) return {term.bb_then};
      return {term.bb_then, term.bb_else};
    case Opcode::kJmp:
      return {term.bb_then};
    default:
      return {};
  }
}

BlockGraph::BlockGraph(const Module& module)
    : forward_(module.total_blocks()), reverse_(module.total_blocks()) {
  auto add_edge = [this](std::uint32_t from, std::uint32_t to) {
    forward_[from].push_back(to);
    reverse_[to].push_back(from);
  };

  for (std::uint32_t fi = 0; fi < module.num_functions(); ++fi) {
    const Function& fn = *module.function(fi);
    // Exit blocks of each function, for return edges.
    std::vector<std::uint32_t> exits;
    for (std::uint32_t bi = 0; bi < fn.num_blocks(); ++bi) {
      const auto& insts = fn.block(bi).insts;
      if (!insts.empty() && insts.back().op == Opcode::kRet)
        exits.push_back(fn.block(bi).global_id);
    }

    for (std::uint32_t bi = 0; bi < fn.num_blocks(); ++bi) {
      const std::uint32_t from = fn.block(bi).global_id;
      for (std::uint32_t succ : block_successors(fn, bi))
        add_edge(from, fn.block(succ).global_id);
      // Call edges.
      for (const Instruction& inst : fn.block(bi).insts) {
        if (inst.op != Opcode::kCall) continue;
        const Function& callee = *module.function(inst.callee);
        if (callee.num_blocks() == 0) continue;
        add_edge(from, callee.block(0).global_id);
        for (std::uint32_t ci = 0; ci < callee.num_blocks(); ++ci) {
          const auto& cinsts = callee.block(ci).insts;
          if (!cinsts.empty() && cinsts.back().op == Opcode::kRet)
            add_edge(callee.block(ci).global_id, from);
        }
      }
    }
  }
}

void DistanceToUncovered::recompute(const std::vector<bool>& covered) {
  std::fill(distance_.begin(), distance_.end(), kUnreachable);
  // Multi-source BFS over reverse edges: distance 0 at uncovered blocks.
  std::deque<std::uint32_t> queue;
  for (std::uint32_t b = 0; b < graph_.num_blocks(); ++b) {
    if (b >= covered.size() || !covered[b]) {
      distance_[b] = 0;
      queue.push_back(b);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t b = queue.front();
    queue.pop_front();
    for (std::uint32_t pred : graph_.predecessors(b)) {
      if (distance_[pred] != kUnreachable) continue;
      distance_[pred] = distance_[b] + 1;
      queue.push_back(pred);
    }
  }
}

}  // namespace pbse::ir
