// Module-wide control-flow utilities: successor extraction and the
// distance-to-uncovered map backing the md2u and covnew searchers.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.h"

namespace pbse::ir {

/// Intra-function successor block ids of `bb` (from its terminator).
std::vector<std::uint32_t> block_successors(const Function& fn,
                                            std::uint32_t bb);

/// Interprocedural block graph over module-wide (global) block ids.
/// Edges: intra-function successors, call-site block -> callee entry, and
/// callee exit blocks -> call-site block (the standard conservative
/// approximation KLEE's StatsTracker uses for its distance metric).
class BlockGraph {
 public:
  explicit BlockGraph(const Module& module);

  const std::vector<std::uint32_t>& successors(std::uint32_t global_bb) const {
    return forward_[global_bb];
  }
  const std::vector<std::uint32_t>& predecessors(std::uint32_t global_bb) const {
    return reverse_[global_bb];
  }
  std::uint32_t num_blocks() const {
    return static_cast<std::uint32_t>(forward_.size());
  }

 private:
  std::vector<std::vector<std::uint32_t>> forward_;
  std::vector<std::vector<std::uint32_t>> reverse_;
};

/// Minimum forward-path distance (in blocks) from every block to the
/// nearest uncovered block. Recomputed lazily when coverage changes.
class DistanceToUncovered {
 public:
  explicit DistanceToUncovered(const BlockGraph& graph)
      : graph_(graph),
        distance_(graph.num_blocks(), kUnreachable) {}

  /// Recomputes distances given per-global-block coverage flags.
  void recompute(const std::vector<bool>& covered);

  /// Distance of `global_bb`; kUnreachable if no uncovered block is
  /// forward-reachable.
  std::uint32_t distance(std::uint32_t global_bb) const {
    return distance_[global_bb];
  }

  static constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

 private:
  const BlockGraph& graph_;
  std::vector<std::uint32_t> distance_;
};

}  // namespace pbse::ir
