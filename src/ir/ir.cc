#include "ir/ir.h"

#include <cassert>

namespace pbse::ir {

std::string Type::to_string() const {
  switch (kind) {
    case Kind::kInt: return "i" + std::to_string(width);
    case Kind::kPtr: return "ptr";
    case Kind::kVoid: return "void";
  }
  return "?";
}

Operand Operand::constant(std::uint64_t v, unsigned width) {
  Operand o;
  o.kind = Kind::kConst;
  o.type = Type::int_ty(width);
  o.cval = width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
  return o;
}

Operand Operand::reg_of(std::uint32_t reg, Type type) {
  Operand o;
  o.kind = Kind::kReg;
  o.type = type;
  o.reg = reg;
  return o;
}

std::uint32_t Function::add_block(std::string label) {
  BasicBlock bb;
  bb.id = static_cast<std::uint32_t>(blocks_.size());
  bb.label = std::move(label);
  blocks_.push_back(std::move(bb));
  return blocks_.back().id;
}

std::uint32_t Module::add_function(std::unique_ptr<Function> fn) {
  assert(!finalized_);
  const auto index = static_cast<std::uint32_t>(functions_.size());
  fn->set_index(index);
  function_index_[fn->name()] = index;
  functions_.push_back(std::move(fn));
  return index;
}

Function* Module::function_by_name(const std::string& name) {
  auto it = function_index_.find(name);
  return it == function_index_.end() ? nullptr : functions_[it->second].get();
}

const Function* Module::function_by_name(const std::string& name) const {
  auto it = function_index_.find(name);
  return it == function_index_.end() ? nullptr : functions_[it->second].get();
}

std::uint32_t Module::add_global(Global g) {
  assert(!finalized_);
  const auto index = static_cast<std::uint32_t>(globals_.size());
  g.init.resize(g.size, 0);
  global_index_[g.name] = index;
  globals_.push_back(std::move(g));
  return index;
}

std::uint32_t Module::global_index(const std::string& name) const {
  auto it = global_index_.find(name);
  return it == global_index_.end() ? kNoFunc : it->second;
}

void Module::finalize() {
  assert(!finalized_);
  std::uint32_t next = 0;
  for (std::uint32_t fi = 0; fi < functions_.size(); ++fi) {
    Function& fn = *functions_[fi];
    for (std::uint32_t bi = 0; bi < fn.num_blocks(); ++bi) {
      fn.block(bi).global_id = next++;
      block_locations_.emplace_back(fi, bi);
    }
  }
  total_blocks_ = next;
  finalized_ = true;
}

}  // namespace pbse::ir
