// Mini-IR: a compact, typed register IR that stands in for LLVM bitcode.
//
// Programs under test are compiled (by src/lang) or hand-built (by
// ir::Builder) into this IR and interpreted by the VM — concretely,
// symbolically, or in concolic lockstep.
//
// Shape: functions of basic blocks of instructions; infinite virtual
// registers with single assignment; mutable variables live in memory via
// Alloca/Load/Store (no phi nodes needed). Pointers are first-class values
// (object-id + byte offset in the VM), so every memory access is
// bounds-checkable, exactly as in KLEE's memory model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pbse::ir {

inline constexpr std::uint32_t kNoReg = ~std::uint32_t{0};
inline constexpr std::uint32_t kNoFunc = ~std::uint32_t{0};
inline constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

/// Value type: an integer of 1..64 bits, a byte pointer, or void (calls).
struct Type {
  enum class Kind : std::uint8_t { kInt, kPtr, kVoid };
  Kind kind = Kind::kVoid;
  unsigned width = 0;  // bits; meaningful for kInt only

  static Type int_ty(unsigned width) { return {Kind::kInt, width}; }
  static Type ptr_ty() { return {Kind::kPtr, 64}; }
  static Type void_ty() { return {Kind::kVoid, 0}; }

  bool is_int() const { return kind == Kind::kInt; }
  bool is_ptr() const { return kind == Kind::kPtr; }
  bool is_void() const { return kind == Kind::kVoid; }
  bool operator==(const Type& o) const {
    return kind == o.kind && (kind != Kind::kInt || width == o.width);
  }
  std::string to_string() const;
};

enum class Opcode : std::uint8_t {
  kAlloca,   // result = new object of alloca_size bytes (zero-filled)
  kLoad,     // result = little-endian load of `width` bits at ops[0]
  kStore,    // store ops[1] (int) at pointer ops[0]
  kGep,      // result = ops[0] + ops[1] bytes (pointer arithmetic)
  kBin,      // result = ops[0] <bin> ops[1]
  kCmp,      // result (i1) = ops[0] <pred> ops[1]
  kCast,     // result = cast(ops[0]) to `width`
  kSelect,   // result = ops[0] ? ops[1] : ops[2]
  kBr,       // conditional branch on ops[0] to bb_then / bb_else
  kJmp,      // unconditional jump to bb_then
  kCall,     // result = callee(ops...)
  kRet,      // return ops[0] (if any)
  kIntrinsic,  // engine intrinsic, see Intrinsic
  kSlotGet,  // result = value of pointer slot `slot`
  kSlotSet,  // pointer slot `slot` = ops[0]
  kGlobalAddr,  // result = pointer to module global with index `slot`
  kUnreachable,
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kUDiv, kSDiv, kURem, kSRem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
};

enum class CmpPred : std::uint8_t {
  kEq, kNe, kUlt, kUle, kUgt, kUge, kSlt, kSle, kSgt, kSge,
};

enum class CastOp : std::uint8_t { kZExt, kSExt, kTrunc };

/// Engine intrinsics callable from target programs.
enum class Intrinsic : std::uint8_t {
  kOut,        // out(value): observable output sink (charged, not stored)
  kAssert,     // pbse_assert(cond): reports an assertion-failure bug if 0
  kAbort,      // abort(): terminates the path as an error-free exit
  kCheckedAdd, // result = a + b, reports integer-overflow bug on wrap
  kCheckedMul, // result = a * b, reports integer-overflow bug on wrap
};

/// Instruction operand: a constant, a virtual register, or absent.
struct Operand {
  enum class Kind : std::uint8_t { kNone, kConst, kReg };
  Kind kind = Kind::kNone;
  Type type;
  std::uint64_t cval = 0;   // kConst payload
  std::uint32_t reg = kNoReg;  // kReg payload

  static Operand none() { return {}; }
  static Operand constant(std::uint64_t v, unsigned width);
  static Operand reg_of(std::uint32_t reg, Type type);
  bool is_const() const { return kind == Kind::kConst; }
  bool is_reg() const { return kind == Kind::kReg; }
};

struct Instruction {
  Opcode op = Opcode::kUnreachable;
  BinOp bin = BinOp::kAdd;
  CmpPred pred = CmpPred::kEq;
  CastOp cast = CastOp::kZExt;
  Intrinsic intrinsic = Intrinsic::kOut;
  unsigned width = 0;             // result width (kLoad/kBin/kCast/kSelect)
  std::uint32_t result = kNoReg;  // defined register, if any
  std::vector<Operand> ops;
  std::uint32_t bb_then = kNoBlock;  // kBr taken target / kJmp target
  std::uint32_t bb_else = kNoBlock;  // kBr fall-through target
  std::uint32_t callee = kNoFunc;    // kCall target (module function index)
  std::uint64_t alloca_size = 0;     // kAlloca byte size
  std::uint32_t slot = 0;            // kSlotGet/kSlotSet pointer-slot index
  std::uint32_t line = 0;            // source line for diagnostics

  bool is_terminator() const {
    return op == Opcode::kBr || op == Opcode::kJmp || op == Opcode::kRet ||
           op == Opcode::kUnreachable;
  }
};

struct BasicBlock {
  std::uint32_t id = kNoBlock;         // index within the function
  std::uint32_t global_id = kNoBlock;  // module-wide id (BBV coordinate)
  std::string label;
  std::vector<Instruction> insts;
};

class Function {
 public:
  Function(std::string name, std::vector<Type> params, Type ret)
      : name_(std::move(name)), params_(std::move(params)), ret_(ret) {}

  const std::string& name() const { return name_; }
  const std::vector<Type>& params() const { return params_; }
  Type ret_type() const { return ret_; }

  std::uint32_t add_block(std::string label);
  BasicBlock& block(std::uint32_t id) { return blocks_[id]; }
  const BasicBlock& block(std::uint32_t id) const { return blocks_[id]; }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::vector<BasicBlock>& blocks() { return blocks_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  /// Allocates a fresh virtual register of the given type.
  std::uint32_t new_reg(Type type) {
    reg_types_.push_back(type);
    return static_cast<std::uint32_t>(reg_types_.size() - 1);
  }
  std::size_t num_regs() const { return reg_types_.size(); }
  Type reg_type(std::uint32_t reg) const { return reg_types_[reg]; }
  /// Re-types an already-allocated register (ir::parse allocates registers
  /// on demand because textual block order differs from numbering order).
  void set_reg_type(std::uint32_t reg, Type type) { reg_types_[reg] = type; }

  /// Mutable pointer-typed local slots (MiniC pointer variables). Memory
  /// cells hold symbolic bytes, so pointer values — (object, offset) pairs
  /// in the VM — live in these dedicated frame slots instead.
  std::uint32_t new_slot() { return num_slots_++; }
  std::uint32_t num_slots() const { return num_slots_; }

  /// Module-assigned index (set by Module::add_function).
  std::uint32_t index() const { return index_; }
  void set_index(std::uint32_t i) { index_ = i; }

 private:
  std::string name_;
  std::vector<Type> params_;
  Type ret_;
  std::vector<BasicBlock> blocks_;
  std::vector<Type> reg_types_;
  std::uint32_t num_slots_ = 0;
  std::uint32_t index_ = kNoFunc;
};

/// A module-level named memory object with initial contents (e.g. constant
/// tables, fixed scratch buffers).
struct Global {
  std::string name;
  std::uint64_t size = 0;
  std::vector<std::uint8_t> init;  // zero-padded to `size`
  bool writable = true;
};

class Module {
 public:
  /// Adds a function; the module owns it. Returns its index.
  std::uint32_t add_function(std::unique_ptr<Function> fn);

  Function* function(std::uint32_t index) { return functions_[index].get(); }
  const Function* function(std::uint32_t index) const {
    return functions_[index].get();
  }
  Function* function_by_name(const std::string& name);
  const Function* function_by_name(const std::string& name) const;
  std::size_t num_functions() const { return functions_.size(); }

  std::uint32_t add_global(Global g);
  const Global& global(std::uint32_t index) const { return globals_[index]; }
  std::size_t num_globals() const { return globals_.size(); }
  /// Index of a global by name, or kNoFunc if absent.
  std::uint32_t global_index(const std::string& name) const;

  /// Assigns module-wide basic-block ids (the BBV coordinate space).
  /// Must be called after all functions are added, before execution.
  void finalize();
  bool finalized() const { return finalized_; }
  std::uint32_t total_blocks() const { return total_blocks_; }

  /// Maps a global BB id back to (function index, block index).
  std::pair<std::uint32_t, std::uint32_t> locate_block(
      std::uint32_t global_id) const {
    return block_locations_[global_id];
  }

 private:
  std::vector<std::unique_ptr<Function>> functions_;
  std::unordered_map<std::string, std::uint32_t> function_index_;
  std::vector<Global> globals_;
  std::unordered_map<std::string, std::uint32_t> global_index_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> block_locations_;
  std::uint32_t total_blocks_ = 0;
  bool finalized_ = false;
};

}  // namespace pbse::ir
