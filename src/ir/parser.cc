#include "ir/parser.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace pbse::ir {

namespace {

/// Line-oriented token cursor.
struct Cursor {
  std::string line;
  std::size_t pos = 0;
  std::uint32_t line_no = 0;

  void skip_ws() {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos])))
      ++pos;
  }
  bool done() {
    skip_ws();
    return pos >= line.size();
  }
  bool eat(const std::string& word) {
    skip_ws();
    if (line.compare(pos, word.size(), word) == 0) {
      pos += word.size();
      return true;
    }
    return false;
  }
  bool number(std::uint64_t& out) {
    skip_ws();
    if (pos >= line.size() || !std::isdigit(static_cast<unsigned char>(line[pos])))
      return false;
    out = 0;
    while (pos < line.size() && std::isdigit(static_cast<unsigned char>(line[pos])))
      out = out * 10 + static_cast<std::uint64_t>(line[pos++] - '0');
    return true;
  }
  std::string ident() {
    skip_ws();
    std::string word;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == '.' || line[pos] == '-'))
      word += line[pos++];
    return word;
  }
};

class Parser {
 public:
  Parser(const std::string& text, Module& module, std::string& error)
      : module_(module), error_(error) {
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      lines_.push_back(std::move(line));
    }
  }

  bool run() {
    if (!declare_pass()) return false;
    return body_pass();
  }

 private:
  bool fail(std::uint32_t line_no, const std::string& msg) {
    if (error_.empty())
      error_ = "line " + std::to_string(line_no + 1) + ": " + msg;
    return false;
  }

  static bool parse_type(Cursor& c, Type& out) {
    c.skip_ws();
    if (c.eat("void")) {
      out = Type::void_ty();
      return true;
    }
    if (c.eat("ptr")) {
      out = Type::ptr_ty();
      return true;
    }
    if (c.eat("i")) {
      std::uint64_t width = 0;
      if (!c.number(width) || width == 0 || width > 64) return false;
      out = Type::int_ty(static_cast<unsigned>(width));
      return true;
    }
    return false;
  }

  // --- pass 1: globals + function signatures -----------------------------

  bool declare_pass() {
    for (std::uint32_t i = 0; i < lines_.size(); ++i) {
      Cursor c{lines_[i], 0, i};
      if (c.done()) continue;
      if (c.eat("global")) {
        Global g;
        g.name = c.ident();
        if (g.name.empty()) return fail(i, "global needs a name");
        std::uint64_t size = 0;
        if (!c.eat("[") || !c.number(size) || !c.eat("]"))
          return fail(i, "global needs [size]");
        g.size = size;
        g.writable = !c.eat("const");
        if (c.eat("=")) {
          std::uint64_t byte = 0;
          while (c.number(byte))
            g.init.push_back(static_cast<std::uint8_t>(byte));
        }
        if (!c.done()) return fail(i, "trailing characters after global");
        module_.add_global(std::move(g));
        continue;
      }
      if (c.eat("fn")) {
        const std::string name = c.ident();
        if (name.empty() || !c.eat("("))
          return fail(i, "fn needs a name and parameter list");
        std::vector<Type> params;
        if (!c.eat(")")) {
          do {
            Type t;
            if (!parse_type(c, t) || t.is_void())
              return fail(i, "bad parameter type");
            params.push_back(t);
          } while (c.eat(","));
          if (!c.eat(")")) return fail(i, "expected ')'");
        }
        Type ret;
        if (!c.eat("->") || !parse_type(c, ret))
          return fail(i, "fn needs '-> <type>'");
        if (!c.eat("{")) return fail(i, "fn needs '{'");
        auto fn = std::make_unique<Function>(name, params, ret);
        for (const Type& p : params) fn->new_reg(p);
        fn_lines_.push_back(i);
        module_.add_function(std::move(fn));
      }
    }
    return true;
  }

  // --- operands ------------------------------------------------------------

  bool parse_operand(Cursor& c, Function& fn, Operand& out) {
    c.skip_ws();
    if (c.eat("none")) {
      out = Operand::none();
      return true;
    }
    if (c.eat("null")) {
      out.kind = Operand::Kind::kConst;
      out.type = Type::ptr_ty();
      out.cval = 0;
      return true;
    }
    if (c.eat("%")) {
      std::uint64_t reg = 0;
      if (!c.number(reg) || reg >= fn.num_regs()) return false;
      out = Operand::reg_of(static_cast<std::uint32_t>(reg),
                            fn.reg_type(static_cast<std::uint32_t>(reg)));
      return true;
    }
    std::uint64_t value = 0;
    if (!c.number(value)) return false;
    if (!c.eat(":i")) return false;
    std::uint64_t width = 0;
    if (!c.number(width) || width == 0 || width > 64) return false;
    out = Operand::constant(value, static_cast<unsigned>(width));
    return true;
  }

  /// "%N = " prefix. Register numbers are NOT textually ordered (the
  /// code generator emits nested blocks before loop-step blocks), so
  /// missing registers are allocated on demand with a placeholder type and
  /// re-typed when their definition is parsed.
  bool parse_result(Cursor& c, Function& fn, bool& has_result,
                    std::uint64_t& reg) {
    Cursor save = c;
    if (c.eat("%")) {
      if (c.number(reg) && c.eat("=")) {
        has_result = true;
        while (fn.num_regs() <= reg) fn.new_reg(Type::int_ty(32));
        return true;
      }
    }
    c = save;
    has_result = false;
    return true;
  }

  // --- pass 2: bodies --------------------------------------------------------

  bool body_pass() {
    for (std::uint32_t fi = 0; fi < module_.num_functions(); ++fi) {
      if (!parse_body(fi, fn_lines_[fi])) return false;
    }
    return true;
  }

  bool parse_body(std::uint32_t fn_index, std::uint32_t header_line) {
    Function& fn = *module_.function(fn_index);
    std::uint32_t current_block = kNoBlock;
    for (std::uint32_t i = header_line + 1; i < lines_.size(); ++i) {
      Cursor c{lines_[i], 0, i};
      if (c.done()) continue;
      if (c.eat("}")) return true;

      if (c.eat("bb")) {
        std::uint64_t id = 0;
        if (!c.number(id)) return fail(i, "bad block header");
        std::string label;
        if (c.eat("(")) {
          label = c.ident();
          if (!c.eat(")")) return fail(i, "unterminated block label");
        }
        if (!c.eat(":")) return fail(i, "block header needs ':'");
        const std::uint32_t got = fn.add_block(label);
        if (got != id) return fail(i, "blocks must be numbered in order");
        current_block = got;
        continue;
      }

      if (current_block == kNoBlock)
        return fail(i, "instruction outside a block");
      Instruction inst;
      if (!parse_instruction(c, fn, inst)) {
        return fail(i, "cannot parse instruction: '" + lines_[i] + "'" +
                           (error_.empty() ? "" : " (" + error_ + ")"));
      }
      inst.line = i + 1;
      fn.block(current_block).insts.push_back(std::move(inst));
    }
    return fail(header_line, "function body not closed with '}'");
  }

  bool parse_instruction(Cursor& c, Function& fn, Instruction& inst) {
    bool has_result = false;
    std::uint64_t result_reg = 0;
    if (!parse_result(c, fn, has_result, result_reg)) return false;

    auto finish_result = [&](Type t) {
      if (!has_result) return false;
      inst.result = static_cast<std::uint32_t>(result_reg);
      fn.set_reg_type(inst.result, t);
      return true;
    };

    std::uint64_t n = 0;
    if (c.eat("alloca")) {
      inst.op = Opcode::kAlloca;
      if (!c.number(inst.alloca_size)) return false;
      return finish_result(Type::ptr_ty());
    }
    if (c.eat("load")) {
      inst.op = Opcode::kLoad;
      if (!c.eat("i") || !c.number(n)) return false;
      inst.width = static_cast<unsigned>(n);
      Operand ptr;
      if (!parse_operand(c, fn, ptr)) return false;
      inst.ops = {ptr};
      return finish_result(Type::int_ty(inst.width));
    }
    if (c.eat("store")) {
      inst.op = Opcode::kStore;
      Operand ptr, value;
      if (!parse_operand(c, fn, ptr) || !c.eat(",") ||
          !parse_operand(c, fn, value))
        return false;
      inst.ops = {ptr, value};
      return !has_result;
    }
    if (c.eat("gep")) {
      inst.op = Opcode::kGep;
      Operand base, delta;
      if (!parse_operand(c, fn, base) || !c.eat("+") ||
          !parse_operand(c, fn, delta))
        return false;
      inst.ops = {base, delta};
      return finish_result(Type::ptr_ty());
    }
    if (c.eat("cmp")) {
      inst.op = Opcode::kCmp;
      static const std::pair<const char*, CmpPred> kPreds[] = {
          {"eq", CmpPred::kEq},   {"ne", CmpPred::kNe},
          {"ult", CmpPred::kUlt}, {"ule", CmpPred::kUle},
          {"ugt", CmpPred::kUgt}, {"uge", CmpPred::kUge},
          {"slt", CmpPred::kSlt}, {"sle", CmpPred::kSle},
          {"sgt", CmpPred::kSgt}, {"sge", CmpPred::kSge},
      };
      bool matched = false;
      for (const auto& [name, pred] : kPreds) {
        if (c.eat(name)) {
          inst.pred = pred;
          matched = true;
          break;
        }
      }
      if (!matched) return false;
      Operand a, b;
      if (!parse_operand(c, fn, a) || !c.eat(",") || !parse_operand(c, fn, b))
        return false;
      inst.width = 1;
      inst.ops = {a, b};
      return finish_result(Type::int_ty(1));
    }
    if (c.eat("zext") || c.eat("sext") || c.eat("trunc")) {
      // The eat above consumed one of the three; recover which.
      const std::string& line = c.line;
      const std::size_t before = c.pos;
      // Look backwards for the keyword we just consumed.
      if (line.compare(before - 4, 4, "zext") == 0)
        inst.cast = CastOp::kZExt;
      else if (line.compare(before - 4, 4, "sext") == 0)
        inst.cast = CastOp::kSExt;
      else
        inst.cast = CastOp::kTrunc;
      inst.op = Opcode::kCast;
      Operand v;
      if (!parse_operand(c, fn, v) || !c.eat("to") || !c.eat("i") ||
          !c.number(n))
        return false;
      inst.width = static_cast<unsigned>(n);
      inst.ops = {v};
      return finish_result(Type::int_ty(inst.width));
    }
    if (c.eat("select")) {
      inst.op = Opcode::kSelect;
      Operand cond, a, b;
      if (!parse_operand(c, fn, cond) || !c.eat(",") ||
          !parse_operand(c, fn, a) || !c.eat(",") || !parse_operand(c, fn, b))
        return false;
      inst.width = a.type.width;
      inst.ops = {cond, a, b};
      return finish_result(a.type);
    }
    if (c.eat("br")) {
      inst.op = Opcode::kBr;
      Operand cond;
      std::uint64_t then_bb = 0, else_bb = 0;
      if (!parse_operand(c, fn, cond) || !c.eat(",") || !c.eat("bb") ||
          !c.number(then_bb) || !c.eat(",") || !c.eat("bb") ||
          !c.number(else_bb))
        return false;
      inst.ops = {cond};
      inst.bb_then = static_cast<std::uint32_t>(then_bb);
      inst.bb_else = static_cast<std::uint32_t>(else_bb);
      return !has_result;
    }
    if (c.eat("jmp")) {
      inst.op = Opcode::kJmp;
      std::uint64_t target = 0;
      if (!c.eat("bb") || !c.number(target)) return false;
      inst.bb_then = static_cast<std::uint32_t>(target);
      return !has_result;
    }
    if (c.eat("call")) {
      inst.op = Opcode::kCall;
      std::uint64_t callee = 0;
      if (!c.eat("@") || !c.number(callee) ||
          callee >= module_.num_functions() || !c.eat("("))
        return false;
      inst.callee = static_cast<std::uint32_t>(callee);
      if (!c.eat(")")) {
        do {
          Operand arg;
          if (!parse_operand(c, fn, arg)) return false;
          inst.ops.push_back(arg);
        } while (c.eat(","));
        if (!c.eat(")")) return false;
      }
      const Type ret = module_.function(inst.callee)->ret_type();
      if (ret.is_void()) return !has_result;
      inst.width = ret.width;
      return finish_result(ret);
    }
    if (c.eat("ret")) {
      inst.op = Opcode::kRet;
      if (!c.done()) {
        Operand v;
        if (!parse_operand(c, fn, v)) return false;
        inst.ops = {v};
      }
      return !has_result;
    }
    if (c.eat("slot_get")) {
      inst.op = Opcode::kSlotGet;
      if (!c.number(n)) return false;
      inst.slot = static_cast<std::uint32_t>(n);
      while (fn.num_slots() <= inst.slot) fn.new_slot();
      return finish_result(Type::ptr_ty());
    }
    if (c.eat("slot_set")) {
      inst.op = Opcode::kSlotSet;
      if (!c.number(n) || !c.eat(",")) return false;
      inst.slot = static_cast<std::uint32_t>(n);
      while (fn.num_slots() <= inst.slot) fn.new_slot();
      Operand v;
      if (!parse_operand(c, fn, v)) return false;
      inst.ops = {v};
      return !has_result;
    }
    if (c.eat("global_addr")) {
      inst.op = Opcode::kGlobalAddr;
      if (!c.eat("@") || !c.number(n) || n >= module_.num_globals())
        return false;
      inst.slot = static_cast<std::uint32_t>(n);
      return finish_result(Type::ptr_ty());
    }
    if (c.eat("unreachable")) {
      inst.op = Opcode::kUnreachable;
      return !has_result;
    }

    // Intrinsics by name.
    static const std::pair<const char*, Intrinsic> kIntrinsics[] = {
        {"out", Intrinsic::kOut},
        {"assert", Intrinsic::kAssert},
        {"abort", Intrinsic::kAbort},
        {"checked_add", Intrinsic::kCheckedAdd},
        {"checked_mul", Intrinsic::kCheckedMul},
    };
    for (const auto& [name, which] : kIntrinsics) {
      Cursor save = c;
      if (!c.eat(name)) continue;
      if (!c.eat("(")) {
        c = save;
        continue;
      }
      inst.op = Opcode::kIntrinsic;
      inst.intrinsic = which;
      if (!c.eat(")")) {
        do {
          Operand arg;
          if (!parse_operand(c, fn, arg)) return false;
          inst.ops.push_back(arg);
        } while (c.eat(","));
        if (!c.eat(")")) return false;
      }
      if (which == Intrinsic::kCheckedAdd || which == Intrinsic::kCheckedMul) {
        inst.width = inst.ops.empty() ? 32 : inst.ops[0].type.width;
        return finish_result(Type::int_ty(inst.width));
      }
      return !has_result;
    }

    // Binary operators by name: "<op> i<w> a, b".
    static const std::pair<const char*, BinOp> kBins[] = {
        {"add", BinOp::kAdd},   {"sub", BinOp::kSub},  {"mul", BinOp::kMul},
        {"udiv", BinOp::kUDiv}, {"sdiv", BinOp::kSDiv},
        {"urem", BinOp::kURem}, {"srem", BinOp::kSRem},
        {"and", BinOp::kAnd},   {"or", BinOp::kOr},    {"xor", BinOp::kXor},
        {"shl", BinOp::kShl},   {"lshr", BinOp::kLShr},
        {"ashr", BinOp::kAShr},
    };
    for (const auto& [name, op] : kBins) {
      Cursor save = c;
      if (!c.eat(name)) continue;
      if (!c.eat("i")) {
        c = save;
        continue;
      }
      if (!c.number(n)) return false;
      inst.op = Opcode::kBin;
      inst.bin = op;
      inst.width = static_cast<unsigned>(n);
      Operand a, b;
      if (!parse_operand(c, fn, a) || !c.eat(",") || !parse_operand(c, fn, b))
        return false;
      inst.ops = {a, b};
      return finish_result(Type::int_ty(inst.width));
    }
    return false;
  }

  Module& module_;
  std::string& error_;
  std::vector<std::string> lines_;
  std::vector<std::uint32_t> fn_lines_;
};

}  // namespace

bool parse_module(const std::string& text, Module& module,
                  std::string& error) {
  Parser parser(text, module, error);
  return parser.run();
}

}  // namespace pbse::ir
