// Text-format parser for the Mini-IR: parses what printer.h emits, giving
// a round-trippable on-disk form (golden tests, hand-written fixtures,
// dumping/reloading modules).
//
// Grammar (one construct per line, '#' comments):
//   global <name>[<size>] [const] [= b0 b1 ...]
//   fn <name>(<type>, ...) -> <type> {
//   bb<N>[ (<label>)]:
//     %r = alloca <size>
//     %r = load i<w> <op>
//     store <op>, <op>
//     %r = gep <op> + <op>
//     %r = <binop> i<w> <op>, <op>
//     %r = cmp <pred> <op>, <op>
//     %r = zext|sext|trunc <op> to i<w>
//     %r = select <op>, <op>, <op>
//     br <op>, bb<N>, bb<N>
//     jmp bb<N>
//     [%r =] call @<index>(<op>, ...)
//     ret [<op>]
//     [%r =] out|assert|abort|checked_add|checked_mul(<op>...)
//     %r = slot_get <N>   |   slot_set <N>, <op>   |   %r = global_addr @<N>
//     unreachable
//   }
// Operands: integer literal, %<reg>, 'null' (pointer null), 'none'.
// Register types are reconstructed from defining instructions; operand
// widths of literals are inferred from context.
#pragma once

#include <string>

#include "ir/ir.h"

namespace pbse::ir {

/// Parses `text` into `module` (which must be empty, un-finalized).
/// Returns false and fills `error` ("line N: message") on failure.
bool parse_module(const std::string& text, Module& module,
                  std::string& error);

}  // namespace pbse::ir
