#include "ir/printer.h"

#include <sstream>

namespace pbse::ir {

namespace {

const char* bin_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kMul: return "mul";
    case BinOp::kUDiv: return "udiv";
    case BinOp::kSDiv: return "sdiv";
    case BinOp::kURem: return "urem";
    case BinOp::kSRem: return "srem";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kXor: return "xor";
    case BinOp::kShl: return "shl";
    case BinOp::kLShr: return "lshr";
    case BinOp::kAShr: return "ashr";
  }
  return "?";
}

const char* pred_name(CmpPred pred) {
  switch (pred) {
    case CmpPred::kEq: return "eq";
    case CmpPred::kNe: return "ne";
    case CmpPred::kUlt: return "ult";
    case CmpPred::kUle: return "ule";
    case CmpPred::kUgt: return "ugt";
    case CmpPred::kUge: return "uge";
    case CmpPred::kSlt: return "slt";
    case CmpPred::kSle: return "sle";
    case CmpPred::kSgt: return "sgt";
    case CmpPred::kSge: return "sge";
  }
  return "?";
}

const char* intrinsic_name(Intrinsic i) {
  switch (i) {
    case Intrinsic::kOut: return "out";
    case Intrinsic::kAssert: return "assert";
    case Intrinsic::kAbort: return "abort";
    case Intrinsic::kCheckedAdd: return "checked_add";
    case Intrinsic::kCheckedMul: return "checked_mul";
  }
  return "?";
}

std::string operand_str(const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kNone:
      return "none";
    case Operand::Kind::kConst:
      // Width-annotated so the text form round-trips through ir::parse.
      if (op.type.is_ptr()) return "null";
      return std::to_string(op.cval) + ":i" + std::to_string(op.type.width);
    case Operand::Kind::kReg:
      return "%" + std::to_string(op.reg);
  }
  return "?";
}

}  // namespace

std::string to_string(const Function& fn, const Instruction& inst) {
  std::ostringstream out;
  if (inst.result != kNoReg) out << '%' << inst.result << " = ";
  switch (inst.op) {
    case Opcode::kAlloca:
      out << "alloca " << inst.alloca_size;
      break;
    case Opcode::kLoad:
      out << "load i" << inst.width << ' ' << operand_str(inst.ops[0]);
      break;
    case Opcode::kStore:
      out << "store " << operand_str(inst.ops[0]) << ", "
          << operand_str(inst.ops[1]);
      break;
    case Opcode::kGep:
      out << "gep " << operand_str(inst.ops[0]) << " + "
          << operand_str(inst.ops[1]);
      break;
    case Opcode::kBin:
      out << bin_name(inst.bin) << " i" << inst.width << ' '
          << operand_str(inst.ops[0]) << ", " << operand_str(inst.ops[1]);
      break;
    case Opcode::kCmp:
      out << "cmp " << pred_name(inst.pred) << ' ' << operand_str(inst.ops[0])
          << ", " << operand_str(inst.ops[1]);
      break;
    case Opcode::kCast:
      out << (inst.cast == CastOp::kZExt
                  ? "zext"
                  : inst.cast == CastOp::kSExt ? "sext" : "trunc")
          << ' ' << operand_str(inst.ops[0]) << " to i" << inst.width;
      break;
    case Opcode::kSelect:
      out << "select " << operand_str(inst.ops[0]) << ", "
          << operand_str(inst.ops[1]) << ", " << operand_str(inst.ops[2]);
      break;
    case Opcode::kBr:
      out << "br " << operand_str(inst.ops[0]) << ", bb" << inst.bb_then
          << ", bb" << inst.bb_else;
      break;
    case Opcode::kJmp:
      out << "jmp bb" << inst.bb_then;
      break;
    case Opcode::kCall:
      out << "call @" << inst.callee << '(';
      for (std::size_t i = 0; i < inst.ops.size(); ++i)
        out << (i > 0 ? ", " : "") << operand_str(inst.ops[i]);
      out << ')';
      break;
    case Opcode::kRet:
      out << "ret";
      if (!inst.ops.empty()) out << ' ' << operand_str(inst.ops[0]);
      break;
    case Opcode::kIntrinsic:
      out << intrinsic_name(inst.intrinsic) << '(';
      for (std::size_t i = 0; i < inst.ops.size(); ++i)
        out << (i > 0 ? ", " : "") << operand_str(inst.ops[i]);
      out << ')';
      break;
    case Opcode::kSlotGet:
      out << "slot_get " << inst.slot;
      break;
    case Opcode::kSlotSet:
      out << "slot_set " << inst.slot << ", " << operand_str(inst.ops[0]);
      break;
    case Opcode::kGlobalAddr:
      out << "global_addr @" << inst.slot;
      break;
    case Opcode::kUnreachable:
      out << "unreachable";
      break;
  }
  (void)fn;
  return out.str();
}

std::string to_string(const Function& fn) {
  std::ostringstream out;
  out << "fn " << fn.name() << '(';
  for (std::size_t i = 0; i < fn.params().size(); ++i)
    out << (i > 0 ? ", " : "") << fn.params()[i].to_string();
  out << ") -> " << fn.ret_type().to_string() << " {\n";
  for (const BasicBlock& bb : fn.blocks()) {
    out << "bb" << bb.id;
    if (!bb.label.empty()) out << " (" << bb.label << ')';
    out << ":\n";
    for (const Instruction& inst : bb.insts)
      out << "  " << to_string(fn, inst) << '\n';
  }
  out << "}\n";
  return out.str();
}

std::string to_string(const Module& module) {
  std::ostringstream out;
  for (std::uint32_t gi = 0; gi < module.num_globals(); ++gi) {
    const Global& g = module.global(gi);
    out << "global " << g.name << '[' << g.size << ']'
        << (g.writable ? "" : " const");
    bool any = false;
    for (std::uint8_t b : g.init) any = any || b != 0;
    if (any) {
      out << " =";
      for (std::uint8_t b : g.init) out << ' ' << static_cast<unsigned>(b);
    }
    out << '\n';
  }
  for (std::uint32_t fi = 0; fi < module.num_functions(); ++fi)
    out << to_string(*module.function(fi));
  return out.str();
}

}  // namespace pbse::ir
