// Human-readable IR dumps for debugging and golden tests.
#pragma once

#include <string>

#include "ir/ir.h"

namespace pbse::ir {

/// Renders one instruction, e.g. "%3 = bin add i32 %1, 42".
std::string to_string(const Function& fn, const Instruction& inst);

/// Renders a whole function with labeled blocks.
std::string to_string(const Function& fn);

/// Renders the whole module (globals + functions).
std::string to_string(const Module& module);

}  // namespace pbse::ir
