#include "ir/verifier.h"

#include <sstream>

namespace pbse::ir {

namespace {

void check_function(const Module& module, const Function& fn,
                    std::vector<std::string>& problems) {
  auto complain = [&](std::uint32_t bb, std::size_t idx, const std::string& msg) {
    std::ostringstream out;
    out << fn.name() << " bb" << bb << " inst" << idx << ": " << msg;
    problems.push_back(out.str());
  };

  if (fn.num_blocks() == 0) {
    problems.push_back(fn.name() + ": function has no blocks");
    return;
  }

  for (std::uint32_t bi = 0; bi < fn.num_blocks(); ++bi) {
    const BasicBlock& bb = fn.block(bi);
    if (bb.insts.empty()) {
      complain(bi, 0, "empty block");
      continue;
    }
    if (!bb.insts.back().is_terminator())
      complain(bi, bb.insts.size() - 1, "block does not end in a terminator");

    for (std::size_t ii = 0; ii < bb.insts.size(); ++ii) {
      const Instruction& inst = bb.insts[ii];
      if (inst.is_terminator() && ii + 1 != bb.insts.size())
        complain(bi, ii, "terminator not at end of block");

      for (const Operand& op : inst.ops) {
        if (op.is_reg() && op.reg >= fn.num_regs())
          complain(bi, ii, "operand register out of range");
        if (op.is_reg() && op.reg < fn.num_regs() &&
            !(fn.reg_type(op.reg) == op.type))
          complain(bi, ii, "operand type disagrees with register type");
      }
      if (inst.result != kNoReg && inst.result >= fn.num_regs())
        complain(bi, ii, "result register out of range");

      switch (inst.op) {
        case Opcode::kBr:
          if (inst.ops.size() != 1 || !(inst.ops[0].type == Type::int_ty(1)))
            complain(bi, ii, "br condition must be i1");
          if (inst.bb_then >= fn.num_blocks() || inst.bb_else >= fn.num_blocks())
            complain(bi, ii, "br target out of range");
          break;
        case Opcode::kJmp:
          if (inst.bb_then >= fn.num_blocks())
            complain(bi, ii, "jmp target out of range");
          break;
        case Opcode::kBin:
        case Opcode::kCmp:
          if (inst.ops.size() != 2 || !(inst.ops[0].type == inst.ops[1].type) ||
              !inst.ops[0].type.is_int())
            complain(bi, ii, "binary op operands must be ints of equal width");
          break;
        case Opcode::kLoad:
          if (inst.ops.size() != 1 || !inst.ops[0].type.is_ptr())
            complain(bi, ii, "load operand must be a pointer");
          if (inst.width == 0 || inst.width > 64 || inst.width % 8 != 0)
            complain(bi, ii, "load width must be a multiple of 8 in [8,64]");
          break;
        case Opcode::kStore:
          if (inst.ops.size() != 2 || !inst.ops[0].type.is_ptr() ||
              !inst.ops[1].type.is_int())
            complain(bi, ii, "store needs (ptr, int)");
          else if (inst.ops[1].type.width % 8 != 0)
            complain(bi, ii, "store width must be a multiple of 8");
          break;
        case Opcode::kGep:
          if (inst.ops.size() != 2 || !inst.ops[0].type.is_ptr() ||
              !inst.ops[1].type.is_int())
            complain(bi, ii, "gep needs (ptr, int)");
          break;
        case Opcode::kCall: {
          if (inst.callee >= module.num_functions()) {
            complain(bi, ii, "call target out of range");
            break;
          }
          const Function* target = module.function(inst.callee);
          if (target->params().size() != inst.ops.size())
            complain(bi, ii, "call argument count mismatch");
          else
            for (std::size_t ai = 0; ai < inst.ops.size(); ++ai)
              if (!(inst.ops[ai].type == target->params()[ai]))
                complain(bi, ii, "call argument type mismatch");
          if (target->ret_type().is_void() != (inst.result == kNoReg))
            complain(bi, ii, "call result disagrees with return type");
          break;
        }
        case Opcode::kRet: {
          const Type ret = fn.ret_type();
          if (ret.is_void() && !inst.ops.empty())
            complain(bi, ii, "void function returns a value");
          if (!ret.is_void() &&
              (inst.ops.size() != 1 || !(inst.ops[0].type == ret)))
            complain(bi, ii, "return value type mismatch");
          break;
        }
        case Opcode::kSlotGet:
          if (inst.slot >= fn.num_slots())
            complain(bi, ii, "slot index out of range");
          break;
        case Opcode::kSlotSet:
          if (inst.slot >= fn.num_slots())
            complain(bi, ii, "slot index out of range");
          if (inst.ops.size() != 1 || !inst.ops[0].type.is_ptr())
            complain(bi, ii, "slot_set needs a pointer operand");
          break;
        case Opcode::kGlobalAddr:
          if (inst.slot >= module.num_globals())
            complain(bi, ii, "global index out of range");
          break;
        default:
          break;
      }
    }
  }
}

}  // namespace

std::vector<std::string> verify(const Module& module) {
  std::vector<std::string> problems;
  for (std::uint32_t fi = 0; fi < module.num_functions(); ++fi)
    check_function(module, *module.function(fi), problems);
  return problems;
}

}  // namespace pbse::ir
