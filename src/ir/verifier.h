// Structural IR well-formedness checks, run after module finalization and
// before any execution. Catches codegen bugs early with precise messages.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace pbse::ir {

/// Returns a list of human-readable problems; empty means the module is
/// well-formed. Checks: blocks end in exactly one terminator, branch
/// targets exist, operand/register types agree, call signatures match,
/// returns match the function's return type, registers are defined before
/// use along instruction order within each block's straight-line code.
std::vector<std::string> verify(const Module& module);

}  // namespace pbse::ir
