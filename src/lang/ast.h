// MiniC abstract syntax tree.
//
// MiniC is the C subset the target programs are written in: fixed-width
// integer types, 1-D arrays, single-level pointers to integers, functions,
// the usual statements and operators, plus engine builtins (out, check,
// stop, checked_add, checked_mul, input_size).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pbse::minic {

/// Frontend type: void, an integer (width + signedness), or a pointer to
/// an integer type.
struct CType {
  enum class K : std::uint8_t { kVoid, kInt, kPtr };
  K k = K::kVoid;
  unsigned width = 0;       // kInt: bits (1 for bool, else 8/16/32/64)
  bool is_signed = false;   // kInt
  unsigned elem_width = 0;  // kPtr: pointee width
  bool elem_signed = false;

  static CType void_ty() { return {}; }
  static CType int_ty(unsigned width, bool is_signed) {
    return {K::kInt, width, is_signed, 0, false};
  }
  static CType bool_ty() { return int_ty(1, false); }
  static CType ptr_to(unsigned elem_width, bool elem_signed) {
    return {K::kPtr, 64, false, elem_width, elem_signed};
  }

  bool is_void() const { return k == K::kVoid; }
  bool is_int() const { return k == K::kInt; }
  bool is_ptr() const { return k == K::kPtr; }
  bool operator==(const CType& o) const {
    if (k != o.k) return false;
    if (k == K::kInt) return width == o.width && is_signed == o.is_signed;
    if (k == K::kPtr) return elem_width == o.elem_width && elem_signed == o.elem_signed;
    return true;
  }
  std::string to_string() const;
};

// --- Expressions -----------------------------------------------------------

enum class ExprNodeKind : std::uint8_t {
  kNum, kStr, kIdent, kUnary, kBinary, kTernary, kAssign, kCall, kIndex, kCast,
};

enum class UnaryOp : std::uint8_t {
  kNeg, kLogNot, kBitNot, kDeref, kAddrOf, kPreInc, kPreDec, kPostInc, kPostDec,
};

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogAnd, kLogOr,
};

struct ExprNode;
using ExprPtr = std::unique_ptr<ExprNode>;

struct ExprNode {
  ExprNodeKind kind;
  std::uint32_t line = 0;
  // kNum
  std::uint64_t number = 0;
  // kStr / kIdent / kCall (callee name)
  std::string text;
  // kUnary / kBinary / kAssign(op as BinaryOp; kAssignPlain flag)
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  bool compound_assign = false;  // kAssign: true for += etc.
  // kCast
  CType cast_type;
  // children: unary->a; binary/assign/index->a,b; ternary->a,b,c; call->args
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;
};

// --- Statements ------------------------------------------------------------

enum class StmtNodeKind : std::uint8_t {
  kBlock, kDecl, kExpr, kIf, kWhile, kFor, kBreak, kContinue, kReturn,
};

struct StmtNode;
using StmtPtr = std::unique_ptr<StmtNode>;

struct StmtNode {
  StmtNodeKind kind;
  std::uint32_t line = 0;
  // kDecl
  CType decl_type;
  std::string name;
  bool is_array = false;
  std::uint64_t array_size = 0;
  std::vector<std::uint64_t> init_list;  // array initializer
  bool has_init_list = false;
  // kDecl init / kExpr / kReturn value / kIf & kWhile & kFor condition
  ExprPtr expr;
  // kFor
  StmtPtr for_init;
  ExprPtr for_step;
  // kBlock
  std::vector<StmtPtr> stmts;
  // kIf / kWhile / kFor bodies
  StmtPtr body;
  StmtPtr else_body;
};

// --- Top level --------------------------------------------------------------

struct GlobalDecl {
  std::uint32_t line = 0;
  CType type;                // element type for arrays
  std::string name;
  bool is_array = false;
  std::uint64_t array_size = 0;
  std::vector<std::uint64_t> init_list;
};

struct ParamDecl {
  CType type;
  std::string name;
};

struct FuncDecl {
  std::uint32_t line = 0;
  CType ret;
  std::string name;
  std::vector<ParamDecl> params;
  StmtPtr body;  // kBlock
};

struct Program {
  std::vector<GlobalDecl> globals;
  std::vector<FuncDecl> functions;
};

}  // namespace pbse::minic
