#include "lang/codegen.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <unordered_map>

#include "ir/builder.h"
#include "lang/parser.h"

namespace pbse::minic {

namespace {

using ir::Builder;
using ir::Operand;

/// A typed rvalue: an IR operand plus its MiniC type. `is_literal` marks
/// numeric literals whose width adapts to the other operand's type.
struct RV {
  Operand op;
  CType t;
  bool is_literal = false;
};

/// Where a variable lives.
struct VarInfo {
  enum class Kind { kMemScalar, kArray, kPtrSlot, kGlobalArray, kGlobalScalar };
  Kind kind = Kind::kMemScalar;
  CType type;           // scalar/pointer type, or element type for arrays
  Operand base;         // kMemScalar / kArray: alloca pointer register
  std::uint32_t slot = 0;    // kPtrSlot
  std::uint32_t global = 0;  // kGlobal*
  std::uint64_t count = 0;   // kArray / kGlobalArray element count
};

/// An assignable location.
struct LV {
  enum class Kind { kMem, kSlot };
  Kind kind = Kind::kMem;
  Operand ptr;   // kMem: address of the element
  CType type;    // element type (int) or pointer type (kSlot)
  std::uint32_t slot = 0;  // kSlot
};

struct FuncSig {
  std::uint32_t index = 0;
  CType ret;
  std::vector<CType> params;
};

ir::Type to_ir_type(const CType& t) {
  if (t.is_void()) return ir::Type::void_ty();
  if (t.is_ptr()) return ir::Type::ptr_ty();
  return ir::Type::int_ty(t.width);
}

unsigned byte_size(const CType& t) {
  assert(t.is_int());
  return t.width == 1 ? 1 : t.width / 8;
}

class Compiler {
 public:
  Compiler(ir::Module& module, std::string& error)
      : module_(module), error_(error) {}

  bool run(const Program& program) {
    // Pass 1: declare globals and function signatures.
    for (const GlobalDecl& g : program.globals)
      if (!declare_global(g)) return false;
    for (const FuncDecl& fn : program.functions)
      if (!declare_function(fn)) return false;
    // Pass 2: compile bodies.
    for (const FuncDecl& fn : program.functions)
      if (!compile_function(fn)) return false;
    return true;
  }

 private:
  bool fail(std::uint32_t line, const std::string& msg) {
    if (error_.empty()) error_ = "line " + std::to_string(line) + ": " + msg;
    return false;
  }

  // --- Declarations ------------------------------------------------------

  bool declare_global(const GlobalDecl& g) {
    if (globals_.count(g.name) != 0 || functions_.count(g.name) != 0)
      return fail(g.line, "redefinition of '" + g.name + "'");
    if (!g.type.is_int() || g.type.width == 1)
      return fail(g.line, "globals must have integer type u8..i64");
    const std::uint64_t count = g.is_array ? g.array_size : 1;
    if (g.is_array && g.array_size == 0)
      return fail(g.line, "zero-sized global array");
    if (g.init_list.size() > count)
      return fail(g.line, "too many initializers");
    ir::Global irg;
    irg.name = g.name;
    irg.size = count * byte_size(g.type);
    irg.init = encode_init(g.type, g.init_list);
    const std::uint32_t index = module_.add_global(std::move(irg));
    VarInfo info;
    info.kind = g.is_array ? VarInfo::Kind::kGlobalArray
                           : VarInfo::Kind::kGlobalScalar;
    info.type = g.type;
    info.global = index;
    info.count = count;
    globals_[g.name] = info;
    return true;
  }

  static std::vector<std::uint8_t> encode_init(
      const CType& elem, const std::vector<std::uint64_t>& values) {
    std::vector<std::uint8_t> bytes;
    const unsigned size = byte_size(elem);
    bytes.reserve(values.size() * size);
    for (std::uint64_t v : values)
      for (unsigned b = 0; b < size; ++b)
        bytes.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    return bytes;
  }

  bool declare_function(const FuncDecl& fn) {
    if (functions_.count(fn.name) != 0 || globals_.count(fn.name) != 0 ||
        is_builtin(fn.name))
      return fail(fn.line, "redefinition of '" + fn.name + "'");
    std::vector<ir::Type> ir_params;
    FuncSig sig;
    sig.ret = fn.ret;
    for (const ParamDecl& p : fn.params) {
      ir_params.push_back(to_ir_type(p.type));
      sig.params.push_back(p.type);
    }
    auto irfn = std::make_unique<ir::Function>(fn.name, std::move(ir_params),
                                               to_ir_type(fn.ret));
    // Registers 0..N-1 are the parameters, in order.
    for (const ParamDecl& p : fn.params) irfn->new_reg(to_ir_type(p.type));
    sig.index = module_.add_function(std::move(irfn));
    functions_[fn.name] = std::move(sig);
    return true;
  }

  static bool is_builtin(const std::string& name) {
    return name == "out" || name == "check" || name == "stop" ||
           name == "checked_add" || name == "checked_mul";
  }

  // --- Function bodies ---------------------------------------------------

  bool compile_function(const FuncDecl& fn) {
    ir::Function& irfn = *module_.function(functions_[fn.name].index);
    Builder builder(module_, irfn);
    builder_ = &builder;
    current_ret_ = fn.ret;
    scopes_.clear();
    scopes_.emplace_back();
    break_targets_.clear();
    continue_targets_.clear();

    const std::uint32_t entry = irfn.add_block("entry");
    builder.set_insert(entry);
    builder.set_line(fn.line);

    // Spill parameters into mutable storage.
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      const ParamDecl& p = fn.params[i];
      const Operand param_reg =
          Operand::reg_of(static_cast<std::uint32_t>(i), to_ir_type(p.type));
      if (scopes_.back().count(p.name) != 0)
        return fail(fn.line, "duplicate parameter '" + p.name + "'");
      VarInfo info;
      info.type = p.type;
      if (p.type.is_ptr()) {
        info.kind = VarInfo::Kind::kPtrSlot;
        info.slot = irfn.new_slot();
        builder.emit_slot_set(info.slot, param_reg);
      } else {
        info.kind = VarInfo::Kind::kMemScalar;
        info.base = builder.emit_alloca(byte_size(p.type));
        store_int(info.base, RV{param_reg, p.type});
      }
      scopes_.back()[p.name] = info;
    }

    if (!compile_stmt(*fn.body)) return false;

    // Seal: give every unterminated block a default return.
    for (ir::BasicBlock& bb : irfn.blocks()) {
      if (!bb.insts.empty() && bb.insts.back().is_terminator()) continue;
      builder.set_insert(bb.id);
      if (fn.ret.is_void())
        builder.emit_ret_void();
      else if (fn.ret.is_ptr())
        builder.emit_ret(null_ptr());
      else
        builder.emit_ret(Operand::constant(0, fn.ret.width));
    }
    builder_ = nullptr;
    return true;
  }

  // --- Statements --------------------------------------------------------

  bool compile_stmt(const StmtNode& stmt) {
    Builder& b = *builder_;
    b.set_line(stmt.line);
    switch (stmt.kind) {
      case StmtNodeKind::kBlock: {
        scopes_.emplace_back();
        for (const StmtPtr& s : stmt.stmts) {
          if (b.block_terminated()) {
            // Dead code after return/break: park it in a fresh block so the
            // verifier still sees well-formed structure.
            const std::uint32_t dead = b.fn().add_block("dead");
            b.set_insert(dead);
          }
          if (!compile_stmt(*s)) return false;
        }
        scopes_.pop_back();
        return true;
      }
      case StmtNodeKind::kDecl:
        return compile_decl(stmt);
      case StmtNodeKind::kExpr: {
        RV ignored;
        return compile_expr(*stmt.expr, ignored);
      }
      case StmtNodeKind::kIf:
        return compile_if(stmt);
      case StmtNodeKind::kWhile:
        return compile_while(stmt);
      case StmtNodeKind::kFor:
        return compile_for(stmt);
      case StmtNodeKind::kBreak:
        if (break_targets_.empty())
          return fail(stmt.line, "break outside a loop");
        b.emit_jmp(break_targets_.back());
        return true;
      case StmtNodeKind::kContinue:
        if (continue_targets_.empty())
          return fail(stmt.line, "continue outside a loop");
        b.emit_jmp(continue_targets_.back());
        return true;
      case StmtNodeKind::kReturn: {
        if (current_ret_.is_void()) {
          if (stmt.expr != nullptr)
            return fail(stmt.line, "void function returns a value");
          b.emit_ret_void();
          return true;
        }
        if (stmt.expr == nullptr)
          return fail(stmt.line, "non-void function must return a value");
        RV value;
        if (!compile_expr(*stmt.expr, value)) return false;
        RV converted;
        if (!convert(stmt.line, value, current_ret_, converted)) return false;
        b.emit_ret(converted.op);
        return true;
      }
    }
    return fail(stmt.line, "unhandled statement");
  }

  bool compile_decl(const StmtNode& stmt) {
    Builder& b = *builder_;
    if (lookup_local_innermost(stmt.name) != nullptr)
      return fail(stmt.line, "redefinition of '" + stmt.name + "'");

    VarInfo info;
    info.type = stmt.decl_type;
    if (stmt.is_array) {
      if (!stmt.decl_type.is_int() || stmt.decl_type.width == 1)
        return fail(stmt.line, "arrays must have integer element type");
      if (stmt.array_size == 0) return fail(stmt.line, "zero-sized array");
      if (stmt.init_list.size() > stmt.array_size)
        return fail(stmt.line, "too many initializers");
      info.kind = VarInfo::Kind::kArray;
      info.count = stmt.array_size;
      info.base = b.emit_alloca(stmt.array_size * byte_size(stmt.decl_type));
      if (stmt.has_init_list) {
        const unsigned elem_size = byte_size(stmt.decl_type);
        for (std::size_t i = 0; i < stmt.init_list.size(); ++i) {
          const Operand addr = b.emit_gep(
              info.base,
              Operand::constant(i * elem_size, 64));
          b.emit_store(addr, Operand::constant(stmt.init_list[i],
                                               stmt.decl_type.width == 1
                                                   ? 8
                                                   : stmt.decl_type.width));
        }
      }
    } else if (stmt.decl_type.is_ptr()) {
      info.kind = VarInfo::Kind::kPtrSlot;
      info.slot = b.fn().new_slot();
      if (stmt.expr != nullptr) {
        RV value;
        if (!compile_expr(*stmt.expr, value)) return false;
        RV converted;
        if (!convert(stmt.line, value, stmt.decl_type, converted)) return false;
        b.emit_slot_set(info.slot, converted.op);
      } else {
        b.emit_slot_set(info.slot, null_ptr());
      }
    } else {
      info.kind = VarInfo::Kind::kMemScalar;
      info.base = b.emit_alloca(byte_size(stmt.decl_type));
      RV value{Operand::constant(0, stmt.decl_type.width), stmt.decl_type};
      if (stmt.expr != nullptr) {
        RV raw;
        if (!compile_expr(*stmt.expr, raw)) return false;
        if (!convert(stmt.line, raw, stmt.decl_type, value)) return false;
      }
      store_int(info.base, value);
    }
    scopes_.back()[stmt.name] = info;
    return true;
  }

  bool compile_if(const StmtNode& stmt) {
    Builder& b = *builder_;
    RV cond;
    if (!compile_condition(*stmt.expr, cond)) return false;
    const std::uint32_t then_bb = b.fn().add_block("if.then");
    const std::uint32_t end_bb = b.fn().add_block("if.end");
    const std::uint32_t else_bb =
        stmt.else_body != nullptr ? b.fn().add_block("if.else") : end_bb;
    b.emit_br(cond.op, then_bb, else_bb);
    b.set_insert(then_bb);
    if (!compile_stmt(*stmt.body)) return false;
    if (!b.block_terminated()) b.emit_jmp(end_bb);
    if (stmt.else_body != nullptr) {
      b.set_insert(else_bb);
      if (!compile_stmt(*stmt.else_body)) return false;
      if (!b.block_terminated()) b.emit_jmp(end_bb);
    }
    b.set_insert(end_bb);
    return true;
  }

  bool compile_while(const StmtNode& stmt) {
    Builder& b = *builder_;
    const std::uint32_t cond_bb = b.fn().add_block("while.cond");
    const std::uint32_t body_bb = b.fn().add_block("while.body");
    const std::uint32_t end_bb = b.fn().add_block("while.end");
    b.emit_jmp(cond_bb);
    b.set_insert(cond_bb);
    RV cond;
    if (!compile_condition(*stmt.expr, cond)) return false;
    b.emit_br(cond.op, body_bb, end_bb);
    b.set_insert(body_bb);
    break_targets_.push_back(end_bb);
    continue_targets_.push_back(cond_bb);
    const bool ok = compile_stmt(*stmt.body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (!ok) return false;
    if (!b.block_terminated()) b.emit_jmp(cond_bb);
    b.set_insert(end_bb);
    return true;
  }

  bool compile_for(const StmtNode& stmt) {
    Builder& b = *builder_;
    scopes_.emplace_back();  // for-init scope
    if (stmt.for_init != nullptr && !compile_stmt(*stmt.for_init)) {
      scopes_.pop_back();
      return false;
    }
    const std::uint32_t cond_bb = b.fn().add_block("for.cond");
    const std::uint32_t body_bb = b.fn().add_block("for.body");
    const std::uint32_t step_bb = b.fn().add_block("for.step");
    const std::uint32_t end_bb = b.fn().add_block("for.end");
    b.emit_jmp(cond_bb);
    b.set_insert(cond_bb);
    if (stmt.expr != nullptr) {
      RV cond;
      if (!compile_condition(*stmt.expr, cond)) {
        scopes_.pop_back();
        return false;
      }
      b.emit_br(cond.op, body_bb, end_bb);
    } else {
      b.emit_jmp(body_bb);
    }
    b.set_insert(body_bb);
    break_targets_.push_back(end_bb);
    continue_targets_.push_back(step_bb);
    const bool ok = compile_stmt(*stmt.body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    if (!ok) {
      scopes_.pop_back();
      return false;
    }
    if (!b.block_terminated()) b.emit_jmp(step_bb);
    b.set_insert(step_bb);
    if (stmt.for_step != nullptr) {
      RV ignored;
      if (!compile_expr(*stmt.for_step, ignored)) {
        scopes_.pop_back();
        return false;
      }
    }
    b.emit_jmp(cond_bb);
    b.set_insert(end_bb);
    scopes_.pop_back();
    return true;
  }

  // --- Variable lookup ----------------------------------------------------

  const VarInfo* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    auto g = globals_.find(name);
    return g == globals_.end() ? nullptr : &g->second;
  }

  const VarInfo* lookup_local_innermost(const std::string& name) const {
    auto found = scopes_.back().find(name);
    return found == scopes_.back().end() ? nullptr : &found->second;
  }

  // --- Conversions --------------------------------------------------------

  static Operand null_ptr() {
    Operand o;
    o.kind = Operand::Kind::kConst;
    o.type = ir::Type::ptr_ty();
    o.cval = 0;
    return o;
  }

  /// Converts `v` to type `to` (C-style: truncate or extend by the SOURCE
  /// signedness; int->bool is != 0; pointer casts reinterpret).
  bool convert(std::uint32_t line, const RV& v, const CType& to, RV& out) {
    Builder& b = *builder_;
    if (v.t == to) {
      out = v;
      out.t = to;
      return true;
    }
    if (to.is_ptr()) {
      if (v.t.is_ptr()) {
        out = RV{v.op, to};
        return true;
      }
      if (v.is_literal && v.op.is_const() && v.op.cval == 0) {
        out = RV{null_ptr(), to};
        return true;
      }
      return fail(line, "cannot convert " + v.t.to_string() + " to pointer");
    }
    if (v.t.is_ptr())
      return fail(line, "cannot convert pointer to " + to.to_string());
    if (!to.is_int() || !v.t.is_int())
      return fail(line, "invalid conversion involving void");
    // int -> bool: != 0.
    if (to.width == 1 && v.t.width != 1) {
      const Operand zero = Operand::constant(0, v.t.width);
      out = RV{b.emit_cmp(ir::CmpPred::kNe, v.op, zero), to};
      return true;
    }
    if (to.width == v.t.width) {
      out = RV{v.op, to};
      return true;
    }
    if (to.width > v.t.width) {
      out = RV{b.emit_cast(v.t.is_signed ? ir::CastOp::kSExt : ir::CastOp::kZExt,
                           v.op, to.width),
               to};
      return true;
    }
    out = RV{b.emit_cast(ir::CastOp::kTrunc, v.op, to.width), to};
    return true;
  }

  /// The common type two integer operands are brought to: the wider width,
  /// signed only if both are signed. Literals adapt to the other operand.
  static CType common_type(const RV& a, const RV& b) {
    if (a.is_literal && !b.is_literal && b.t.is_int()) {
      // A literal that fits the other operand's width takes its type.
      const unsigned w = b.t.width == 1 ? 8 : b.t.width;
      if (w >= 64 || a.op.cval < (std::uint64_t{1} << w))
        return CType::int_ty(w, b.t.is_signed);
    }
    if (b.is_literal && !a.is_literal && a.t.is_int()) {
      const unsigned w = a.t.width == 1 ? 8 : a.t.width;
      if (w >= 64 || b.op.cval < (std::uint64_t{1} << w))
        return CType::int_ty(w, a.t.is_signed);
    }
    const unsigned aw = a.t.width == 1 ? 8 : a.t.width;
    const unsigned bw = b.t.width == 1 ? 8 : b.t.width;
    return CType::int_ty(std::max({aw, bw, 32u}),
                         a.t.is_signed && b.t.is_signed);
  }

  /// Evaluates `expr` as an i1 condition (int -> != 0).
  bool compile_condition(const ExprNode& expr, RV& out) {
    RV raw;
    if (!compile_expr(expr, raw)) return false;
    if (raw.t.is_ptr()) {
      // A pointer condition means "not null"; lower as p != null via cmp.
      Builder& b = *builder_;
      out = RV{b.emit_cmp(ir::CmpPred::kNe, raw.op, null_ptr()),
               CType::bool_ty()};
      return true;
    }
    return convert(expr.line, raw, CType::bool_ty(), out);
  }

  // --- Loads and stores ---------------------------------------------------

  /// Loads an integer of type `t` from `ptr` (bool is stored as one byte).
  RV load_int(Operand ptr, const CType& t) {
    Builder& b = *builder_;
    const unsigned mem_width = t.width == 1 ? 8 : t.width;
    Operand raw = b.emit_load(ptr, mem_width);
    if (t.width == 1) raw = b.emit_cast(ir::CastOp::kTrunc, raw, 1);
    return RV{raw, t};
  }

  void store_int(Operand ptr, const RV& v) {
    Builder& b = *builder_;
    Operand raw = v.op;
    if (v.t.width == 1) raw = b.emit_cast(ir::CastOp::kZExt, raw, 8);
    b.emit_store(ptr, raw);
  }

  // --- Lvalues -------------------------------------------------------------

  bool compile_lvalue(const ExprNode& expr, LV& out) {
    Builder& b = *builder_;
    switch (expr.kind) {
      case ExprNodeKind::kIdent: {
        const VarInfo* var = lookup(expr.text);
        if (var == nullptr)
          return fail(expr.line, "unknown variable '" + expr.text + "'");
        switch (var->kind) {
          case VarInfo::Kind::kMemScalar:
            out = LV{LV::Kind::kMem, var->base, var->type, 0};
            return true;
          case VarInfo::Kind::kGlobalScalar:
            out = LV{LV::Kind::kMem, b.emit_global_addr(var->global),
                     var->type, 0};
            return true;
          case VarInfo::Kind::kPtrSlot:
            out = LV{LV::Kind::kSlot, Operand::none(), var->type, var->slot};
            return true;
          default:
            return fail(expr.line, "cannot assign to array '" + expr.text + "'");
        }
      }
      case ExprNodeKind::kIndex: {
        RV base;
        CType elem;
        if (!compile_pointer_base(*expr.a, base, elem)) return false;
        RV index;
        if (!compile_expr(*expr.b, index)) return false;
        RV idx64;
        if (!convert(expr.line, index,
                     CType::int_ty(64, index.t.is_signed), idx64))
          return false;
        const Operand scaled =
            b.emit_bin(ir::BinOp::kMul, idx64.op,
                       Operand::constant(byte_size(elem), 64));
        out = LV{LV::Kind::kMem, b.emit_gep(base.op, scaled), elem, 0};
        return true;
      }
      case ExprNodeKind::kUnary:
        if (expr.unary_op == UnaryOp::kDeref) {
          RV ptr;
          if (!compile_expr(*expr.a, ptr)) return false;
          if (!ptr.t.is_ptr())
            return fail(expr.line, "cannot dereference non-pointer");
          out = LV{LV::Kind::kMem, ptr.op,
                   CType::int_ty(ptr.t.elem_width, ptr.t.elem_signed), 0};
          return true;
        }
        return fail(expr.line, "expression is not assignable");
      default:
        return fail(expr.line, "expression is not assignable");
    }
  }

  /// Resolves an expression used as an indexing base: arrays decay to their
  /// base pointer; pointers are used directly. `elem` is the element type.
  bool compile_pointer_base(const ExprNode& expr, RV& base, CType& elem) {
    if (expr.kind == ExprNodeKind::kIdent) {
      const VarInfo* var = lookup(expr.text);
      if (var != nullptr && (var->kind == VarInfo::Kind::kArray ||
                             var->kind == VarInfo::Kind::kGlobalArray)) {
        Builder& b = *builder_;
        const Operand ptr = var->kind == VarInfo::Kind::kArray
                                ? var->base
                                : b.emit_global_addr(var->global);
        base = RV{ptr, CType::ptr_to(var->type.width, var->type.is_signed)};
        elem = var->type;
        return true;
      }
    }
    if (!compile_expr(expr, base)) return false;
    if (!base.t.is_ptr())
      return fail(expr.line, "indexed expression is not a pointer or array");
    elem = CType::int_ty(base.t.elem_width, base.t.elem_signed);
    return true;
  }

  /// Reads the current value of an lvalue.
  bool load_lvalue(const LV& lv, RV& out) {
    if (lv.kind == LV::Kind::kSlot) {
      out = RV{builder_->emit_slot_get(lv.slot), lv.type};
      return true;
    }
    out = load_int(lv.ptr, lv.type);
    return true;
  }

  /// Writes `v` (already converted to the lvalue's type) into the lvalue.
  void store_lvalue(const LV& lv, const RV& v) {
    if (lv.kind == LV::Kind::kSlot) {
      builder_->emit_slot_set(lv.slot, v.op);
      return;
    }
    store_int(lv.ptr, v);
  }

  // --- Expressions ----------------------------------------------------------

  bool compile_expr(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    b.set_line(expr.line);
    switch (expr.kind) {
      case ExprNodeKind::kNum: {
        const unsigned width = expr.number >= (std::uint64_t{1} << 32) ? 64 : 32;
        out = RV{Operand::constant(expr.number, width),
                 CType::int_ty(width, false), /*is_literal=*/true};
        return true;
      }
      case ExprNodeKind::kStr: {
        const std::uint32_t index = intern_string(expr.text);
        out = RV{b.emit_global_addr(index), CType::ptr_to(8, false)};
        return true;
      }
      case ExprNodeKind::kIdent: {
        const VarInfo* var = lookup(expr.text);
        if (var == nullptr)
          return fail(expr.line, "unknown variable '" + expr.text + "'");
        switch (var->kind) {
          case VarInfo::Kind::kMemScalar:
            out = load_int(var->base, var->type);
            return true;
          case VarInfo::Kind::kGlobalScalar:
            out = load_int(b.emit_global_addr(var->global), var->type);
            return true;
          case VarInfo::Kind::kPtrSlot:
            out = RV{b.emit_slot_get(var->slot), var->type};
            return true;
          case VarInfo::Kind::kArray:
            out = RV{var->base,
                     CType::ptr_to(var->type.width, var->type.is_signed)};
            return true;
          case VarInfo::Kind::kGlobalArray:
            out = RV{b.emit_global_addr(var->global),
                     CType::ptr_to(var->type.width, var->type.is_signed)};
            return true;
        }
        return false;
      }
      case ExprNodeKind::kUnary:
        return compile_unary(expr, out);
      case ExprNodeKind::kBinary:
        return compile_binary(expr, out);
      case ExprNodeKind::kTernary:
        return compile_ternary(expr, out);
      case ExprNodeKind::kAssign:
        return compile_assign(expr, out);
      case ExprNodeKind::kCall:
        return compile_call(expr, out);
      case ExprNodeKind::kIndex: {
        LV lv;
        if (!compile_lvalue(expr, lv)) return false;
        return load_lvalue(lv, out);
      }
      case ExprNodeKind::kCast: {
        RV v;
        if (!compile_expr(*expr.a, v)) return false;
        return convert(expr.line, v, expr.cast_type, out);
      }
    }
    return fail(expr.line, "unhandled expression");
  }

  bool compile_unary(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    switch (expr.unary_op) {
      case UnaryOp::kNeg: {
        RV v;
        if (!compile_expr(*expr.a, v)) return false;
        if (!v.t.is_int()) return fail(expr.line, "negating a non-integer");
        // Negated literals stay literal with a signed 32/64-bit type.
        const CType t = CType::int_ty(v.t.width == 1 ? 32 : v.t.width, true);
        RV conv;
        if (!convert(expr.line, v, t, conv)) return false;
        out = RV{b.emit_bin(ir::BinOp::kSub, Operand::constant(0, t.width),
                            conv.op),
                 t};
        return true;
      }
      case UnaryOp::kLogNot: {
        RV cond;
        if (!compile_condition(*expr.a, cond)) return false;
        out = RV{b.emit_cmp(ir::CmpPred::kEq, cond.op, Operand::constant(0, 1)),
                 CType::bool_ty()};
        return true;
      }
      case UnaryOp::kBitNot: {
        RV v;
        if (!compile_expr(*expr.a, v)) return false;
        if (!v.t.is_int() || v.t.width == 1)
          return fail(expr.line, "~ needs an integer");
        const std::uint64_t ones = v.t.width >= 64
                                       ? ~std::uint64_t{0}
                                       : (std::uint64_t{1} << v.t.width) - 1;
        out = RV{b.emit_bin(ir::BinOp::kXor, v.op,
                            Operand::constant(ones, v.t.width)),
                 v.t};
        return true;
      }
      case UnaryOp::kDeref: {
        LV lv;
        if (!compile_lvalue(expr, lv)) return false;
        return load_lvalue(lv, out);
      }
      case UnaryOp::kAddrOf: {
        // &x for scalar variables, &arr[i] for elements.
        const ExprNode& target = *expr.a;
        if (target.kind == ExprNodeKind::kIdent ||
            target.kind == ExprNodeKind::kIndex) {
          LV lv;
          if (!compile_lvalue(target, lv)) return false;
          if (lv.kind != LV::Kind::kMem)
            return fail(expr.line, "cannot take the address of a pointer variable");
          out = RV{lv.ptr, CType::ptr_to(lv.type.width == 1 ? 8 : lv.type.width,
                                         lv.type.is_signed)};
          return true;
        }
        return fail(expr.line, "cannot take the address of this expression");
      }
      case UnaryOp::kPreInc:
      case UnaryOp::kPreDec:
      case UnaryOp::kPostInc:
      case UnaryOp::kPostDec:
        return compile_incdec(expr, out);
    }
    return fail(expr.line, "unhandled unary operator");
  }

  bool compile_incdec(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    const bool is_inc = expr.unary_op == UnaryOp::kPreInc ||
                        expr.unary_op == UnaryOp::kPostInc;
    const bool is_post = expr.unary_op == UnaryOp::kPostInc ||
                         expr.unary_op == UnaryOp::kPostDec;
    LV lv;
    if (!compile_lvalue(*expr.a, lv)) return false;
    RV old_val;
    if (!load_lvalue(lv, old_val)) return false;
    RV new_val;
    if (lv.type.is_ptr()) {
      const std::uint64_t step = lv.type.elem_width / 8;
      const Operand delta = Operand::constant(
          is_inc ? step : static_cast<std::uint64_t>(-static_cast<std::int64_t>(step)),
          64);
      new_val = RV{b.emit_gep(old_val.op, delta), lv.type};
    } else {
      const Operand one = Operand::constant(1, lv.type.width);
      new_val = RV{b.emit_bin(is_inc ? ir::BinOp::kAdd : ir::BinOp::kSub,
                              old_val.op, one),
                   lv.type};
    }
    store_lvalue(lv, new_val);
    out = is_post ? old_val : new_val;
    return true;
  }

  bool compile_binary(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    if (expr.binary_op == BinaryOp::kLogAnd ||
        expr.binary_op == BinaryOp::kLogOr)
      return compile_logical(expr, out);

    RV lhs, rhs;
    if (!compile_expr(*expr.a, lhs)) return false;
    if (!compile_expr(*expr.b, rhs)) return false;

    // Pointer arithmetic and pointer comparisons.
    if (lhs.t.is_ptr() || rhs.t.is_ptr())
      return compile_pointer_binary(expr, lhs, rhs, out);

    if (!lhs.t.is_int() || !rhs.t.is_int())
      return fail(expr.line, "invalid operands to binary operator");

    const bool is_shift =
        expr.binary_op == BinaryOp::kShl || expr.binary_op == BinaryOp::kShr;
    const CType ct = is_shift
                         ? CType::int_ty(lhs.t.width == 1 ? 32 : lhs.t.width,
                                         lhs.t.is_signed)
                         : common_type(lhs, rhs);
    RV a, c;
    if (!convert(expr.line, lhs, ct, a)) return false;
    if (!convert(expr.line, rhs, ct, c)) return false;

    const bool both_signed = ct.is_signed;
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        out = RV{b.emit_bin(ir::BinOp::kAdd, a.op, c.op), ct};
        return true;
      case BinaryOp::kSub:
        out = RV{b.emit_bin(ir::BinOp::kSub, a.op, c.op), ct};
        return true;
      case BinaryOp::kMul:
        out = RV{b.emit_bin(ir::BinOp::kMul, a.op, c.op), ct};
        return true;
      case BinaryOp::kDiv:
        out = RV{b.emit_bin(both_signed ? ir::BinOp::kSDiv : ir::BinOp::kUDiv,
                            a.op, c.op),
                 ct};
        return true;
      case BinaryOp::kRem:
        out = RV{b.emit_bin(both_signed ? ir::BinOp::kSRem : ir::BinOp::kURem,
                            a.op, c.op),
                 ct};
        return true;
      case BinaryOp::kAnd:
        out = RV{b.emit_bin(ir::BinOp::kAnd, a.op, c.op), ct};
        return true;
      case BinaryOp::kOr:
        out = RV{b.emit_bin(ir::BinOp::kOr, a.op, c.op), ct};
        return true;
      case BinaryOp::kXor:
        out = RV{b.emit_bin(ir::BinOp::kXor, a.op, c.op), ct};
        return true;
      case BinaryOp::kShl:
        out = RV{b.emit_bin(ir::BinOp::kShl, a.op, c.op), ct};
        return true;
      case BinaryOp::kShr:
        out = RV{b.emit_bin(ct.is_signed ? ir::BinOp::kAShr : ir::BinOp::kLShr,
                            a.op, c.op),
                 ct};
        return true;
      case BinaryOp::kEq:
        out = RV{b.emit_cmp(ir::CmpPred::kEq, a.op, c.op), CType::bool_ty()};
        return true;
      case BinaryOp::kNe:
        out = RV{b.emit_cmp(ir::CmpPred::kNe, a.op, c.op), CType::bool_ty()};
        return true;
      case BinaryOp::kLt:
        out = RV{b.emit_cmp(both_signed ? ir::CmpPred::kSlt : ir::CmpPred::kUlt,
                            a.op, c.op),
                 CType::bool_ty()};
        return true;
      case BinaryOp::kLe:
        out = RV{b.emit_cmp(both_signed ? ir::CmpPred::kSle : ir::CmpPred::kUle,
                            a.op, c.op),
                 CType::bool_ty()};
        return true;
      case BinaryOp::kGt:
        out = RV{b.emit_cmp(both_signed ? ir::CmpPred::kSgt : ir::CmpPred::kUgt,
                            a.op, c.op),
                 CType::bool_ty()};
        return true;
      case BinaryOp::kGe:
        out = RV{b.emit_cmp(both_signed ? ir::CmpPred::kSge : ir::CmpPred::kUge,
                            a.op, c.op),
                 CType::bool_ty()};
        return true;
      default:
        return fail(expr.line, "unhandled binary operator");
    }
  }

  bool compile_pointer_binary(const ExprNode& expr, const RV& lhs,
                              const RV& rhs, RV& out) {
    Builder& b = *builder_;
    // ptr == / != ptr (including null literals).
    if (expr.binary_op == BinaryOp::kEq || expr.binary_op == BinaryOp::kNe) {
      RV l = lhs, r = rhs;
      if (!l.t.is_ptr()) {
        if (!convert(expr.line, l, r.t, l)) return false;
      }
      if (!r.t.is_ptr()) {
        if (!convert(expr.line, r, l.t, r)) return false;
      }
      out = RV{b.emit_cmp(expr.binary_op == BinaryOp::kEq ? ir::CmpPred::kEq
                                                          : ir::CmpPred::kNe,
                          l.op, r.op),
               CType::bool_ty()};
      return true;
    }
    // ptr + int / ptr - int / int + ptr.
    const bool lhs_is_ptr = lhs.t.is_ptr();
    const RV& ptr = lhs_is_ptr ? lhs : rhs;
    const RV& offset = lhs_is_ptr ? rhs : lhs;
    if (offset.t.is_ptr())
      return fail(expr.line, "pointer-pointer arithmetic is not supported");
    if (expr.binary_op != BinaryOp::kAdd &&
        !(expr.binary_op == BinaryOp::kSub && lhs_is_ptr))
      return fail(expr.line, "invalid pointer operation");
    RV off64;
    if (!convert(expr.line, offset, CType::int_ty(64, offset.t.is_signed),
                 off64))
      return false;
    Operand scaled = b.emit_bin(ir::BinOp::kMul, off64.op,
                                Operand::constant(ptr.t.elem_width / 8, 64));
    if (expr.binary_op == BinaryOp::kSub)
      scaled = b.emit_bin(ir::BinOp::kSub, Operand::constant(0, 64), scaled);
    out = RV{b.emit_gep(ptr.op, scaled), ptr.t};
    return true;
  }

  bool compile_logical(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    const bool is_and = expr.binary_op == BinaryOp::kLogAnd;
    const Operand tmp = b.emit_alloca(1);
    RV lhs;
    if (!compile_condition(*expr.a, lhs)) return false;
    store_int(tmp, RV{lhs.op, CType::bool_ty()});
    const std::uint32_t rhs_bb = b.fn().add_block(is_and ? "and.rhs" : "or.rhs");
    const std::uint32_t end_bb = b.fn().add_block(is_and ? "and.end" : "or.end");
    if (is_and)
      b.emit_br(lhs.op, rhs_bb, end_bb);
    else
      b.emit_br(lhs.op, end_bb, rhs_bb);
    b.set_insert(rhs_bb);
    RV rhs;
    if (!compile_condition(*expr.b, rhs)) return false;
    store_int(tmp, RV{rhs.op, CType::bool_ty()});
    if (!b.block_terminated()) b.emit_jmp(end_bb);
    b.set_insert(end_bb);
    out = load_int(tmp, CType::bool_ty());
    return true;
  }

  bool compile_ternary(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    RV cond;
    if (!compile_condition(*expr.a, cond)) return false;
    // Evaluate both arms into a temporary of their common type.
    // (Arms are evaluated lazily via control flow, like C.)
    const std::uint32_t then_bb = b.fn().add_block("sel.then");
    const std::uint32_t else_bb = b.fn().add_block("sel.else");
    const std::uint32_t end_bb = b.fn().add_block("sel.end");

    // We need the result type before emitting stores; compile arms into
    // separate blocks and unify afterwards is circular, so restrict the
    // common type to u64 storage and convert on load.
    const Operand tmp = b.emit_alloca(8);
    b.emit_br(cond.op, then_bb, else_bb);

    b.set_insert(then_bb);
    RV then_v;
    if (!compile_expr(*expr.b, then_v)) return false;
    if (then_v.t.is_ptr())
      return fail(expr.line, "ternary on pointers is not supported");
    RV then64;
    if (!convert(expr.line, then_v, CType::int_ty(64, then_v.t.is_signed),
                 then64))
      return false;
    store_int(tmp, then64);
    if (!b.block_terminated()) b.emit_jmp(end_bb);

    b.set_insert(else_bb);
    RV else_v;
    if (!compile_expr(*expr.c, else_v)) return false;
    if (else_v.t.is_ptr())
      return fail(expr.line, "ternary on pointers is not supported");
    RV else64;
    if (!convert(expr.line, else_v, CType::int_ty(64, else_v.t.is_signed),
                 else64))
      return false;
    store_int(tmp, else64);
    if (!b.block_terminated()) b.emit_jmp(end_bb);

    b.set_insert(end_bb);
    const CType result =
        common_type(RV{Operand::none(), then_v.t}, RV{Operand::none(), else_v.t});
    RV wide = load_int(tmp, CType::int_ty(64, result.is_signed));
    return convert(expr.line, wide, result, out);
  }

  bool compile_assign(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    LV lv;
    if (!compile_lvalue(*expr.a, lv)) return false;
    RV value;
    if (!compile_expr(*expr.b, value)) return false;

    if (!expr.compound_assign) {
      RV converted;
      if (!convert(expr.line, value, lv.type, converted)) return false;
      store_lvalue(lv, converted);
      out = converted;
      return true;
    }

    // Compound assignment: load, combine, store.
    RV current;
    if (!load_lvalue(lv, current)) return false;
    if (lv.type.is_ptr()) {
      // p += n / p -= n.
      if (expr.binary_op != BinaryOp::kAdd && expr.binary_op != BinaryOp::kSub)
        return fail(expr.line, "invalid compound assignment on a pointer");
      RV off64;
      if (!convert(expr.line, value, CType::int_ty(64, value.t.is_signed),
                   off64))
        return false;
      Operand scaled = b.emit_bin(ir::BinOp::kMul, off64.op,
                                  Operand::constant(lv.type.elem_width / 8, 64));
      if (expr.binary_op == BinaryOp::kSub)
        scaled = b.emit_bin(ir::BinOp::kSub, Operand::constant(0, 64), scaled);
      RV updated{b.emit_gep(current.op, scaled), lv.type};
      store_lvalue(lv, updated);
      out = updated;
      return true;
    }

    RV rhs_conv;
    if (!convert(expr.line, value, lv.type, rhs_conv)) return false;
    ir::BinOp op;
    switch (expr.binary_op) {
      case BinaryOp::kAdd: op = ir::BinOp::kAdd; break;
      case BinaryOp::kSub: op = ir::BinOp::kSub; break;
      case BinaryOp::kMul: op = ir::BinOp::kMul; break;
      case BinaryOp::kDiv:
        op = lv.type.is_signed ? ir::BinOp::kSDiv : ir::BinOp::kUDiv;
        break;
      case BinaryOp::kRem:
        op = lv.type.is_signed ? ir::BinOp::kSRem : ir::BinOp::kURem;
        break;
      case BinaryOp::kAnd: op = ir::BinOp::kAnd; break;
      case BinaryOp::kOr: op = ir::BinOp::kOr; break;
      case BinaryOp::kXor: op = ir::BinOp::kXor; break;
      case BinaryOp::kShl: op = ir::BinOp::kShl; break;
      case BinaryOp::kShr:
        op = lv.type.is_signed ? ir::BinOp::kAShr : ir::BinOp::kLShr;
        break;
      default:
        return fail(expr.line, "invalid compound assignment operator");
    }
    RV updated{b.emit_bin(op, current.op, rhs_conv.op), lv.type};
    store_lvalue(lv, updated);
    out = updated;
    return true;
  }

  bool compile_call(const ExprNode& expr, RV& out) {
    Builder& b = *builder_;
    // Builtins.
    if (expr.text == "out") {
      if (expr.args.size() != 1) return fail(expr.line, "out() takes 1 argument");
      RV v;
      if (!compile_expr(*expr.args[0], v)) return false;
      if (v.t.is_ptr()) return fail(expr.line, "out() takes an integer");
      RV v64;
      if (!convert(expr.line, v, CType::int_ty(64, false), v64)) return false;
      b.emit_intrinsic(ir::Intrinsic::kOut, {v64.op});
      out = RV{Operand::constant(0, 32), CType::int_ty(32, false)};
      return true;
    }
    if (expr.text == "check") {
      if (expr.args.size() != 1)
        return fail(expr.line, "check() takes 1 argument");
      RV cond;
      if (!compile_condition(*expr.args[0], cond)) return false;
      b.emit_intrinsic(ir::Intrinsic::kAssert, {cond.op});
      out = RV{Operand::constant(0, 32), CType::int_ty(32, false)};
      return true;
    }
    if (expr.text == "stop") {
      if (!expr.args.empty()) return fail(expr.line, "stop() takes no arguments");
      b.emit_intrinsic(ir::Intrinsic::kAbort, {});
      out = RV{Operand::constant(0, 32), CType::int_ty(32, false)};
      return true;
    }
    if (expr.text == "checked_add" || expr.text == "checked_mul") {
      if (expr.args.size() != 2)
        return fail(expr.line, expr.text + "() takes 2 arguments");
      RV lhs, rhs;
      if (!compile_expr(*expr.args[0], lhs)) return false;
      if (!compile_expr(*expr.args[1], rhs)) return false;
      if (!lhs.t.is_int() || !rhs.t.is_int())
        return fail(expr.line, expr.text + "() takes integers");
      const CType ct = common_type(lhs, rhs);
      RV a, c;
      if (!convert(expr.line, lhs, ct, a)) return false;
      if (!convert(expr.line, rhs, ct, c)) return false;
      const Operand result = b.emit_intrinsic(
          expr.text == "checked_add" ? ir::Intrinsic::kCheckedAdd
                                     : ir::Intrinsic::kCheckedMul,
          {a.op, c.op}, ct.width);
      out = RV{result, ct};
      return true;
    }

    auto it = functions_.find(expr.text);
    if (it == functions_.end())
      return fail(expr.line, "unknown function '" + expr.text + "'");
    const FuncSig& sig = it->second;
    if (sig.params.size() != expr.args.size())
      return fail(expr.line, "wrong number of arguments to '" + expr.text + "'");
    std::vector<Operand> args;
    args.reserve(expr.args.size());
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
      RV raw;
      if (!compile_expr(*expr.args[i], raw)) return false;
      // Arrays decay to pointers at call sites.
      if (!raw.t.is_ptr() && sig.params[i].is_ptr() &&
          expr.args[i]->kind == ExprNodeKind::kIdent) {
        CType elem;
        if (!compile_pointer_base(*expr.args[i], raw, elem)) return false;
      }
      RV conv;
      if (!convert(expr.args[i]->line, raw, sig.params[i], conv)) return false;
      args.push_back(conv.op);
    }
    const Operand result = b.emit_call(sig.index, args);
    out = RV{result, sig.ret};
    return true;
  }

  std::uint32_t intern_string(const std::string& text) {
    auto it = string_globals_.find(text);
    if (it != string_globals_.end()) return it->second;
    ir::Global g;
    g.name = ".str." + std::to_string(string_globals_.size());
    g.size = text.size() + 1;  // NUL-terminated
    g.init.assign(text.begin(), text.end());
    g.init.push_back(0);
    g.writable = false;
    const std::uint32_t index = module_.add_global(std::move(g));
    string_globals_[text] = index;
    return index;
  }

  ir::Module& module_;
  std::string& error_;
  Builder* builder_ = nullptr;
  CType current_ret_;
  std::unordered_map<std::string, VarInfo> globals_;
  std::unordered_map<std::string, FuncSig> functions_;
  std::unordered_map<std::string, std::uint32_t> string_globals_;
  std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
  std::vector<std::uint32_t> break_targets_;
  std::vector<std::uint32_t> continue_targets_;
};

}  // namespace

bool compile(const std::string& source, ir::Module& module,
             std::string& error) {
  Program program;
  if (!parse_program(source, program, error)) return false;
  Compiler compiler(module, error);
  return compiler.run(program);
}

}  // namespace pbse::minic
