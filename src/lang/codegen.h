// MiniC -> Mini-IR code generation with integrated type checking.
//
// Calling convention: IR registers 0..N-1 of a function are its parameters
// (the VM binds arguments there on call). Mutable integer locals live in
// allocas; mutable pointer locals live in frame pointer-slots. Globals are
// module byte arrays, little-endian encoded for elements wider than u8.
//
// Builtins available to MiniC programs:
//   out(x)              observable output sink
//   check(cond)         reports an assertion-failure bug when cond == 0
//   stop()              terminates the path (normal exit)
//   checked_add(a, b)   a + b, reporting an integer-overflow bug on wrap
//   checked_mul(a, b)   a * b, reporting an integer-overflow bug on wrap
#pragma once

#include <string>

#include "ir/ir.h"
#include "lang/ast.h"

namespace pbse::minic {

/// Compiles `source` into `module` (which must be empty and un-finalized).
/// On failure returns false and fills `error` with "line N: message".
/// On success the module is left un-finalized so callers can add more.
bool compile(const std::string& source, ir::Module& module,
             std::string& error);

}  // namespace pbse::minic
