#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace pbse::minic {

const char* token_name(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kString: return "string";
    case Tok::kCharLit: return "char literal";
    case Tok::kKwVoid: return "void";
    case Tok::kKwBool: return "bool";
    case Tok::kKwU8: return "u8";
    case Tok::kKwU16: return "u16";
    case Tok::kKwU32: return "u32";
    case Tok::kKwU64: return "u64";
    case Tok::kKwI8: return "i8";
    case Tok::kKwI16: return "i16";
    case Tok::kKwI32: return "i32";
    case Tok::kKwI64: return "i64";
    case Tok::kKwIf: return "if";
    case Tok::kKwElse: return "else";
    case Tok::kKwWhile: return "while";
    case Tok::kKwFor: return "for";
    case Tok::kKwBreak: return "break";
    case Tok::kKwContinue: return "continue";
    case Tok::kKwReturn: return "return";
    case Tok::kKwTrue: return "true";
    case Tok::kKwFalse: return "false";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kTilde: return "~";
    case Tok::kBang: return "!";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kLe: return "<=";
    case Tok::kGt: return ">";
    case Tok::kGe: return ">=";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    case Tok::kStarAssign: return "*=";
    case Tok::kSlashAssign: return "/=";
    case Tok::kPercentAssign: return "%=";
    case Tok::kAmpAssign: return "&=";
    case Tok::kPipeAssign: return "|=";
    case Tok::kCaretAssign: return "^=";
    case Tok::kShlAssign: return "<<=";
    case Tok::kShrAssign: return ">>=";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
    case Tok::kQuestion: return "?";
    case Tok::kColon: return ":";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const auto* map = new std::unordered_map<std::string, Tok>{
      {"void", Tok::kKwVoid},   {"bool", Tok::kKwBool},
      {"u8", Tok::kKwU8},       {"u16", Tok::kKwU16},
      {"u32", Tok::kKwU32},     {"u64", Tok::kKwU64},
      {"i8", Tok::kKwI8},       {"i16", Tok::kKwI16},
      {"i32", Tok::kKwI32},     {"i64", Tok::kKwI64},
      {"if", Tok::kKwIf},       {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile}, {"for", Tok::kKwFor},
      {"break", Tok::kKwBreak}, {"continue", Tok::kKwContinue},
      {"return", Tok::kKwReturn},
      {"true", Tok::kKwTrue},   {"false", Tok::kKwFalse},
  };
  return *map;
}

struct Cursor {
  const std::string& src;
  std::size_t pos = 0;
  std::uint32_t line = 1;

  bool done() const { return pos >= src.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  char take() {
    const char c = src[pos++];
    if (c == '\n') ++line;
    return c;
  }
};

bool lex_escape(Cursor& cur, std::uint64_t& value, std::string& error) {
  if (cur.done()) {
    error = "line " + std::to_string(cur.line) + ": unterminated escape";
    return false;
  }
  const char c = cur.take();
  switch (c) {
    case 'n': value = '\n'; return true;
    case 't': value = '\t'; return true;
    case 'r': value = '\r'; return true;
    case '0': value = '\0'; return true;
    case '\\': value = '\\'; return true;
    case '\'': value = '\''; return true;
    case '"': value = '"'; return true;
    case 'x': {
      std::uint64_t v = 0;
      int digits = 0;
      while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
        const char h = cur.take();
        v = v * 16 + (std::isdigit(static_cast<unsigned char>(h))
                          ? h - '0'
                          : std::tolower(h) - 'a' + 10);
        ++digits;
      }
      if (digits == 0) {
        error = "line " + std::to_string(cur.line) + ": \\x needs hex digits";
        return false;
      }
      value = v;
      return true;
    }
    default:
      error = "line " + std::to_string(cur.line) + ": unknown escape \\" +
              std::string(1, c);
      return false;
  }
}

}  // namespace

bool lex(const std::string& source, std::vector<Token>& tokens,
         std::string& error) {
  Cursor cur{source};
  tokens.clear();

  auto push = [&tokens](Tok kind, std::uint32_t line) {
    Token t;
    t.kind = kind;
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (!cur.done()) {
    const char c = cur.peek();
    const std::uint32_t line = cur.line;
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.take();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.take();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.take();
      cur.take();
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.take();
      if (cur.done()) {
        error = "line " + std::to_string(line) + ": unterminated /* comment";
        return false;
      }
      cur.take();
      cur.take();
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
             cur.peek() == '_')
        text += cur.take();
      auto it = keywords().find(text);
      Token t;
      t.kind = it == keywords().end() ? Tok::kIdent : it->second;
      t.text = std::move(text);
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t v = 0;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        cur.take();
        cur.take();
        if (!std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
          error = "line " + std::to_string(line) + ": 0x needs hex digits";
          return false;
        }
        while (std::isxdigit(static_cast<unsigned char>(cur.peek()))) {
          const char h = cur.take();
          v = v * 16 + (std::isdigit(static_cast<unsigned char>(h))
                            ? h - '0'
                            : std::tolower(h) - 'a' + 10);
        }
      } else {
        while (std::isdigit(static_cast<unsigned char>(cur.peek())))
          v = v * 10 + (cur.take() - '0');
      }
      Token t;
      t.kind = Tok::kNumber;
      t.number = v;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // Char literal.
    if (c == '\'') {
      cur.take();
      std::uint64_t v = 0;
      if (cur.peek() == '\\') {
        cur.take();
        if (!lex_escape(cur, v, error)) return false;
      } else if (!cur.done()) {
        v = static_cast<unsigned char>(cur.take());
      }
      if (cur.peek() != '\'') {
        error = "line " + std::to_string(line) + ": unterminated char literal";
        return false;
      }
      cur.take();
      Token t;
      t.kind = Tok::kCharLit;
      t.number = v;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // String literal.
    if (c == '"') {
      cur.take();
      std::string text;
      while (!cur.done() && cur.peek() != '"') {
        if (cur.peek() == '\\') {
          cur.take();
          std::uint64_t v = 0;
          if (!lex_escape(cur, v, error)) return false;
          text += static_cast<char>(v);
        } else {
          text += cur.take();
        }
      }
      if (cur.done()) {
        error = "line " + std::to_string(line) + ": unterminated string";
        return false;
      }
      cur.take();
      Token t;
      t.kind = Tok::kString;
      t.text = std::move(text);
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators / punctuation, longest match first.
    auto two = [&cur]() { return std::string{cur.peek(), cur.peek(1)}; };
    auto three = [&cur]() {
      return std::string{cur.peek(), cur.peek(1), cur.peek(2)};
    };
    if (three() == "<<=") { cur.take(); cur.take(); cur.take(); push(Tok::kShlAssign, line); continue; }
    if (three() == ">>=") { cur.take(); cur.take(); cur.take(); push(Tok::kShrAssign, line); continue; }
    const std::string t2 = two();
    static const std::unordered_map<std::string, Tok> two_char = {
        {"<<", Tok::kShl}, {">>", Tok::kShr}, {"==", Tok::kEq},
        {"!=", Tok::kNe},  {"<=", Tok::kLe},  {">=", Tok::kGe},
        {"&&", Tok::kAndAnd}, {"||", Tok::kOrOr},
        {"+=", Tok::kPlusAssign}, {"-=", Tok::kMinusAssign},
        {"*=", Tok::kStarAssign}, {"/=", Tok::kSlashAssign},
        {"%=", Tok::kPercentAssign}, {"&=", Tok::kAmpAssign},
        {"|=", Tok::kPipeAssign}, {"^=", Tok::kCaretAssign},
        {"++", Tok::kPlusPlus}, {"--", Tok::kMinusMinus},
    };
    if (auto it = two_char.find(t2); it != two_char.end()) {
      cur.take();
      cur.take();
      push(it->second, line);
      continue;
    }
    static const std::unordered_map<char, Tok> one_char = {
        {'(', Tok::kLParen}, {')', Tok::kRParen}, {'{', Tok::kLBrace},
        {'}', Tok::kRBrace}, {'[', Tok::kLBracket}, {']', Tok::kRBracket},
        {',', Tok::kComma},  {';', Tok::kSemi},   {'=', Tok::kAssign},
        {'+', Tok::kPlus},   {'-', Tok::kMinus},  {'*', Tok::kStar},
        {'/', Tok::kSlash},  {'%', Tok::kPercent},{'&', Tok::kAmp},
        {'|', Tok::kPipe},   {'^', Tok::kCaret},  {'~', Tok::kTilde},
        {'!', Tok::kBang},   {'<', Tok::kLt},     {'>', Tok::kGt},
        {'?', Tok::kQuestion}, {':', Tok::kColon},
    };
    if (auto it = one_char.find(c); it != one_char.end()) {
      cur.take();
      push(it->second, line);
      continue;
    }
    error = "line " + std::to_string(line) + ": unexpected character '" +
            std::string(1, c) + "'";
    return false;
  }
  push(Tok::kEof, cur.line);
  return true;
}

}  // namespace pbse::minic
