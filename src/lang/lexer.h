// MiniC lexer. Supports //-comments, /* */-comments, decimal and 0x
// integer literals, char literals with the usual escapes, and strings.
#pragma once

#include <string>
#include <vector>

#include "lang/token.h"

namespace pbse::minic {

/// Tokenizes `source`. On a lexical error, returns false and fills `error`
/// with a "line N: message" description.
bool lex(const std::string& source, std::vector<Token>& tokens,
         std::string& error);

}  // namespace pbse::minic
