#include "lang/parser.h"

#include <optional>

#include "lang/lexer.h"

namespace pbse::minic {

std::string CType::to_string() const {
  switch (k) {
    case K::kVoid: return "void";
    case K::kInt:
      if (width == 1) return "bool";
      return std::string(is_signed ? "i" : "u") + std::to_string(width);
    case K::kPtr:
      return std::string(elem_signed ? "i" : "u") +
             std::to_string(elem_width) + "*";
  }
  return "?";
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string& error)
      : tokens_(std::move(tokens)), error_(error) {}

  bool run(Program& out) {
    while (!at(Tok::kEof)) {
      if (!top_level(out)) return false;
    }
    return true;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead(std::size_t n = 1) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  bool at(Tok kind) const { return cur().kind == kind; }
  Token take() { return tokens_[pos_++]; }
  bool accept(Tok kind) {
    if (!at(kind)) return false;
    ++pos_;
    return true;
  }
  bool expect(Tok kind) {
    if (accept(kind)) return true;
    fail(std::string("expected '") + token_name(kind) + "', got '" +
         token_name(cur().kind) + "'");
    return false;
  }
  bool fail(const std::string& msg) {
    if (error_.empty())
      error_ = "line " + std::to_string(cur().line) + ": " + msg;
    return false;
  }

  static std::optional<CType> base_type_of(Tok kind) {
    switch (kind) {
      case Tok::kKwVoid: return CType::void_ty();
      case Tok::kKwBool: return CType::bool_ty();
      case Tok::kKwU8: return CType::int_ty(8, false);
      case Tok::kKwU16: return CType::int_ty(16, false);
      case Tok::kKwU32: return CType::int_ty(32, false);
      case Tok::kKwU64: return CType::int_ty(64, false);
      case Tok::kKwI8: return CType::int_ty(8, true);
      case Tok::kKwI16: return CType::int_ty(16, true);
      case Tok::kKwI32: return CType::int_ty(32, true);
      case Tok::kKwI64: return CType::int_ty(64, true);
      default: return std::nullopt;
    }
  }

  bool at_type() const { return base_type_of(cur().kind).has_value(); }

  /// type := base ('*')?
  bool parse_type(CType& out) {
    auto base = base_type_of(cur().kind);
    if (!base) return fail("expected a type");
    take();
    out = *base;
    if (accept(Tok::kStar)) {
      if (!out.is_int() || out.width == 1)
        return fail("pointers must point to u8..i64");
      out = CType::ptr_to(out.width, out.is_signed);
    }
    return true;
  }

  bool top_level(Program& out) {
    const std::uint32_t line = cur().line;
    CType type;
    if (!parse_type(type)) return false;
    if (!at(Tok::kIdent)) return fail("expected a name");
    std::string name = take().text;

    if (at(Tok::kLParen)) return function_rest(out, line, type, std::move(name));
    return global_rest(out, line, type, std::move(name));
  }

  bool global_rest(Program& out, std::uint32_t line, CType type,
                   std::string name) {
    GlobalDecl g;
    g.line = line;
    g.type = type;
    g.name = std::move(name);
    if (accept(Tok::kLBracket)) {
      if (!at(Tok::kNumber)) return fail("array size must be a number");
      g.is_array = true;
      g.array_size = take().number;
      if (!expect(Tok::kRBracket)) return false;
    }
    if (accept(Tok::kAssign)) {
      if (!expect(Tok::kLBrace)) return false;
      while (!at(Tok::kRBrace)) {
        if (at(Tok::kNumber) || at(Tok::kCharLit)) {
          g.init_list.push_back(take().number);
        } else {
          return fail("global initializers must be literal numbers");
        }
        if (!accept(Tok::kComma)) break;
      }
      if (!expect(Tok::kRBrace)) return false;
    }
    if (!expect(Tok::kSemi)) return false;
    out.globals.push_back(std::move(g));
    return true;
  }

  bool function_rest(Program& out, std::uint32_t line, CType ret,
                     std::string name) {
    FuncDecl fn;
    fn.line = line;
    fn.ret = ret;
    fn.name = std::move(name);
    if (!expect(Tok::kLParen)) return false;
    if (!at(Tok::kRParen)) {
      do {
        ParamDecl p;
        if (!parse_type(p.type)) return false;
        if (p.type.is_void()) return fail("parameters cannot be void");
        if (!at(Tok::kIdent)) return fail("expected parameter name");
        p.name = take().text;
        fn.params.push_back(std::move(p));
      } while (accept(Tok::kComma));
    }
    if (!expect(Tok::kRParen)) return false;
    fn.body = block();
    if (fn.body == nullptr) return false;
    out.functions.push_back(std::move(fn));
    return true;
  }

  StmtPtr block() {
    const std::uint32_t line = cur().line;
    if (!expect(Tok::kLBrace)) return nullptr;
    auto node = std::make_unique<StmtNode>();
    node->kind = StmtNodeKind::kBlock;
    node->line = line;
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
      StmtPtr s = statement();
      if (s == nullptr) return nullptr;
      node->stmts.push_back(std::move(s));
    }
    if (!expect(Tok::kRBrace)) return nullptr;
    return node;
  }

  StmtPtr statement() {
    const std::uint32_t line = cur().line;
    if (at(Tok::kLBrace)) return block();
    if (at_type()) return declaration();
    if (accept(Tok::kKwIf)) return if_rest(line);
    if (accept(Tok::kKwWhile)) return while_rest(line);
    if (accept(Tok::kKwFor)) return for_rest(line);
    if (accept(Tok::kKwBreak)) {
      if (!expect(Tok::kSemi)) return nullptr;
      auto node = std::make_unique<StmtNode>();
      node->kind = StmtNodeKind::kBreak;
      node->line = line;
      return node;
    }
    if (accept(Tok::kKwContinue)) {
      if (!expect(Tok::kSemi)) return nullptr;
      auto node = std::make_unique<StmtNode>();
      node->kind = StmtNodeKind::kContinue;
      node->line = line;
      return node;
    }
    if (accept(Tok::kKwReturn)) {
      auto node = std::make_unique<StmtNode>();
      node->kind = StmtNodeKind::kReturn;
      node->line = line;
      if (!at(Tok::kSemi)) {
        node->expr = expression();
        if (node->expr == nullptr) return nullptr;
      }
      if (!expect(Tok::kSemi)) return nullptr;
      return node;
    }
    // Expression statement.
    auto node = std::make_unique<StmtNode>();
    node->kind = StmtNodeKind::kExpr;
    node->line = line;
    node->expr = expression();
    if (node->expr == nullptr) return nullptr;
    if (!expect(Tok::kSemi)) return nullptr;
    return node;
  }

  StmtPtr declaration() {
    auto node = std::make_unique<StmtNode>();
    node->kind = StmtNodeKind::kDecl;
    node->line = cur().line;
    if (!parse_type(node->decl_type)) return nullptr;
    if (node->decl_type.is_void()) {
      fail("cannot declare a void variable");
      return nullptr;
    }
    if (!at(Tok::kIdent)) {
      fail("expected variable name");
      return nullptr;
    }
    node->name = take().text;
    if (accept(Tok::kLBracket)) {
      if (!at(Tok::kNumber)) {
        fail("array size must be a number literal");
        return nullptr;
      }
      node->is_array = true;
      node->array_size = take().number;
      if (!expect(Tok::kRBracket)) return nullptr;
    }
    if (accept(Tok::kAssign)) {
      if (node->is_array) {
        if (!expect(Tok::kLBrace)) return nullptr;
        node->has_init_list = true;
        while (!at(Tok::kRBrace)) {
          if (at(Tok::kNumber) || at(Tok::kCharLit)) {
            node->init_list.push_back(take().number);
          } else {
            fail("array initializers must be literal numbers");
            return nullptr;
          }
          if (!accept(Tok::kComma)) break;
        }
        if (!expect(Tok::kRBrace)) return nullptr;
      } else {
        node->expr = expression();
        if (node->expr == nullptr) return nullptr;
      }
    }
    if (!expect(Tok::kSemi)) return nullptr;
    return node;
  }

  StmtPtr if_rest(std::uint32_t line) {
    auto node = std::make_unique<StmtNode>();
    node->kind = StmtNodeKind::kIf;
    node->line = line;
    if (!expect(Tok::kLParen)) return nullptr;
    node->expr = expression();
    if (node->expr == nullptr) return nullptr;
    if (!expect(Tok::kRParen)) return nullptr;
    node->body = statement();
    if (node->body == nullptr) return nullptr;
    if (accept(Tok::kKwElse)) {
      node->else_body = statement();
      if (node->else_body == nullptr) return nullptr;
    }
    return node;
  }

  StmtPtr while_rest(std::uint32_t line) {
    auto node = std::make_unique<StmtNode>();
    node->kind = StmtNodeKind::kWhile;
    node->line = line;
    if (!expect(Tok::kLParen)) return nullptr;
    node->expr = expression();
    if (node->expr == nullptr) return nullptr;
    if (!expect(Tok::kRParen)) return nullptr;
    node->body = statement();
    if (node->body == nullptr) return nullptr;
    return node;
  }

  StmtPtr for_rest(std::uint32_t line) {
    auto node = std::make_unique<StmtNode>();
    node->kind = StmtNodeKind::kFor;
    node->line = line;
    if (!expect(Tok::kLParen)) return nullptr;
    if (!accept(Tok::kSemi)) {
      if (at_type()) {
        node->for_init = declaration();  // consumes the ';'
      } else {
        auto init = std::make_unique<StmtNode>();
        init->kind = StmtNodeKind::kExpr;
        init->line = cur().line;
        init->expr = expression();
        if (init->expr == nullptr) return nullptr;
        node->for_init = std::move(init);
        if (!expect(Tok::kSemi)) return nullptr;
      }
      if (node->for_init == nullptr) return nullptr;
    }
    if (!at(Tok::kSemi)) {
      node->expr = expression();
      if (node->expr == nullptr) return nullptr;
    }
    if (!expect(Tok::kSemi)) return nullptr;
    if (!at(Tok::kRParen)) {
      node->for_step = expression();
      if (node->for_step == nullptr) return nullptr;
    }
    if (!expect(Tok::kRParen)) return nullptr;
    node->body = statement();
    if (node->body == nullptr) return nullptr;
    return node;
  }

  // --- Expressions, precedence climbing -------------------------------

  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    ExprPtr lhs = ternary();
    if (lhs == nullptr) return nullptr;
    static const struct {
      Tok tok;
      BinaryOp op;
      bool compound;
    } kAssignOps[] = {
        {Tok::kAssign, BinaryOp::kAdd, false},
        {Tok::kPlusAssign, BinaryOp::kAdd, true},
        {Tok::kMinusAssign, BinaryOp::kSub, true},
        {Tok::kStarAssign, BinaryOp::kMul, true},
        {Tok::kSlashAssign, BinaryOp::kDiv, true},
        {Tok::kPercentAssign, BinaryOp::kRem, true},
        {Tok::kAmpAssign, BinaryOp::kAnd, true},
        {Tok::kPipeAssign, BinaryOp::kOr, true},
        {Tok::kCaretAssign, BinaryOp::kXor, true},
        {Tok::kShlAssign, BinaryOp::kShl, true},
        {Tok::kShrAssign, BinaryOp::kShr, true},
    };
    for (const auto& entry : kAssignOps) {
      if (at(entry.tok)) {
        const std::uint32_t line = take().line;
        ExprPtr rhs = assignment();  // right associative
        if (rhs == nullptr) return nullptr;
        auto node = std::make_unique<ExprNode>();
        node->kind = ExprNodeKind::kAssign;
        node->line = line;
        node->binary_op = entry.op;
        node->compound_assign = entry.compound;
        node->a = std::move(lhs);
        node->b = std::move(rhs);
        return node;
      }
    }
    return lhs;
  }

  ExprPtr ternary() {
    ExprPtr cond = binary(0);
    if (cond == nullptr) return nullptr;
    if (!at(Tok::kQuestion)) return cond;
    const std::uint32_t line = take().line;
    ExprPtr then_e = expression();
    if (then_e == nullptr) return nullptr;
    if (!expect(Tok::kColon)) return nullptr;
    ExprPtr else_e = ternary();
    if (else_e == nullptr) return nullptr;
    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNodeKind::kTernary;
    node->line = line;
    node->a = std::move(cond);
    node->b = std::move(then_e);
    node->c = std::move(else_e);
    return node;
  }

  struct BinEntry {
    Tok tok;
    BinaryOp op;
    int prec;
  };
  static const BinEntry* binary_entry(Tok kind) {
    static const BinEntry table[] = {
        {Tok::kOrOr, BinaryOp::kLogOr, 1},
        {Tok::kAndAnd, BinaryOp::kLogAnd, 2},
        {Tok::kPipe, BinaryOp::kOr, 3},
        {Tok::kCaret, BinaryOp::kXor, 4},
        {Tok::kAmp, BinaryOp::kAnd, 5},
        {Tok::kEq, BinaryOp::kEq, 6},
        {Tok::kNe, BinaryOp::kNe, 6},
        {Tok::kLt, BinaryOp::kLt, 7},
        {Tok::kLe, BinaryOp::kLe, 7},
        {Tok::kGt, BinaryOp::kGt, 7},
        {Tok::kGe, BinaryOp::kGe, 7},
        {Tok::kShl, BinaryOp::kShl, 8},
        {Tok::kShr, BinaryOp::kShr, 8},
        {Tok::kPlus, BinaryOp::kAdd, 9},
        {Tok::kMinus, BinaryOp::kSub, 9},
        {Tok::kStar, BinaryOp::kMul, 10},
        {Tok::kSlash, BinaryOp::kDiv, 10},
        {Tok::kPercent, BinaryOp::kRem, 10},
    };
    for (const auto& e : table)
      if (e.tok == kind) return &e;
    return nullptr;
  }

  ExprPtr binary(int min_prec) {
    ExprPtr lhs = unary();
    if (lhs == nullptr) return nullptr;
    while (true) {
      const BinEntry* entry = binary_entry(cur().kind);
      if (entry == nullptr || entry->prec < min_prec) return lhs;
      const std::uint32_t line = take().line;
      ExprPtr rhs = binary(entry->prec + 1);
      if (rhs == nullptr) return nullptr;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kBinary;
      node->line = line;
      node->binary_op = entry->op;
      node->a = std::move(lhs);
      node->b = std::move(rhs);
      lhs = std::move(node);
    }
  }

  ExprPtr unary() {
    const std::uint32_t line = cur().line;
    auto make_unary = [&](UnaryOp op, ExprPtr operand) {
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kUnary;
      node->line = line;
      node->unary_op = op;
      node->a = std::move(operand);
      return node;
    };
    if (accept(Tok::kMinus)) {
      ExprPtr operand = unary();
      return operand == nullptr ? nullptr
                                : make_unary(UnaryOp::kNeg, std::move(operand));
    }
    if (accept(Tok::kBang)) {
      ExprPtr operand = unary();
      return operand == nullptr
                 ? nullptr
                 : make_unary(UnaryOp::kLogNot, std::move(operand));
    }
    if (accept(Tok::kTilde)) {
      ExprPtr operand = unary();
      return operand == nullptr
                 ? nullptr
                 : make_unary(UnaryOp::kBitNot, std::move(operand));
    }
    if (accept(Tok::kStar)) {
      ExprPtr operand = unary();
      return operand == nullptr
                 ? nullptr
                 : make_unary(UnaryOp::kDeref, std::move(operand));
    }
    if (accept(Tok::kAmp)) {
      ExprPtr operand = unary();
      return operand == nullptr
                 ? nullptr
                 : make_unary(UnaryOp::kAddrOf, std::move(operand));
    }
    if (accept(Tok::kPlusPlus)) {
      ExprPtr operand = unary();
      return operand == nullptr
                 ? nullptr
                 : make_unary(UnaryOp::kPreInc, std::move(operand));
    }
    if (accept(Tok::kMinusMinus)) {
      ExprPtr operand = unary();
      return operand == nullptr
                 ? nullptr
                 : make_unary(UnaryOp::kPreDec, std::move(operand));
    }
    // Cast: '(' type ')' unary  — only when the parenthesis opens a type.
    if (at(Tok::kLParen) && base_type_of(ahead().kind).has_value()) {
      take();  // (
      CType type;
      if (!parse_type(type)) return nullptr;
      if (!expect(Tok::kRParen)) return nullptr;
      ExprPtr operand = unary();
      if (operand == nullptr) return nullptr;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kCast;
      node->line = line;
      node->cast_type = type;
      node->a = std::move(operand);
      return node;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr node = primary();
    if (node == nullptr) return nullptr;
    while (true) {
      const std::uint32_t line = cur().line;
      if (accept(Tok::kLBracket)) {
        ExprPtr index = expression();
        if (index == nullptr) return nullptr;
        if (!expect(Tok::kRBracket)) return nullptr;
        auto idx = std::make_unique<ExprNode>();
        idx->kind = ExprNodeKind::kIndex;
        idx->line = line;
        idx->a = std::move(node);
        idx->b = std::move(index);
        node = std::move(idx);
        continue;
      }
      if (accept(Tok::kPlusPlus)) {
        auto inc = std::make_unique<ExprNode>();
        inc->kind = ExprNodeKind::kUnary;
        inc->line = line;
        inc->unary_op = UnaryOp::kPostInc;
        inc->a = std::move(node);
        node = std::move(inc);
        continue;
      }
      if (accept(Tok::kMinusMinus)) {
        auto dec = std::make_unique<ExprNode>();
        dec->kind = ExprNodeKind::kUnary;
        dec->line = line;
        dec->unary_op = UnaryOp::kPostDec;
        dec->a = std::move(node);
        node = std::move(dec);
        continue;
      }
      return node;
    }
  }

  ExprPtr primary() {
    const std::uint32_t line = cur().line;
    if (at(Tok::kNumber) || at(Tok::kCharLit)) {
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kNum;
      node->line = line;
      node->number = take().number;
      return node;
    }
    if (at(Tok::kKwTrue) || at(Tok::kKwFalse)) {
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kNum;
      node->line = line;
      node->number = take().kind == Tok::kKwTrue ? 1 : 0;
      return node;
    }
    if (at(Tok::kString)) {
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kStr;
      node->line = line;
      node->text = take().text;
      return node;
    }
    if (at(Tok::kIdent)) {
      std::string name = take().text;
      if (at(Tok::kLParen)) {
        take();
        auto node = std::make_unique<ExprNode>();
        node->kind = ExprNodeKind::kCall;
        node->line = line;
        node->text = std::move(name);
        if (!at(Tok::kRParen)) {
          do {
            ExprPtr arg = expression();
            if (arg == nullptr) return nullptr;
            node->args.push_back(std::move(arg));
          } while (accept(Tok::kComma));
        }
        if (!expect(Tok::kRParen)) return nullptr;
        return node;
      }
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNodeKind::kIdent;
      node->line = line;
      node->text = std::move(name);
      return node;
    }
    if (accept(Tok::kLParen)) {
      ExprPtr inner = expression();
      if (inner == nullptr) return nullptr;
      if (!expect(Tok::kRParen)) return nullptr;
      return inner;
    }
    fail(std::string("unexpected token '") + token_name(cur().kind) + "'");
    return nullptr;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string& error_;
};

}  // namespace

bool parse_program(const std::string& source, Program& out,
                   std::string& error) {
  std::vector<Token> tokens;
  if (!lex(source, tokens, error)) return false;
  Parser parser(std::move(tokens), error);
  return parser.run(out);
}

}  // namespace pbse::minic
