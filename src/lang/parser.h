// Recursive-descent parser for MiniC (precedence climbing for binary
// operators, C-like grammar).
#pragma once

#include <string>

#include "lang/ast.h"
#include "lang/token.h"

namespace pbse::minic {

/// Parses `source` into a Program. Returns false and fills `error`
/// ("line N: message") on the first syntax error.
bool parse_program(const std::string& source, Program& out, std::string& error);

}  // namespace pbse::minic
