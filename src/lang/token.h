// Token definitions for MiniC, the C-subset language the target programs
// are written in (the analog of "compiled to LLVM bitcode" in the paper).
#pragma once

#include <cstdint>
#include <string>

namespace pbse::minic {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kNumber,
  kString,   // "..." literal
  kCharLit,  // 'x'
  // keywords
  kKwVoid, kKwBool, kKwU8, kKwU16, kKwU32, kKwU64,
  kKwI8, kKwI16, kKwI32, kKwI64,
  kKwIf, kKwElse, kKwWhile, kKwFor, kKwBreak, kKwContinue, kKwReturn,
  kKwTrue, kKwFalse,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi,
  kAssign,      // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,   // << >>
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr,
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
  kPlusPlus, kMinusMinus,
  kQuestion, kColon,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        // identifier / string contents
  std::uint64_t number = 0;  // numeric / char literal value
  std::uint32_t line = 0;
};

/// Printable token name for diagnostics.
const char* token_name(Tok kind);

}  // namespace pbse::minic
