#include "obs/metrics.h"

#include <mutex>
#include <unordered_map>

namespace pbse::obs {

namespace {

/// The process-wide name registry. Leaked on purpose: interned names (and
/// the MetricIds handed out for them) must stay valid for the lifetime of
/// every thread, including detached sink writers at exit.
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string_view, MetricId> by_name;  // views into names
  std::vector<std::unique_ptr<std::string>> names;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

MetricId intern_metric(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return it->second;
  r.names.push_back(std::make_unique<std::string>(name));
  const MetricId id = static_cast<MetricId>(r.names.size() - 1);
  r.by_name.emplace(std::string_view(*r.names.back()), id);
  return id;
}

MetricId find_metric(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  return it == r.by_name.end() ? kInvalidMetric : it->second;
}

const std::string& metric_name(MetricId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  static const std::string kUnknown = "<unknown-metric>";
  return id < r.names.size() ? *r.names[id] : kUnknown;
}

std::size_t metric_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.names.size();
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return bucket_upper(b);
  }
  return max_;
}

void MetricStore::merge(const MetricStore& other) {
  if (other.counters_.size() > counters_.size())
    counters_.resize(other.counters_.size(), 0);
  for (MetricId id = 0; id < other.counters_.size(); ++id)
    counters_[id] += other.counters_[id];
  if (other.hists_.size() > hists_.size()) hists_.resize(other.hists_.size());
  for (MetricId id = 0; id < other.hists_.size(); ++id) {
    if (other.hists_[id] == nullptr) continue;
    if (hists_[id] == nullptr) hists_[id] = std::make_unique<Histogram>();
    hists_[id]->merge(*other.hists_[id]);
  }
}

}  // namespace pbse::obs
