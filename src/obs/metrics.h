// Metrics: the engine's interned-id counter and histogram registry.
//
// Every counter/histogram/trace-event name is interned once into a
// process-wide registry (name -> MetricId); hot paths then update
// vector-indexed slots by id — no string hashing or map lookup per
// increment. `Stats` (support/stats.h) is a thin string-keyed facade over a
// per-campaign MetricStore, so existing `stats.get("solver.queries")` /
// `Stats::merge` call sites keep working unchanged while the VM/solver hot
// loops pay only an indexed add.
//
// Histograms are log2-bucketed (bucket 0 holds the value 0, bucket b holds
// values in [2^(b-1), 2^b)) — the right shape for long-tailed quantities
// like solver query latency, states per phase, and BBV interval length.
//
// This module sits at the very bottom of the dependency stack (std only):
// support/ depends on obs/, never the reverse.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pbse::obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = ~MetricId{0};

/// Interns `name`, returning its stable process-wide id (thread-safe,
/// idempotent). Intern once — at namespace scope or in a function-local
/// static — and reuse the id on the hot path.
MetricId intern_metric(std::string_view name);

/// The id of an already-interned name, or kInvalidMetric (never interns).
MetricId find_metric(std::string_view name);

/// Name of an interned id. The reference stays valid for the process
/// lifetime (the registry only grows).
const std::string& metric_name(MetricId id);

/// Number of names interned so far.
std::size_t metric_count();

/// Log2-bucketed histogram of unsigned values.
class Histogram {
 public:
  /// Bucket 0: value 0. Bucket b in [1, 64]: values in [2^(b-1), 2^b).
  static constexpr unsigned kBuckets = 65;

  void observe(std::uint64_t value) {
    const unsigned b = bucket_of(value);
    ++buckets_[b];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (value < min_) min_ = value;
  }

  void merge(const Histogram& other) {
    for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    if (other.min_ < min_) min_ = other.min_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  std::uint64_t bucket(unsigned b) const { return buckets_[b]; }

  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]) —
  /// an over-approximation within one power of two.
  std::uint64_t percentile(double p) const;

  /// Wholesale state replacement, for snapshot restore (src/serialize).
  /// `min` must be the sentinel ~0 when `count` is 0 (the observe() rep).
  void set_raw(const std::array<std::uint64_t, kBuckets>& buckets,
               std::uint64_t count, std::uint64_t sum, std::uint64_t max,
               std::uint64_t min) {
    buckets_ = buckets;
    count_ = count;
    sum_ = sum;
    max_ = max;
    min_ = min;
  }
  /// Raw bucket array (snapshot side of set_raw).
  const std::array<std::uint64_t, kBuckets>& raw_buckets() const {
    return buckets_;
  }
  std::uint64_t raw_max() const { return max_; }
  std::uint64_t raw_min() const { return min_; }

  static unsigned bucket_of(std::uint64_t value) {
    unsigned b = 0;
    while (value != 0) {
      ++b;
      value >>= 1;
    }
    return b;
  }
  /// Largest value falling in bucket `b`.
  static std::uint64_t bucket_upper(unsigned b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
};

/// Per-campaign metric storage: counters and histograms indexed by the
/// global MetricId. Not thread-safe — same ownership discipline as Stats
/// (one campaign, one thread; merge after joining).
class MetricStore {
 public:
  MetricStore() = default;
  MetricStore(MetricStore&&) = default;
  MetricStore& operator=(MetricStore&&) = default;
  // Deep-copyable: Stats gets copied into CampaignOutcome by value.
  MetricStore(const MetricStore& other) { *this = other; }
  MetricStore& operator=(const MetricStore& other) {
    if (this == &other) return *this;
    counters_ = other.counters_;
    hists_.clear();
    hists_.resize(other.hists_.size());
    for (std::size_t i = 0; i < other.hists_.size(); ++i)
      if (other.hists_[i] != nullptr)
        hists_[i] = std::make_unique<Histogram>(*other.hists_[i]);
    return *this;
  }

  void add(MetricId id, std::uint64_t n = 1) {
    if (id >= counters_.size()) counters_.resize(id + 1, 0);
    counters_[id] += n;
  }

  void observe(MetricId id, std::uint64_t value) {
    if (id >= hists_.size()) hists_.resize(id + 1);
    if (hists_[id] == nullptr) hists_[id] = std::make_unique<Histogram>();
    hists_[id]->observe(value);
  }

  std::uint64_t counter(MetricId id) const {
    return id < counters_.size() ? counters_[id] : 0;
  }

  /// nullptr when the id was never observed into.
  const Histogram* histogram(MetricId id) const {
    return id < hists_.size() ? hists_[id].get() : nullptr;
  }

  /// Histogram slot for `id`, created empty if absent — the restore-side
  /// counterpart of visit_histograms (src/serialize).
  Histogram& mutable_histogram(MetricId id) {
    if (id >= hists_.size()) hists_.resize(id + 1);
    if (hists_[id] == nullptr) hists_[id] = std::make_unique<Histogram>();
    return *hists_[id];
  }

  void merge(const MetricStore& other);
  void clear() {
    counters_.clear();
    hists_.clear();
  }

  /// Calls f(id, value) for every nonzero counter, in id (interning) order.
  template <typename F>
  void visit_counters(F&& f) const {
    for (MetricId id = 0; id < counters_.size(); ++id)
      if (counters_[id] != 0) f(id, counters_[id]);
  }

  /// Calls f(id, histogram) for every histogram, in id order.
  template <typename F>
  void visit_histograms(F&& f) const {
    for (MetricId id = 0; id < hists_.size(); ++id)
      if (hists_[id] != nullptr) f(id, *hists_[id]);
  }

 private:
  std::vector<std::uint64_t> counters_;
  std::vector<std::unique_ptr<Histogram>> hists_;
};

}  // namespace pbse::obs
