// Lock-free single-producer / single-consumer event ring.
//
// Each tracing thread owns one EventRing: the owning thread is the only
// producer, and consumers (Tracer::flush, or the producer itself draining
// on overflow) are serialized externally by the Tracer's sink mutex. The
// hot path — try_push on a non-full ring — is two relaxed/acquire atomic
// loads, a slot store, and a release store: no locks, no allocation.
//
// head_ counts pushes, tail_ counts pops; both increase monotonically and
// are masked into the power-of-two slot array, so full/empty never need a
// wasted slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/trace_event.h"

namespace pbse::obs {

class EventRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit EventRing(std::size_t capacity = 4096) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer side. Returns false when the ring is full (the caller then
  /// drains — see Tracer::emit — and retries).
  bool try_push(const TraceEvent& e) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & mask_] = e;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every pending event to `out` in push order and
  /// returns how many were popped. Concurrent consumers must be serialized
  /// by the caller; safe against a concurrent producer.
  std::size_t pop_all(std::vector<TraceEvent>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    out.reserve(out.size() + n);
    for (; tail != head; ++tail) out.push_back(slots_[tail & mask_]);
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Approximate (racy) number of pending events.
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

}  // namespace pbse::obs
