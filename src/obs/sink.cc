#include "obs/sink.h"

namespace pbse::obs {

namespace {

const char* category_names[] = {"vm",    "concolic", "solver", "phase",
                                "sched", "campaign", "other"};

char phase_letter(EventPhase ph) {
  switch (ph) {
    case EventPhase::kInstant: return 'I';
    case EventPhase::kBegin: return 'B';
    case EventPhase::kEnd: return 'E';
    case EventPhase::kCounter: return 'C';
  }
  return 'I';
}

void write_escaped(std::FILE* f, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

void write_args(std::FILE* f, const TraceEvent& e) {
  if (e.arg0 == kInvalidMetric && e.arg1 == kInvalidMetric) return;
  std::fprintf(f, ",\"args\":{");
  bool first = true;
  if (e.arg0 != kInvalidMetric) {
    std::fputc('"', f);
    write_escaped(f, metric_name(e.arg0));
    std::fprintf(f, "\":%llu", static_cast<unsigned long long>(e.a0));
    first = false;
  }
  if (e.arg1 != kInvalidMetric) {
    if (!first) std::fputc(',', f);
    std::fputc('"', f);
    write_escaped(f, metric_name(e.arg1));
    std::fprintf(f, "\":%llu", static_cast<unsigned long long>(e.a1));
  }
  std::fputc('}', f);
}

void write_event_body(std::FILE* f, const TraceEvent& e, bool chrome) {
  const char ph = phase_letter(e.phase);
  std::fprintf(f, "{\"ph\":\"%c", chrome && ph == 'I' ? 'i' : ph);
  std::fprintf(f, "\",\"cat\":\"%s\",\"name\":\"",
               category_name(e.category));
  write_escaped(f, metric_name(e.name));
  std::fputc('"', f);
  if (chrome && e.phase == EventPhase::kInstant) std::fprintf(f, ",\"s\":\"t\"");
  std::fprintf(f, ",\"%s\":%u,\"tid\":%u,\"ts\":%llu",
               chrome ? "pid" : "cid", e.campaign, e.tid,
               static_cast<unsigned long long>(e.ticks));
  write_args(f, e);
  std::fputc('}', f);
}

}  // namespace

const char* category_name(Category c) {
  const auto i = static_cast<unsigned>(c);
  return i < static_cast<unsigned>(Category::kNumCategories)
             ? category_names[i]
             : "other";
}

bool parse_category(std::string_view name, Category& out) {
  for (unsigned i = 0; i < static_cast<unsigned>(Category::kNumCategories);
       ++i) {
    if (name == category_names[i]) {
      out = static_cast<Category>(i);
      return true;
    }
  }
  return false;
}

JsonlSink::JsonlSink(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr)
    std::fprintf(stderr, "obs: cannot open trace file %s\n", path.c_str());
}

JsonlSink::~JsonlSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void JsonlSink::write(const TraceEvent& e) {
  if (f_ == nullptr) return;
  write_event_body(f_, e, /*chrome=*/false);
  std::fputc('\n', f_);
}

void JsonlSink::finish() {
  if (f_ == nullptr) return;
  std::fclose(f_);
  f_ = nullptr;
}

ChromeTraceSink::ChromeTraceSink(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace file %s\n", path.c_str());
    return;
  }
  std::fprintf(f_, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
}

ChromeTraceSink::~ChromeTraceSink() {
  if (f_ != nullptr) std::fclose(f_);
}

void ChromeTraceSink::write(const TraceEvent& e) {
  if (f_ == nullptr) return;
  if (!first_) std::fprintf(f_, ",\n");
  first_ = false;
  write_event_body(f_, e, /*chrome=*/true);
}

void ChromeTraceSink::finish() {
  if (f_ == nullptr) return;
  std::fprintf(f_, "\n]}\n");
  std::fclose(f_);
  f_ = nullptr;
}

std::unique_ptr<TraceSink> make_file_sink(const std::string& path) {
  const bool chrome =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (chrome) return std::make_unique<ChromeTraceSink>(path);
  return std::make_unique<JsonlSink>(path);
}

}  // namespace pbse::obs
