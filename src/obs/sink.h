// Trace sinks: where drained TraceEvents go.
//
// Sinks are single-threaded by contract — the Tracer serializes every
// write() under its mutex and preserves per-thread event order (events of
// one thread arrive in emit order; events of different threads may
// interleave at drain granularity).
//
// Formats:
//  * MemorySink      — in-memory vector, for tests.
//  * JsonlSink       — one JSON object per line; the pbse-trace CLI and the
//                      CI format check consume this.
//  * ChromeTraceSink — Chrome trace_event JSON ({"traceEvents":[...]}),
//                      loadable in chrome://tracing and Perfetto. Virtual
//                      ticks are exported as microseconds; campaigns map to
//                      pids so each campaign gets its own timeline.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace pbse::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called once per event, serialized by the Tracer.
  virtual void write(const TraceEvent& e) = 0;
  /// Called exactly once, after the final write.
  virtual void finish() {}
};

class MemorySink final : public TraceSink {
 public:
  void write(const TraceEvent& e) override { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;
  void write(const TraceEvent& e) override;
  void finish() override;
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_ = nullptr;
};

class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;
  void write(const TraceEvent& e) override;
  void finish() override;
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_ = nullptr;
  bool first_ = true;
};

/// Sink for `--trace=<path>`: Chrome format when the path ends in ".json",
/// JSONL otherwise (the conventional extension is ".jsonl").
std::unique_ptr<TraceSink> make_file_sink(const std::string& path);

}  // namespace pbse::obs
