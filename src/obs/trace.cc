#include "obs/trace.h"

#include <cstdlib>

namespace pbse::obs {

namespace {
thread_local std::uint32_t tls_campaign = 0;
}  // namespace

thread_local Tracer::ThreadBuf* Tracer::tls_buf_ = nullptr;

Tracer& Tracer::instance() {
  // Leaked: threads may emit (cheaply hitting the disabled check) during
  // static destruction; a destructed singleton would be a use-after-free.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Tracer::start(std::unique_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop events buffered after the previous session's stop() (a producer
  // may have raced the disable flag): they belong to no session.
  for (auto& buf : bufs_) {
    scratch_.clear();
    buf->ring.pop_all(scratch_);
  }
  scratch_.clear();
  sink_ = std::move(sink);
  enabled_flag().store(true, std::memory_order_release);
}

std::unique_ptr<TraceSink> Tracer::stop() {
  enabled_flag().store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : bufs_) drain_locked(*buf);
  if (sink_ != nullptr) sink_->finish();
  return std::move(sink_);
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : bufs_) drain_locked(*buf);
}

void Tracer::drain_locked(ThreadBuf& buf) {
  scratch_.clear();
  buf.ring.pop_all(scratch_);
  if (sink_ == nullptr) return;
  for (const TraceEvent& e : scratch_) sink_->write(e);
}

Tracer::ThreadBuf& Tracer::local_buf() {
  if (tls_buf_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    bufs_.push_back(std::make_unique<ThreadBuf>());
    bufs_.back()->tid = static_cast<std::uint32_t>(bufs_.size() - 1);
    tls_buf_ = bufs_.back().get();
  }
  return *tls_buf_;
}

void Tracer::emit(Category cat, EventPhase phase, MetricId name,
                  std::uint64_t ticks, std::uint64_t a0, MetricId arg0,
                  std::uint64_t a1, MetricId arg1) {
  ThreadBuf& buf = local_buf();
  TraceEvent e;
  e.ticks = ticks;
  e.a0 = a0;
  e.a1 = a1;
  e.name = name;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.campaign = tls_campaign;
  e.tid = buf.tid;
  e.phase = phase;
  e.category = cat;
  while (!buf.ring.try_push(e)) {
    // Ring full: drain our own ring into the sink (cold path). The caller
    // is the only producer, so after one drain the push must succeed.
    std::lock_guard<std::mutex> lock(mu_);
    drain_locked(buf);
  }
}

void Tracer::set_campaign(std::uint32_t id) { tls_campaign = id; }
std::uint32_t Tracer::campaign() { return tls_campaign; }

void start_tracing_to_file(const std::string& path) {
  Tracer::instance().start(make_file_sink(path));
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(&stop_tracing);
  }
}

void stop_tracing() {
  if (!Tracer::enabled()) return;
  Tracer::instance().stop();
}

}  // namespace pbse::obs
