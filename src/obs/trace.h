// The Tracer: engine-wide trace-event collection.
//
// Design (see DESIGN.md §8):
//  * One process-wide Tracer. Each emitting thread lazily registers a
//    private lock-free EventRing; emit() pushes into the caller's own ring
//    — no cross-thread synchronization on the hot path.
//  * The DISABLED path is a single relaxed load + branch (Tracer::enabled()
//    is checked inline in the trace_* helpers before any argument work), so
//    instrumentation can live inside the VM hot loop. Tracing never touches
//    the virtual clock: campaign results are tick-for-tick identical with
//    tracing on or off (tests/trace_determinism_test.cc locks this in).
//  * Draining: Tracer::flush() (and stop()) pops every ring into the sink
//    under one mutex; a producer whose ring fills up drains its own ring
//    the same way. Per-thread event order is therefore preserved end to
//    end, and every event reaches the sink exactly once.
//  * Campaign attribution: ParallelCampaignRunner (and anything else that
//    multiplexes campaigns onto threads) brackets campaign bodies with a
//    CampaignScope, which sets the thread-local campaign id stamped into
//    every event.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/ring_buffer.h"
#include "obs/sink.h"
#include "obs/trace_event.h"

namespace pbse::obs {

class Tracer {
 public:
  static Tracer& instance();

  /// The one check on every disabled-path instrumentation site.
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Installs `sink`, discards any stale buffered events, and enables
  /// tracing. Replaces a previously installed sink (without finish()ing
  /// it — call stop() first for a clean handover).
  void start(std::unique_ptr<TraceSink> sink);

  /// Disables tracing, drains every thread buffer, finish()es the sink and
  /// returns it (so tests can take their MemorySink back). Idempotent.
  std::unique_ptr<TraceSink> stop();

  /// Drains every thread buffer into the sink without stopping.
  void flush();

  /// Emits one event into the calling thread's ring (tracing must be
  /// enabled; callers go through the inline trace_* helpers below).
  void emit(Category cat, EventPhase phase, MetricId name, std::uint64_t ticks,
            std::uint64_t a0 = 0, MetricId arg0 = kInvalidMetric,
            std::uint64_t a1 = 0, MetricId arg1 = kInvalidMetric);

  /// Thread-local campaign id stamped into events emitted by this thread.
  static void set_campaign(std::uint32_t id);
  static std::uint32_t campaign();

 private:
  struct ThreadBuf {
    EventRing ring{4096};
    std::uint32_t tid = 0;
  };

  Tracer() = default;
  static std::atomic<bool>& enabled_flag();
  static thread_local ThreadBuf* tls_buf_;
  ThreadBuf& local_buf();
  /// Pops `buf` into the sink; caller must hold mu_.
  void drain_locked(ThreadBuf& buf);

  std::mutex mu_;  // guards bufs_ registration, sink_, and all draining
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::unique_ptr<TraceSink> sink_;
  std::vector<TraceEvent> scratch_;
};

/// Sets the calling thread's campaign id for its lifetime, restoring the
/// previous id on destruction.
class CampaignScope {
 public:
  explicit CampaignScope(std::uint32_t id)
      : prev_(Tracer::campaign()) {
    Tracer::set_campaign(id);
  }
  ~CampaignScope() { Tracer::set_campaign(prev_); }
  CampaignScope(const CampaignScope&) = delete;
  CampaignScope& operator=(const CampaignScope&) = delete;

 private:
  std::uint32_t prev_;
};

// --- Instrumentation hooks ---------------------------------------------------
// Each compiles to `load flag; branch` when tracing is off; argument
// evaluation is behind the branch.

inline void trace_instant(Category cat, MetricId name, std::uint64_t ticks,
                          std::uint64_t a0 = 0, MetricId arg0 = kInvalidMetric,
                          std::uint64_t a1 = 0,
                          MetricId arg1 = kInvalidMetric) {
  if (!Tracer::enabled()) return;
  Tracer::instance().emit(cat, EventPhase::kInstant, name, ticks, a0, arg0, a1,
                          arg1);
}

inline void trace_begin(Category cat, MetricId name, std::uint64_t ticks,
                        std::uint64_t a0 = 0, MetricId arg0 = kInvalidMetric,
                        std::uint64_t a1 = 0, MetricId arg1 = kInvalidMetric) {
  if (!Tracer::enabled()) return;
  Tracer::instance().emit(cat, EventPhase::kBegin, name, ticks, a0, arg0, a1,
                          arg1);
}

inline void trace_end(Category cat, MetricId name, std::uint64_t ticks,
                      std::uint64_t a0 = 0, MetricId arg0 = kInvalidMetric,
                      std::uint64_t a1 = 0, MetricId arg1 = kInvalidMetric) {
  if (!Tracer::enabled()) return;
  Tracer::instance().emit(cat, EventPhase::kEnd, name, ticks, a0, arg0, a1,
                          arg1);
}

inline void trace_counter(Category cat, MetricId name, std::uint64_t ticks,
                          std::uint64_t value, MetricId arg = kInvalidMetric) {
  if (!Tracer::enabled()) return;
  Tracer::instance().emit(cat, EventPhase::kCounter, name, ticks, value, arg);
}

/// Starts tracing into `path` (format chosen by extension, see
/// make_file_sink) and registers an atexit stop so the trace is complete
/// even when the caller exits without an explicit stop.
void start_tracing_to_file(const std::string& path);

/// Plain-function stop (atexit-compatible). Idempotent.
void stop_tracing();

}  // namespace pbse::obs
