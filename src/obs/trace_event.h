// The structured trace-event model.
//
// A TraceEvent is a small POD — 48 bytes, trivially copyable — so it can
// move through the per-thread lock-free ring buffers (ring_buffer.h)
// without allocation. Strings never appear in events: the event name and
// argument names are interned MetricIds (metrics.h), resolved back to text
// only at sink-write time.
//
// Event phases mirror the Chrome trace_event model: instants mark a point
// in virtual time, Begin/End pairs bracket a duration on one thread (they
// nest per thread), counters sample a value.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace pbse::obs {

enum class EventPhase : std::uint8_t {
  kInstant = 0,
  kBegin,
  kEnd,
  kCounter,
};

/// Which subsystem emitted the event. Doubles as the Chrome trace "cat".
enum class Category : std::uint8_t {
  kVm = 0,       // interpreter: coverage, forks, bugs, terminations
  kConcolic,     // Algorithm 2: seed run, BBV intervals, seedStates
  kSolver,       // query begin/end, cache hit/miss
  kPhase,        // phase division: clusters, trap detection
  kSched,        // Algorithm 3: turns, retires, activations
  kCampaign,     // campaign begin/end (parallel runner)
  kOther,
  kNumCategories,
};

const char* category_name(Category c);
bool parse_category(std::string_view name, Category& out);

struct TraceEvent {
  /// Virtual-clock tick of the emitting campaign (the trace timestamp).
  std::uint64_t ticks = 0;
  /// Up to two typed payload values; meaningful iff arg0/arg1 are valid.
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  /// Interned event name.
  MetricId name = 0;
  /// Interned argument names; kInvalidMetric marks "no argument".
  MetricId arg0 = kInvalidMetric;
  MetricId arg1 = kInvalidMetric;
  /// Campaign index (ParallelCampaignRunner slot; 0 outside campaigns).
  std::uint32_t campaign = 0;
  /// Tracer thread index (registration order, not an OS tid).
  std::uint32_t tid = 0;
  EventPhase phase = EventPhase::kInstant;
  Category category = Category::kOther;
};

static_assert(sizeof(TraceEvent) <= 64, "TraceEvent must stay cache-line sized");

}  // namespace pbse::obs
