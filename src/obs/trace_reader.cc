#include "obs/trace_reader.h"

#include <cstdio>
#include <memory>

namespace pbse::obs {

namespace {

/// Cursor over one line. All parse_* helpers return false on malformed
/// input and leave a reason in `why`.
struct Cursor {
  const char* p;
  const char* end;
  std::string why;

  bool eof() const { return p >= end; }
  char peek() const { return eof() ? '\0' : *p; }
  bool consume(char c) {
    if (eof() || *p != c) {
      why = std::string("expected '") + c + "'";
      return false;
    }
    ++p;
    return true;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) return false;
  out.clear();
  while (!c.eof() && *c.p != '"') {
    char ch = *c.p++;
    if (ch == '\\') {
      if (c.eof()) break;
      const char esc = *c.p++;
      switch (esc) {
        case '"': ch = '"'; break;
        case '\\': ch = '\\'; break;
        case 'n': ch = '\n'; break;
        case 't': ch = '\t'; break;
        case 'u': {
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            if (c.eof()) {
              c.why = "truncated \\u escape";
              return false;
            }
            const char h = *c.p++;
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else {
              c.why = "bad \\u escape";
              return false;
            }
          }
          ch = static_cast<char>(v & 0xff);
          break;
        }
        default:
          c.why = "unknown escape";
          return false;
      }
    }
    out += ch;
  }
  return c.consume('"');
}

bool parse_uint(Cursor& c, std::uint64_t& out) {
  if (c.eof() || *c.p < '0' || *c.p > '9') {
    c.why = "expected unsigned integer";
    return false;
  }
  out = 0;
  while (!c.eof() && *c.p >= '0' && *c.p <= '9')
    out = out * 10 + static_cast<std::uint64_t>(*c.p++ - '0');
  return true;
}

bool parse_args_object(Cursor& c, ParsedEvent& e) {
  if (!c.consume('{')) return false;
  if (c.peek() == '}') {
    ++c.p;
    return true;
  }
  while (true) {
    std::string key;
    std::uint64_t value = 0;
    if (!parse_string(c, key)) return false;
    if (!c.consume(':')) return false;
    if (!parse_uint(c, value)) return false;
    e.args.emplace_back(std::move(key), value);
    if (c.peek() == ',') {
      ++c.p;
      continue;
    }
    return c.consume('}');
  }
}

bool parse_line(const std::string& line, ParsedEvent& e, std::string& why) {
  Cursor c{line.c_str(), line.c_str() + line.size(), {}};
  bool saw_ph = false, saw_cat = false, saw_name = false, saw_ts = false;
  if (!c.consume('{')) {
    why = c.why;
    return false;
  }
  while (true) {
    std::string key;
    if (!parse_string(c, key) || !c.consume(':')) {
      why = c.why;
      return false;
    }
    if (key == "ph") {
      std::string v;
      if (!parse_string(c, v) || v.size() != 1) {
        why = c.why.empty() ? "ph must be a single letter" : c.why;
        return false;
      }
      e.ph = v[0];
      saw_ph = true;
    } else if (key == "cat") {
      if (!parse_string(c, e.cat)) {
        why = c.why;
        return false;
      }
      saw_cat = true;
    } else if (key == "name") {
      if (!parse_string(c, e.name)) {
        why = c.why;
        return false;
      }
      saw_name = true;
    } else if (key == "args") {
      if (!parse_args_object(c, e)) {
        why = c.why;
        return false;
      }
    } else if (key == "cid" || key == "pid" || key == "tid" || key == "ts") {
      std::uint64_t v = 0;
      if (!parse_uint(c, v)) {
        why = c.why;
        return false;
      }
      if (key == "ts") {
        e.ts = v;
        saw_ts = true;
      } else if (key == "tid") {
        e.tid = static_cast<std::uint32_t>(v);
      } else {
        e.cid = static_cast<std::uint32_t>(v);
      }
    } else if (key == "s") {
      std::string v;  // Chrome instant scope; accepted and ignored
      if (!parse_string(c, v)) {
        why = c.why;
        return false;
      }
    } else {
      why = "unknown key \"" + key + "\"";
      return false;
    }
    if (c.peek() == ',') {
      ++c.p;
      continue;
    }
    break;
  }
  if (!c.consume('}')) {
    why = c.why;
    return false;
  }
  if (!c.eof()) {
    why = "trailing bytes after object";
    return false;
  }
  if (!saw_ph || !saw_cat || !saw_name || !saw_ts) {
    why = "missing required key (ph/cat/name/ts)";
    return false;
  }
  return true;
}

}  // namespace

bool parse_trace_jsonl(const std::string& text, std::vector<ParsedEvent>& out,
                       std::string& error) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    ++line_no;
    const std::string line = text.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    ParsedEvent e;
    std::string why;
    if (!parse_line(line, e, why)) {
      error = "line " + std::to_string(line_no) + ": " + why;
      return false;
    }
    out.push_back(std::move(e));
  }
  return true;
}

bool read_trace_jsonl(const std::string& path, std::vector<ParsedEvent>& out,
                      std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_trace_jsonl(text, out, error);
}

}  // namespace pbse::obs
