// Reader for the JSONL trace format written by JsonlSink.
//
// The parser is deliberately strict: it accepts exactly the flat
// one-object-per-line shape the sink produces (string values, unsigned
// integer values, and one nested "args" object) and reports the first
// malformed line with its line number. CI runs `pbse-trace summarize` on a
// fresh trace, so any drift between writer and reader fails the build
// instead of rotting silently.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pbse::obs {

/// One parsed JSONL trace event, names resolved to strings.
struct ParsedEvent {
  char ph = 'I';  // I / B / E / C
  std::string cat;
  std::string name;
  std::uint32_t cid = 0;
  std::uint32_t tid = 0;
  std::uint64_t ts = 0;
  std::vector<std::pair<std::string, std::uint64_t>> args;

  std::uint64_t arg(const std::string& key, std::uint64_t missing = 0) const {
    for (const auto& [k, v] : args)
      if (k == key) return v;
    return missing;
  }
};

/// Parses `path` as JSONL. On success returns true and fills `out`; on the
/// first malformed line returns false with a "line N: why" message in
/// `error`.
bool read_trace_jsonl(const std::string& path, std::vector<ParsedEvent>& out,
                      std::string& error);

/// Same, over an in-memory buffer (tests).
bool parse_trace_jsonl(const std::string& text, std::vector<ParsedEvent>& out,
                       std::string& error);

}  // namespace pbse::obs
