#include "phase/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pbse::phase {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::uint32_t k, Rng& rng, std::uint32_t max_iters) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  k = std::min<std::uint32_t>(k, static_cast<std::uint32_t>(points.size()));
  const std::size_t dims = points[0].size();

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.push_back(points[rng.below(points.size())]);
  std::uint64_t work = 0;
  std::vector<double> min_d2(points.size(),
                             std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0;
    work += points.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
      min_d2[i] = std::min(min_d2[i],
                           squared_distance(points[i], centroids.back()));
      total += min_d2[i];
    }
    if (total <= 0) break;  // all remaining points coincide with centroids
    double pick = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= min_d2[i];
      if (pick <= 0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }

  std::vector<std::uint32_t> assignment(points.size(), 0);
  for (std::uint32_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assign.
    work += points.size() * centroids.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_c = 0;
      for (std::uint32_t c = 0; c < centroids.size(); ++c) {
        const double d = squared_distance(points[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update.
    std::vector<std::vector<double>> sums(centroids.size(),
                                          std::vector<double>(dims, 0.0));
    std::vector<std::uint32_t> counts(centroids.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ++counts[assignment[i]];
      for (std::size_t d = 0; d < dims; ++d)
        sums[assignment[i]][d] += points[i][d];
    }
    for (std::uint32_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) continue;  // empty clusters keep their centroid
      for (std::size_t d = 0; d < dims; ++d)
        centroids[c][d] = sums[c][d] / counts[c];
    }
  }

  // Compact away empty clusters.
  std::vector<std::uint32_t> used_count(centroids.size(), 0);
  for (std::uint32_t c : assignment) ++used_count[c];
  std::vector<std::uint32_t> remap(centroids.size(), 0);
  std::uint32_t next = 0;
  for (std::uint32_t c = 0; c < centroids.size(); ++c)
    if (used_count[c] > 0) remap[c] = next++;
  KMeansResult out;
  out.assignment.resize(points.size());
  out.centroids.reserve(next);
  for (std::uint32_t c = 0; c < centroids.size(); ++c)
    if (used_count[c] > 0) out.centroids.push_back(std::move(centroids[c]));
  for (std::size_t i = 0; i < points.size(); ++i) {
    out.assignment[i] = remap[assignment[i]];
    out.inertia += squared_distance(points[i], out.centroids[out.assignment[i]]);
  }
  out.work = work;
  return out;
}

}  // namespace pbse::phase
