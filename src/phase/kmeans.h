// Lloyd's k-means with k-means++ seeding, deterministic under a fixed Rng.
// Used to cluster normalized BBVs into program phases (paper Sec. III-B1).
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace pbse::phase {

struct KMeansResult {
  /// Cluster index per input point.
  std::vector<std::uint32_t> assignment;
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  /// Point-centroid distance computations performed (deterministic work
  /// measure; pbSE charges it to the virtual clock as "p-time").
  std::uint64_t work = 0;
};

/// Clusters `points` (all of equal dimension) into at most `k` clusters.
/// If there are fewer distinct points than k, fewer clusters are produced
/// (empty clusters are dropped and indices compacted).
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::uint32_t k, Rng& rng, std::uint32_t max_iters = 64);

/// Squared Euclidean distance (exposed for tests).
double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace pbse::phase
