#include "phase/phase_analysis.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "phase/kmeans.h"

namespace pbse::phase {

namespace {

struct PhaseIds {
  obs::MetricId ev_cluster = obs::intern_metric("phase_cluster");
  obs::MetricId ev_trap = obs::intern_metric("trap_detected");
  obs::MetricId arg_phase = obs::intern_metric("phase");
  obs::MetricId arg_intervals = obs::intern_metric("intervals");
  obs::MetricId arg_run = obs::intern_metric("run");
};

const PhaseIds& ids() {
  static const PhaseIds p;
  return p;
}

/// Longest run of contiguous interval indices assigned to cluster `c`.
std::uint32_t longest_contiguous_run(const std::vector<std::uint32_t>& assignment,
                                     std::uint32_t c) {
  std::uint32_t best = 0, run = 0;
  for (std::uint32_t a : assignment) {
    if (a == c) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return best;
}

struct Clustering {
  std::vector<std::uint32_t> assignment;
  std::uint32_t num_clusters = 0;
  std::uint32_t num_traps = 0;
  std::vector<bool> is_trap;
  std::vector<std::uint32_t> runs;
  std::uint64_t work = 0;
};

Clustering cluster_with_k(const std::vector<std::vector<double>>& points,
                          std::uint32_t k, std::uint32_t trap_threshold,
                          Rng& rng) {
  Clustering out;
  const KMeansResult km = kmeans(points, k, rng);
  out.work = km.work;
  out.assignment = km.assignment;
  out.num_clusters = static_cast<std::uint32_t>(km.centroids.size());
  out.is_trap.assign(out.num_clusters, false);
  out.runs.assign(out.num_clusters, 0);
  for (std::uint32_t c = 0; c < out.num_clusters; ++c) {
    out.runs[c] = longest_contiguous_run(km.assignment, c);
    if (out.runs[c] >= trap_threshold) {
      out.is_trap[c] = true;
      ++out.num_traps;
    }
  }
  return out;
}

}  // namespace

PhaseAnalysisResult analyze_phases(const std::vector<concolic::BBV>& bbvs,
                                   const PhaseOptions& options) {
  PhaseAnalysisResult result;
  if (bbvs.empty()) return result;

  const auto points = concolic::featurize_bbvs(bbvs, options.coverage_weight);
  const auto trap_threshold = static_cast<std::uint32_t>(std::max<double>(
      2.0, std::ceil(options.trap_run_fraction * double(bbvs.size()))));

  // Try k = k_min .. k_max; keep the k with the most trap phases
  // (ties -> smallest k). The Rng restarts per k so results are stable
  // regardless of the sweep order.
  Clustering best;
  std::uint32_t best_k = 0;
  const std::uint32_t k_hi = std::min<std::uint32_t>(
      options.k_max, static_cast<std::uint32_t>(bbvs.size()));
  for (std::uint32_t k = options.k_min; k <= k_hi; ++k) {
    Rng rng(options.kmeans_seed + k);
    Clustering c = cluster_with_k(points, k, trap_threshold, rng);
    result.work += c.work;
    if (best_k == 0 || c.num_traps > best.num_traps) {
      best = std::move(c);
      best_k = k;
    }
  }
  result.chosen_k = best_k;

  // Build phases from clusters.
  std::vector<Phase> phases(best.num_clusters);
  for (std::uint32_t c = 0; c < best.num_clusters; ++c) {
    phases[c].is_trap = best.is_trap[c];
    phases[c].longest_run = best.runs[c];
    phases[c].first_ticks = ~std::uint64_t{0};
  }
  for (std::uint32_t i = 0; i < bbvs.size(); ++i) {
    Phase& p = phases[best.assignment[i]];
    p.intervals.push_back(i);
    p.first_ticks = std::min(p.first_ticks, bbvs[i].start_ticks);
  }

  // Order phases by the gather time of their first BBV (paper: "the
  // execution order of phases is based on the time when the first BBV of
  // them is gathered").
  std::stable_sort(phases.begin(), phases.end(),
                   [](const Phase& a, const Phase& b) {
                     return a.first_ticks < b.first_ticks;
                   });
  std::vector<std::uint32_t> new_id_of_interval(bbvs.size(), 0);
  for (std::uint32_t p = 0; p < phases.size(); ++p) {
    phases[p].id = p;
    for (std::uint32_t i : phases[p].intervals) new_id_of_interval[i] = p;
    if (phases[p].is_trap) ++result.num_trap_phases;
  }
  // Each phase's cluster assignment is stamped at the gather time of its
  // first BBV, so the trace timeline shows phases in discovery order.
  for (const Phase& p : phases) {
    obs::trace_instant(obs::Category::kPhase, ids().ev_cluster, p.first_ticks,
                       p.id, ids().arg_phase, p.intervals.size(),
                       ids().arg_intervals);
    if (p.is_trap)
      obs::trace_instant(obs::Category::kPhase, ids().ev_trap, p.first_ticks,
                         p.id, ids().arg_phase, p.longest_run, ids().arg_run);
  }
  result.phases = std::move(phases);
  result.interval_phase = std::move(new_id_of_interval);
  return result;
}

std::uint32_t phase_of_ticks(const PhaseAnalysisResult& analysis,
                             const std::vector<concolic::BBV>& bbvs,
                             std::uint64_t ticks) {
  for (std::uint32_t i = 0; i < bbvs.size(); ++i) {
    if (ticks >= bbvs[i].start_ticks && ticks < bbvs[i].end_ticks)
      return analysis.interval_phase[i];
  }
  return analysis.interval_phase.empty() ? 0 : analysis.interval_phase.back();
}

}  // namespace pbse::phase
