// Phase division, selection, and trap-phase identification
// (paper Sec. III-B1): cluster coverage-augmented BBVs with k-means over
// k = 1..20, choose the k that identifies the most trap phases (ties ->
// smallest k), and mark as trap phases the clusters containing a long run
// of contiguous intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "concolic/bbv.h"
#include "support/rng.h"

namespace pbse::phase {

struct PhaseOptions {
  /// N as a fraction of the number of BBVs in the execution: a cluster
  /// containing >= max(2, fraction * #BBVs) CONTIGUOUS intervals is a trap
  /// phase (the paper sets this to 0.05).
  double trap_run_fraction = 0.05;
  std::uint32_t k_min = 1;
  std::uint32_t k_max = 20;
  /// Weight of the appended code-coverage element; 0 reproduces the
  /// BBV-only ablation of Fig 4(a).
  double coverage_weight = 4.0;
  std::uint64_t kmeans_seed = 12345;
};

struct Phase {
  std::uint32_t id = 0;             // index after sorting by first_ticks
  std::vector<std::uint32_t> intervals;  // BBV indices, ascending
  bool is_trap = false;
  std::uint64_t first_ticks = 0;    // gather time of the earliest BBV
  std::uint32_t longest_run = 0;    // longest contiguous interval run
};

struct PhaseAnalysisResult {
  std::vector<Phase> phases;        // ordered by first_ticks (paper's
                                    // execution order for scheduling)
  std::uint32_t chosen_k = 0;
  std::uint32_t num_trap_phases = 0;
  std::vector<std::uint32_t> interval_phase;  // BBV index -> phase id
  /// Total k-means distance computations across the k sweep ("p-time").
  std::uint64_t work = 0;
};

/// Runs the full phase-division pipeline on a BBV sequence.
PhaseAnalysisResult analyze_phases(const std::vector<concolic::BBV>& bbvs,
                                   const PhaseOptions& options = {});

/// Finds the phase containing the interval that covers `ticks`
/// (seedState -> phase mapping, Sec. III-B2). Returns the phase id, or the
/// last phase if `ticks` is beyond the end.
std::uint32_t phase_of_ticks(const PhaseAnalysisResult& analysis,
                             const std::vector<concolic::BBV>& bbvs,
                             std::uint64_t ticks);

}  // namespace pbse::phase
