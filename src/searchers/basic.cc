// DFS, BFS, and random-state searchers.
#include <algorithm>
#include <cassert>
#include <deque>

#include "searchers/searcher.h"

namespace pbse::search {

namespace {

/// Depth-first: always run the most recently created state.
class DFSSearcher final : public Searcher {
 public:
  vm::ExecutionState* select() override { return states_.back(); }

  void update(vm::ExecutionState*,
              const std::vector<vm::ExecutionState*>& added,
              const std::vector<vm::ExecutionState*>& removed) override {
    for (auto* s : added) states_.push_back(s);
    for (auto* s : removed)
      states_.erase(std::remove(states_.begin(), states_.end(), s),
                    states_.end());
  }

  bool empty() const override { return states_.empty(); }
  std::string name() const override { return "dfs"; }

  void save_position(std::vector<std::uint64_t>& out) const override {
    out.push_back(states_.size());
    for (const auto* s : states_) out.push_back(s->id);
  }
  void load_position(const std::vector<std::uint64_t>& words, std::size_t& pos,
                     const std::unordered_map<std::uint64_t,
                                              vm::ExecutionState*>& states)
      override {
    states_.clear();
    const std::uint64_t n = words.at(pos++);
    for (std::uint64_t k = 0; k < n; ++k)
      states_.push_back(states.at(words.at(pos++)));
  }

 private:
  std::vector<vm::ExecutionState*> states_;
};

/// Breadth-first: always run the oldest state.
class BFSSearcher final : public Searcher {
 public:
  vm::ExecutionState* select() override { return states_.front(); }

  void update(vm::ExecutionState* current,
              const std::vector<vm::ExecutionState*>& added,
              const std::vector<vm::ExecutionState*>& removed) override {
    // KLEE's BFS demotes the current state when it forks so siblings run
    // first; approximating with strict FIFO on forks.
    bool forked = !added.empty() && current != nullptr;
    for (auto* s : added) states_.push_back(s);
    for (auto* s : removed) {
      auto it = std::find(states_.begin(), states_.end(), s);
      if (it != states_.end()) states_.erase(it);
      if (s == current) forked = false;
    }
    if (forked && states_.front() == current) {
      states_.pop_front();
      states_.push_back(current);
    }
  }

  bool empty() const override { return states_.empty(); }
  std::string name() const override { return "bfs"; }

  void save_position(std::vector<std::uint64_t>& out) const override {
    out.push_back(states_.size());
    for (const auto* s : states_) out.push_back(s->id);
  }
  void load_position(const std::vector<std::uint64_t>& words, std::size_t& pos,
                     const std::unordered_map<std::uint64_t,
                                              vm::ExecutionState*>& states)
      override {
    states_.clear();
    const std::uint64_t n = words.at(pos++);
    for (std::uint64_t k = 0; k < n; ++k)
      states_.push_back(states.at(words.at(pos++)));
  }

 private:
  std::deque<vm::ExecutionState*> states_;
};

/// Uniformly random over all live states.
class RandomStateSearcher final : public Searcher {
 public:
  explicit RandomStateSearcher(Rng& rng) : rng_(rng) {}

  vm::ExecutionState* select() override {
    return states_[rng_.below(states_.size())];
  }

  void update(vm::ExecutionState*,
              const std::vector<vm::ExecutionState*>& added,
              const std::vector<vm::ExecutionState*>& removed) override {
    for (auto* s : added) states_.push_back(s);
    for (auto* s : removed) {
      auto it = std::find(states_.begin(), states_.end(), s);
      assert(it != states_.end());
      *it = states_.back();
      states_.pop_back();
    }
  }

  bool empty() const override { return states_.empty(); }
  std::string name() const override { return "random-state"; }

  // The swap-erase in update() makes the vector ORDER part of the
  // selection distribution's history; save it verbatim.
  void save_position(std::vector<std::uint64_t>& out) const override {
    out.push_back(states_.size());
    for (const auto* s : states_) out.push_back(s->id);
  }
  void load_position(const std::vector<std::uint64_t>& words, std::size_t& pos,
                     const std::unordered_map<std::uint64_t,
                                              vm::ExecutionState*>& states)
      override {
    states_.clear();
    const std::uint64_t n = words.at(pos++);
    for (std::uint64_t k = 0; k < n; ++k)
      states_.push_back(states.at(words.at(pos++)));
  }

 private:
  Rng& rng_;
  std::vector<vm::ExecutionState*> states_;
};

}  // namespace

std::unique_ptr<Searcher> make_dfs_searcher() {
  return std::make_unique<DFSSearcher>();
}
std::unique_ptr<Searcher> make_bfs_searcher() {
  return std::make_unique<BFSSearcher>();
}
std::unique_ptr<Searcher> make_random_state_searcher(Rng& rng) {
  return std::make_unique<RandomStateSearcher>(rng);
}

}  // namespace pbse::search
