#include "searchers/engine.h"

namespace pbse::search {

void SymbolicEngine::add_state(std::unique_ptr<vm::ExecutionState> state) {
  vm::ExecutionState* raw = state.get();
  states_[state->id] = std::move(state);
  searcher_.update(nullptr, {raw}, {});
}

void SymbolicEngine::after_step(vm::ExecutionState& state) {
  if (state.covered_new) {
    state.insts_since_cov_new = 0;
    state.covered_new = false;
  } else {
    ++state.insts_since_cov_new;
  }
}

std::uint64_t SymbolicEngine::run(const Deadline& deadline,
                                  const std::function<bool()>& extra_stop,
                                  const std::function<bool()>& batch_stop) {
  std::uint64_t executed = 0;
  std::vector<std::unique_ptr<vm::ExecutionState>> forked;
  std::vector<vm::ExecutionState*> added;
  std::vector<vm::ExecutionState*> removed;

  while (!searcher_.empty() && !deadline.expired()) {
    if (extra_stop && extra_stop()) break;
    if (batch_stop && batch_stop()) break;
    vm::ExecutionState* state = searcher_.select();

    forked.clear();
    added.clear();
    removed.clear();

    for (std::uint64_t i = 0; i < options_.batch_instructions; ++i) {
      executor_.step(*state, forked);
      ++executed;
      after_step(*state);
      if (state->done() || !forked.empty() || deadline.expired()) break;
      if (extra_stop && extra_stop()) break;
    }

    for (auto& child : forked) {
      after_step(*child);
      added.push_back(child.get());
      states_[child->id] = std::move(child);
    }
    if (state->done()) removed.push_back(state);

    searcher_.update(state, added, removed);
    for (auto* dead : removed) states_.erase(dead->id);
  }
  return executed;
}

}  // namespace pbse::search
