// The symbolic-execution run loop: owns the state population, drives the
// executor one instruction batch at a time, and keeps the searcher
// informed — KLEE's Executor::run() skeleton.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "searchers/searcher.h"
#include "support/vclock.h"
#include "vm/executor.h"

namespace pbse::search {

struct EngineOptions {
  /// Instructions run per select() before consulting the searcher again
  /// (forks and terminations re-consult immediately).
  std::uint64_t batch_instructions = 32;
};

class SymbolicEngine {
 public:
  SymbolicEngine(vm::Executor& executor, Searcher& searcher,
                 EngineOptions options = {})
      : executor_(executor), searcher_(searcher), options_(options) {}

  /// Transfers a state into the engine (and announces it to the searcher).
  void add_state(std::unique_ptr<vm::ExecutionState> state);

  /// Runs until the deadline expires, no states remain, or `extra_stop`
  /// returns true (checked between batches). Returns instructions executed.
  std::uint64_t run(const Deadline& deadline,
                    const std::function<bool()>& extra_stop = {});

  std::size_t num_states() const { return states_.size(); }
  vm::Executor& executor() { return executor_; }

 private:
  void after_step(vm::ExecutionState& state);

  vm::Executor& executor_;
  Searcher& searcher_;
  EngineOptions options_;
  std::unordered_map<std::uint64_t, std::unique_ptr<vm::ExecutionState>>
      states_;
};

}  // namespace pbse::search
