// The symbolic-execution run loop: owns the state population, drives the
// executor one instruction batch at a time, and keeps the searcher
// informed — KLEE's Executor::run() skeleton.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "searchers/searcher.h"
#include "support/vclock.h"
#include "vm/executor.h"

namespace pbse::serialize {
class CampaignCodec;
}

namespace pbse::search {

struct EngineOptions {
  /// Instructions run per select() before consulting the searcher again
  /// (forks and terminations re-consult immediately).
  std::uint64_t batch_instructions = 32;
};

class SymbolicEngine {
 public:
  SymbolicEngine(vm::Executor& executor, Searcher& searcher,
                 EngineOptions options = {})
      : executor_(executor), searcher_(searcher), options_(options) {}

  /// Transfers a state into the engine (and announces it to the searcher).
  void add_state(std::unique_ptr<vm::ExecutionState> state);

  /// Runs until the deadline expires, no states remain, or a stop callback
  /// fires. `extra_stop` is checked per instruction (a batch may end
  /// early); `batch_stop` is checked ONLY between batches — stopping there
  /// never truncates a batch, so a run sliced at batch_stop points and then
  /// resumed consumes the searcher/RNG streams exactly like an unsliced
  /// run. The server's checkpoint slicing relies on this. Returns
  /// instructions executed.
  std::uint64_t run(const Deadline& deadline,
                    const std::function<bool()>& extra_stop = {},
                    const std::function<bool()>& batch_stop = {});

  std::size_t num_states() const { return states_.size(); }
  vm::Executor& executor() { return executor_; }

 private:
  friend class pbse::serialize::CampaignCodec;

  void after_step(vm::ExecutionState& state);

  vm::Executor& executor_;
  Searcher& searcher_;
  EngineOptions options_;
  std::unordered_map<std::uint64_t, std::unique_ptr<vm::ExecutionState>>
      states_;
};

}  // namespace pbse::search
