// Random-path searcher: KLEE's PTree walk. Maintains the binary execution
// tree of all live states and selects by walking from the root, picking a
// random direction at every interior node — biasing selection toward
// states high in the tree (short paths), which is what gives random-path
// its coverage behaviour in the paper's Table I.
#include <cassert>
#include <memory>
#include <unordered_map>

#include "searchers/searcher.h"

namespace pbse::search {

namespace {

struct PNode {
  PNode* parent = nullptr;
  std::unique_ptr<PNode> left;   // original state after a fork
  std::unique_ptr<PNode> right;  // forked child
  vm::ExecutionState* state = nullptr;  // non-null iff leaf with live state
  std::uint32_t live = 0;  // live leaves in this subtree
};

class RandomPathSearcher final : public Searcher {
 public:
  explicit RandomPathSearcher(Rng& rng) : rng_(rng) {
    root_ = std::make_unique<PNode>();
  }

  vm::ExecutionState* select() override {
    PNode* node = root_.get();
    assert(node->live > 0);
    while (node->state == nullptr) {
      const std::uint32_t left_live =
          node->left != nullptr ? node->left->live : 0;
      const std::uint32_t right_live =
          node->right != nullptr ? node->right->live : 0;
      assert(left_live + right_live > 0);
      if (left_live == 0) {
        node = node->right.get();
      } else if (right_live == 0) {
        node = node->left.get();
      } else {
        // Uniform coin flip per interior node — KLEE's PTree behaviour.
        node = rng_.below(2) == 0 ? node->left.get() : node->right.get();
      }
    }
    return node->state;
  }

  void update(vm::ExecutionState*,
              const std::vector<vm::ExecutionState*>& added,
              const std::vector<vm::ExecutionState*>& removed) override {
    for (auto* s : added) insert(s);
    for (auto* s : removed) erase(s);
  }

  bool empty() const override { return root_->live == 0; }
  std::string name() const override { return "random-path"; }

  // The FULL tree is saved, dead subtrees included: a walk deterministically
  // skips live==0 branches without consuming RNG, but the tree SHAPE decides
  // where future forks split, so pruning on save would change behaviour.
  void save_position(std::vector<std::uint64_t>& out) const override {
    save_node(root_.get(), out);
  }
  void load_position(const std::vector<std::uint64_t>& words, std::size_t& pos,
                     const std::unordered_map<std::uint64_t,
                                              vm::ExecutionState*>& states)
      override {
    leaf_of_.clear();
    root_ = load_node(words, pos, states, nullptr);
  }

 private:
  void save_node(const PNode* node, std::vector<std::uint64_t>& out) const {
    std::uint64_t tag = 0;
    if (node->left != nullptr) tag |= 1;
    if (node->right != nullptr) tag |= 2;
    if (node->state != nullptr) tag |= 4;
    out.push_back(tag);
    if (node->state != nullptr) out.push_back(node->state->id);
    if (node->left != nullptr) save_node(node->left.get(), out);
    if (node->right != nullptr) save_node(node->right.get(), out);
  }

  std::unique_ptr<PNode> load_node(
      const std::vector<std::uint64_t>& words, std::size_t& pos,
      const std::unordered_map<std::uint64_t, vm::ExecutionState*>& states,
      PNode* parent) {
    auto node = std::make_unique<PNode>();
    node->parent = parent;
    const std::uint64_t tag = words.at(pos++);
    if ((tag & 4) != 0) {
      node->state = states.at(words.at(pos++));
      leaf_of_[node->state->id] = node.get();
      node->live = 1;
    }
    if ((tag & 1) != 0) {
      node->left = load_node(words, pos, states, node.get());
      node->live += node->left->live;
    }
    if ((tag & 2) != 0) {
      node->right = load_node(words, pos, states, node.get());
      node->live += node->right->live;
    }
    return node;
  }

  void bump(PNode* node, std::int32_t delta) {
    for (; node != nullptr; node = node->parent)
      node->live = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(node->live) + delta);
  }

  void insert(vm::ExecutionState* s) {
    auto parent_it = leaf_of_.find(s->parent_id);
    if (parent_it == leaf_of_.end()) {
      // The initial state (or a state whose parent is already gone):
      // attach to the root if it is a fresh tree, else to a new right spine.
      PNode* leaf = attach_fresh_leaf();
      leaf->state = s;
      leaf_of_[s->id] = leaf;
      bump(leaf, +1);
      return;
    }
    // Split the parent's leaf into two children.
    PNode* leaf = parent_it->second;
    assert(leaf->state != nullptr);
    vm::ExecutionState* parent_state = leaf->state;
    leaf->state = nullptr;
    leaf->left = std::make_unique<PNode>();
    leaf->left->parent = leaf;
    leaf->left->state = parent_state;
    leaf->left->live = 1;
    leaf->right = std::make_unique<PNode>();
    leaf->right->parent = leaf;
    leaf->right->state = s;
    leaf->right->live = 1;
    leaf_of_[parent_state->id] = leaf->left.get();
    leaf_of_[s->id] = leaf->right.get();
    bump(leaf, +1);  // leaf itself already counted one live leaf
  }

  PNode* attach_fresh_leaf() {
    if (root_->state == nullptr && root_->left == nullptr &&
        root_->right == nullptr)
      return root_.get();
    // Rare fallback: graft under a new root.
    auto new_root = std::make_unique<PNode>();
    new_root->left = std::move(root_);
    new_root->left->parent = new_root.get();
    new_root->right = std::make_unique<PNode>();
    new_root->right->parent = new_root.get();
    new_root->live = new_root->left->live;
    root_ = std::move(new_root);
    return root_->right.get();
  }

  void erase(vm::ExecutionState* s) {
    auto it = leaf_of_.find(s->id);
    assert(it != leaf_of_.end());
    PNode* leaf = it->second;
    leaf->state = nullptr;
    leaf_of_.erase(it);
    bump(leaf, -1);
    // Dead subtrees are left in place (live == 0 prunes them from walks);
    // KLEE does the same and prunes lazily.
  }

  Rng& rng_;
  std::unique_ptr<PNode> root_;
  std::unordered_map<std::uint64_t, PNode*> leaf_of_;
};

}  // namespace

std::unique_ptr<Searcher> make_random_path_searcher(Rng& rng) {
  return std::make_unique<RandomPathSearcher>(rng);
}

}  // namespace pbse::search
