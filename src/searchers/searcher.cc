// Interleaved searcher and the factory.
#include "searchers/searcher.h"

#include <cassert>

namespace pbse::search {

// Implemented in the per-strategy translation units.
std::unique_ptr<Searcher> make_dfs_searcher();
std::unique_ptr<Searcher> make_bfs_searcher();
std::unique_ptr<Searcher> make_random_state_searcher(Rng& rng);
std::unique_ptr<Searcher> make_random_path_searcher(Rng& rng);
std::unique_ptr<Searcher> make_covnew_searcher(vm::Executor& executor, Rng& rng);
std::unique_ptr<Searcher> make_md2u_searcher(vm::Executor& executor, Rng& rng);

namespace {

/// KLEE's InterleavedSearcher: round-robins select() among sub-searchers,
/// forwarding updates to all of them. The default configuration interleaves
/// random-path with covnew.
class InterleavedSearcher final : public Searcher {
 public:
  explicit InterleavedSearcher(std::vector<std::unique_ptr<Searcher>> subs)
      : subs_(std::move(subs)) {}

  vm::ExecutionState* select() override {
    next_ = (next_ + 1) % subs_.size();
    return subs_[next_]->select();
  }

  void update(vm::ExecutionState* current,
              const std::vector<vm::ExecutionState*>& added,
              const std::vector<vm::ExecutionState*>& removed) override {
    for (auto& s : subs_) s->update(current, added, removed);
  }

  bool empty() const override { return subs_.front()->empty(); }
  std::string name() const override {
    std::string n = "interleaved(";
    for (std::size_t i = 0; i < subs_.size(); ++i)
      n += (i > 0 ? "," : "") + subs_[i]->name();
    return n + ")";
  }

  void save_position(std::vector<std::uint64_t>& out) const override {
    out.push_back(next_);
    for (const auto& s : subs_) s->save_position(out);
  }
  void load_position(const std::vector<std::uint64_t>& words, std::size_t& pos,
                     const std::unordered_map<std::uint64_t,
                                              vm::ExecutionState*>& states)
      override {
    next_ = static_cast<std::size_t>(words.at(pos++));
    for (auto& s : subs_) s->load_position(words, pos, states);
  }

 private:
  std::vector<std::unique_ptr<Searcher>> subs_;
  std::size_t next_ = 0;
};

}  // namespace

const char* searcher_kind_name(SearcherKind kind) {
  switch (kind) {
    case SearcherKind::kDFS: return "dfs";
    case SearcherKind::kBFS: return "bfs";
    case SearcherKind::kRandomState: return "random-state";
    case SearcherKind::kRandomPath: return "random-path";
    case SearcherKind::kCovNew: return "covnew";
    case SearcherKind::kMD2U: return "md2u";
    case SearcherKind::kDefault: return "default";
  }
  return "?";
}

bool parse_searcher_kind(const std::string& name, SearcherKind& out) {
  for (SearcherKind kind :
       {SearcherKind::kDFS, SearcherKind::kBFS, SearcherKind::kRandomState,
        SearcherKind::kRandomPath, SearcherKind::kCovNew, SearcherKind::kMD2U,
        SearcherKind::kDefault}) {
    if (name == searcher_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<Searcher> make_searcher(SearcherKind kind,
                                        vm::Executor& executor, Rng& rng) {
  switch (kind) {
    case SearcherKind::kDFS: return make_dfs_searcher();
    case SearcherKind::kBFS: return make_bfs_searcher();
    case SearcherKind::kRandomState: return make_random_state_searcher(rng);
    case SearcherKind::kRandomPath: return make_random_path_searcher(rng);
    case SearcherKind::kCovNew: return make_covnew_searcher(executor, rng);
    case SearcherKind::kMD2U: return make_md2u_searcher(executor, rng);
    case SearcherKind::kDefault: {
      std::vector<std::unique_ptr<Searcher>> subs;
      subs.push_back(make_random_path_searcher(rng));
      subs.push_back(make_covnew_searcher(executor, rng));
      return std::make_unique<InterleavedSearcher>(std::move(subs));
    }
  }
  assert(false && "unknown searcher kind");
  return nullptr;
}

}  // namespace pbse::search
