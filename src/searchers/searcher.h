// State-selection strategies — the searchers the paper benchmarks KLEE
// with in Table I: dfs, bfs, random-state, random-path, covnew, md2u, and
// the default interleaved (random-path + covnew) searcher.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/rng.h"
#include "vm/executor.h"
#include "vm/state.h"

namespace pbse::search {

/// Strategy interface (KLEE's Searcher). The engine owns the states; the
/// searcher only tracks raw pointers it receives via update().
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Picks the next state to run. Precondition: !empty().
  virtual vm::ExecutionState* select() = 0;

  /// Informs the searcher of population changes. `current` is the state
  /// that just ran (may be in `removed`).
  virtual void update(vm::ExecutionState* current,
                      const std::vector<vm::ExecutionState*>& added,
                      const std::vector<vm::ExecutionState*>& removed) = 0;

  virtual bool empty() const = 0;
  virtual std::string name() const = 0;

  // --- Snapshot/restore (src/serialize) ----------------------------------
  // A searcher's observable behaviour depends on more than its membership
  // set: container ORDER (DFS/BFS/random-state selection), the execution
  // tree SHAPE including dead subtrees (random-path walks), and round-robin
  // cursors (interleaved). save_position captures all of it as a flat u64
  // stream; load_position rebuilds it on a freshly constructed searcher of
  // the same kind, resolving state ids through `states`. A restored
  // searcher must produce the exact selection sequence the saved one would
  // have (given the same restored Rng).

  /// Appends the searcher's full position to `out`.
  virtual void save_position(std::vector<std::uint64_t>& out) const = 0;

  /// Rebuilds the position from `words`, consuming entries at `pos`
  /// (advanced past the consumed prefix). `states` maps state id -> live
  /// state. Replaces any previous membership wholesale.
  virtual void load_position(
      const std::vector<std::uint64_t>& words, std::size_t& pos,
      const std::unordered_map<std::uint64_t, vm::ExecutionState*>& states) = 0;
};

enum class SearcherKind {
  kDFS,
  kBFS,
  kRandomState,
  kRandomPath,
  kCovNew,
  kMD2U,
  kDefault,  // interleaved random-path + covnew (KLEE's default)
};

const char* searcher_kind_name(SearcherKind kind);

/// Parses "dfs" / "bfs" / "random-state" / "random-path" / "covnew" /
/// "md2u" / "default". Returns false on unknown names.
bool parse_searcher_kind(const std::string& name, SearcherKind& out);

/// Creates a searcher. `executor` supplies coverage information for the
/// heuristic searchers; `rng` drives the randomized ones.
std::unique_ptr<Searcher> make_searcher(SearcherKind kind,
                                        vm::Executor& executor, Rng& rng);

}  // namespace pbse::search
