// State-selection strategies — the searchers the paper benchmarks KLEE
// with in Table I: dfs, bfs, random-state, random-path, covnew, md2u, and
// the default interleaved (random-path + covnew) searcher.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "vm/executor.h"
#include "vm/state.h"

namespace pbse::search {

/// Strategy interface (KLEE's Searcher). The engine owns the states; the
/// searcher only tracks raw pointers it receives via update().
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Picks the next state to run. Precondition: !empty().
  virtual vm::ExecutionState* select() = 0;

  /// Informs the searcher of population changes. `current` is the state
  /// that just ran (may be in `removed`).
  virtual void update(vm::ExecutionState* current,
                      const std::vector<vm::ExecutionState*>& added,
                      const std::vector<vm::ExecutionState*>& removed) = 0;

  virtual bool empty() const = 0;
  virtual std::string name() const = 0;
};

enum class SearcherKind {
  kDFS,
  kBFS,
  kRandomState,
  kRandomPath,
  kCovNew,
  kMD2U,
  kDefault,  // interleaved random-path + covnew (KLEE's default)
};

const char* searcher_kind_name(SearcherKind kind);

/// Parses "dfs" / "bfs" / "random-state" / "random-path" / "covnew" /
/// "md2u" / "default". Returns false on unknown names.
bool parse_searcher_kind(const std::string& name, SearcherKind& out);

/// Creates a searcher. `executor` supplies coverage information for the
/// heuristic searchers; `rng` drives the randomized ones.
std::unique_ptr<Searcher> make_searcher(SearcherKind kind,
                                        vm::Executor& executor, Rng& rng);

}  // namespace pbse::search
