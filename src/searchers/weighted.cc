// Weighted-random searchers: covnew and md2u (KLEE's WeightedRandomSearcher
// with the CoveringNew and MinDistToUncovered weight functions).
//
// md2u weights states by the inverse squared CFG distance from their
// current block to the nearest uncovered block; covnew additionally decays
// with the number of instructions executed since the state last covered
// new code. Distances are recomputed lazily when coverage changes.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "ir/cfg.h"
#include "searchers/searcher.h"

namespace pbse::search {

namespace {

class WeightedSearcher final : public Searcher {
 public:
  enum class Weight { kCovNew, kMD2U };

  WeightedSearcher(Weight weight, vm::Executor& executor, Rng& rng)
      : weight_(weight),
        executor_(executor),
        rng_(rng),
        graph_(executor.module()),
        distance_(graph_) {}

  vm::ExecutionState* select() override {
    refresh_distances();
    double total = 0;
    weights_.resize(states_.size());
    for (std::size_t i = 0; i < states_.size(); ++i) {
      weights_[i] = state_weight(*states_[i]);
      total += weights_[i];
    }
    if (total <= 0) return states_[rng_.below(states_.size())];
    double pick = rng_.uniform() * total;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      pick -= weights_[i];
      if (pick <= 0) return states_[i];
    }
    return states_.back();
  }

  void update(vm::ExecutionState*,
              const std::vector<vm::ExecutionState*>& added,
              const std::vector<vm::ExecutionState*>& removed) override {
    for (auto* s : added) states_.push_back(s);
    for (auto* s : removed) {
      auto it = std::find(states_.begin(), states_.end(), s);
      assert(it != states_.end());
      *it = states_.back();
      states_.pop_back();
    }
  }

  bool empty() const override { return states_.empty(); }
  std::string name() const override {
    return weight_ == Weight::kCovNew ? "covnew" : "md2u";
  }

  void save_position(std::vector<std::uint64_t>& out) const override {
    out.push_back(states_.size());
    for (const auto* s : states_) out.push_back(s->id);
  }
  void load_position(const std::vector<std::uint64_t>& words, std::size_t& pos,
                     const std::unordered_map<std::uint64_t,
                                              vm::ExecutionState*>& states)
      override {
    states_.clear();
    const std::uint64_t n = words.at(pos++);
    for (std::uint64_t k = 0; k < n; ++k)
      states_.push_back(states.at(words.at(pos++)));
    // Force a distance recompute on the next select(): the recompute is a
    // pure function of executor coverage, so redoing it is deterministic.
    last_epoch_ = ~std::uint64_t{0};
  }

 private:
  void refresh_distances() {
    if (executor_.coverage_epoch() == last_epoch_) return;
    distance_.recompute(executor_.covered());
    last_epoch_ = executor_.coverage_epoch();
  }

  double state_weight(const vm::ExecutionState& s) const {
    const std::uint32_t d = distance_.distance(s.current_global_bb());
    const double dist =
        d == ir::DistanceToUncovered::kUnreachable ? 10000.0 : double(d);
    const double inv_md2u = 1.0 / (1.0 + dist);
    if (weight_ == Weight::kMD2U) return inv_md2u * inv_md2u;
    // covnew: favour states that recently covered new code.
    const double freshness =
        1.0 / (1.0 + static_cast<double>(s.insts_since_cov_new));
    return freshness * inv_md2u;
  }

  Weight weight_;
  vm::Executor& executor_;
  Rng& rng_;
  ir::BlockGraph graph_;
  ir::DistanceToUncovered distance_;
  std::uint64_t last_epoch_ = ~std::uint64_t{0};
  std::vector<vm::ExecutionState*> states_;
  std::vector<double> weights_;
};

}  // namespace

std::unique_ptr<Searcher> make_covnew_searcher(vm::Executor& executor,
                                               Rng& rng) {
  return std::make_unique<WeightedSearcher>(WeightedSearcher::Weight::kCovNew,
                                            executor, rng);
}

std::unique_ptr<Searcher> make_md2u_searcher(vm::Executor& executor,
                                             Rng& rng) {
  return std::make_unique<WeightedSearcher>(WeightedSearcher::Weight::kMD2U,
                                            executor, rng);
}

}  // namespace pbse::search
