#include "serialize/campaign_codec.h"

#include <algorithm>
#include <array>
#include <utility>

#include "core/driver.h"
#include "core/pbse.h"
#include "obs/metrics.h"
#include "searchers/engine.h"
#include "searchers/searcher.h"
#include "solver/solver.h"
#include "support/stats.h"
#include "vm/executor.h"

namespace pbse::serialize {

namespace {

/// Sorted copy of an unordered map's keys — every unordered container is
/// emitted in sorted order so re-serializing a restored campaign
/// reproduces the snapshot byte for byte.
template <typename Map>
std::vector<std::uint64_t> sorted_keys(const Map& map) {
  std::vector<std::uint64_t> keys;
  keys.reserve(map.size());
  for (const auto& [k, v] : map) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void encode_u64_set(Encoder& enc,
                    const std::unordered_set<std::uint64_t>& set) {
  std::vector<std::uint64_t> sorted(set.begin(), set.end());
  std::sort(sorted.begin(), sorted.end());
  enc.u32(static_cast<std::uint32_t>(sorted.size()));
  for (std::uint64_t v : sorted) enc.u64(v);
}

std::unordered_set<std::uint64_t> decode_u64_set(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  std::unordered_set<std::uint64_t> set;
  set.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) set.insert(dec.u64());
  return set;
}

void encode_core(Encoder& enc, const std::vector<std::uint64_t>& core) {
  enc.u32(static_cast<std::uint32_t>(core.size()));
  for (std::uint64_t h : core) enc.u64(h);
}

std::vector<std::uint64_t> decode_core(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  std::vector<std::uint64_t> core;
  core.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) core.push_back(dec.u64());
  return core;
}

/// Per-key core lists of an InterpolantTable-style map, sorted by key,
/// lists verbatim (list order is eviction state).
void encode_core_map(Encoder& enc, const InterpolantTable::Map& map) {
  const auto keys = sorted_keys(map);
  enc.u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t key : keys) {
    enc.u64(key);
    const auto& list = map.at(key);
    enc.u32(static_cast<std::uint32_t>(list.size()));
    for (const auto& core : list) encode_core(enc, core);
  }
}

void encode_rng_clock(Encoder& enc, const VClock& clock, const Rng& rng) {
  enc.u64(clock.now());
  for (std::uint64_t w : rng.state()) enc.u64(w);
}

void decode_rng_clock(Decoder& dec, VClock& clock, Rng& rng) {
  clock.set(dec.u64());
  std::array<std::uint64_t, 4> s;
  for (auto& w : s) w = dec.u64();
  rng.set_state(s);
}

/// Cheap configuration guard: the symbolic input array's identity. A
/// snapshot restored into a run built with different options would
/// produce silent garbage; the input array catches the common mismatches
/// (different sym size, different seed file) loudly.
void encode_input_guard(Encoder& enc, const ArrayRef& input) {
  enc.str(input == nullptr ? std::string() : input->name());
  enc.u32(input == nullptr ? 0 : input->size());
}

void check_input_guard(Decoder& dec, const ArrayRef& input) {
  const std::string name = dec.str();
  const std::uint32_t size = dec.u32();
  const std::string have = input == nullptr ? std::string() : input->name();
  const std::uint32_t have_size = input == nullptr ? 0 : input->size();
  if (name != have || size != have_size)
    throw SnapshotError(
        "pbss: campaign mismatch — snapshot input is '" + name + "'[" +
        std::to_string(size) + "], restoring run has '" + have + "'[" +
        std::to_string(have_size) +
        "] (construct the run with the snapshot's options)");
}

}  // namespace

// --- Stats (by NAME: MetricId interning order is process-local) -----------

void CampaignCodec::encode_stats(Encoder& enc, const Stats& stats) {
  const auto counters = stats.all();  // sorted by name
  enc.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    enc.str(name);
    enc.u64(value);
  }
  const auto hists = stats.histograms();  // sorted by name
  enc.u32(static_cast<std::uint32_t>(hists.size()));
  for (const auto& [name, h] : hists) {
    enc.str(name);
    for (std::uint64_t b : h->raw_buckets()) enc.u64(b);
    enc.u64(h->count());
    enc.u64(h->sum());
    enc.u64(h->raw_max());
    enc.u64(h->raw_min());
  }
}

void CampaignCodec::decode_stats(Decoder& dec, Stats& stats) {
  stats.clear();
  const std::uint32_t ncounters = dec.u32();
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    const std::string name = dec.str();
    stats.mutable_store().add(obs::intern_metric(name), dec.u64());
  }
  const std::uint32_t nhists = dec.u32();
  for (std::uint32_t i = 0; i < nhists; ++i) {
    const std::string name = dec.str();
    std::array<std::uint64_t, obs::Histogram::kBuckets> buckets;
    for (auto& b : buckets) b = dec.u64();
    const std::uint64_t count = dec.u64();
    const std::uint64_t sum = dec.u64();
    const std::uint64_t max = dec.u64();
    const std::uint64_t min = dec.u64();
    stats.mutable_store()
        .mutable_histogram(obs::intern_metric(name))
        .set_raw(buckets, count, sum, max, min);
  }
}

// --- Executor bookkeeping -------------------------------------------------

void CampaignCodec::encode_executor(StateCodec& codec, Encoder& enc,
                                    vm::Executor& ex) {
  (void)codec;
  // Coverage bitset, packed 8 blocks per byte.
  enc.u32(static_cast<std::uint32_t>(ex.covered_.size()));
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < ex.covered_.size(); ++i) {
    if (ex.covered_[i]) byte |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      enc.u8(byte);
      byte = 0;
    }
  }
  if (ex.covered_.size() % 8 != 0) enc.u8(byte);
  enc.u64(ex.num_covered_);
  enc.u64(ex.coverage_epoch_);
  enc.u32(static_cast<std::uint32_t>(ex.coverage_log_.size()));
  for (const auto& ev : ex.coverage_log_) {
    enc.u64(ev.ticks);
    enc.u32(ev.global_bb);
  }

  enc.u32(static_cast<std::uint32_t>(ex.bugs_.size()));
  for (const auto& bug : ex.bugs_) {
    enc.u8(static_cast<std::uint8_t>(bug.kind));
    enc.str(bug.function);
    enc.u32(bug.line);
    enc.u32(bug.global_bb);
    enc.str(bug.message);
    enc.u64(bug.found_at_ticks);
    enc.u64(bug.state_id);
    enc.blob(bug.input);
  }
  std::vector<std::string> sites(ex.bug_sites_.begin(), ex.bug_sites_.end());
  std::sort(sites.begin(), sites.end());
  enc.u32(static_cast<std::uint32_t>(sites.size()));
  for (const auto& site : sites) enc.str(site);

  enc.u32(static_cast<std::uint32_t>(ex.test_cases_.size()));
  for (const auto& tc : ex.test_cases_) {
    enc.blob(tc.input);
    enc.u64(tc.state_id);
    enc.u64(tc.generated_at_ticks);
    enc.str(tc.reason);
  }
  enc.u32(static_cast<std::uint32_t>(ex.out_log_.size()));
  for (std::uint64_t v : ex.out_log_) enc.u64(v);

  enc.u64(ex.next_state_id_);
  enc.u64(ex.live_states_);
  enc.u32(ex.input_object_);
  encode_u64_set(enc, ex.concolic_seen_forks_);
  encode_u64_set(enc, ex.seen_fingerprints_);
}

void CampaignCodec::decode_executor(StateCodec& codec, Decoder& dec,
                                    vm::Executor& ex) {
  (void)codec;
  const std::uint32_t ncovered = dec.u32();
  ex.covered_.assign(ncovered, false);
  std::uint8_t byte = 0;
  for (std::uint32_t i = 0; i < ncovered; ++i) {
    if (i % 8 == 0) byte = dec.u8();
    ex.covered_[i] = (byte >> (i % 8)) & 1;
  }
  ex.num_covered_ = dec.u64();
  ex.coverage_epoch_ = dec.u64();
  const std::uint32_t nlog = dec.u32();
  ex.coverage_log_.clear();
  ex.coverage_log_.reserve(nlog);
  for (std::uint32_t i = 0; i < nlog; ++i) {
    vm::Executor::CoverEvent ev;
    ev.ticks = dec.u64();
    ev.global_bb = dec.u32();
    ex.coverage_log_.push_back(ev);
  }

  const std::uint32_t nbugs = dec.u32();
  ex.bugs_.clear();
  ex.bugs_.reserve(nbugs);
  for (std::uint32_t i = 0; i < nbugs; ++i) {
    vm::BugReport bug;
    bug.kind = static_cast<vm::BugKind>(dec.u8());
    bug.function = dec.str();
    bug.line = dec.u32();
    bug.global_bb = dec.u32();
    bug.message = dec.str();
    bug.found_at_ticks = dec.u64();
    bug.state_id = dec.u64();
    bug.input = dec.blob();
    ex.bugs_.push_back(std::move(bug));
  }
  const std::uint32_t nsites = dec.u32();
  ex.bug_sites_.clear();
  for (std::uint32_t i = 0; i < nsites; ++i) ex.bug_sites_.insert(dec.str());

  const std::uint32_t ntests = dec.u32();
  ex.test_cases_.clear();
  ex.test_cases_.reserve(ntests);
  for (std::uint32_t i = 0; i < ntests; ++i) {
    vm::TestCase tc;
    tc.input = dec.blob();
    tc.state_id = dec.u64();
    tc.generated_at_ticks = dec.u64();
    tc.reason = dec.str();
    ex.test_cases_.push_back(std::move(tc));
  }
  const std::uint32_t nout = dec.u32();
  ex.out_log_.clear();
  ex.out_log_.reserve(nout);
  for (std::uint32_t i = 0; i < nout; ++i) ex.out_log_.push_back(dec.u64());

  ex.next_state_id_ = dec.u64();
  ex.live_states_ = dec.u64();
  ex.input_object_ = dec.u32();
  ex.concolic_seen_forks_ = decode_u64_set(dec);
  ex.seen_fingerprints_ = decode_u64_set(dec);
}

// --- Solver L1 stores -----------------------------------------------------

void CampaignCodec::encode_solver(StateCodec& codec, Encoder& enc,
                                  Solver& solver) {
  // Exact query cache, sorted by key.
  {
    const auto& entries = solver.cache_.entries();
    const auto keys = sorted_keys(entries);
    enc.u32(static_cast<std::uint32_t>(keys.size()));
    for (std::uint64_t key : keys) {
      const auto& e = entries.at(key);
      enc.u64(key);
      enc.u8(static_cast<std::uint8_t>(e.result));
      codec.encode_model_bytes(enc, e.model);
    }
  }
  // Counterexample store: keys sorted, per-key lists VERBATIM (FIFO
  // position is eviction state).
  {
    const auto& models = solver.cex_.raw_models();
    const auto keys = sorted_keys(models);
    enc.u32(static_cast<std::uint32_t>(keys.size()));
    for (std::uint64_t key : keys) {
      enc.u64(key);
      const auto& list = models.at(key);
      enc.u32(static_cast<std::uint32_t>(list.size()));
      for (const auto& m : list) codec.encode_model_bytes(enc, m);
    }
    const auto& cores = solver.cex_.raw_cores();
    const auto ckeys = sorted_keys(cores);
    enc.u32(static_cast<std::uint32_t>(ckeys.size()));
    for (std::uint64_t key : ckeys) {
      enc.u64(key);
      const auto& list = cores.at(key);
      enc.u32(static_cast<std::uint32_t>(list.size()));
      for (const auto& core : list) encode_core(enc, core);
    }
  }
  // Domain memo: keys sorted; slots sorted by (array name, index).
  {
    const auto keys = sorted_keys(solver.domain_memo_);
    enc.u32(static_cast<std::uint32_t>(keys.size()));
    for (std::uint64_t key : keys) {
      const auto& entry = solver.domain_memo_.at(key);
      enc.u64(key);
      enc.u32(entry.delta_depth);
      std::vector<const DomainMap::Slot*> slots;
      slots.reserve(entry.domains.slots().size());
      for (const auto& [k, slot] : entry.domains.slots())
        slots.push_back(&slot);
      std::sort(slots.begin(), slots.end(),
                [](const DomainMap::Slot* a, const DomainMap::Slot* b) {
                  if (a->array->name() != b->array->name())
                    return a->array->name() < b->array->name();
                  return a->index < b->index;
                });
      enc.u32(static_cast<std::uint32_t>(slots.size()));
      for (const DomainMap::Slot* slot : slots) {
        codec.encode_array(enc, slot->array);
        enc.u32(slot->index);
        for (std::uint64_t w : slot->dom.words()) enc.u64(w);
      }
    }
  }
  // Interpolant table; then the current filing location.
  encode_core_map(enc, solver.interpolants_.raw_unsat());
  encode_core_map(enc, solver.interpolants_.raw_barren());
  enc.u64(solver.interpolant_location_);
}

void CampaignCodec::decode_solver(StateCodec& codec, Decoder& dec,
                                  Solver& solver) {
  solver.cache_.clear();
  {
    const std::uint32_t n = dec.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t key = dec.u64();
      QueryCache::Entry e;
      e.result = static_cast<SolverResult>(dec.u8());
      e.model = codec.decode_model_bytes(dec);
      solver.cache_.insert(key, std::move(e));
    }
  }
  solver.cex_.clear();
  {
    const std::uint32_t nkeys = dec.u32();
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      const std::uint64_t key = dec.u64();
      auto& list = solver.cex_.mutable_models(key);
      const std::uint32_t len = dec.u32();
      list.reserve(len);
      for (std::uint32_t j = 0; j < len; ++j)
        list.push_back(codec.decode_model_bytes(dec));
    }
    const std::uint32_t nckeys = dec.u32();
    for (std::uint32_t i = 0; i < nckeys; ++i) {
      const std::uint64_t key = dec.u64();
      auto& list = solver.cex_.mutable_cores(key);
      const std::uint32_t len = dec.u32();
      list.reserve(len);
      for (std::uint32_t j = 0; j < len; ++j) list.push_back(decode_core(dec));
    }
  }
  solver.domain_memo_.clear();
  {
    const std::uint32_t n = dec.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t key = dec.u64();
      auto& entry = solver.domain_memo_[key];
      entry.delta_depth = dec.u32();
      const std::uint32_t nslots = dec.u32();
      for (std::uint32_t j = 0; j < nslots; ++j) {
        const ArrayRef array = codec.decode_array(dec);
        const std::uint32_t index = dec.u32();
        std::array<std::uint64_t, 4> words;
        for (auto& w : words) w = dec.u64();
        entry.domains.domain(array, index).set_words(words);
      }
    }
  }
  solver.interpolants_.clear();
  for (int which = 0; which < 2; ++which) {
    const std::uint32_t nkeys = dec.u32();
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      const std::uint64_t key = dec.u64();
      auto& list = which == 0 ? solver.interpolants_.mutable_unsat(key)
                              : solver.interpolants_.mutable_barren(key);
      const std::uint32_t len = dec.u32();
      list.reserve(len);
      for (std::uint32_t j = 0; j < len; ++j) list.push_back(decode_core(dec));
    }
  }
  solver.interpolant_location_ = dec.u64();
}

// --- Engine population + searcher position --------------------------------

void CampaignCodec::encode_engine(StateCodec& codec, Encoder& enc,
                                  search::SymbolicEngine& engine,
                                  search::Searcher& searcher) {
  std::vector<const vm::ExecutionState*> states;
  states.reserve(engine.states_.size());
  for (const auto& [id, s] : engine.states_) states.push_back(s.get());
  std::sort(states.begin(), states.end(),
            [](const vm::ExecutionState* a, const vm::ExecutionState* b) {
              return a->id < b->id;
            });
  enc.u32(static_cast<std::uint32_t>(states.size()));
  for (const vm::ExecutionState* s : states) codec.encode_state(enc, *s);

  std::vector<std::uint64_t> words;
  searcher.save_position(words);
  enc.u32(static_cast<std::uint32_t>(words.size()));
  for (std::uint64_t w : words) enc.u64(w);
}

void CampaignCodec::decode_engine(StateCodec& codec, Decoder& dec,
                                  search::SymbolicEngine& engine,
                                  search::Searcher& searcher,
                                  const ir::Module& module) {
  engine.states_.clear();
  const std::uint32_t n = dec.u32();
  std::unordered_map<std::uint64_t, vm::ExecutionState*> by_id;
  by_id.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto state = codec.decode_state(dec, module);
    const std::uint64_t id = state->id;
    by_id[id] = state.get();
    engine.states_[id] = std::move(state);
  }
  const std::uint32_t nwords = dec.u32();
  std::vector<std::uint64_t> words;
  words.reserve(nwords);
  for (std::uint32_t i = 0; i < nwords; ++i) words.push_back(dec.u64());
  std::size_t pos = 0;
  searcher.load_position(words, pos, by_id);
  if (pos != words.size())
    throw SnapshotError("pbss: searcher position has trailing words");
}

// --- KLEE-style campaigns -------------------------------------------------

std::vector<std::uint8_t> CampaignCodec::snapshot(core::KleeRun& run) {
  StateCodec codec;
  Encoder enc;
  encode_input_guard(enc, run.executor_->input_array());
  encode_rng_clock(enc, run.clock_, run.rng_);
  encode_stats(enc, run.stats_);
  encode_executor(codec, enc, *run.executor_);
  encode_solver(codec, enc, *run.solver_);
  encode_engine(codec, enc, *run.engine_, *run.searcher_);
  return frame_snapshot(SnapshotFlavor::kKlee, enc.data());
}

void CampaignCodec::restore(core::KleeRun& run,
                            const std::vector<std::uint8_t>& framed) {
  const std::vector<std::uint8_t> payload =
      unframe_snapshot(framed, SnapshotFlavor::kKlee);
  Decoder dec(payload);
  StateCodec codec;
  codec.register_array(run.executor_->input_array());
  check_input_guard(dec, run.executor_->input_array());
  decode_rng_clock(dec, run.clock_, run.rng_);
  decode_stats(dec, run.stats_);
  decode_executor(codec, dec, *run.executor_);
  decode_solver(codec, dec, *run.solver_);
  decode_engine(codec, dec, *run.engine_, *run.searcher_,
                run.executor_->module());
  if (!dec.done())
    throw SnapshotError("pbss: trailing bytes in klee campaign payload");
}

// --- pbSE campaigns -------------------------------------------------------

std::vector<std::uint8_t> CampaignCodec::snapshot(core::PbseDriver& driver) {
  StateCodec codec;
  Encoder enc;
  encode_input_guard(enc, driver.executor_->input_array());
  encode_rng_clock(enc, driver.clock_, driver.rng_);
  encode_stats(enc, driver.stats_);
  encode_executor(codec, enc, *driver.executor_);
  encode_solver(codec, enc, *driver.solver_);
  enc.u64(driver.c_time_);
  enc.u64(driver.p_time_);
  enc.u32(static_cast<std::uint32_t>(driver.bug_phases_.size()));
  for (std::uint32_t p : driver.bug_phases_) enc.u32(p);
  enc.u64(driver.cursor_.i);
  enc.u32(static_cast<std::uint32_t>(driver.cursor_.live.size()));
  for (std::uint32_t idx : driver.cursor_.live) enc.u32(idx);
  // Per-phase runtimes. Pending seedStates ARE serialized even though
  // prepare() rebuilds equivalent ones: pending states share memory
  // objects and the seed assignment with already-activated engine states,
  // and only encoding both sides through one dedup table keeps that
  // sharing — and therefore the canonical byte-for-byte property of every
  // LATER snapshot — intact across a restore.
  enc.u32(static_cast<std::uint32_t>(driver.runtimes_.size()));
  for (auto& rt : driver.runtimes_) {
    enc.u32(rt.phase_id);
    enc.u8(rt.started ? 1 : 0);
    enc.u32(static_cast<std::uint32_t>(rt.pending.size()));
    for (const vm::ForkRecord& record : rt.pending) {
      codec.encode_state(enc, *record.state);
      enc.u64(record.fork_ticks);
      enc.u32(record.fork_bb);
      enc.u32(record.fork_inst);
    }
    encode_engine(codec, enc, *rt.engine, *rt.searcher);
  }
  return frame_snapshot(SnapshotFlavor::kPbse, enc.data());
}

void CampaignCodec::restore(core::PbseDriver& driver,
                            const std::vector<std::uint8_t>& framed) {
  const std::vector<std::uint8_t> payload =
      unframe_snapshot(framed, SnapshotFlavor::kPbse);
  Decoder dec(payload);
  StateCodec codec;
  codec.register_array(driver.executor_->input_array());
  check_input_guard(dec, driver.executor_->input_array());
  decode_rng_clock(dec, driver.clock_, driver.rng_);
  decode_stats(dec, driver.stats_);
  decode_executor(codec, dec, *driver.executor_);
  decode_solver(codec, dec, *driver.solver_);
  driver.c_time_ = dec.u64();
  driver.p_time_ = dec.u64();
  const std::uint32_t nbugphases = dec.u32();
  driver.bug_phases_.clear();
  driver.bug_phases_.reserve(nbugphases);
  for (std::uint32_t i = 0; i < nbugphases; ++i)
    driver.bug_phases_.push_back(dec.u32());
  driver.cursor_.i = dec.u64();
  const std::uint32_t nlive = dec.u32();
  driver.cursor_.live.clear();
  driver.cursor_.live.reserve(nlive);
  for (std::uint32_t i = 0; i < nlive; ++i)
    driver.cursor_.live.push_back(dec.u32());

  const std::uint32_t nruntimes = dec.u32();
  if (nruntimes != driver.runtimes_.size())
    throw SnapshotError(
        "pbss: phase count mismatch (snapshot " + std::to_string(nruntimes) +
        ", driver " + std::to_string(driver.runtimes_.size()) +
        ") — restore requires prepare() with the identical seed and options");
  for (auto& rt : driver.runtimes_) {
    const std::uint32_t pid = dec.u32();
    if (pid != rt.phase_id)
      throw SnapshotError("pbss: phase id mismatch (snapshot " +
                          std::to_string(pid) + ", driver " +
                          std::to_string(rt.phase_id) + ")");
    rt.started = dec.u8() != 0;
    const std::uint32_t npending = dec.u32();
    rt.pending.clear();
    rt.pending.reserve(npending);
    for (std::uint32_t i = 0; i < npending; ++i) {
      vm::ForkRecord record;
      record.state = codec.decode_state(dec, driver.module_);
      record.fork_ticks = dec.u64();
      record.fork_bb = dec.u32();
      record.fork_inst = dec.u32();
      rt.pending.push_back(std::move(record));
    }
    decode_engine(codec, dec, *rt.engine, *rt.searcher, driver.module_);
  }
  if (!dec.done())
    throw SnapshotError("pbss: trailing bytes in pbse campaign payload");
}

}  // namespace pbse::serialize
