// CampaignCodec: whole-campaign snapshot/restore on top of StateCodec and
// the pbss framing (DESIGN.md §11).
//
// A campaign snapshot captures EVERYTHING that steers future execution:
// the virtual clock, the RNG stream, the stats bag (counters and
// histograms BY NAME — MetricId interning order differs across
// processes), executor bookkeeping (coverage, bugs, test cases, id
// counters, dedup sets), the solver's L1 stores (exact cache,
// counterexample store, domain memo, interpolant table — they steer tick
// charging and control flow), every live ExecutionState, and each
// searcher's position. Restoring all of it makes the resumed run tick-
// and RNG-identical to one that never stopped.
//
// Restore PRECONDITIONS (enforced with cheap guards where possible):
//  * KleeRun: construct with the identical module/entry/options, then
//    restore(). The constructor's initial state is discarded wholesale.
//  * PbseDriver: construct AND prepare() with the identical seed and
//    options first — prepare() is fully deterministic, so it rebuilds the
//    phase runtimes, seed states and analysis exactly; restore() then
//    overlays the mutable progress. A restored driver must step via
//    step_turn() (never run(), which resets the rotation cursor).
//  * Decode on the thread that will run the campaign: expression
//    interning is thread-local.
#pragma once

#include <cstdint>
#include <vector>

#include "serialize/pbss.h"
#include "serialize/state_codec.h"

namespace pbse {
class Solver;
class Stats;
namespace vm {
class Executor;
}
namespace search {
class SymbolicEngine;
class Searcher;
}
namespace core {
class KleeRun;
class PbseDriver;
}
namespace ir {
class Module;
}
}  // namespace pbse

namespace pbse::serialize {

class CampaignCodec {
 public:
  /// Framed (header + checksum) snapshot of a KLEE-style run.
  static std::vector<std::uint8_t> snapshot(core::KleeRun& run);
  /// Overlays a snapshot onto a freshly constructed, identically
  /// configured run. Throws SnapshotError on any mismatch or corruption.
  static void restore(core::KleeRun& run,
                      const std::vector<std::uint8_t>& framed);

  /// Framed snapshot of a pbSE phase-scheduled campaign (post-prepare).
  static std::vector<std::uint8_t> snapshot(core::PbseDriver& driver);
  /// Overlays a snapshot onto a driver that already ran prepare() with
  /// the identical seed and options.
  static void restore(core::PbseDriver& driver,
                      const std::vector<std::uint8_t>& framed);

 private:
  static void encode_stats(Encoder& enc, const Stats& stats);
  static void decode_stats(Decoder& dec, Stats& stats);
  static void encode_executor(StateCodec& codec, Encoder& enc,
                              vm::Executor& ex);
  static void decode_executor(StateCodec& codec, Decoder& dec,
                              vm::Executor& ex);
  static void encode_solver(StateCodec& codec, Encoder& enc, Solver& solver);
  static void decode_solver(StateCodec& codec, Decoder& dec, Solver& solver);
  static void encode_engine(StateCodec& codec, Encoder& enc,
                            search::SymbolicEngine& engine,
                            search::Searcher& searcher);
  static void decode_engine(StateCodec& codec, Decoder& dec,
                            search::SymbolicEngine& engine,
                            search::Searcher& searcher,
                            const ir::Module& module);
};

}  // namespace pbse::serialize
