#include "serialize/pbss.h"

#include <cstdio>

namespace pbse::serialize {

namespace {
constexpr char kMagic[4] = {'P', 'B', 'S', 'S'};
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint8_t> frame_snapshot(
    SnapshotFlavor flavor, const std::vector<std::uint8_t>& payload) {
  Encoder enc;
  for (char c : kMagic) enc.u8(static_cast<std::uint8_t>(c));
  enc.u32(kPbssVersion);
  enc.u32(static_cast<std::uint32_t>(flavor));
  enc.blob(payload);
  std::vector<std::uint8_t> out = enc.data();
  const std::uint64_t sum = fnv1a(out.data(), out.size());
  Encoder foot;
  foot.u64(sum);
  out.insert(out.end(), foot.data().begin(), foot.data().end());
  return out;
}

std::vector<std::uint8_t> unframe_snapshot(
    const std::vector<std::uint8_t>& framed, SnapshotFlavor expect) {
  if (framed.size() < 4 + 4 + 4 + 8 + 8)
    throw SnapshotError("pbss: file too small to be a snapshot (" +
                        std::to_string(framed.size()) + " bytes)");
  // Footer first: everything before the last 8 bytes is covered.
  Decoder foot(framed.data() + framed.size() - 8, 8);
  const std::uint64_t stored = foot.u64();
  const std::uint64_t actual = fnv1a(framed.data(), framed.size() - 8);
  if (stored != actual)
    throw SnapshotError("pbss: checksum mismatch (snapshot corrupted)");

  Decoder dec(framed.data(), framed.size() - 8);
  for (char c : kMagic)
    if (dec.u8() != static_cast<std::uint8_t>(c))
      throw SnapshotError("pbss: bad magic (not a pbss snapshot)");
  const std::uint32_t version = dec.u32();
  if (version != kPbssVersion)
    throw SnapshotError("pbss: unsupported version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kPbssVersion) + ")");
  const std::uint32_t flavor = dec.u32();
  if (flavor != static_cast<std::uint32_t>(expect))
    throw SnapshotError("pbss: flavor mismatch (snapshot holds " +
                        std::to_string(flavor) + ", expected " +
                        std::to_string(static_cast<std::uint32_t>(expect)) +
                        ")");
  std::vector<std::uint8_t> payload = dec.blob();
  if (!dec.done())
    throw SnapshotError("pbss: trailing bytes after payload");
  return payload;
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& framed) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw SnapshotError("pbss: cannot open " + tmp + " for writing");
  const std::size_t written =
      framed.empty() ? 0 : std::fwrite(framed.data(), 1, framed.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != framed.size() || !flushed) {
    std::remove(tmp.c_str());
    throw SnapshotError("pbss: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("pbss: cannot rename " + tmp + " to " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw SnapshotError("pbss: cannot open " + path);
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    out.insert(out.end(), buf, buf + n);
  std::fclose(f);
  return out;
}

}  // namespace pbse::serialize
