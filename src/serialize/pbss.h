// pbss: the versioned binary snapshot format (DESIGN.md §11).
//
// A snapshot is a framed, checksummed byte stream:
//
//   magic "PBSS" | u32 version | u32 flavor | u64 payload size | payload
//   | u64 FNV-1a checksum over everything before it
//
// All integers are fixed-width LITTLE-ENDIAN, written byte by byte — a
// snapshot taken on any host restores on any other. The payload encoding
// is CANONICAL: every unordered container is emitted in sorted order and
// every shared node through a deterministic dedup table, so re-serializing
// a restored campaign reproduces the snapshot byte for byte (the
// round-trip property tests lock this in).
//
// Decoding is defensive: truncation, bad magic, version/flavor mismatch
// and checksum failure all raise SnapshotError with a diagnostic — a
// corrupted checkpoint must fail loudly, never resume silently wrong.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pbse::serialize {

/// Any malformed-snapshot condition (truncation, corruption, mismatch).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kPbssVersion = 1;

/// What kind of campaign the payload holds.
enum class SnapshotFlavor : std::uint32_t {
  kKlee = 1,
  kPbse = 2,
};

/// FNV-1a over a byte range (the footer checksum).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size);

/// Append-only little-endian encoder.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void blob(const std::vector<std::uint8_t>& b) {
    u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a byte buffer. Every read
/// past the end throws SnapshotError (truncated snapshot).
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = u64();
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
    return b;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw SnapshotError("pbss: truncated snapshot (need " +
                          std::to_string(n) + " bytes at offset " +
                          std::to_string(pos_) + ", have " +
                          std::to_string(size_ - pos_) + ")");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Frames `payload` (header + checksum footer) into a byte buffer.
std::vector<std::uint8_t> frame_snapshot(SnapshotFlavor flavor,
                                         const std::vector<std::uint8_t>& payload);

/// Validates framing and checksum, returns the payload. `expect` of the
/// wrong flavor — or any corruption — throws SnapshotError.
std::vector<std::uint8_t> unframe_snapshot(const std::vector<std::uint8_t>& framed,
                                           SnapshotFlavor expect);

/// Atomically writes `framed` to `path` (tmp file + rename, so a crash
/// mid-write never leaves a half snapshot under the final name). Throws
/// SnapshotError on I/O failure.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& framed);

/// Reads a whole file; throws SnapshotError if it cannot be opened.
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace pbse::serialize
