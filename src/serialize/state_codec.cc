#include "serialize/state_codec.h"

#include <algorithm>
#include <utility>

#include "ir/ir.h"

namespace pbse::serialize {

namespace {
constexpr std::uint32_t kNullId = ~std::uint32_t{0};
}

void StateCodec::register_array(const ArrayRef& array) {
  canonical_[{array->name(), array->size()}] = array;
}

// --- Arrays -----------------------------------------------------------------
// Inline def-or-ref: tag 0 = null, 1 = back-reference, 2 = definition.

std::uint32_t StateCodec::array_id(Encoder& enc, const ArrayRef& array) {
  if (array == nullptr) {
    enc.u8(0);
    return kNullId;
  }
  auto it = array_ids_.find(array.get());
  if (it != array_ids_.end()) {
    enc.u8(1);
    enc.u32(it->second);
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(array_ids_.size());
  array_ids_.emplace(array.get(), id);
  enc.u8(2);
  enc.str(array->name());
  enc.u32(array->size());
  return id;
}

ArrayRef StateCodec::decode_array_def(Decoder& dec) {
  const std::uint8_t tag = dec.u8();
  if (tag == 0) return nullptr;
  if (tag == 1) return array_by_id(dec.u32());
  if (tag != 2) throw SnapshotError("pbss: bad array tag");
  const std::string name = dec.str();
  const std::uint32_t size = dec.u32();
  // Rebind to the restoring campaign's canonical array when one matches;
  // expressions interned against it stay pointer-compatible with live ones.
  ArrayRef array;
  auto canon = canonical_.find({name, size});
  if (canon != canonical_.end())
    array = canon->second;
  else
    array = std::make_shared<Array>(name, size);
  arrays_.push_back(array);
  return array;
}

ArrayRef StateCodec::array_by_id(std::uint32_t id) const {
  if (id >= arrays_.size())
    throw SnapshotError("pbss: array back-reference out of range");
  return arrays_[id];
}

// --- Expressions ------------------------------------------------------------

void StateCodec::encode_expr(Encoder& enc, const ExprRef& e) {
  if (e == nullptr) {
    enc.u32(0);          // zero new definitions
    enc.u32(kNullId);    // null root
    return;
  }
  // Iterative post-order over the not-yet-emitted portion of the DAG:
  // every node is visited once (the emitted-check prunes shared subtrees),
  // and kids always receive ids before their parents.
  std::vector<const Expr*> order;
  std::vector<std::pair<const Expr*, std::size_t>> stack;
  if (expr_ids_.find(e.get()) == expr_ids_.end())
    stack.emplace_back(e.get(), 0);
  std::unordered_map<const Expr*, bool> scheduled;
  if (!stack.empty()) scheduled[e.get()] = true;
  while (!stack.empty()) {
    auto& [node, next_kid] = stack.back();
    if (next_kid == node->num_kids()) {
      order.push_back(node);
      stack.pop_back();
      continue;
    }
    const Expr* kid = node->kid(next_kid++).get();
    if (expr_ids_.find(kid) == expr_ids_.end() && !scheduled[kid])
      stack.emplace_back(kid, 0), scheduled[kid] = true;
  }

  enc.u32(static_cast<std::uint32_t>(order.size()));
  for (const Expr* node : order) {
    const auto id = static_cast<std::uint32_t>(expr_ids_.size());
    expr_ids_.emplace(node, id);
    enc.u8(static_cast<std::uint8_t>(node->kind()));
    enc.u8(static_cast<std::uint8_t>(node->width()));
    enc.u64(node->kind() == ExprKind::kConstant ? node->constant_value()
            : node->kind() == ExprKind::kRead
                ? node->read_index()
                : node->kind() == ExprKind::kExtract ? node->extract_offset()
                                                     : 0);
    array_id(enc, node->array());
    enc.u32(static_cast<std::uint32_t>(node->num_kids()));
    for (std::size_t k = 0; k < node->num_kids(); ++k)
      enc.u32(expr_ids_.at(node->kid(k).get()));
  }
  enc.u32(expr_ids_.at(e.get()));
}

ExprRef StateCodec::decode_expr(Decoder& dec) {
  const std::uint32_t num_new = dec.u32();
  for (std::uint32_t n = 0; n < num_new; ++n) {
    const auto kind = static_cast<ExprKind>(dec.u8());
    const unsigned width = dec.u8();
    const std::uint64_t value = dec.u64();
    ArrayRef array = decode_array_def(dec);
    const std::uint32_t num_kids = dec.u32();
    std::vector<ExprRef> kids;
    kids.reserve(num_kids);
    for (std::uint32_t k = 0; k < num_kids; ++k) {
      const std::uint32_t kid = dec.u32();
      if (kid >= exprs_.size())
        throw SnapshotError("pbss: expression kid id out of range");
      kids.push_back(exprs_[kid]);
    }
    // mk_raw re-interns the exact stored shape — no builder folding, and
    // shared nodes come back pointer-identical via the intern table.
    exprs_.push_back(mk_raw(kind, width, value, std::move(array),
                            std::move(kids)));
  }
  const std::uint32_t root = dec.u32();
  if (root == kNullId) return nullptr;
  if (root >= exprs_.size())
    throw SnapshotError("pbss: expression root id out of range");
  return exprs_[root];
}

// --- Assignments ------------------------------------------------------------
// tag 0 = null, 1 = back-reference, 2 = definition. Entries sorted by
// array name for canonical bytes (Assignment stores them unordered).

void StateCodec::encode_assignment(
    Encoder& enc, const std::shared_ptr<const Assignment>& a) {
  if (a == nullptr) {
    enc.u8(0);
    return;
  }
  auto it = assignment_ids_.find(a.get());
  if (it != assignment_ids_.end()) {
    enc.u8(1);
    enc.u32(it->second);
    return;
  }
  assignment_ids_.emplace(a.get(),
                          static_cast<std::uint32_t>(assignment_ids_.size()));
  enc.u8(2);
  std::vector<const Array*> keys;
  for (const auto& [array, bytes] : a->all()) keys.push_back(array);
  std::sort(keys.begin(), keys.end(), [](const Array* x, const Array* y) {
    if (x->name() != y->name()) return x->name() < y->name();
    return x->size() < y->size();
  });
  enc.u32(static_cast<std::uint32_t>(keys.size()));
  for (const Array* array : keys) {
    enc.str(array->name());
    enc.u32(array->size());
    enc.blob(a->all().at(array));
  }
}

std::shared_ptr<const Assignment> StateCodec::decode_assignment(Decoder& dec) {
  const std::uint8_t tag = dec.u8();
  if (tag == 0) return nullptr;
  if (tag == 1) {
    const std::uint32_t id = dec.u32();
    if (id >= assignments_.size())
      throw SnapshotError("pbss: assignment back-reference out of range");
    return assignments_[id];
  }
  if (tag != 2) throw SnapshotError("pbss: bad assignment tag");
  auto a = std::make_shared<Assignment>();
  const std::uint32_t n = dec.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = dec.str();
    const std::uint32_t size = dec.u32();
    std::vector<std::uint8_t> bytes = dec.blob();
    ArrayRef array;
    auto canon = canonical_.find({name, size});
    if (canon != canonical_.end())
      array = canon->second;
    else
      array = std::make_shared<Array>(name, size);
    a->set(array, std::move(bytes));
  }
  assignments_.push_back(a);
  return a;
}

// --- ModelBytes -------------------------------------------------------------
// Order preserved verbatim: a ModelBytes list's order is first-read order
// and part of the solver's deterministic behaviour.

void StateCodec::encode_model_bytes(Encoder& enc, const ModelBytes& m) {
  enc.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [array, bytes] : m) {
    array_id(enc, array);
    enc.blob(bytes);
  }
}

ModelBytes StateCodec::decode_model_bytes(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  ModelBytes m;
  m.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ArrayRef array = decode_array_def(dec);
    if (array == nullptr)
      throw SnapshotError("pbss: null array in model bytes");
    m.emplace_back(std::move(array), dec.blob());
  }
  return m;
}

// --- Memory objects ---------------------------------------------------------
// tag 1 = back-reference (shared object already emitted), 2 = definition.

void StateCodec::encode_mem_object(Encoder& enc,
                                   const std::shared_ptr<vm::MemObject>& obj) {
  auto it = mem_object_ids_.find(obj.get());
  if (it != mem_object_ids_.end()) {
    enc.u8(1);
    enc.u32(it->second);
    return;
  }
  mem_object_ids_.emplace(obj.get(),
                          static_cast<std::uint32_t>(mem_object_ids_.size()));
  enc.u8(2);
  enc.u64(obj->size);
  enc.u8(obj->writable ? 1 : 0);
  enc.u8(obj->alive ? 1 : 0);
  enc.str(obj->name);
  enc.u32(static_cast<std::uint32_t>(obj->bytes.size()));
  for (const ExprRef& b : obj->bytes) encode_expr(enc, b);
}

std::shared_ptr<vm::MemObject> StateCodec::decode_mem_object(Decoder& dec) {
  const std::uint8_t tag = dec.u8();
  if (tag == 1) {
    const std::uint32_t id = dec.u32();
    if (id >= mem_objects_.size())
      throw SnapshotError("pbss: memory-object back-reference out of range");
    return mem_objects_[id];
  }
  if (tag != 2) throw SnapshotError("pbss: bad memory-object tag");
  auto obj = std::make_shared<vm::MemObject>();
  obj->size = dec.u64();
  obj->writable = dec.u8() != 0;
  obj->alive = dec.u8() != 0;
  obj->name = dec.str();
  const std::uint32_t n = dec.u32();
  obj->bytes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) obj->bytes.push_back(decode_expr(dec));
  mem_objects_.push_back(obj);
  return obj;
}

// --- Values / pointers ------------------------------------------------------

void StateCodec::encode_pointer(Encoder& enc, const vm::Pointer& p) {
  enc.u32(p.object);
  encode_expr(enc, p.offset);
}

vm::Pointer StateCodec::decode_pointer(Decoder& dec) {
  vm::Pointer p;
  p.object = dec.u32();
  p.offset = decode_expr(dec);
  return p;
}

void StateCodec::encode_value(Encoder& enc, const vm::Value& v) {
  enc.u8(static_cast<std::uint8_t>(v.kind));
  if (v.kind == vm::Value::Kind::kInt) encode_expr(enc, v.i);
  if (v.kind == vm::Value::Kind::kPtr) encode_pointer(enc, v.p);
}

vm::Value StateCodec::decode_value(Decoder& dec) {
  vm::Value v;
  v.kind = static_cast<vm::Value::Kind>(dec.u8());
  if (v.kind == vm::Value::Kind::kInt) v.i = decode_expr(dec);
  if (v.kind == vm::Value::Kind::kPtr) v.p = decode_pointer(dec);
  return v;
}

// --- Whole states -----------------------------------------------------------

void StateCodec::encode_state(Encoder& enc, const vm::ExecutionState& s) {
  enc.u64(s.id);
  enc.u64(s.parent_id);

  enc.u32(static_cast<std::uint32_t>(s.stack.size()));
  for (const vm::StackFrame& f : s.stack) {
    enc.u32(f.fn->index());
    enc.u32(f.block);
    enc.u32(f.inst);
    enc.u32(static_cast<std::uint32_t>(f.regs.size()));
    for (const vm::Value& v : f.regs) encode_value(enc, v);
    enc.u32(static_cast<std::uint32_t>(f.slots.size()));
    for (const vm::Pointer& p : f.slots) encode_pointer(enc, p);
    enc.u32(f.ret_reg);
    enc.u32(static_cast<std::uint32_t>(f.allocas.size()));
    for (std::uint32_t a : f.allocas) enc.u32(a);
  }

  // Memory: object map sorted by id for canonical bytes; shared objects
  // dedup through the table, preserving COW sharing across states.
  std::vector<std::uint32_t> ids;
  for (const auto& [id, obj] : s.memory.objects()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  enc.u32(s.memory.next_id());
  enc.u32(static_cast<std::uint32_t>(ids.size()));
  for (std::uint32_t id : ids) {
    enc.u32(id);
    encode_mem_object(enc, s.memory.objects().at(id));
  }

  // Constraints in insertion order; the set is rebuilt via add() on decode
  // (deterministically reproducing hashes and union-find partitions).
  enc.u32(static_cast<std::uint32_t>(s.constraints.size()));
  for (const ExprRef& c : s.constraints.constraints()) encode_expr(enc, c);

  encode_assignment(enc, s.model);
  // model_eval is NOT serialized: a pure per-model memo, rebuilt lazily by
  // the executor. Dropping it never changes ticks — solver charges use
  // expr_cost, not memo warmth.

  enc.u8(static_cast<std::uint8_t>(s.termination));
  enc.u64(s.instructions);
  enc.u64(s.depth);
  enc.u64(s.born_at_ticks);
  enc.u32(s.fork_bb);
  enc.u32(s.fork_inst);
  enc.u8(s.covered_new ? 1 : 0);
  enc.u64(s.insts_since_cov_new);
  enc.u64(s.mem_fp);
  enc.u32(s.num_entry_snapshots);
  for (std::uint32_t i = 0; i < s.num_entry_snapshots; ++i)
    enc.u64(s.entry_snapshots[i]);
}

std::unique_ptr<vm::ExecutionState> StateCodec::decode_state(
    Decoder& dec, const ir::Module& module) {
  auto s = std::make_unique<vm::ExecutionState>();
  s->id = dec.u64();
  s->parent_id = dec.u64();

  const std::uint32_t num_frames = dec.u32();
  s->stack.reserve(num_frames);
  for (std::uint32_t i = 0; i < num_frames; ++i) {
    vm::StackFrame f;
    const std::uint32_t fn_index = dec.u32();
    if (fn_index >= module.num_functions())
      throw SnapshotError("pbss: stack-frame function index out of range");
    f.fn = module.function(fn_index);
    f.block = dec.u32();
    f.inst = dec.u32();
    const std::uint32_t num_regs = dec.u32();
    f.regs.reserve(num_regs);
    for (std::uint32_t r = 0; r < num_regs; ++r)
      f.regs.push_back(decode_value(dec));
    const std::uint32_t num_slots = dec.u32();
    f.slots.reserve(num_slots);
    for (std::uint32_t p = 0; p < num_slots; ++p)
      f.slots.push_back(decode_pointer(dec));
    f.ret_reg = dec.u32();
    const std::uint32_t num_allocas = dec.u32();
    f.allocas.reserve(num_allocas);
    for (std::uint32_t a = 0; a < num_allocas; ++a)
      f.allocas.push_back(dec.u32());
    s->stack.push_back(std::move(f));
  }

  const std::uint32_t next_obj_id = dec.u32();
  const std::uint32_t num_objects = dec.u32();
  for (std::uint32_t i = 0; i < num_objects; ++i) {
    const std::uint32_t id = dec.u32();
    s->memory.restore_object(id, decode_mem_object(dec));
  }
  s->memory.set_next_id(next_obj_id);

  const std::uint32_t num_constraints = dec.u32();
  for (std::uint32_t i = 0; i < num_constraints; ++i)
    s->constraints.add(decode_expr(dec));

  s->model = decode_assignment(dec);
  s->model_eval = nullptr;

  s->termination = static_cast<vm::TerminationReason>(dec.u8());
  s->instructions = dec.u64();
  s->depth = dec.u64();
  s->born_at_ticks = dec.u64();
  s->fork_bb = dec.u32();
  s->fork_inst = dec.u32();
  s->covered_new = dec.u8() != 0;
  s->insts_since_cov_new = dec.u64();
  s->mem_fp = dec.u64();
  s->num_entry_snapshots = dec.u32();
  if (s->num_entry_snapshots > vm::ExecutionState::kMaxEntrySnapshots)
    throw SnapshotError("pbss: entry-snapshot count out of range");
  for (std::uint32_t i = 0; i < s->num_entry_snapshots; ++i)
    s->entry_snapshots[i] = dec.u64();
  return s;
}

}  // namespace pbse::serialize
