// Structural codecs for execution state: the expression DAG, assignments,
// COW memory objects, constraint sets, stacks — everything a pbss payload
// is built from (DESIGN.md §11).
//
// Sharing preservation is the load-bearing invariant. Three dedup tables
// (expressions, Assignments, MemObjects) assign a stable id to every
// shared node at first encounter; later references emit the id only. On
// decode the same tables hand back the SAME heap object for the same id,
// so two restored states that shared a memory object before the snapshot
// share one again after — fork cost, memory footprint and the
// copy-on-write semantics all survive the round trip.
//
// Expression identity is subtler: the interner is THREAD-LOCAL and
// compares arrays BY POINTER. Decoded Read nodes must therefore rebind to
// the restoring campaign's canonical arrays (matched by name+size) before
// interning via mk_raw — otherwise a restored expression would never be
// pointer-equal to one the resumed run builds, and every solver-cache and
// constraint-dedup hit would silently miss.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "serialize/pbss.h"
#include "solver/cache.h"
#include "solver/constraint_set.h"
#include "vm/memory.h"
#include "vm/state.h"

namespace pbse::ir {
class Module;
}

namespace pbse::serialize {

/// One snapshot's worth of dedup state. Use a fresh instance per encode
/// and per decode; the canonical byte-for-byte property depends on the
/// tables starting empty.
class StateCodec {
 public:
  /// Registers a canonical array of the restoring campaign: decoded
  /// arrays with the same (name, size) resolve to exactly this ArrayRef.
  void register_array(const ArrayRef& array);

  // --- Arrays (dedup'd def-or-ref) -----------------------------------------
  void encode_array(Encoder& enc, const ArrayRef& array) {
    array_id(enc, array);
  }
  ArrayRef decode_array(Decoder& dec) { return decode_array_def(dec); }

  // --- Expressions --------------------------------------------------------
  /// Emits `e` as a list of new node definitions (post-order over the
  /// not-yet-emitted part of its DAG) followed by the root id. A null
  /// ExprRef emits the reserved id ~0.
  void encode_expr(Encoder& enc, const ExprRef& e);
  ExprRef decode_expr(Decoder& dec);

  // --- Assignments (shared state models) ----------------------------------
  void encode_assignment(Encoder& enc,
                         const std::shared_ptr<const Assignment>& a);
  std::shared_ptr<const Assignment> decode_assignment(Decoder& dec);

  // --- ModelBytes (solver-store entries) -----------------------------------
  void encode_model_bytes(Encoder& enc, const ModelBytes& m);
  ModelBytes decode_model_bytes(Decoder& dec);

  // --- Memory objects ------------------------------------------------------
  void encode_mem_object(Encoder& enc,
                         const std::shared_ptr<vm::MemObject>& obj);
  std::shared_ptr<vm::MemObject> decode_mem_object(Decoder& dec);

  // --- Whole states --------------------------------------------------------
  /// `module` resolves stack-frame function indices on decode.
  void encode_state(Encoder& enc, const vm::ExecutionState& s);
  std::unique_ptr<vm::ExecutionState> decode_state(Decoder& dec,
                                                   const ir::Module& module);

 private:
  std::uint32_t array_id(Encoder& enc, const ArrayRef& array);
  ArrayRef array_by_id(std::uint32_t id) const;
  ArrayRef decode_array_def(Decoder& dec);

  void encode_value(Encoder& enc, const vm::Value& v);
  vm::Value decode_value(Decoder& dec);
  void encode_pointer(Encoder& enc, const vm::Pointer& p);
  vm::Pointer decode_pointer(Decoder& dec);

  // Encode-side tables: node -> id, in emission order.
  std::unordered_map<const Expr*, std::uint32_t> expr_ids_;
  std::unordered_map<const Array*, std::uint32_t> array_ids_;
  std::unordered_map<const Assignment*, std::uint32_t> assignment_ids_;
  std::unordered_map<const vm::MemObject*, std::uint32_t> mem_object_ids_;

  // Decode-side tables: id -> reconstructed node.
  std::vector<ExprRef> exprs_;
  std::vector<ArrayRef> arrays_;
  std::vector<std::shared_ptr<const Assignment>> assignments_;
  std::vector<std::shared_ptr<vm::MemObject>> mem_objects_;

  /// (name, size) -> canonical array of the restoring campaign.
  std::map<std::pair<std::string, std::uint32_t>, ArrayRef> canonical_;
};

}  // namespace pbse::serialize
