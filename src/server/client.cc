#include "server/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "server/job.h"

namespace pbse::server {

Client Client::connect_unix(const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw ProtocolError(std::string("socket: ") + std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw ProtocolError("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw ProtocolError("connect " + socket_path + ": " + std::strerror(err));
  }
  return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw ProtocolError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in in{};
  in.sin_family = AF_INET;
  in.sin_port = htons(port);
  in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&in), sizeof(in)) != 0) {
    int err = errno;
    ::close(fd);
    throw ProtocolError("connect 127.0.0.1:" + std::to_string(port) + ": " +
                        std::strerror(err));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::request(const Json& req) {
  send_message(fd_, req);
  Json resp;
  if (!recv_message(fd_, resp))
    throw ProtocolError("server closed the connection before responding");
  return resp;
}

bool Client::next_event(Json& out) { return recv_message(fd_, out); }

std::uint64_t Client::submit(const JobSpec& spec) {
  Json req = Json::object();
  req.set("cmd", Json::string("submit"));
  req.set("spec", spec.to_json());
  Json resp = request(req);
  if (!resp.get_bool("ok", false))
    throw ProtocolError("submit refused: " +
                        resp.get_string("error", "unknown error"));
  return resp.get_u64("job", 0);
}

Json Client::wait(std::uint64_t job) {
  Json req = Json::object();
  req.set("cmd", Json::string("wait"));
  req.set("job", Json::number(job));
  Json ack = request(req);
  if (!ack.get_bool("ok", false))
    throw ProtocolError("wait refused: " +
                        ack.get_string("error", "unknown error"));
  if (ack.get_bool("already_done", false)) {
    // Shape the final record like a terminal event so callers have one code
    // path regardless of whether they raced the job's completion.
    const Json& rec = ack.get("record");
    Json ev = Json::object();
    ev.set("event", Json::string(
        rec.get_string("state", "done") == "failed" ? "failed" : "done"));
    ev.set("job", Json::number(job));
    ev.set("state", rec.get("state"));
    ev.set("progress", rec.get("progress"));
    if (rec.has("error")) ev.set("error", rec.get("error"));
    return ev;
  }
  Json ev;
  while (next_event(ev)) {
    std::string kind = ev.get_string("event", "");
    if (kind == "done" || kind == "failed") return ev;
  }
  throw ProtocolError("server hung up mid event stream");
}

}  // namespace pbse::server
