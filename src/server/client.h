// Client-side helper for the pbse-serve protocol: connect, one-shot
// request/response, and event-stream consumption for `wait`. Used by the
// pbse-client tool, the server tests, and the smoke script.
#pragma once

#include <cstdint>
#include <string>

#include "server/job.h"
#include "server/protocol.h"

namespace pbse::server {

class Client {
 public:
  /// Both connectors throw ProtocolError when nobody is listening.
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and returns its response frame. Throws
  /// ProtocolError if the server hangs up; a `{"ok":false}` response is
  /// returned, not thrown — protocol errors and application errors differ.
  Json request(const Json& req);

  /// Reads one more frame off the connection (the `wait` event stream).
  /// Returns false on clean EOF.
  bool next_event(Json& out);

  /// submit convenience: returns the new job id or throws on refusal.
  std::uint64_t submit(const JobSpec& spec);

  /// Subscribes to `job` and consumes its event stream until the terminal
  /// frame, returning the final event ("done" or "failed"; or a synthetic
  /// one when the job was already terminal at call time).
  Json wait(std::uint64_t job);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace pbse::server
