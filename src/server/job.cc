#include "server/job.h"

namespace pbse::server {

const char* job_mode_name(JobMode mode) {
  return mode == JobMode::kKlee ? "klee" : "pbse";
}

bool parse_job_mode(const std::string& name, JobMode& out) {
  if (name == "klee") {
    out = JobMode::kKlee;
    return true;
  }
  if (name == "pbse") {
    out = JobMode::kPbse;
    return true;
  }
  return false;
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  j.set("mode", Json::string(job_mode_name(mode)));
  j.set("target", Json::string(target));
  j.set("budget_ticks", Json::number(budget_ticks));
  j.set("rng_seed", Json::number(rng_seed));
  j.set("searcher", Json::string(search::searcher_kind_name(searcher)));
  j.set("sym_size", Json::number(sym_size));
  j.set("seed_scale", Json::number(seed_scale));
  j.set("slice_ticks", Json::number(slice_ticks));
  return j;
}

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec spec;
  std::string mode = j.get_string("mode", "pbse");
  if (!parse_job_mode(mode, spec.mode))
    throw ProtocolError("unknown job mode '" + mode + "'");
  spec.target = j.get_string("target", "");
  if (spec.target.empty()) throw ProtocolError("job spec missing 'target'");
  spec.budget_ticks = j.get_u64("budget_ticks", 200'000);
  if (spec.budget_ticks == 0)
    throw ProtocolError("job budget_ticks must be positive");
  spec.rng_seed = j.get_u64("rng_seed", 1);
  std::string searcher = j.get_string("searcher", "default");
  if (!search::parse_searcher_kind(searcher, spec.searcher))
    throw ProtocolError("unknown searcher '" + searcher + "'");
  spec.sym_size = static_cast<std::uint32_t>(j.get_u64("sym_size", 100));
  spec.seed_scale = static_cast<std::uint32_t>(j.get_u64("seed_scale", 4));
  spec.slice_ticks = j.get_u64("slice_ticks", 0);
  return spec;
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCheckpointed: return "checkpointed";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

Json JobProgress::to_json() const {
  Json j = Json::object();
  j.set("ticks", Json::number(ticks));
  j.set("covered", Json::number(covered));
  j.set("bugs", Json::number(bugs));
  j.set("states", Json::number(states));
  j.set("test_cases", Json::number(test_cases));
  return j;
}

JobProgress JobProgress::from_json(const Json& j) {
  JobProgress p;
  p.ticks = j.get_u64("ticks", 0);
  p.covered = j.get_u64("covered", 0);
  p.bugs = j.get_u64("bugs", 0);
  p.states = j.get_u64("states", 0);
  p.test_cases = j.get_u64("test_cases", 0);
  return p;
}

Json JobRecord::meta_json() const {
  Json j = Json::object();
  j.set("id", Json::number(id));
  j.set("spec", spec.to_json());
  j.set("state", Json::string(job_state_name(state)));
  j.set("progress", progress.to_json());
  if (!error.empty()) j.set("error", Json::string(error));
  j.set("has_snapshot", Json::boolean(!snapshot.empty()));
  j.set("run_end_ticks", Json::number(run_end_ticks));
  return j;
}

JobRecord JobRecord::from_meta_json(const Json& j) {
  JobRecord rec;
  rec.id = j.get_u64("id", 0);
  rec.spec = JobSpec::from_json(j.get("spec"));
  std::string state = j.get_string("state", "queued");
  rec.state = JobState::kQueued;
  for (JobState s : {JobState::kQueued, JobState::kRunning,
                     JobState::kCheckpointed, JobState::kDone,
                     JobState::kFailed}) {
    if (state == job_state_name(s)) rec.state = s;
  }
  rec.progress = JobProgress::from_json(j.get("progress"));
  rec.error = j.get_string("error", "");
  rec.run_end_ticks = j.get_u64("run_end_ticks", 0);
  return rec;
}

}  // namespace pbse::server
