// Job model for pbse-serve: what a client submits, what the scheduler
// executes, and what the server persists for crash recovery.
//
// A job is a whole campaign (one KleeRun or one PbseDriver) with a tick
// budget. Between scheduler slices a job exists ONLY as data — a JobSpec
// plus an optional pbss snapshot — so it can be checkpointed to disk,
// survive a kill -9, and migrate between worker threads (expr interning is
// thread-local; materializing from bytes on the executing worker is what
// makes stealing safe).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "searchers/searcher.h"
#include "server/protocol.h"

namespace pbse::server {

enum class JobMode : std::uint8_t { kKlee = 0, kPbse = 1 };

const char* job_mode_name(JobMode mode);
bool parse_job_mode(const std::string& name, JobMode& out);

/// Client-supplied description of a campaign. Everything needed to
/// reconstruct the campaign object deterministically lives here; restoring
/// a snapshot on top requires byte-identical spec fields (the snapshot's
/// input-array guard enforces the ones that matter).
struct JobSpec {
  JobMode mode = JobMode::kPbse;
  /// Target driver name from the registry ("readelf", "gif2tiff", ...).
  std::string target = "readelf";
  std::uint64_t budget_ticks = 200'000;
  std::uint64_t rng_seed = 1;
  search::SearcherKind searcher = search::SearcherKind::kDefault;
  /// klee mode: whole-file symbolic input size.
  std::uint32_t sym_size = 100;
  /// pbse mode: seed-generator scale.
  std::uint32_t seed_scale = 4;
  /// Ticks per scheduler slice (0 = server default). Slicing granularity
  /// never changes results — only checkpoint/steal latency.
  std::uint64_t slice_ticks = 0;

  Json to_json() const;
  /// Throws ProtocolError on unknown mode/searcher/target-less specs.
  static JobSpec from_json(const Json& j);
};

enum class JobState : std::uint8_t {
  kQueued = 0,        // waiting for a worker
  kRunning = 1,       // a worker holds it right now
  kCheckpointed = 2,  // between slices, snapshot current, re-queued
  kDone = 3,
  kFailed = 4,
};

const char* job_state_name(JobState state);

/// Point-in-time progress of a job, streamed to subscribers after every
/// slice and embedded in the persisted metadata.
struct JobProgress {
  std::uint64_t ticks = 0;       // campaign clock
  std::uint64_t covered = 0;     // basic blocks covered
  std::uint64_t bugs = 0;        // distinct bug reports
  std::uint64_t states = 0;      // live execution states (klee) / sum (pbse)
  std::uint64_t test_cases = 0;  // generated test cases

  Json to_json() const;
  static JobProgress from_json(const Json& j);
};

/// The scheduler-owned record. `snapshot` is empty until the first slice
/// completes; afterwards it always holds a full pbss campaign image.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  JobProgress progress;
  std::string error;                  // set when state == kFailed
  std::vector<std::uint8_t> snapshot; // pbss bytes between slices
  /// Absolute campaign-clock tick at which the run budget expires. Fixed on
  /// the first slice (campaign setup — concolic + phase analysis for pbse —
  /// consumes ticks before the budget starts) and persisted so a resumed
  /// job stops at the very tick the uninterrupted run would have.
  std::uint64_t run_end_ticks = 0;

  /// Persisted metadata (job-<id>.json next to job-<id>.pbss); `snapshot`
  /// itself is not embedded — it is the sibling pbss file.
  Json meta_json() const;
  static JobRecord from_meta_json(const Json& j);
};

}  // namespace pbse::server
