#include "server/protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>

namespace pbse::server {

// --- Json value -----------------------------------------------------------

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.unum_ = v;
  j.num_ = static_cast<double>(v);
  j.num_is_integer_ = true;
  return j;
}

Json Json::number_double(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  j.unum_ = v >= 0 ? static_cast<std::uint64_t>(v) : 0;
  j.num_is_integer_ = false;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw ProtocolError("json: not a bool");
  return bool_;
}

std::uint64_t Json::as_u64() const {
  if (kind_ != Kind::kNumber) throw ProtocolError("json: not a number");
  if (num_is_integer_) return unum_;
  if (num_ < 0) throw ProtocolError("json: negative where unsigned expected");
  return static_cast<std::uint64_t>(num_);
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) throw ProtocolError("json: not a number");
  return num_is_integer_ ? static_cast<double>(unum_) : num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw ProtocolError("json: not a string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw ProtocolError("json: not an array");
  return items_;
}

std::vector<Json>& Json::items() {
  if (kind_ != Kind::kArray) throw ProtocolError("json: not an array");
  return items_;
}

const Json& Json::get(const std::string& key) const {
  static const Json kNull;
  if (kind_ != Kind::kObject) return kNull;
  auto it = fields_.find(key);
  return it == fields_.end() ? kNull : it->second;
}

bool Json::has(const std::string& key) const {
  return kind_ == Kind::kObject && fields_.count(key) > 0;
}

void Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw ProtocolError("json: not an object");
  fields_[key] = std::move(value);
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw ProtocolError("json: not an array");
  items_.push_back(std::move(value));
}

const std::map<std::string, Json>& Json::fields() const { return fields_; }

std::uint64_t Json::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_u64() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json& v = get(key);
  return v.is_string() ? v.as_string() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json& v = get(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

// --- Writer ---------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& j, std::string& out) {
  switch (j.kind()) {
    case Json::Kind::kNull: out += "null"; return;
    case Json::Kind::kBool: out += j.as_bool() ? "true" : "false"; return;
    case Json::Kind::kNumber: {
      double d = j.as_double();
      if (d >= 0 && std::floor(d) == d &&
          d == static_cast<double>(j.as_u64())) {
        out += std::to_string(j.as_u64());
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
      }
      return;
    }
    case Json::Kind::kString: dump_string(j.as_string(), out); return;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, out);
      }
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.fields()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_value(value, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

// --- Parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ProtocolError("json parse error at offset " + std::to_string(pos_) +
                        ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json::null();
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the basic-plane codepoint; the protocol only ever
          // carries ASCII but a conforming peer may escape anything.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_integer = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    if (is_integer && tok[0] != '-') {
      char* end = nullptr;
      std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
      if (errno != 0 || end != tok.c_str() + tok.size()) fail("bad number");
      return Json::number(v);
    }
    char* end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    return Json::number_double(d);
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

// --- Framing --------------------------------------------------------------

namespace {

void write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("socket write failed: ") +
                          std::strerror(errno));
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Returns bytes read; stops early only at EOF.
std::size_t read_upto(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("socket read failed: ") +
                          std::strerror(errno));
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

void send_message(int fd, const Json& msg) {
  std::string body = msg.dump();
  if (body.size() > kMaxMessageBytes)
    throw ProtocolError("outgoing message exceeds frame limit");
  std::uint32_t len = static_cast<std::uint32_t>(body.size());
  unsigned char hdr[4] = {
      static_cast<unsigned char>(len & 0xFF),
      static_cast<unsigned char>((len >> 8) & 0xFF),
      static_cast<unsigned char>((len >> 16) & 0xFF),
      static_cast<unsigned char>((len >> 24) & 0xFF),
  };
  write_all(fd, hdr, sizeof(hdr));
  write_all(fd, body.data(), body.size());
}

bool recv_message(int fd, Json& out) {
  unsigned char hdr[4];
  std::size_t got = read_upto(fd, hdr, sizeof(hdr));
  if (got == 0) return false;  // clean EOF between frames
  if (got != sizeof(hdr))
    throw ProtocolError("connection closed mid-frame header");
  std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                      (static_cast<std::uint32_t>(hdr[1]) << 8) |
                      (static_cast<std::uint32_t>(hdr[2]) << 16) |
                      (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > kMaxMessageBytes)
    throw ProtocolError("incoming frame length " + std::to_string(len) +
                        " exceeds limit");
  std::string body(len, '\0');
  if (read_upto(fd, body.data(), len) != len)
    throw ProtocolError("connection closed mid-frame body");
  out = parse_json(body);
  return true;
}

}  // namespace pbse::server
