// pbse-serve wire protocol: length-prefixed JSON messages (DESIGN.md §11).
//
// Every message is one JSON object framed by a u32 little-endian byte
// length. JSON keeps the protocol inspectable (`socat` + a human suffice
// to drive the daemon) while the framing keeps parsing trivial and
// stream-safe; job payloads that must be byte-exact (snapshots) never
// travel here — they live in the server's state directory as pbss files.
//
// The Json value here is deliberately minimal: null/bool/number/string/
// array/object, numbers stored as both double and u64 (tick budgets exceed
// 2^53-safe doubles only in theory, but round-tripping them through the
// integer lane costs nothing). No external dependency — the container
// bakes in no JSON library, so the ~200-line parser below IS the
// dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace pbse::server {

/// Malformed frame or JSON, or a closed/failed socket mid-message.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(std::uint64_t v);
  static Json number_double(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool as_bool() const;
  std::uint64_t as_u64() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  std::vector<Json>& items();

  /// Object field access; get() returns null for a missing key.
  const Json& get(const std::string& key) const;
  bool has(const std::string& key) const;
  void set(const std::string& key, Json value);
  void push_back(Json value);
  const std::map<std::string, Json>& fields() const;

  /// Convenience typed getters with defaults (missing or wrong type ->
  /// fallback), the common shape of optional protocol fields.
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::uint64_t unum_ = 0;
  bool num_is_integer_ = false;
  std::string str_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Json parse_json(const std::string& text);

// --- Socket framing -------------------------------------------------------

/// Upper bound on one frame; a corrupt length prefix must not trigger a
/// multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxMessageBytes = 16u << 20;

/// Blocking send of `msg` as [u32 LE length][utf-8 json]. Throws
/// ProtocolError on socket failure.
void send_message(int fd, const Json& msg);

/// Blocking receive of one framed message. Returns false on clean EOF at a
/// frame boundary; throws ProtocolError on mid-frame EOF or malformed data.
bool recv_message(int fd, Json& out);

}  // namespace pbse::server
