#include "server/scheduler.h"

#include <algorithm>

#include "core/driver.h"
#include "core/pbse.h"
#include "serialize/campaign_codec.h"
#include "targets/targets.h"

namespace pbse::server {

namespace {

const targets::TargetInfo& resolve_target(const std::string& name) {
  for (const targets::TargetInfo& info : targets::all_targets()) {
    if (info.driver == name) return info;
  }
  throw ProtocolError("unknown target '" + name + "'");
}

void fill_progress(JobProgress& p, vm::Executor& exec, std::uint64_t ticks,
                   std::uint64_t states) {
  p.ticks = ticks;
  p.covered = exec.num_covered();
  p.bugs = exec.bugs().size();
  p.test_cases = exec.test_cases().size();
  p.states = states;
}

/// Runs one slice of a klee-mode job against `rec`, updating snapshot,
/// progress and run_end_ticks in place. Returns true when the job is done.
bool slice_klee(JobRecord& rec, std::uint64_t slice_ticks) {
  const targets::TargetInfo& info = resolve_target(rec.spec.target);
  const ir::Module module = targets::build_target(info.source());

  core::KleeRunOptions options;
  options.searcher = rec.spec.searcher;
  options.sym_file_size = rec.spec.sym_size;
  options.rng_seed = rec.spec.rng_seed;

  core::KleeRun run(module, "main", options);
  if (!rec.snapshot.empty()) {
    serialize::CampaignCodec::restore(run, rec.snapshot);
  }
  if (rec.run_end_ticks == 0)
    rec.run_end_ticks = run.clock().now() + rec.spec.budget_ticks;

  const std::uint64_t slice_end =
      std::min(rec.run_end_ticks, run.clock().now() + slice_ticks);
  // The Deadline below carries the FULL remaining budget; the slice cuts
  // only at batch boundaries via batch_stop. Cutting the deadline itself
  // would move the per-instruction expiry checks and de-sync the RNG
  // stream from an uninterrupted run.
  run.run_sliced(rec.run_end_ticks - run.clock().now(),
                 [&run, slice_end] { return run.clock().now() >= slice_end; });

  const bool done =
      run.clock().now() >= rec.run_end_ticks || run.num_states() == 0;
  rec.snapshot = serialize::CampaignCodec::snapshot(run);
  fill_progress(rec.progress, run.executor(), run.clock().now(),
                run.num_states());
  return done;
}

/// pbse-mode slice. A fresh job pays concolic + phase analysis inside its
/// first slice; a resumed job reconstructs them via prepare() (mandatory
/// restore precondition) and overlays the snapshot.
bool slice_pbse(JobRecord& rec, std::uint64_t slice_ticks) {
  const targets::TargetInfo& info = resolve_target(rec.spec.target);
  const ir::Module module = targets::build_target(info.source());

  core::PbseOptions options;
  options.phase_searcher = rec.spec.searcher;
  options.rng_seed = rec.spec.rng_seed;

  core::PbseDriver driver(module, "main", options);
  const bool prepared = driver.prepare(info.seed(rec.spec.seed_scale));
  if (!rec.snapshot.empty()) {
    serialize::CampaignCodec::restore(driver, rec.snapshot);
  } else {
    if (!prepared) {
      // No symbolic branch on the seed path: the concolic step is the whole
      // campaign. Record what it found and finish.
      rec.run_end_ticks = driver.clock().now();
      rec.snapshot = serialize::CampaignCodec::snapshot(driver);
      fill_progress(rec.progress, driver.executor(), driver.clock().now(), 0);
      return true;
    }
    driver.begin_run();
    rec.run_end_ticks = driver.clock().now() + rec.spec.budget_ticks;
  }

  const std::uint64_t slice_end =
      std::min(rec.run_end_ticks, driver.clock().now() + slice_ticks);
  // Each slice re-derives the SAME absolute expiry tick, so the deadline
  // every step_turn sees is identical to the monolithic run's.
  Deadline overall(driver.clock(), rec.run_end_ticks - driver.clock().now());
  bool more = true;
  while (driver.clock().now() < slice_end && (more = driver.step_turn(overall)))
    ;

  const bool done = !more || driver.clock().now() >= rec.run_end_ticks;
  rec.snapshot = serialize::CampaignCodec::snapshot(driver);
  fill_progress(rec.progress, driver.executor(), driver.clock().now(), 0);
  return done;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options, EventFn on_event)
    : options_(options), on_event_(std::move(on_event)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.default_slice_ticks == 0) options_.default_slice_ticks = 50'000;
  deques_.resize(options_.workers);
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i)
    workers_.push_back(pool_->submit([this, i] { worker_main(i); }));
}

Scheduler::~Scheduler() { stop(); }

std::uint64_t Scheduler::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  JobRecord rec;
  rec.id = next_id_++;
  rec.spec = std::move(spec);
  std::uint64_t id = rec.id;
  jobs_.emplace(id, std::move(rec));
  deques_[id % deques_.size()].jobs.push_back(id);
  ++inflight_;
  work_cv_.notify_one();
  return id;
}

void Scheduler::resubmit(JobRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  next_id_ = std::max(next_id_, rec.id + 1);
  std::uint64_t id = rec.id;
  // A job persisted as "running" died mid-slice; its snapshot is the last
  // completed slice, so resuming it re-executes only the lost slice.
  if (rec.state == JobState::kRunning || rec.state == JobState::kCheckpointed)
    rec.state = JobState::kQueued;
  bool enqueue = rec.state == JobState::kQueued;
  jobs_[id] = std::move(rec);
  if (enqueue) {
    deques_[id % deques_.size()].jobs.push_back(id);
    ++inflight_;
    work_cv_.notify_one();
  }
}

bool Scheduler::query(std::uint64_t id, JobRecord& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  out = it->second;
  return true;
}

std::vector<std::uint64_t> Scheduler::job_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) ids.push_back(id);
  return ids;
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& f : workers_) f.wait();
  workers_.clear();
  pool_.reset();
}

void Scheduler::emit(JobEvent::Kind kind, const JobRecord& rec,
                     unsigned worker, bool stolen) {
  if (!on_event_) return;
  JobEvent ev;
  ev.kind = kind;
  ev.record = rec;
  ev.worker = worker;
  ev.stolen = stolen;
  on_event_(ev);
}

bool Scheduler::next_job(unsigned me, std::uint64_t& id, bool& stolen) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!deques_[me].jobs.empty()) {
      id = deques_[me].jobs.back();
      deques_[me].jobs.pop_back();
      stolen = false;
      return true;
    }
    for (std::size_t k = 0; k < deques_.size(); ++k) {
      std::size_t victim = (next_victim_ + k) % deques_.size();
      if (victim == me || deques_[victim].jobs.empty()) continue;
      id = deques_[victim].jobs.front();
      deques_[victim].jobs.pop_front();
      next_victim_ = victim + 1;
      ++steals_;
      stolen = true;
      return true;
    }
    if (stopping_) return false;
    work_cv_.wait(lock);
  }
}

void Scheduler::worker_main(unsigned me) {
  std::uint64_t id = 0;
  bool stolen = false;
  while (next_job(me, id, stolen)) run_slice(me, id, stolen);
}

void Scheduler::run_slice(unsigned me, std::uint64_t id, bool stolen) {
  JobRecord rec;
  bool first_slice = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    first_slice = it->second.state == JobState::kQueued &&
                  it->second.snapshot.empty() &&
                  it->second.run_end_ticks == 0;
    it->second.state = JobState::kRunning;
    last_worker_[id] = me;
    rec = it->second;
  }
  if (first_slice) emit(JobEvent::Kind::kStarted, rec, me, stolen);

  std::uint64_t slice = rec.spec.slice_ticks != 0
                            ? rec.spec.slice_ticks
                            : options_.default_slice_ticks;
  bool done = false;
  try {
    done = rec.spec.mode == JobMode::kKlee ? slice_klee(rec, slice)
                                           : slice_pbse(rec, slice);
    rec.state = done ? JobState::kDone : JobState::kCheckpointed;
  } catch (const std::exception& e) {
    rec.state = JobState::kFailed;
    rec.error = e.what();
    done = true;
  }

  bool checkpoint = done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!done) {
      std::uint64_t& last = last_checkpoint_ticks_[id];
      if (options_.checkpoint_interval_ticks == 0 ||
          rec.progress.ticks - last >= options_.checkpoint_interval_ticks) {
        checkpoint = true;
        last = rec.progress.ticks;
      }
      // Re-queue at our own back: LIFO keeps the job on this worker while
      // it is idle enough, and an overloaded worker's front is exactly
      // where thieves look.
      deques_[me].jobs.push_back(id);
    } else {
      if (inflight_ > 0) --inflight_;
    }
    jobs_[id] = rec;
    if (done && inflight_ == 0) idle_cv_.notify_all();
    if (!done) work_cv_.notify_one();
  }

  emit(JobEvent::Kind::kMetrics, rec, me, stolen);
  if (checkpoint) emit(JobEvent::Kind::kCheckpoint, rec, me, stolen);
  if (rec.state == JobState::kDone) emit(JobEvent::Kind::kDone, rec, me, stolen);
  if (rec.state == JobState::kFailed)
    emit(JobEvent::Kind::kFailed, rec, me, stolen);
}

}  // namespace pbse::server
