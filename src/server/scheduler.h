// Work-stealing job scheduler for pbse-serve.
//
// Topology: N long-running worker loops submitted to the existing
// ThreadPool (the pool supplies threads + clean shutdown semantics; the
// stealing layer lives here). Each worker owns a deque of job ids:
//
//   * the owner pushes/pops at the BACK (LIFO — a job it just checkpointed
//     is hot in cache and likely to be re-run immediately),
//   * thieves steal from the FRONT (FIFO — the victim's oldest, coldest
//     job), picking victims round-robin from a per-thief cursor.
//
// The unit of scheduling is a SLICE, not a whole campaign: a worker
// materializes the campaign from the job's pbss snapshot, runs
// `slice_ticks` of budget, re-serializes, and re-queues. Between slices a
// job is pure data, which is what makes stealing sound — expression
// interning is thread-local, so a campaign object must never cross
// threads, but its snapshot can. Slicing uses the same batch-boundary
// (klee) / turn-boundary (pbse) cut points as the serialize tests, so a
// job's final coverage is bit-identical no matter how many workers ran it
// or how often it migrated.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/job.h"
#include "support/thread_pool.h"

namespace pbse::server {

struct SchedulerOptions {
  unsigned workers = 2;
  /// Slice length for jobs that don't set their own (ticks of budget per
  /// scheduling quantum).
  std::uint64_t default_slice_ticks = 50'000;
  /// Persist a checkpoint when a job's clock has advanced this far since
  /// the last persisted checkpoint (0 = persist after every slice).
  std::uint64_t checkpoint_interval_ticks = 0;
};

/// One scheduler event, delivered on the worker thread that produced it.
struct JobEvent {
  enum class Kind : std::uint8_t {
    kStarted,      // first slice began
    kMetrics,      // a slice finished; progress updated
    kCheckpoint,   // a checkpoint should be / was persisted
    kDone,
    kFailed,
  };
  Kind kind;
  JobRecord record;  // copy, safe to use on any thread
  unsigned worker = 0;
  bool stolen = false;  // this slice ran on a worker that stole the job
};

class Scheduler {
 public:
  using EventFn = std::function<void(const JobEvent&)>;

  /// `on_event` is invoked from worker threads; it must be thread-safe.
  /// For kCheckpoint events the callback is responsible for persisting
  /// record.snapshot / record.meta_json() (the scheduler itself is
  /// filesystem-free and fully unit-testable).
  Scheduler(SchedulerOptions options, EventFn on_event);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers and enqueues a fresh job. Returns its id.
  std::uint64_t submit(JobSpec spec);

  /// Re-registers a job recovered from disk (crash recovery): it resumes
  /// from rec.snapshot if present, from scratch otherwise. Keeps rec.id and
  /// bumps the id counter past it.
  void resubmit(JobRecord rec);

  /// Snapshot of a job's record (copy); false if unknown id.
  bool query(std::uint64_t id, JobRecord& out) const;
  std::vector<std::uint64_t> job_ids() const;

  /// Blocks until every queued job has reached kDone/kFailed.
  void wait_idle();

  /// Stops workers after their current slice; queued jobs stay queued
  /// (their state is preserved for a later resubmit).
  void stop();

  /// Total slices executed by workers other than the job's previous one —
  /// the smoke test asserts stealing actually happens under load.
  std::uint64_t steals() const { return steals_; }

 private:
  struct WorkerDeque {
    std::deque<std::uint64_t> jobs;
  };

  void worker_main(unsigned me);
  bool next_job(unsigned me, std::uint64_t& id, bool& stolen);
  void run_slice(unsigned me, std::uint64_t id, bool stolen);
  void emit(JobEvent::Kind kind, const JobRecord& rec, unsigned worker,
            bool stolen);

  SchedulerOptions options_;
  EventFn on_event_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::vector<WorkerDeque> deques_;
  std::map<std::uint64_t, std::uint64_t> last_checkpoint_ticks_;
  std::map<std::uint64_t, unsigned> last_worker_;
  std::uint64_t next_id_ = 1;
  std::uint64_t inflight_ = 0;  // queued + running
  std::uint64_t next_victim_ = 0;
  std::uint64_t steals_ = 0;
  bool stopping_ = false;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace pbse::server
