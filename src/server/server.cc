#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "serialize/pbss.h"

namespace pbse::server {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string job_pbss_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".pbss";
}

std::string job_meta_path(const std::string& dir, std::uint64_t id) {
  return dir + "/job-" + std::to_string(id) + ".json";
}

/// Atomic small-file write for JSON metadata (same tmp+rename discipline as
/// serialize::write_file_atomic, but for a string payload).
void write_text_atomic(const std::string& path, const std::string& text) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) sys_fail("open " + tmp);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0)
    sys_fail("write " + path);
}

std::string read_text(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) sys_fail("open " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

const char* event_kind_name(JobEvent::Kind kind) {
  switch (kind) {
    case JobEvent::Kind::kStarted: return "job_started";
    case JobEvent::Kind::kMetrics: return "metrics";
    case JobEvent::Kind::kCheckpoint: return "checkpoint";
    case JobEvent::Kind::kDone: return "done";
    case JobEvent::Kind::kFailed: return "failed";
  }
  return "?";
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  if (scheduler_) scheduler_->stop();
  for (Client& c : clients_)
    if (c.fd >= 0) ::close(c.fd);
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

void Server::start() {
  std::filesystem::create_directories(options_.state_dir);
  if (::pipe(wake_pipe_) != 0) sys_fail("pipe");
  // Both ends non-blocking: the poll loop drains opportunistically, and a
  // full pipe must never stall a worker (wakeups are best-effort).
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  bind_sockets();
  scheduler_ = std::make_unique<Scheduler>(
      options_.scheduler, [this](const JobEvent& ev) { on_scheduler_event(ev); });
  recover_state_dir();
  running_ = true;
}

void Server::bind_sockets() {
  // Unix-domain listener. A stale socket file from a crashed daemon must
  // not block restart — recovery-on-restart is the whole point.
  ::unlink(options_.socket_path.c_str());
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_fd_ < 0) sys_fail("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    sys_fail("bind " + options_.socket_path);
  if (::listen(unix_fd_, 16) != 0) sys_fail("listen " + options_.socket_path);

  if (options_.tcp_port != 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) sys_fail("socket(AF_INET)");
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in in{};
    in.sin_family = AF_INET;
    in.sin_port = htons(options_.tcp_port);
    in.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local-only, no auth layer
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&in), sizeof(in)) != 0)
      sys_fail("bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    if (::listen(tcp_fd_, 16) != 0) sys_fail("listen tcp");
  }
}

void Server::recover_state_dir() {
  namespace fs = std::filesystem;
  std::vector<std::uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(options_.state_dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("job-", 0) != 0) continue;
    if (name.size() < 10 || name.substr(name.size() - 5) != ".json") continue;
    ids.push_back(std::strtoull(name.c_str() + 4, nullptr, 10));
  }
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    try {
      Json meta = parse_json(read_text(job_meta_path(options_.state_dir, id)));
      JobRecord rec = JobRecord::from_meta_json(meta);
      if (meta.get_bool("has_snapshot", false))
        rec.snapshot = serialize::read_file(job_pbss_path(options_.state_dir, id));
      bool resumes = rec.state != JobState::kDone && rec.state != JobState::kFailed;
      scheduler_->resubmit(std::move(rec));
      if (resumes) ++recovered_jobs_;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pbse-serve: skipping unrecoverable job %llu: %s\n",
                   static_cast<unsigned long long>(id), e.what());
    }
  }
}

void Server::request_stop() {
  running_ = false;
  char b = 'q';
  if (wake_pipe_[1] >= 0 && ::write(wake_pipe_[1], &b, 1) < 0) {
    // Poll loop will notice running_ on its next timeout round.
  }
}

void Server::request_stop_when_idle() {
  if (scheduler_) scheduler_->wait_idle();
  request_stop();
}

void Server::on_scheduler_event(const JobEvent& ev) {
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    events_.push_back(ev);
  }
  char b = 'e';
  if (::write(wake_pipe_[1], &b, 1) < 0) {
    // Wakeup is best-effort; the poll timeout drains the queue regardless.
  }
}

void Server::persist_checkpoint(const JobRecord& rec) {
  // Snapshot first, metadata second: metadata claiming has_snapshot with no
  // snapshot present would brick recovery, the reverse merely wastes bytes.
  if (!rec.snapshot.empty())
    serialize::write_file_atomic(job_pbss_path(options_.state_dir, rec.id),
                                 rec.snapshot);
  write_text_atomic(job_meta_path(options_.state_dir, rec.id),
                    rec.meta_json().dump());
}

Json Server::record_json(const JobRecord& rec) {
  Json j = rec.meta_json();
  // The wire copy drops internal fields nobody outside recovery cares about.
  return j;
}

Json Server::event_json(const JobEvent& ev) {
  Json j = Json::object();
  j.set("event", Json::string(event_kind_name(ev.kind)));
  j.set("job", Json::number(ev.record.id));
  j.set("state", Json::string(job_state_name(ev.record.state)));
  j.set("progress", ev.record.progress.to_json());
  j.set("worker", Json::number(ev.worker));
  j.set("stolen", Json::boolean(ev.stolen));
  if (!ev.record.error.empty())
    j.set("error", Json::string(ev.record.error));
  return j;
}

void Server::forward_event(const JobEvent& ev) {
  bool terminal = ev.kind == JobEvent::Kind::kDone ||
                  ev.kind == JobEvent::Kind::kFailed;
  for (Client& c : clients_) {
    auto it = std::find(c.waits.begin(), c.waits.end(), ev.record.id);
    if (it == c.waits.end()) continue;
    try {
      send_message(c.fd, event_json(ev));
    } catch (const ProtocolError&) {
      // Client went away; the poll loop reaps the fd.
    }
    if (terminal) c.waits.erase(it);
  }
}

void Server::drain_events() {
  while (true) {
    JobEvent ev;
    {
      std::lock_guard<std::mutex> lock(events_mu_);
      if (events_.empty()) return;
      ev = std::move(events_.front());
      events_.pop_front();
    }
    if (ev.kind == JobEvent::Kind::kCheckpoint ||
        ev.kind == JobEvent::Kind::kDone ||
        ev.kind == JobEvent::Kind::kFailed) {
      try {
        persist_checkpoint(ev.record);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "pbse-serve: checkpoint of job %llu failed: %s\n",
                     static_cast<unsigned long long>(ev.record.id), e.what());
      }
    }
    forward_event(ev);
  }
}

void Server::accept_client(int listen_fd) {
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return;
  Client c;
  c.fd = fd;
  clients_.push_back(c);
}

Json Server::handle_request(Client& client, const Json& req) {
  std::string cmd = req.get_string("cmd", "");
  Json resp = Json::object();
  if (cmd == "ping") {
    resp.set("ok", Json::boolean(true));
    resp.set("pong", Json::boolean(true));
    return resp;
  }
  if (cmd == "submit") {
    JobSpec spec = JobSpec::from_json(req.get("spec"));
    std::uint64_t id = scheduler_->submit(std::move(spec));
    resp.set("ok", Json::boolean(true));
    resp.set("job", Json::number(id));
    return resp;
  }
  if (cmd == "status") {
    JobRecord rec;
    if (!scheduler_->query(req.get_u64("job", 0), rec))
      throw ProtocolError("no such job");
    resp.set("ok", Json::boolean(true));
    resp.set("record", record_json(rec));
    return resp;
  }
  if (cmd == "list") {
    Json jobs = Json::array();
    for (std::uint64_t id : scheduler_->job_ids()) {
      JobRecord rec;
      if (scheduler_->query(id, rec)) jobs.push_back(record_json(rec));
    }
    resp.set("ok", Json::boolean(true));
    resp.set("jobs", std::move(jobs));
    return resp;
  }
  if (cmd == "wait") {
    std::uint64_t id = req.get_u64("job", 0);
    JobRecord rec;
    if (!scheduler_->query(id, rec)) throw ProtocolError("no such job");
    resp.set("ok", Json::boolean(true));
    resp.set("record", record_json(rec));
    if (rec.state == JobState::kDone || rec.state == JobState::kFailed) {
      // Already terminal: the ack above carries the final record; no
      // subscription, no event stream.
      resp.set("already_done", Json::boolean(true));
    } else {
      client.waits.push_back(id);
    }
    return resp;
  }
  if (cmd == "shutdown") {
    resp.set("ok", Json::boolean(true));
    running_ = false;
    return resp;
  }
  throw ProtocolError("unknown command '" + cmd + "'");
}

void Server::handle_client(Client& client) {
  Json req;
  bool alive = false;
  try {
    alive = recv_message(client.fd, req);
  } catch (const ProtocolError&) {
    alive = false;
  }
  if (!alive) {
    ::close(client.fd);
    client.fd = -1;
    return;
  }
  Json resp;
  try {
    resp = handle_request(client, req);
  } catch (const std::exception& e) {
    resp = Json::object();
    resp.set("ok", Json::boolean(false));
    resp.set("error", Json::string(e.what()));
  }
  try {
    send_message(client.fd, resp);
  } catch (const ProtocolError&) {
    ::close(client.fd);
    client.fd = -1;
  }
}

void Server::serve_forever() {
  while (running_) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({unix_fd_, POLLIN, 0});
    if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    std::size_t first_client = fds.size();
    for (Client& c : clients_) fds.push_back({c.fd, POLLIN, 0});

    int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR) sys_fail("poll");

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) == sizeof(buf)) {
      }
    }
    drain_events();
    if (fds[1].revents & POLLIN) accept_client(unix_fd_);
    if (tcp_fd_ >= 0 && (fds[2].revents & POLLIN)) accept_client(tcp_fd_);
    for (std::size_t i = first_client; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
        handle_client(clients_[i - first_client]);
    }
    clients_.erase(std::remove_if(clients_.begin(), clients_.end(),
                                  [](const Client& c) { return c.fd < 0; }),
                   clients_.end());
  }
  // Drain: let in-flight slices finish and persist their checkpoints so a
  // clean shutdown is always resumable.
  scheduler_->stop();
  drain_events();
}

}  // namespace pbse::server
