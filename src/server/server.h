// pbse-serve: the campaign daemon.
//
// One poll()-driven thread owns all sockets and the filesystem; the
// Scheduler's workers run campaign slices and report back through an
// event queue + self-pipe (workers never block on clients, the poll loop
// never blocks on campaigns).
//
// Crash recovery contract (exercised by scripts/server_smoke.sh with a
// literal kill -9): every checkpoint persists job-<id>.pbss atomically
// FIRST, then job-<id>.json metadata atomically. On startup the state
// directory is scanned; any job not yet done resumes from its last
// persisted snapshot — losing at most the slice that was in flight — and
// finishes with coverage bit-identical to an uninterrupted run (snapshot
// restore is tick- and RNG-exact, see tests/serialize_test.cc).
//
// Protocol (see protocol.h for framing): requests are objects with "cmd":
//   ping                          -> {"ok":true,"pong":true}
//   submit {spec...}              -> {"ok":true,"job":<id>}
//   status {"job":id}             -> {"ok":true,"record":{...}}
//   list                          -> {"ok":true,"jobs":[{...}]}
//   wait {"job":id}               -> streamed {"event":...} frames ending
//                                    with "done"/"failed"
//   shutdown                      -> {"ok":true}; daemon drains and exits
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/job.h"
#include "server/scheduler.h"

namespace pbse::server {

struct ServerOptions {
  /// Unix-domain socket path (always on; removed + rebound at startup).
  std::string socket_path = "pbse-serve.sock";
  /// Optional TCP listener on 127.0.0.1:<port> (0 = off).
  std::uint16_t tcp_port = 0;
  /// Directory for job-<id>.pbss / job-<id>.json state (created if absent).
  std::string state_dir = "pbse-serve-state";
  SchedulerOptions scheduler;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds sockets, recovers persisted jobs, starts workers. Throws
  /// std::runtime_error on bind/listen failure.
  void start();

  /// Runs the poll loop until a shutdown command (or request_stop()).
  void serve_forever();

  /// Thread-safe (and signal-unsafe-free) stop request; serve_forever
  /// returns after the current poll round.
  void request_stop();

  /// Blocks until the scheduler has no queued or running jobs, then stops
  /// the poll loop (`--oneshot`: drain recovered jobs and exit).
  void request_stop_when_idle();

  /// Jobs re-queued from the state directory during start() — the smoke
  /// test asserts recovery actually resumed something.
  std::size_t recovered_jobs() const { return recovered_jobs_; }

 private:
  struct Client {
    int fd = -1;
    /// Job ids this client is wait()ing on.
    std::vector<std::uint64_t> waits;
  };

  void bind_sockets();
  void recover_state_dir();
  void on_scheduler_event(const JobEvent& ev);
  void drain_events();
  void persist_checkpoint(const JobRecord& rec);
  void accept_client(int listen_fd);
  void handle_client(Client& client);
  Json handle_request(Client& client, const Json& req);
  void forward_event(const JobEvent& ev);
  static Json event_json(const JobEvent& ev);
  static Json record_json(const JobRecord& rec);

  ServerOptions options_;
  std::unique_ptr<Scheduler> scheduler_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::vector<Client> clients_;
  std::atomic<bool> running_{false};
  std::size_t recovered_jobs_ = 0;

  std::mutex events_mu_;
  std::deque<JobEvent> events_;
};

}  // namespace pbse::server
