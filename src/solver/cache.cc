#include "solver/cache.h"

#include <algorithm>

namespace pbse {

namespace {

/// Collects the distinct arrays read by `constraints`.
std::vector<ArrayRef> constraint_arrays(
    const std::vector<ExprRef>& constraints) {
  std::vector<ArrayRef> arrays;
  for (const auto& c : constraints) {
    for (const auto& r : cached_reads(c)) {
      bool seen = false;
      for (const auto& a : arrays) seen = seen || a.get() == r.array.get();
      if (!seen) arrays.push_back(r.array);
    }
  }
  return arrays;
}

/// Finds the unique array in `arrays` matching `wanted` by name+size, or
/// null when absent or ambiguous (two distinct arrays with the same
/// name+size — then only pointer identity is trustworthy).
ArrayRef match_by_shape(const std::vector<ArrayRef>& arrays,
                        const Array& wanted) {
  ArrayRef found;
  for (const auto& a : arrays) {
    if (a->name() != wanted.name() || a->size() != wanted.size()) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = a;
  }
  return found;
}

/// Remaps every array of `model` onto the matching array of `arrays`
/// (produced-by-another-campaign case); arrays without a shape match are
/// kept as-is.
void remap_model(ModelBytes& model, const std::vector<ArrayRef>& arrays) {
  for (auto& [array, bytes] : model) {
    if (const ArrayRef local = match_by_shape(arrays, *array);
        local != nullptr && local.get() != array.get())
      array = local;
  }
}

}  // namespace

bool models_equal(const ModelBytes& a, const ModelBytes& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].first.get() != b[i].first.get() || a[i].second != b[i].second)
      return false;
  }
  return true;
}

namespace cex_detail {

void bounded_add_model(std::vector<ModelBytes>& list, const ModelBytes& model,
                       std::size_t max_per_key) {
  for (const auto& existing : list)
    if (models_equal(existing, model)) return;  // bounded: max_per_key checks
  list.push_back(model);
  if (list.size() > max_per_key) list.erase(list.begin());
}

void bounded_add_core(std::vector<std::vector<std::uint64_t>>& list,
                      const std::vector<std::uint64_t>& core,
                      std::size_t max_per_key) {
  for (const auto& existing : list)
    if (existing == core) return;
  // Prefer retaining SMALL cores: a small core subsumes more supersets.
  // Insert keeping the list sorted by size (stable), evict the largest.
  const auto pos = std::upper_bound(
      list.begin(), list.end(), core,
      [](const std::vector<std::uint64_t>& a,
         const std::vector<std::uint64_t>& b) { return a.size() < b.size(); });
  list.insert(pos, core);
  if (list.size() > max_per_key) list.pop_back();
}

}  // namespace cex_detail

// --- CexStore ---------------------------------------------------------------

void CexStore::add_model(std::uint64_t key, const ModelBytes& model) {
  cex_detail::bounded_add_model(models_[key], model, kMaxPerKey);
}

void CexStore::add_unsat_core(std::uint64_t key,
                              const std::vector<std::uint64_t>& core) {
  cex_detail::bounded_add_core(unsat_[key], core, kMaxPerKey);
}

std::size_t CexStore::num_models() const {
  std::size_t n = 0;
  for (const auto& [k, v] : models_) n += v.size();
  return n;
}

std::size_t CexStore::num_cores() const {
  std::size_t n = 0;
  for (const auto& [k, v] : unsat_) n += v.size();
  return n;
}

// --- ShardedQueryCache ------------------------------------------------------

ShardedQueryCache::ShardedQueryCache(unsigned num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (unsigned i = 0; i < num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::mutex& ShardedQueryCache::lock_counted(std::mutex& mu) const {
  if (!mu.try_lock()) {
    contention_.fetch_add(1, std::memory_order_relaxed);
    mu.lock();
  }
  return mu;
}

std::optional<QueryCache::Entry> ShardedQueryCache::lookup(
    std::uint64_t key, const std::vector<ExprRef>& constraints) {
  Shard& shard = shard_for(key);
  QueryCache::Entry entry;
  {
    std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    entry = it->second;  // copy out; verification happens without the lock
  }

  if (entry.result == SolverResult::kSat) {
    // Remap the stored model onto this campaign's arrays. The producing
    // campaign interned its arrays separately, so pointer identity only
    // matches within the producing campaign; shape (name+size) is the
    // cross-campaign identity that also feeds the expression hash.
    const std::vector<ArrayRef> arrays = constraint_arrays(constraints);
    remap_model(entry.model, arrays);
    Assignment assignment;
    for (const auto& [array, bytes] : entry.model)
      assignment.set(array, bytes);
    for (const auto& c : constraints) {
      if (!evaluate_bool(c, assignment)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void ShardedQueryCache::insert(std::uint64_t key, QueryCache::Entry entry) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
  shard.entries[key] = std::move(entry);
}

std::vector<ModelBytes> ShardedQueryCache::partition_models(
    std::uint64_t key, const std::vector<ExprRef>& constraints) {
  Shard& shard = shard_for(key);
  std::vector<ModelBytes> out;
  {
    std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
    const auto it = shard.models.find(key);
    if (it == shard.models.end()) return out;
    out = it->second;  // copy out; remap without the lock
  }
  const std::vector<ArrayRef> arrays = constraint_arrays(constraints);
  for (auto& model : out) remap_model(model, arrays);
  return out;
}

void ShardedQueryCache::publish_model(std::uint64_t key,
                                      const ModelBytes& model) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
  cex_detail::bounded_add_model(shard.models[key], model, CexStore::kMaxPerKey);
}

std::vector<std::vector<std::uint64_t>> ShardedQueryCache::partition_unsat_cores(
    std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
  const auto it = shard.cores.find(key);
  return it == shard.cores.end() ? std::vector<std::vector<std::uint64_t>>{}
                                 : it->second;
}

void ShardedQueryCache::publish_unsat_core(
    std::uint64_t key, const std::vector<std::uint64_t>& core) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
  cex_detail::bounded_add_core(shard.cores[key], core, CexStore::kMaxPerKey);
}

bool ShardedQueryCache::test_and_publish_fingerprint(std::uint64_t fp,
                                                     std::uint32_t campaign) {
  Shard& shard = shard_for(fp);
  std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
  if (shard.fingerprints.size() >= kMaxFingerprintsPerShard)
    shard.fingerprints.clear();
  const auto [it, inserted] = shard.fingerprints.emplace(fp, campaign);
  return inserted || it->second == campaign;
}

std::size_t ShardedQueryCache::num_fingerprints() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(lock_counted(shard->mu), std::adopt_lock);
    n += shard->fingerprints.size();
  }
  return n;
}

ShardedQueryCache::Counters ShardedQueryCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.contention = contention_.load(std::memory_order_relaxed);
  return c;
}

std::size_t ShardedQueryCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(lock_counted(shard->mu), std::adopt_lock);
    n += shard->entries.size();
  }
  return n;
}

void ShardedQueryCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(lock_counted(shard->mu), std::adopt_lock);
    shard->entries.clear();
    shard->models.clear();
    shard->cores.clear();
    shard->fingerprints.clear();
  }
}

}  // namespace pbse
