#include "solver/cache.h"

namespace pbse {

namespace {

/// Collects the distinct arrays read by `constraints`.
std::vector<ArrayRef> constraint_arrays(
    const std::vector<ExprRef>& constraints) {
  std::vector<ArrayRef> arrays;
  for (const auto& c : constraints) {
    for (const auto& r : cached_reads(c)) {
      bool seen = false;
      for (const auto& a : arrays) seen = seen || a.get() == r.array.get();
      if (!seen) arrays.push_back(r.array);
    }
  }
  return arrays;
}

/// Finds the unique array in `arrays` matching `wanted` by name+size, or
/// null when absent or ambiguous (two distinct arrays with the same
/// name+size — then only pointer identity is trustworthy).
ArrayRef match_by_shape(const std::vector<ArrayRef>& arrays,
                        const Array& wanted) {
  ArrayRef found;
  for (const auto& a : arrays) {
    if (a->name() != wanted.name() || a->size() != wanted.size()) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = a;
  }
  return found;
}

}  // namespace

ShardedQueryCache::ShardedQueryCache(unsigned num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (unsigned i = 0; i < num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::mutex& ShardedQueryCache::lock_counted(std::mutex& mu) const {
  if (!mu.try_lock()) {
    contention_.fetch_add(1, std::memory_order_relaxed);
    mu.lock();
  }
  return mu;
}

std::optional<QueryCache::Entry> ShardedQueryCache::lookup(
    std::uint64_t key, const std::vector<ExprRef>& constraints) {
  Shard& shard = shard_for(key);
  QueryCache::Entry entry;
  {
    std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    entry = it->second;  // copy out; verification happens without the lock
  }

  if (entry.result == SolverResult::kSat) {
    // Remap the stored model onto this campaign's arrays. The producing
    // campaign interned its arrays separately, so pointer identity only
    // matches within the producing campaign; shape (name+size) is the
    // cross-campaign identity that also feeds the expression hash.
    const std::vector<ArrayRef> arrays = constraint_arrays(constraints);
    Assignment assignment;
    for (auto& [array, bytes] : entry.model) {
      if (const ArrayRef local = match_by_shape(arrays, *array);
          local != nullptr && local.get() != array.get())
        array = local;
      assignment.set(array, bytes);
    }
    for (const auto& c : constraints) {
      if (!evaluate_bool(c, assignment)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void ShardedQueryCache::insert(std::uint64_t key, QueryCache::Entry entry) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(lock_counted(shard.mu), std::adopt_lock);
  shard.entries[key] = std::move(entry);
}

ShardedQueryCache::Counters ShardedQueryCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.contention = contention_.load(std::memory_order_relaxed);
  return c;
}

std::size_t ShardedQueryCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(lock_counted(shard->mu), std::adopt_lock);
    n += shard->entries.size();
  }
  return n;
}

void ShardedQueryCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(lock_counted(shard->mu), std::adopt_lock);
    shard->entries.clear();
  }
}

}  // namespace pbse
