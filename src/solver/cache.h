// Query caches (KLEE's counterexample-cache analog, exact-match variant).
//
// Key = order-insensitive constraint-set hash combined with the query hash.
// SAT entries store the satisfying model and are re-verified on hit, so a
// hash collision can only cost a cache miss, never a wrong SAT answer.
// UNSAT entries are trusted by hash (a 64-bit collision is accepted risk).
//
// Two layers:
//  * QueryCache — the per-solver L1. Lock-free, touched on every query.
//  * ShardedQueryCache — an optional shared L2 for parallel campaigns:
//    N mutex-guarded shards keyed by the expression hash, safe to hit from
//    many solver instances concurrently. Expression hashes are content
//    based (arrays hash by name+size, never by pointer), so campaigns that
//    intern expressions on different threads still produce colliding keys
//    for structurally identical queries — that is what makes cross-campaign
//    reuse possible at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "expr/evaluator.h"
#include "expr/expr.h"

namespace pbse {

enum class SolverResult { kSat, kUnsat, kUnknown };

/// Exact-match solver cache.
class QueryCache {
 public:
  struct Entry {
    SolverResult result = SolverResult::kUnknown;
    // Model stored per array (only for SAT entries).
    std::vector<std::pair<ArrayRef, std::vector<std::uint8_t>>> model;
  };

  /// Looks up a query. On a SAT hit the stored model is re-checked against
  /// `constraints` (which must already include the query); an invalidated
  /// entry counts as a miss.
  const Entry* lookup(std::uint64_t key,
                      const std::vector<ExprRef>& constraints) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    const Entry& e = it->second;
    if (e.result == SolverResult::kSat) {
      Assignment a;
      for (const auto& [array, bytes] : e.model) a.set(array, bytes);
      for (const auto& c : constraints)
        if (!evaluate_bool(c, a)) return nullptr;
    }
    return &e;
  }

  void insert(std::uint64_t key, Entry entry) {
    entries_[key] = std::move(entry);
  }

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::unordered_map<std::uint64_t, Entry> entries_;
};

/// Thread-safe sharded query cache shared between concurrent campaigns.
///
/// Lookup semantics differ from the L1 in one way: a SAT entry's model was
/// produced by whichever campaign solved the query first, so its ArrayRefs
/// may belong to a *different* campaign's (structurally identical) arrays.
/// lookup() therefore remaps the stored model onto the arrays actually
/// read by `constraints` (matched by name+size) before re-verifying; a
/// model that no longer verifies counts as a miss. UNSAT entries are
/// trusted by key, exactly like the L1.
class ShardedQueryCache {
 public:
  explicit ShardedQueryCache(unsigned num_shards = 16);

  /// Thread-safe lookup. Returns a self-contained copy of the entry with
  /// its model remapped onto the arrays of `constraints`; nullopt on miss
  /// or failed SAT re-verification.
  std::optional<QueryCache::Entry> lookup(
      std::uint64_t key, const std::vector<ExprRef>& constraints);

  /// Thread-safe insert (last writer wins; entries are interchangeable
  /// because every SAT model is re-verified on hit).
  void insert(std::uint64_t key, QueryCache::Entry entry);

  /// Monotonic counters, exported into campaign stats by the drivers.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Lock acquisitions that had to wait (shard contention).
    std::uint64_t contention = 0;
  };
  Counters counters() const;

  std::size_t size() const;
  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, QueryCache::Entry> entries;
  };

  Shard& shard_for(std::uint64_t key) {
    // The low bits feed the unordered_map buckets; pick shards from the
    // high bits so the two partitions stay independent.
    return *shards_[(key >> 48) % shards_.size()];
  }

  std::mutex& lock_counted(std::mutex& mu) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> contention_{0};
};

}  // namespace pbse
