// Query caches (KLEE's counterexample-cache analog).
//
// Three reuse granularities:
//
//  * Exact match (QueryCache / ShardedQueryCache): key = order-insensitive
//    constraint-set hash combined with the query hash. SAT entries store
//    the satisfying model and are re-verified on hit, so a hash collision
//    can only cost a cache miss, never a wrong SAT answer. UNSAT entries
//    are trusted by hash (a 64-bit collision is accepted risk).
//
//  * Partition-keyed partial results (CexStore, and the partition side of
//    ShardedQueryCache): cached models and UNSAT cores filed under the
//    stable region id of every independence partition the producing query
//    touched (see constraint_set.h). A later query over an overlapping
//    partition can replay a cached model (a model that satisfies the
//    sliced query is a SAT answer without search — KLEE's
//    CexCachingSolver superset case) or match a cached UNSAT core (a
//    subset of the current constraint list that is UNSAT proves the whole
//    list UNSAT). Replayed models are ALWAYS re-evaluated by the solver
//    (charged to the virtual clock); UNSAT cores are trusted by their
//    content hashes, the same accepted risk as exact UNSAT entries.
//
// Two layers:
//  * QueryCache + CexStore — the per-solver L1. Lock-free, touched on
//    every query.
//  * ShardedQueryCache — an optional shared L2 for parallel campaigns:
//    N mutex-guarded shards keyed by the expression hash, safe to hit from
//    many solver instances concurrently. Expression hashes are content
//    based (arrays hash by name+size, never by pointer), so campaigns that
//    intern expressions on different threads still produce colliding keys
//    for structurally identical queries — that is what makes cross-campaign
//    reuse possible at all. Partition hashes are content based for the
//    same reason, so campaigns share PARTIAL results, not just whole
//    queries.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "expr/evaluator.h"
#include "expr/expr.h"

namespace pbse {

enum class SolverResult { kSat, kUnsat, kUnknown };

/// A satisfying assignment stored per array (the persistable form of an
/// Assignment; ArrayRefs keep the arrays alive).
using ModelBytes = std::vector<std::pair<ArrayRef, std::vector<std::uint8_t>>>;

/// Exact equality (same arrays by pointer, same bytes). Used for dedup in
/// the stores and by the solver to skip L2 candidates it already saw in L1
/// — with a single campaign both layers hold identical entries, and the
/// skip is what keeps shared-cache mode tick-identical to --no-share-cache
/// until a second campaign actually contributes foreign entries.
bool models_equal(const ModelBytes& a, const ModelBytes& b);

namespace cex_detail {
/// Bounded, deduplicated per-key insertion shared by the L1 CexStore and
/// the L2 shard maps. The solver's single-campaign tick parity (verbatim
/// L2 copies of L1 entries are skipped uncharged) requires the two layers
/// to hold entry-for-entry identical lists, so the dedup / ordering /
/// eviction policy must be ONE piece of code, not two that happen to
/// agree. Models: FIFO, evict oldest. Cores: sorted ascending by size
/// (small cores subsume more supersets), evict largest.
void bounded_add_model(std::vector<ModelBytes>& list, const ModelBytes& model,
                       std::size_t max_per_key);
void bounded_add_core(std::vector<std::vector<std::uint64_t>>& list,
                      const std::vector<std::uint64_t>& core,
                      std::size_t max_per_key);
}  // namespace cex_detail

/// Exact-match solver cache.
class QueryCache {
 public:
  struct Entry {
    SolverResult result = SolverResult::kUnknown;
    // Model stored per array (only for SAT entries).
    ModelBytes model;
  };

  /// Looks up a query. On a SAT hit the stored model is re-checked against
  /// `constraints` (which must already include the query); an invalidated
  /// entry counts as a miss.
  const Entry* lookup(std::uint64_t key,
                      const std::vector<ExprRef>& constraints) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    const Entry& e = it->second;
    if (e.result == SolverResult::kSat) {
      Assignment a;
      for (const auto& [array, bytes] : e.model) a.set(array, bytes);
      for (const auto& c : constraints)
        if (!evaluate_bool(c, a)) return nullptr;
    }
    return &e;
  }

  void insert(std::uint64_t key, Entry entry) {
    entries_[key] = std::move(entry);
  }

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Raw entry map, for snapshot (src/serialize). Restore uses insert().
  const std::unordered_map<std::uint64_t, Entry>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<std::uint64_t, Entry> entries_;
};

/// Per-partition counterexample store: the solver's L1 for partial reuse.
/// Deterministic by construction — entries are bounded FIFO lists touched
/// by exactly one solver (one campaign, one thread).
class CexStore {
 public:
  /// Bound on models / cores retained per partition key. FIFO eviction:
  /// newest entries (latest path extensions) are the likeliest to replay.
  static constexpr std::size_t kMaxPerKey = 8;

  /// Cached satisfying models whose producing query touched `key`, oldest
  /// first. Null when none.
  const std::vector<ModelBytes>* models(std::uint64_t key) const {
    const auto it = models_.find(key);
    return it == models_.end() ? nullptr : &it->second;
  }
  void add_model(std::uint64_t key, const ModelBytes& model);

  /// Cached UNSAT cores (sorted mixed constraint hashes of a list proven
  /// UNSAT) whose slice touched `key`. Any superset of a core is UNSAT.
  const std::vector<std::vector<std::uint64_t>>* unsat_cores(
      std::uint64_t key) const {
    const auto it = unsat_.find(key);
    return it == unsat_.end() ? nullptr : &it->second;
  }
  void add_unsat_core(std::uint64_t key, const std::vector<std::uint64_t>& core);

  std::size_t num_models() const;
  std::size_t num_cores() const;
  void clear() {
    models_.clear();
    unsat_.clear();
  }

  /// Raw maps, for snapshot (src/serialize). Restore must preserve the
  /// per-key list ORDER exactly (FIFO position is eviction state), so it
  /// writes through these rather than re-adding through the bounded
  /// inserters.
  const std::unordered_map<std::uint64_t, std::vector<ModelBytes>>&
  raw_models() const {
    return models_;
  }
  const std::unordered_map<std::uint64_t,
                           std::vector<std::vector<std::uint64_t>>>&
  raw_cores() const {
    return unsat_;
  }
  std::vector<ModelBytes>& mutable_models(std::uint64_t key) {
    return models_[key];
  }
  std::vector<std::vector<std::uint64_t>>& mutable_cores(std::uint64_t key) {
    return unsat_[key];
  }

 private:
  std::unordered_map<std::uint64_t, std::vector<ModelBytes>> models_;
  std::unordered_map<std::uint64_t, std::vector<std::vector<std::uint64_t>>>
      unsat_;
};

/// Thread-safe sharded query cache shared between concurrent campaigns.
///
/// Lookup semantics differ from the L1 in one way: a SAT entry's model was
/// produced by whichever campaign solved the query first, so its ArrayRefs
/// may belong to a *different* campaign's (structurally identical) arrays.
/// lookup() therefore remaps the stored model onto the arrays actually
/// read by `constraints` (matched by name+size) before re-verifying; a
/// model that no longer verifies counts as a miss. UNSAT entries are
/// trusted by key, exactly like the L1.
///
/// Partition-keyed partial results (models / UNSAT cores) use the same
/// shards; partition_models() remaps like lookup() but does NOT verify —
/// the consuming solver replays candidates itself, charging the virtual
/// clock.
class ShardedQueryCache {
 public:
  explicit ShardedQueryCache(unsigned num_shards = 16);

  /// Thread-safe lookup. Returns a self-contained copy of the entry with
  /// its model remapped onto the arrays of `constraints`; nullopt on miss
  /// or failed SAT re-verification.
  std::optional<QueryCache::Entry> lookup(
      std::uint64_t key, const std::vector<ExprRef>& constraints);

  /// Thread-safe insert (last writer wins; entries are interchangeable
  /// because every SAT model is re-verified on hit).
  void insert(std::uint64_t key, QueryCache::Entry entry);

  /// Candidate models filed under partition `key`, remapped onto the
  /// arrays of `constraints` (unverified — callers replay and charge).
  std::vector<ModelBytes> partition_models(
      std::uint64_t key, const std::vector<ExprRef>& constraints);
  void publish_model(std::uint64_t key, const ModelBytes& model);

  /// UNSAT cores filed under partition `key` (content hashes; directly
  /// comparable across campaigns).
  std::vector<std::vector<std::uint64_t>> partition_unsat_cores(
      std::uint64_t key);
  void publish_unsat_core(std::uint64_t key,
                          const std::vector<std::uint64_t>& core);

  /// Cross-campaign state-fingerprint registry (executor block-entry
  /// dedup). Registers `fp` as explored by `campaign` and returns true
  /// when the caller should CONTINUE its state: the fingerprint is fresh,
  /// or was published by this same campaign earlier (a campaign's local
  /// seen-set is bounded and may clear, so re-encountering an own
  /// fingerprint here must not self-kill). Returns false when a DIFFERENT
  /// campaign already explored an identical state — the caller terminates
  /// its duplicate. Fingerprints are content-based (expression hashes,
  /// allocation-order object ids), so structurally identical states of
  /// different workers collide, which is the point.
  bool test_and_publish_fingerprint(std::uint64_t fp, std::uint32_t campaign);
  /// Fingerprints currently registered (across all shards).
  std::size_t num_fingerprints() const;

  /// Monotonic counters, exported into campaign stats by the drivers.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Lock acquisitions that had to wait (shard contention).
    std::uint64_t contention = 0;
  };
  Counters counters() const;

  std::size_t size() const;
  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, QueryCache::Entry> entries;
    std::unordered_map<std::uint64_t, std::vector<ModelBytes>> models;
    std::unordered_map<std::uint64_t, std::vector<std::vector<std::uint64_t>>>
        cores;
    /// State fingerprint -> publishing campaign index.
    std::unordered_map<std::uint64_t, std::uint32_t> fingerprints;
  };

  /// Fingerprints retained per shard before a wholesale per-shard clear
  /// (bounds memory; losing entries only costs missed dedup).
  static constexpr std::size_t kMaxFingerprintsPerShard = 1 << 16;

  Shard& shard_for(std::uint64_t key) {
    // The low bits feed the unordered_map buckets; pick shards from the
    // high bits so the two partitions stay independent.
    return *shards_[(key >> 48) % shards_.size()];
  }

  std::mutex& lock_counted(std::mutex& mu) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> contention_{0};
};

}  // namespace pbse
