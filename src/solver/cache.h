// Query caches (KLEE's counterexample-cache analog, exact-match variant).
//
// Key = order-insensitive constraint-set hash combined with the query hash.
// SAT entries store the satisfying model and are re-verified on hit, so a
// hash collision can only cost a cache miss, never a wrong SAT answer.
// UNSAT entries are trusted by hash (a 64-bit collision is accepted risk).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/evaluator.h"
#include "expr/expr.h"

namespace pbse {

enum class SolverResult { kSat, kUnsat, kUnknown };

/// Exact-match solver cache.
class QueryCache {
 public:
  struct Entry {
    SolverResult result = SolverResult::kUnknown;
    // Model stored per array (only for SAT entries).
    std::vector<std::pair<ArrayRef, std::vector<std::uint8_t>>> model;
  };

  /// Looks up a query. On a SAT hit the stored model is re-checked against
  /// `constraints` (which must already include the query); an invalidated
  /// entry counts as a miss.
  const Entry* lookup(std::uint64_t key,
                      const std::vector<ExprRef>& constraints) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    const Entry& e = it->second;
    if (e.result == SolverResult::kSat) {
      Assignment a;
      for (const auto& [array, bytes] : e.model) a.set(array, bytes);
      for (const auto& c : constraints)
        if (!evaluate_bool(c, a)) return nullptr;
    }
    return &e;
  }

  void insert(std::uint64_t key, Entry entry) {
    entries_[key] = std::move(entry);
  }

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace pbse
