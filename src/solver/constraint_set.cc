#include "solver/constraint_set.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <string>

namespace pbse {

namespace {

/// Per-set site key: pointer-based, cheap, never leaves this set (the
/// union-find nodes are private state).
std::uint64_t site_key(const ReadSite& site) {
  return (reinterpret_cast<std::uintptr_t>(site.array.get()) << 20) ^
         site.index;
}

/// Content-based site id: array name+size and byte index only, so the same
/// input region yields the same id in every campaign (arrays are interned
/// per thread; pointers must never leak into keys that cross campaigns).
std::uint64_t site_content_id(const ReadSite& site) {
  std::uint64_t h = std::hash<std::string>{}(site.array->name());
  h ^= std::uint64_t{site.array->size()} << 32;
  h ^= site.index;
  return mix_constraint_hash(h);
}

}  // namespace

std::uint32_t ConstraintSet::find_root(std::uint32_t n) const {
  while (uf_parent_[n] != n) {
    uf_parent_[n] = uf_parent_[uf_parent_[n]];  // path halving
    n = uf_parent_[n];
  }
  return n;
}

std::uint32_t ConstraintSet::node_for_site(std::uint64_t site,
                                           std::uint64_t region_id) {
  auto [it, inserted] =
      site_node_.emplace(site, static_cast<std::uint32_t>(uf_parent_.size()));
  if (inserted) {
    uf_parent_.push_back(it->second);
    uf_size_.push_back(1);
    region_id_.push_back(region_id);
  }
  return it->second;
}

std::uint32_t ConstraintSet::union_nodes(std::uint32_t a, std::uint32_t b) {
  a = find_root(a);
  b = find_root(b);
  if (a == b) return a;
  if (uf_size_[a] < uf_size_[b]) std::swap(a, b);
  uf_parent_[b] = a;
  uf_size_[a] += uf_size_[b];
  // The merged partition keeps the minimum id, so a region's id can only
  // ever decrease — queries on a grown partition keep finding the entries
  // its dominant region filed.
  region_id_[a] = std::min(region_id_[a], region_id_[b]);
  return a;
}

bool ConstraintSet::add(const ExprRef& c) {
  assert(c->width() == 1);
  if (c->is_true()) return true;
  if (c->is_false()) return false;
  if (!present_.insert(c.get()).second) return true;
  constraints_.push_back(c);
  // XOR-combining keeps the hash order-insensitive; multiply-mix first so
  // equal-hash constraints don't cancel.
  const std::uint64_t mixed = mix_constraint_hash(c->hash());
  hash_ ^= mixed;
  sorted_hashes_.insert(
      std::lower_bound(sorted_hashes_.begin(), sorted_hashes_.end(), mixed),
      mixed);

  // Union every site the constraint reads into one partition. A width-1
  // non-constant expression always contains at least one read, but guard
  // with a private node so a read-free constraint still owns a partition.
  const auto& reads = cached_reads(c);
  std::uint32_t node = kNoNode;
  for (const auto& r : reads) {
    const std::uint32_t n = node_for_site(site_key(r), site_content_id(r));
    node = node == kNoNode ? n : union_nodes(node, n);
  }
  if (node == kNoNode) {
    node = static_cast<std::uint32_t>(uf_parent_.size());
    uf_parent_.push_back(node);
    uf_size_.push_back(1);
    region_id_.push_back(mixed);  // read-free: a private one-off region
  }
  constraint_node_.push_back(node);
  return true;
}

bool ConstraintSet::contains(const ExprRef& c) const {
  return present_.count(c.get()) != 0;
}

ConstraintSet::Slice ConstraintSet::slice(const ExprRef& query) const {
  Slice out;
  out.merged = ~std::uint64_t{0};

  // Roots reached from the query's read sites. Queries touch a handful of
  // partitions at most, so a linear small-vector membership test beats a
  // hash set here.
  std::vector<std::uint32_t> roots;
  for (const auto& r : cached_reads(query)) {
    const auto it = site_node_.find(site_key(r));
    if (it == site_node_.end()) {
      // Unconstrained site: no partition yet, but it will join the merged
      // partition once the query is added.
      out.merged = std::min(out.merged, site_content_id(r));
      continue;
    }
    const std::uint32_t root = find_root(it->second);
    out.merged = std::min(out.merged, region_id_[root]);
    if (std::find(roots.begin(), roots.end(), root) == roots.end())
      roots.push_back(root);
  }
  if (out.merged == ~std::uint64_t{0}) out.merged = 0;  // read-free query
  if (roots.empty()) return out;

  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const std::uint32_t root = find_root(constraint_node_[i]);
    if (std::find(roots.begin(), roots.end(), root) != roots.end())
      out.constraints.push_back(constraints_[i]);
  }
  out.partitions.reserve(roots.size());
  for (const std::uint32_t root : roots)
    out.partitions.push_back(region_id_[root]);
  std::sort(out.partitions.begin(), out.partitions.end());
  out.partitions.erase(
      std::unique(out.partitions.begin(), out.partitions.end()),
      out.partitions.end());
  return out;
}

ConstraintSet::Slice ConstraintSet::whole() const {
  Slice out;
  out.constraints = constraints_;
  std::vector<std::uint32_t> roots;
  for (const std::uint32_t n : constraint_node_) {
    const std::uint32_t root = find_root(n);
    if (std::find(roots.begin(), roots.end(), root) == roots.end())
      roots.push_back(root);
  }
  out.partitions.reserve(roots.size());
  for (const std::uint32_t root : roots)
    out.partitions.push_back(region_id_[root]);
  std::sort(out.partitions.begin(), out.partitions.end());
  out.partitions.erase(
      std::unique(out.partitions.begin(), out.partitions.end()),
      out.partitions.end());
  return out;
}

std::size_t ConstraintSet::num_partitions() const {
  std::vector<std::uint32_t> roots;
  for (const std::uint32_t n : constraint_node_) {
    const std::uint32_t root = find_root(n);
    if (std::find(roots.begin(), roots.end(), root) == roots.end())
      roots.push_back(root);
  }
  return roots.size();
}

}  // namespace pbse
