#include "solver/constraint_set.h"

#include <cassert>

namespace pbse {

bool ConstraintSet::add(const ExprRef& c) {
  assert(c->width() == 1);
  if (c->is_true()) return true;
  if (c->is_false()) return false;
  if (!present_.insert(c.get()).second) return true;
  constraints_.push_back(c);
  // XOR-combining keeps the hash order-insensitive; multiply-mix first so
  // equal-hash constraints don't cancel.
  std::uint64_t h = c->hash();
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  hash_ ^= h;
  return true;
}

bool ConstraintSet::contains(const ExprRef& c) const {
  return present_.count(c.get()) != 0;
}

}  // namespace pbse
