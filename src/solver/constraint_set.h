// Path-constraint container: an ordered, deduplicated set of width-1
// expressions, with an incremental hash used as a cache key.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "expr/expr.h"

namespace pbse {

/// The conjunction of branch conditions accumulated along one path.
/// Value type: copied on state fork (the ExprRefs themselves are shared).
class ConstraintSet {
 public:
  /// Adds `c` (width 1). Trivially-true constraints and duplicates are
  /// dropped. Returns false iff `c` is the literal false constant (caller
  /// should kill the state).
  bool add(const ExprRef& c);

  const std::vector<ExprRef>& constraints() const { return constraints_; }
  std::size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  /// Order-insensitive hash over the contained constraints, usable as a
  /// cache key together with a query hash.
  std::uint64_t hash() const { return hash_; }

  /// True if `c` is syntactically present.
  bool contains(const ExprRef& c) const;

 private:
  std::vector<ExprRef> constraints_;
  /// Hash-consing makes structural equality pointer equality, so presence
  /// checks are a pointer-set lookup.
  std::unordered_set<const Expr*> present_;
  std::uint64_t hash_ = 0x243f6a8885a308d3ULL;
};

}  // namespace pbse
