// Path-constraint container: an ordered, deduplicated set of width-1
// expressions, with an incremental hash used as a cache key and a
// PERSISTENT independence partition maintained incrementally.
//
// Every constraint reads a set of (array, byte-index) sites; two
// constraints are dependent iff they are transitively connected through
// shared sites. The set maintains a union-find over sites updated on
// add(), so the solver's independence slicing is "collect the partitions
// the query touches" (one find() per query read + one find() per
// constraint) instead of the old O(constraints × reads) closure per query.
//
// Each partition carries a stable REGION ID: the minimum content hash of
// its member sites (array name+size and byte index — never pointers). The
// id identifies the input region a partition constrains, and — unlike a
// hash of the partition's constraints — survives the partition growing as
// the path adds constraints, so partial results filed under it (cached
// models, UNSAT cores) stay reachable for later queries over the same
// bytes. Ids are content-stable across campaigns, which is what lets the
// sharded cross-campaign cache share partition-keyed partial results.
// Reuse stays sound without any content check in the key: cached models
// are re-verified by evaluation, and UNSAT cores carry their constraints'
// content hashes, checked by subset against the current list.
//
// The set stays a plain value type: state forks copy the vectors/maps and
// keep sharing the ExprRefs. Not thread-safe (one state, one thread) —
// find() performs path compression under `mutable`.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/expr.h"

namespace pbse {

/// Multiply-mix applied to a constraint's structural hash before any
/// order-insensitive XOR combination. Shared by the set hash, the solver's
/// cache keys and the partition hashes so the three stay algebraically
/// consistent (prefix-hash = list-hash XOR mixed(query)).
inline std::uint64_t mix_constraint_hash(std::uint64_t h) {
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

/// The conjunction of branch conditions accumulated along one path.
/// Value type: copied on state fork (the ExprRefs themselves are shared).
class ConstraintSet {
 public:
  /// Adds `c` (width 1). Trivially-true constraints and duplicates are
  /// dropped. Returns false iff `c` is the literal false constant (caller
  /// should kill the state). Unions the partitions of every site `c`
  /// reads.
  bool add(const ExprRef& c);

  const std::vector<ExprRef>& constraints() const { return constraints_; }
  std::size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  /// Order-insensitive hash over the contained constraints, usable as a
  /// cache key together with a query hash.
  std::uint64_t hash() const { return hash_; }

  /// The contained constraints' mixed hashes in ascending order, maintained
  /// incrementally on add(). This is the representation UNSAT cores and
  /// interpolants are expressed in: "core c subsumes this set" is one
  /// std::includes over the two sorted vectors, with no per-probe sorting.
  const std::vector<std::uint64_t>& sorted_hashes() const {
    return sorted_hashes_;
  }

  /// True if `c` is syntactically present.
  bool contains(const ExprRef& c) const;

  /// An independence slice: the constraints connected to a query plus the
  /// region ids of the partitions they form.
  struct Slice {
    /// Connected constraints, insertion order preserved.
    std::vector<ExprRef> constraints;
    /// Sorted, distinct region ids of the touched partitions — the keys
    /// under which the solver's counterexample store files partial
    /// results.
    std::vector<std::uint64_t> partitions;
    /// The region id the touched partitions will carry once the query is
    /// added to the set: the min over the touched partitions' ids AND the
    /// query's previously-unconstrained sites. Valid for slice() only
    /// (whole() has no query); equals the partitions' min when the query
    /// introduces no fresh sites.
    std::uint64_t merged = 0;
  };

  /// The constraints transitively connected to `query` through shared
  /// read sites (the classic independence slice), plus their partition
  /// region ids. A query whose sites are all unconstrained yields an
  /// empty constraint list (but still a `merged` id for its fresh sites).
  Slice slice(const ExprRef& query) const;

  /// Every constraint with every partition region id — what solve_all
  /// works on.
  Slice whole() const;

  /// Number of distinct independence partitions.
  std::size_t num_partitions() const;

 private:
  static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

  std::uint32_t find_root(std::uint32_t n) const;
  /// Node for a site key, created on demand with the given region id.
  std::uint32_t node_for_site(std::uint64_t site, std::uint64_t region_id);
  /// Unions the partitions of `a` and `b`, returns the surviving root.
  std::uint32_t union_nodes(std::uint32_t a, std::uint32_t b);

  std::vector<ExprRef> constraints_;
  /// Hash-consing makes structural equality pointer equality, so presence
  /// checks are a pointer-set lookup.
  std::unordered_set<const Expr*> present_;
  std::uint64_t hash_ = 0x243f6a8885a308d3ULL;
  /// Mixed constraint hashes, kept sorted (sorted-insert on add; adds are
  /// far rarer than the block-entry subsumption probes that read this).
  std::vector<std::uint64_t> sorted_hashes_;

  // --- Persistent independence partition ---------------------------------
  /// (array pointer, index) site key -> union-find node.
  std::unordered_map<std::uint64_t, std::uint32_t> site_node_;
  /// Union-find parent links; mutable so const find() can path-compress
  /// (pure cache mutation, single-threaded by the state contract above).
  mutable std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint32_t> uf_size_;
  /// Stable region id (min member-site content hash); valid at roots.
  std::vector<std::uint64_t> region_id_;
  /// One member node per constraint (its first read site).
  std::vector<std::uint32_t> constraint_node_;
};

}  // namespace pbse
