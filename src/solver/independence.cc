#include "solver/independence.h"

namespace pbse {

std::vector<ExprRef> independent_slice(const ConstraintSet& cs,
                                       const ExprRef& query) {
  return cs.slice(query).constraints;
}

}  // namespace pbse
