#include "solver/independence.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace pbse {

namespace {
std::uint64_t site_key(const ReadSite& site) {
  return (reinterpret_cast<std::uintptr_t>(site.array.get()) << 20) ^
         site.index;
}
}  // namespace

std::vector<ExprRef> independent_slice(const ConstraintSet& cs,
                                       const ExprRef& query) {
  const auto& all = cs.constraints();
  // Read sites per constraint (memoized globally per expression).
  std::vector<std::vector<std::uint64_t>> sites(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& reads = cached_reads(all[i]);
    sites[i].reserve(reads.size());
    for (const auto& r : reads) sites[i].push_back(site_key(r));
  }

  // Worklist: start from the query's sites, pull in constraints that touch
  // any reached site, then their sites, until fixpoint.
  std::unordered_set<std::uint64_t> reached;
  {
    std::vector<ReadSite> reads;
    collect_reads(query, reads);
    for (const auto& r : reads) reached.insert(site_key(r));
  }

  std::vector<bool> taken(all.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (taken[i]) continue;
      bool touches = false;
      for (std::uint64_t s : sites[i]) {
        if (reached.count(s) != 0) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      taken[i] = true;
      changed = true;
      for (std::uint64_t s : sites[i]) reached.insert(s);
    }
  }

  std::vector<ExprRef> out;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (taken[i]) out.push_back(all[i]);
  return out;
}

}  // namespace pbse
