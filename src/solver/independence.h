// Constraint-independence slicing (KLEE's --use-independent-solver analog).
//
// A query only depends on the constraints that (transitively) share symbolic
// input bytes with it; the rest can be dropped before solving. On the
// file-parsing workloads this typically shrinks hundreds of path constraints
// down to a handful.
//
// Since the incremental-solver PR the partition structure is maintained
// PERSISTENTLY by ConstraintSet (a union-find updated on add(); see
// constraint_set.h), so slicing is a partition collection rather than a
// per-query transitive closure. This function survives as the convenience
// wrapper used by tests and ablations; the solver facade calls
// ConstraintSet::slice() directly to also obtain the partition hashes.
#pragma once

#include <vector>

#include "expr/expr.h"
#include "solver/constraint_set.h"

namespace pbse {

/// Returns the subset of `cs` transitively connected to `query` through
/// shared (array, index) read sites. Order of surviving constraints is
/// preserved.
std::vector<ExprRef> independent_slice(const ConstraintSet& cs,
                                       const ExprRef& query);

}  // namespace pbse
