// Constraint-independence slicing (KLEE's --use-independent-solver analog).
//
// A query only depends on the constraints that (transitively) share symbolic
// input bytes with it; the rest can be dropped before solving. On the
// file-parsing workloads this typically shrinks hundreds of path constraints
// down to a handful.
#pragma once

#include <vector>

#include "expr/expr.h"
#include "solver/constraint_set.h"

namespace pbse {

/// Returns the subset of `cs` transitively connected to `query` through
/// shared (array, index) read sites. Order of surviving constraints is
/// preserved.
std::vector<ExprRef> independent_slice(const ConstraintSet& cs,
                                       const ExprRef& query);

}  // namespace pbse
