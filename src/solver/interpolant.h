// Per-location interpolants: weakened constraint summaries that prove an
// incoming execution state redundant at basic-block entry without a solver
// query (the TracerX direction, grafted onto this engine's UNSAT-core
// machinery — see DESIGN.md §10).
//
// Two entry classes, both stored as sorted mixed constraint hashes (the
// same representation CexStore uses for UNSAT cores, so subsumption is one
// std::includes per candidate):
//
//  * UNSAT interpolants, keyed by the GLOBAL BASIC BLOCK a query was issued
//    from. The solver's publication helper files every UNSAT core here as
//    well as into the counterexample store. A state whose constraint set
//    is a superset of a filed core is on an unsatisfiable path — it can
//    execute nothing, so it is terminated for free. Live symbolic states
//    carry a satisfying model and never match; the payoff is seedStates
//    whose flipped branch constraint is infeasible: the first one pays the
//    validation query, every later superset at the same block is killed by
//    hash comparison alone.
//
//  * Barren interpolants, keyed by GLOBAL BASIC BLOCK. When a state dies
//    with its exploration exhausted, the path condition it held ON ENTRY
//    to each recently-entered block (an entry-time prefix of its
//    append-only constraint list — a weakening of the full death-time
//    condition) is filed under that block. A later state whose constraint
//    set is a SUPERSET of a filed prefix syntactically implies it: it is
//    attempting a restriction of a suffix that already went nowhere. This
//    weakening is heuristic (an entry prefix, not a weakest precondition
//    — the dead state's memory is not part of the key), so the executor
//    additionally requires the probed state to have stalled on coverage
//    before it may be killed by this class, and the subsumption ablation
//    gates the net effect on covered blocks.
//
// Entries are per-campaign (single-threaded, deterministic). Both maps are
// bounded: per-key lists via cex_detail::bounded_add_core (small cores
// first — they subsume the most supersets), and the key count by a
// deterministic wholesale clear, the same policy as the solver's domain
// memo.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "solver/cache.h"

namespace pbse {

class InterpolantTable {
 public:
  /// Per-key core/summary bound (mirrors CexStore::kMaxPerKey).
  static constexpr std::size_t kMaxPerKey = 8;
  /// Keys retained per map before a deterministic wholesale clear.
  static constexpr std::size_t kMaxKeys = 1 << 16;

  /// Files an UNSAT core (sorted mixed hashes) proved by a query issued
  /// from global block `location`.
  void add_unsat(std::uint64_t location,
                 const std::vector<std::uint64_t>& core) {
    add(unsat_, location, core);
  }

  /// True iff a filed core at `location` is a subset of `hashes` (which
  /// must be ascending): the constraint set is provably UNSAT.
  bool unsat_subsumes(std::uint64_t location,
                      const std::vector<std::uint64_t>& hashes) const {
    return subsumes(unsat_, location, hashes);
  }

  /// Files a barren entry-prefix summary (sorted mixed hashes) under the
  /// global block `location` the dead state entered holding it.
  void add_barren(std::uint64_t location,
                  const std::vector<std::uint64_t>& hashes) {
    add(barren_, location, hashes);
  }

  /// True iff a barren summary at `location` is a subset of `hashes`.
  bool barren_subsumes(std::uint64_t location,
                       const std::vector<std::uint64_t>& hashes) const {
    return subsumes(barren_, location, hashes);
  }

  std::size_t num_unsat_locations() const { return unsat_.size(); }
  std::size_t num_barren_keys() const { return barren_.size(); }
  void clear() {
    unsat_.clear();
    barren_.clear();
  }

  using Map =
      std::unordered_map<std::uint64_t, std::vector<std::vector<std::uint64_t>>>;

  /// Raw maps, for snapshot/restore (src/serialize). Restore writes
  /// per-key lists verbatim — list order is eviction state, and the
  /// kMaxKeys wholesale-clear trigger depends on exact key counts.
  const Map& raw_unsat() const { return unsat_; }
  const Map& raw_barren() const { return barren_; }
  std::vector<std::vector<std::uint64_t>>& mutable_unsat(std::uint64_t key) {
    return unsat_[key];
  }
  std::vector<std::vector<std::uint64_t>>& mutable_barren(std::uint64_t key) {
    return barren_[key];
  }

 private:

  static void add(Map& map, std::uint64_t key,
                  const std::vector<std::uint64_t>& entry) {
    if (map.size() >= kMaxKeys && map.find(key) == map.end())
      map.clear();  // deterministic wholesale reset, like the domain memo
    cex_detail::bounded_add_core(map[key], entry, kMaxPerKey);
  }

  static bool subsumes(const Map& map, std::uint64_t key,
                       const std::vector<std::uint64_t>& hashes) {
    const auto it = map.find(key);
    if (it == map.end()) return false;
    for (const auto& core : it->second) {
      if (core.size() > hashes.size()) continue;
      if (std::includes(hashes.begin(), hashes.end(), core.begin(),
                        core.end()))
        return true;
    }
    return false;
  }

  Map unsat_;
  Map barren_;
};

}  // namespace pbse
