#include "solver/interval.h"

#include "expr/evaluator.h"

namespace pbse {

std::vector<std::uint8_t> ByteDomain::values() const {
  std::vector<std::uint8_t> out;
  out.reserve(allowed_.count());
  for (unsigned v = 0; v < 256; ++v)
    if (allowed_[v]) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

namespace {

// Recursive matcher for byte assemblies. `shift` is the bit position the
// current subexpression occupies within the whole assembled value.
// Depth-capped: real assemblies are at most a few levels deep, and the
// cap keeps kilonode accumulator chains off the C++ stack.
bool match_assembly_impl(const ExprRef& e, unsigned shift,
                         std::vector<ByteLane>& lanes, unsigned depth = 0) {
  if (depth > 64) return false;
  switch (e->kind()) {
    case ExprKind::kRead:
      lanes.push_back(ByteLane{e->array(), e->read_index(), shift});
      return true;
    case ExprKind::kZExt:
      return match_assembly_impl(e->kid(0), shift, lanes, depth + 1);
    case ExprKind::kConcat:
      return match_assembly_impl(e->kid(1), shift, lanes, depth + 1) &&
             match_assembly_impl(e->kid(0), shift + e->kid(1)->width(), lanes,
                                 depth + 1);
    case ExprKind::kShl: {
      if (!e->kid(1)->is_constant()) return false;
      const unsigned amount =
          static_cast<unsigned>(e->kid(1)->constant_value());
      return match_assembly_impl(e->kid(0), shift + amount, lanes, depth + 1);
    }
    case ExprKind::kOr:
    case ExprKind::kAdd:  // Or and Add coincide when lanes don't overlap
      return match_assembly_impl(e->kid(0), shift, lanes, depth + 1) &&
             match_assembly_impl(e->kid(1), shift, lanes, depth + 1);
    default:
      return false;
  }
}

bool lanes_disjoint(const std::vector<ByteLane>& lanes) {
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    for (std::size_t j = i + 1; j < lanes.size(); ++j) {
      // Overlapping bit ranges would break the per-lane decomposition.
      const unsigned a0 = lanes[i].bit_offset, a1 = a0 + 8;
      const unsigned b0 = lanes[j].bit_offset, b1 = b0 + 8;
      if (a0 < b1 && b0 < a1) return false;
      // The same byte appearing twice is also not a plain assembly.
      if (lanes[i].array.get() == lanes[j].array.get() &&
          lanes[i].index == lanes[j].index)
        return false;
    }
  }
  return true;
}

}  // namespace

bool match_byte_assembly(const ExprRef& e, std::vector<ByteLane>& lanes) {
  lanes.clear();
  if (!match_assembly_impl(e, 0, lanes)) return false;
  return !lanes.empty() && lanes_disjoint(lanes);
}

namespace {

/// Pins every lane of an assembly to the corresponding byte of `value`.
/// Bits of `value` not covered by any lane must be zero (the assembly
/// cannot produce them); otherwise the equality is UNSAT.
bool pin_assembly(const ExprRef& e, std::uint64_t value, DomainMap& domains,
                  bool& unsat) {
  std::vector<ByteLane> lanes;
  if (!match_byte_assembly(e, lanes)) return false;
  std::uint64_t covered = 0;
  for (const auto& lane : lanes)
    covered |= std::uint64_t{0xff} << lane.bit_offset;
  covered = truncate_to_width(covered, e->width());
  if ((value & ~covered) != 0) {
    unsat = true;
    return true;
  }
  for (const auto& lane : lanes) {
    const auto byte = static_cast<std::uint8_t>((value >> lane.bit_offset) & 0xff);
    ByteDomain& d = domains.domain(lane.array, lane.index);
    if (!d.allows(byte)) {
      unsat = true;
      return true;
    }
    d.pin(byte);
  }
  return true;
}

}  // namespace

bool pin_equality(const ExprRef& e, std::uint64_t value, DomainMap& domains,
                  bool& unsat, unsigned depth) {
  if (depth > 512) return false;  // deep peel chains: leave to the search
  value = truncate_to_width(value, e->width());
  switch (e->kind()) {
    case ExprKind::kConstant:
      if (e->constant_value() != value) unsat = true;
      return true;
    case ExprKind::kRead: {
      const auto byte = static_cast<std::uint8_t>(value);
      ByteDomain& d = domains.domain(e->array(), e->read_index());
      if (!d.allows(byte)) {
        unsat = true;
        return true;
      }
      d.pin(byte);
      return true;
    }
    case ExprKind::kZExt: {
      const ExprRef& src = e->kid(0);
      if (src->width() < 64 && value >> src->width() != 0) {
        unsat = true;
        return true;
      }
      return pin_equality(src, value, domains, unsat, depth + 1);
    }
    case ExprKind::kSExt: {
      const ExprRef& src = e->kid(0);
      const std::uint64_t low = truncate_to_width(value, src->width());
      if (truncate_to_width(
              static_cast<std::uint64_t>(sign_extend(low, src->width())),
              e->width()) != value) {
        unsat = true;
        return true;
      }
      return pin_equality(src, low, domains, unsat, depth + 1);
    }
    case ExprKind::kConcat: {
      const ExprRef& hi = e->kid(0);
      const ExprRef& lo = e->kid(1);
      bool hi_unsat = false, lo_unsat = false;
      const bool ok =
          pin_equality(hi, value >> lo->width(), domains, hi_unsat,
                       depth + 1) &&
          pin_equality(lo, truncate_to_width(value, lo->width()), domains,
                       lo_unsat, depth + 1);
      unsat = unsat || hi_unsat || lo_unsat;
      return ok;
    }
    case ExprKind::kAdd: {
      // Canonicalization puts a constant operand on the right.
      if (e->kid(1)->is_constant())
        return pin_equality(e->kid(0), value - e->kid(1)->constant_value(),
                            domains, unsat);
      return pin_assembly(e, value, domains, unsat);
    }
    case ExprKind::kShl:
    case ExprKind::kMul: {
      if (!e->kid(1)->is_constant()) return false;
      std::uint64_t m = e->kid(1)->constant_value();
      unsigned k = 0;
      if (e->kind() == ExprKind::kShl) {
        k = static_cast<unsigned>(m);
      } else {
        if (m == 0 || (m & (m - 1)) != 0) return false;  // not a power of 2
        while ((m >>= 1) != 0) ++k;
      }
      if (k >= e->width()) {
        if (value != 0) unsat = true;
        return true;
      }
      // Only sound when no solution bits are shifted out: require the
      // operand to be a zero-extension narrower than width - k.
      const ExprRef& x = e->kid(0);
      if (x->kind() != ExprKind::kZExt ||
          x->kid(0)->width() + k > e->width())
        return false;
      if (truncate_to_width(value, k) != 0) {
        unsat = true;
        return true;
      }
      return pin_equality(x, value >> k, domains, unsat, depth + 1);
    }
    case ExprKind::kOr:
      return pin_assembly(e, value, domains, unsat);
    default:
      return false;
  }
}

namespace {

/// Computes one node's range assuming kid ranges are memoized (iterative
/// post-order driver below; chains outgrow the C++ stack).
URange interval_node(const ExprRef& e, const DomainMap& domains,
                     std::unordered_map<const Expr*, URange>& memo) {
  auto interval_of_memo = [&memo](const ExprRef& kid,
                                  const DomainMap&) -> URange {
    return memo.at(kid.get());
  };
  (void)interval_of_memo;
  const std::uint64_t full =
      truncate_to_width(~std::uint64_t{0}, e->width());
  const URange top{0, full};
  switch (e->kind()) {
    case ExprKind::kConstant:
      return {e->constant_value(), e->constant_value()};
    case ExprKind::kRead: {
      const ByteDomain* d = domains.find(e->array().get(), e->read_index());
      if (d == nullptr || d->empty()) return {0, 255};
      const auto values = d->values();
      return {values.front(), values.back()};
    }
    case ExprKind::kZExt:
      return memo.at(e->kid(0).get());
    case ExprKind::kConcat: {
      const URange hi = memo.at(e->kid(0).get());
      const URange lo = memo.at(e->kid(1).get());
      const unsigned w = e->kid(1)->width();
      return {(hi.lo << w) | lo.lo, (hi.hi << w) | lo.hi};
    }
    case ExprKind::kAdd: {
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      // Overflow at width w -> widen to full range.
      if (a.hi > full - b.hi) return top;
      return {a.lo + b.lo, a.hi + b.hi};
    }
    case ExprKind::kMul: {
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      if (b.hi != 0 && a.hi > full / b.hi) return top;
      return {a.lo * b.lo, a.hi * b.hi};
    }
    case ExprKind::kShl: {
      if (!e->kid(1)->is_constant()) return top;
      const unsigned k = static_cast<unsigned>(e->kid(1)->constant_value());
      const URange a = memo.at(e->kid(0).get());
      if (k >= e->width() || a.hi > (full >> k)) return top;
      return {a.lo << k, a.hi << k};
    }
    case ExprKind::kLShr: {
      if (!e->kid(1)->is_constant()) return top;
      const unsigned k = static_cast<unsigned>(e->kid(1)->constant_value());
      const URange a = memo.at(e->kid(0).get());
      if (k >= e->width()) return {0, 0};
      return {a.lo >> k, a.hi >> k};
    }
    case ExprKind::kOr: {
      // Disjoint-lane Or is bounded by the sum; generic Or by bitwise max.
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      const std::uint64_t hi =
          (a.hi > full - b.hi) ? full : a.hi + b.hi;
      return {std::max(a.lo, b.lo), hi};
    }
    case ExprKind::kAnd: {
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      return {0, std::min(a.hi, b.hi)};
    }
    case ExprKind::kUDiv: {
      if (!e->kid(1)->is_constant() || e->kid(1)->constant_value() == 0)
        return top;
      const URange a = memo.at(e->kid(0).get());
      const std::uint64_t d = e->kid(1)->constant_value();
      return {a.lo / d, a.hi / d};
    }
    case ExprKind::kEq: {
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      if (a.hi < b.lo || b.hi < a.lo) return {0, 0};  // disjoint: never equal
      if (a.lo == a.hi && b.lo == b.hi && a.lo == b.lo) return {1, 1};
      return {0, 1};
    }
    case ExprKind::kUlt: {
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      if (a.hi < b.lo) return {1, 1};
      if (a.lo >= b.hi) return {0, 0};
      return {0, 1};
    }
    case ExprKind::kUle: {
      const URange a = memo.at(e->kid(0).get());
      const URange b = memo.at(e->kid(1).get());
      if (a.hi <= b.lo) return {1, 1};
      if (a.lo > b.hi) return {0, 0};
      return {0, 1};
    }
    case ExprKind::kXor: {
      // Xor with constant true is logical not (the common width-1 case).
      if (e->width() == 1) {
        const URange a = memo.at(e->kid(0).get());
        if (e->kid(1)->is_true()) {
          if (a.lo == a.hi) return {1 - a.lo, 1 - a.lo};
          return {0, 1};
        }
      }
      return top;
    }
    default:
      return top;
  }
}

}  // namespace

URange interval_of(const ExprRef& e, const DomainMap& domains) {
  // Iterative post-order with a per-call memo: the memo makes shared DAG
  // nodes linear (rotate patterns would otherwise be exponential), and the
  // explicit stack keeps kilonode-deep chains off the C++ stack.
  std::unordered_map<const Expr*, URange> memo;
  std::vector<std::pair<const Expr*, bool>> stack;
  stack.emplace_back(e.get(), false);
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(node) != 0) continue;
    // Re-wrap in a shared_ptr-compatible handle for interval_node: node
    // pointers come from interned ExprRefs, which stay alive.
    if (expanded) {
      // interval_node only consults memo for kids; give it a borrowed ref.
      const ExprRef borrowed(std::shared_ptr<const Expr>(), node);
      memo.emplace(node, interval_node(borrowed, domains, memo));
      continue;
    }
    stack.emplace_back(node, true);
    for (std::size_t i = 0; i < node->num_kids(); ++i) {
      const Expr* kid = node->kid(i).get();
      if (memo.count(kid) == 0) stack.emplace_back(kid, false);
    }
  }
  return memo.at(e.get());
}

void prune_ule_assembly(const ExprRef& assembly, std::uint64_t bound,
                        DomainMap& domains) {
  std::vector<ByteLane> lanes;
  if (!match_byte_assembly(assembly, lanes)) return;
  for (const auto& lane : lanes) {
    const std::uint64_t lane_max = bound >> lane.bit_offset;
    if (lane_max >= 255) continue;
    ByteDomain& d = domains.domain(lane.array, lane.index);
    std::bitset<256> keep;
    for (unsigned v = 0; v <= lane_max; ++v) keep.set(v);
    d.intersect(keep);
  }
}

bool propagate_domains(const std::vector<ExprRef>& constraints,
                       DomainMap& domains, std::uint64_t& cost_out) {
  // Two rounds so that pins discovered by later constraints feed back into
  // the interval checks of earlier ones (cheap fixpoint approximation).
  for (int round = 0; round < 2; ++round) {
    for (const auto& c : constraints) {
      cost_out += expr_cost(c);
      const URange range = interval_of(c, domains);
      if (range.hi == 0) return false;  // constraint can never hold
      // Upper-bound pruning for assembly <= const / assembly < const.
      if (c->kind() == ExprKind::kUle || c->kind() == ExprKind::kUlt) {
        const ExprRef& lhs = c->kid(0);
        const ExprRef& rhs = c->kid(1);
        if (rhs->is_constant()) {
          std::uint64_t bound = rhs->constant_value();
          if (c->kind() == ExprKind::kUlt) {
            if (bound == 0) return false;
            bound -= 1;
          }
          prune_ule_assembly(lhs, bound, domains);
        }
      }
    }
    if (domains.any_empty()) return false;
  }
  for (const auto& c : constraints) {
    std::vector<ReadSite> reads;
    collect_reads(c, reads);

    // Propagator 2: Eq(assembly, constant) pins every lane.
    if (c->kind() == ExprKind::kEq) {
      const ExprRef& lhs = c->kid(0);
      const ExprRef& rhs = c->kid(1);
      const ExprRef* assembled = nullptr;
      std::uint64_t value = 0;
      if (rhs->is_constant()) {
        assembled = &lhs;
        value = rhs->constant_value();
      } else if (lhs->is_constant()) {
        assembled = &rhs;
        value = lhs->constant_value();
      }
      if (assembled != nullptr) {
        bool unsat = false;
        cost_out += 4;
        if (pin_equality(*assembled, value, domains, unsat)) {
          if (unsat) return false;
          continue;
        }
      }
    }

    // Propagator 1: single-byte constraints enumerated exactly.
    if (reads.size() == 1) {
      const ReadSite& site = reads[0];
      ByteDomain& d = domains.domain(site.array, site.index);
      Assignment probe;
      auto& bytes = probe.mutable_bytes(site.array);
      std::bitset<256> feasible;
      cost_out += 256;
      for (unsigned v = 0; v < 256; ++v) {
        if (!d.allows(static_cast<std::uint8_t>(v))) continue;
        bytes[site.index] = static_cast<std::uint8_t>(v);
        if (evaluate_bool(c, probe)) feasible.set(v);
      }
      d.intersect(feasible);
      if (d.empty()) return false;
    }
  }
  return !domains.any_empty();
}

bool propagate_delta(const std::vector<ExprRef>& prefix,
                     const std::vector<ExprRef>& added, DomainMap& domains,
                     std::uint64_t& cost_out) {
  if (!propagate_domains(added, domains, cost_out)) return false;
  // One interval pass over the prefix: the added constraints' pins may
  // contradict an already-propagated constraint even though each byte
  // domain is individually non-empty.
  for (const auto& c : prefix) {
    cost_out += expr_cost(c);
    if (interval_of(c, domains).hi == 0) return false;
  }
  return !domains.any_empty();
}

}  // namespace pbse
