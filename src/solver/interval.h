// Per-byte domain propagation.
//
// Two cheap, exact propagators run before the backtracking search:
//   1. Unit-byte enumeration: a constraint whose reads all hit ONE byte is
//      evaluated for all 256 values of that byte; infeasible values are
//      removed from the byte's domain. This nails magic-byte checks.
//   2. Assembled-integer equality: Eq(<concat/shift-or chain of distinct
//      byte reads>, constant) pins every participating byte directly.
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace pbse {

/// The feasible value set of one symbolic input byte.
class ByteDomain {
 public:
  ByteDomain() { allowed_.set(); }

  bool allows(std::uint8_t v) const { return allowed_[v]; }
  void remove(std::uint8_t v) { allowed_.reset(v); }
  /// Restricts the domain to exactly {v}.
  void pin(std::uint8_t v) {
    allowed_.reset();
    allowed_.set(v);
  }
  void intersect(const std::bitset<256>& other) { allowed_ &= other; }

  std::size_t size() const { return allowed_.count(); }
  bool empty() const { return allowed_.none(); }

  /// Values in ascending order.
  std::vector<std::uint8_t> values() const;

  /// Word-level access for snapshot/restore (src/serialize): the 256-bit
  /// set as 4 little-endian u64 words (word w holds values [64w, 64w+64)).
  std::array<std::uint64_t, 4> words() const {
    std::array<std::uint64_t, 4> w{};
    for (unsigned v = 0; v < 256; ++v)
      if (allowed_[v]) w[v / 64] |= std::uint64_t{1} << (v % 64);
    return w;
  }
  void set_words(const std::array<std::uint64_t, 4>& w) {
    allowed_.reset();
    for (unsigned v = 0; v < 256; ++v)
      if ((w[v / 64] >> (v % 64)) & 1) allowed_.set(v);
  }

 private:
  std::bitset<256> allowed_;
};

/// Domains for all bytes touched by a query, keyed by (array, index).
/// Plain value type: the solver memoizes propagated maps per independence
/// partition and seeds later queries from a copy.
class DomainMap {
 public:
  /// One byte's entry. Carries the (array, index) identity alongside the
  /// domain so the map can be serialized: the pointer-derived hash key is
  /// process-local, but a slot's identity is stable and lets a restored
  /// campaign rebuild the map against its own canonical arrays.
  struct Slot {
    ArrayRef array;
    std::uint32_t index = 0;
    ByteDomain dom;
  };

  ByteDomain& domain(const ArrayRef& array, std::uint32_t index) {
    Slot& s = domains_[key(array.get(), index)];
    if (s.array == nullptr) {
      s.array = array;
      s.index = index;
    }
    return s.dom;
  }
  const ByteDomain* find(const Array* array, std::uint32_t index) const {
    auto it = domains_.find(key(array, index));
    return it == domains_.end() ? nullptr : &it->second.dom;
  }
  bool any_empty() const {
    for (const auto& [k, s] : domains_)
      if (s.dom.empty()) return true;
    return false;
  }
  /// Number of bytes with an explicit domain (charging / bookkeeping).
  std::size_t size() const { return domains_.size(); }

  /// Raw slots, for snapshot (src/serialize). Unordered — the codec sorts
  /// by (array name, index) for a canonical encoding. Restore goes through
  /// domain(), which re-keys against the restored process's arrays.
  const std::unordered_map<std::uint64_t, Slot>& slots() const {
    return domains_;
  }

 private:
  static std::uint64_t key(const Array* array, std::uint32_t index) {
    return (reinterpret_cast<std::uintptr_t>(array) << 20) ^ index;
  }
  std::unordered_map<std::uint64_t, Slot> domains_;
};

/// Runs both propagators over `constraints`, refining `domains`.
/// Returns false if some byte's domain became empty (query is UNSAT).
/// `cost_out` is incremented by the number of expression evaluations spent
/// (the caller charges it to the virtual clock).
bool propagate_domains(const std::vector<ExprRef>& constraints,
                       DomainMap& domains, std::uint64_t& cost_out);

/// Incremental variant for the solver's per-partition domain memo:
/// `domains` already holds the fully propagated domains of `prefix`, and
/// only `added` is new. Propagates `added`, then re-checks the prefix
/// constraints' intervals once against the narrowed domains (so fresh pins
/// still refute stale constraints) WITHOUT re-running their per-byte
/// enumeration — that is the saving. Sound: domains only ever shrink, so
/// seeding from a prefix's propagation result over-approximates the
/// feasible set of the full list. Returns false when UNSAT is detected.
bool propagate_delta(const std::vector<ExprRef>& prefix,
                     const std::vector<ExprRef>& added, DomainMap& domains,
                     std::uint64_t& cost_out);

/// Pattern matcher for propagator 2: decomposes `e` into byte-granular
/// (read-site, byte-position) pairs if `e` is an assembly of distinct byte
/// reads via Concat / Shl+Or / ZExt. Returns true on success.
struct ByteLane {
  ArrayRef array;
  std::uint32_t index;     // byte index within the array
  unsigned bit_offset;     // position of this byte within the assembled value
};
bool match_byte_assembly(const ExprRef& e, std::vector<ByteLane>& lanes);

/// Recursive equality pinning: given the constraint `e == value`, peels
/// constant addends, power-of-two multipliers/shifts, zero/sign extensions
/// and concatenations down to byte-read lanes, pinning each lane's domain.
/// All decompositions are SOUND (a pin is only applied when the solution
/// is unique); patterns that would lose solutions are rejected.
///
/// Returns true if the constraint was fully decomposed (the caller may
/// skip other propagators for it). Sets `unsat` when the equality is
/// provably unsatisfiable (value outside the expression's range, non-zero
/// uncovered bits, misaligned multiplier, ...).
bool pin_equality(const ExprRef& e, std::uint64_t value, DomainMap& domains,
                  bool& unsat, unsigned depth = 0);

/// Conservative unsigned range of `e` under the current byte domains.
/// Guaranteed to contain every value `e` can take; overflowing operations
/// widen to the full width range. Used to refute infeasible inequality
/// guards (e.g. loop bounds) without search.
struct URange {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~std::uint64_t{0};
};
URange interval_of(const ExprRef& e, const DomainMap& domains);

/// Prunes the domains of assembly lanes under `assembly <= bound`
/// (each lane byte can be at most bound >> bit_offset). Sound: lanes are
/// disjoint and non-negative.
void prune_ule_assembly(const ExprRef& assembly, std::uint64_t bound,
                        DomainMap& domains);

}  // namespace pbse
