#include "solver/search_solver.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace pbse {

namespace {

struct Var {
  ArrayRef array;
  std::uint32_t index;
  std::vector<std::uint8_t> candidates;  // value order to try
  std::vector<std::size_t> closing;      // constraints fully assigned here
  std::vector<std::size_t> involved;     // constraints mentioning this var
};

std::uint64_t site_key(const Array* array, std::uint32_t index) {
  return (reinterpret_cast<std::uintptr_t>(array) << 20) ^ index;
}

}  // namespace

SolverResult backtracking_search(const std::vector<ExprRef>& constraints,
                                 DomainMap& domains, const Assignment* hint,
                                 bool hint_first, std::size_t candidate_cap,
                                 std::uint64_t max_nodes,
                                 std::uint64_t max_evals,
                                 std::uint64_t& cost_out,
                                 Assignment& model_out) {
  const std::uint64_t eval_limit = cost_out + max_evals;
  // Collect distinct variables (read sites) across all constraints.
  std::vector<Var> vars;
  std::unordered_map<std::uint64_t, std::size_t> var_of_site;
  std::vector<std::vector<std::size_t>> constraint_vars(constraints.size());
  for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
    std::vector<ReadSite> reads;
    collect_reads(constraints[ci], reads);
    assert(!reads.empty() && "constant constraints must be folded away");
    for (const auto& r : reads) {
      const std::uint64_t key = site_key(r.array.get(), r.index);
      auto it = var_of_site.find(key);
      if (it == var_of_site.end()) {
        it = var_of_site.emplace(key, vars.size()).first;
        vars.push_back(Var{r.array, r.index, {}, {}, {}});
      }
      constraint_vars[ci].push_back(it->second);
    }
  }

  if (vars.empty()) {
    // All constraints were constant-true (folded); trivially SAT.
    return SolverResult::kSat;
  }

  // Order variables: smallest domain first (most constrained). Stable so
  // ties keep discovery order (deterministic).
  std::vector<std::size_t> order(vars.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto domain_size = [&](std::size_t vi) {
    const ByteDomain* d = domains.find(vars[vi].array.get(), vars[vi].index);
    return d != nullptr ? d->size() : std::size_t{256};
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return domain_size(a) < domain_size(b);
                   });

  // position of each var in the assignment order
  std::vector<std::size_t> pos_of_var(vars.size());
  for (std::size_t p = 0; p < order.size(); ++p) pos_of_var[order[p]] = p;

  // A constraint is checkable once its last (deepest) variable is assigned;
  // every variable additionally forward-checks the constraints it appears
  // in via interval evaluation.
  for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
    std::size_t deepest = 0;
    for (std::size_t vi : constraint_vars[ci]) {
      deepest = std::max(deepest, pos_of_var[vi]);
      auto& inv = vars[vi].involved;
      if (inv.empty() || inv.back() != ci) inv.push_back(ci);
    }
    vars[order[deepest]].closing.push_back(ci);
  }

  // Candidate value order per variable: hint value first, then the
  // boundary values 0, 0xff, 1, 0x80, 0x7f, then the rest of the domain
  // ascending. Boundary-first ordering makes wraparound/overflow and
  // make-this-count-small queries cheap.
  for (auto& v : vars) {
    const ByteDomain* d = domains.find(v.array.get(), v.index);
    std::vector<std::uint8_t> dom =
        d != nullptr ? d->values() : [] {
          std::vector<std::uint8_t> all(256);
          for (unsigned i = 0; i < 256; ++i) all[i] = static_cast<std::uint8_t>(i);
          return all;
        }();
    if (dom.empty()) return SolverResult::kUnsat;
    std::vector<std::uint8_t> cand;
    cand.reserve(dom.size());
    auto push_unique = [&cand, &dom](std::uint8_t val) {
      if (!std::binary_search(dom.begin(), dom.end(), val)) return;
      if (std::find(cand.begin(), cand.end(), val) == cand.end())
        cand.push_back(val);
    };
    if (hint_first && hint != nullptr)
      push_unique(hint->byte(v.array.get(), v.index));
    for (std::uint8_t boundary : {std::uint8_t{0}, std::uint8_t{0xff},
                                  std::uint8_t{1}, std::uint8_t{0x80},
                                  std::uint8_t{0x7f}})
      push_unique(boundary);
    if (!hint_first && hint != nullptr)
      push_unique(hint->byte(v.array.get(), v.index));
    for (std::uint8_t val : dom) push_unique(val);
    if (candidate_cap > 0 && cand.size() > candidate_cap)
      cand.resize(candidate_cap);
    v.candidates = std::move(cand);
  }

  // Whole-assignment probes before the exponential search: for each probe
  // pattern, give every variable its pinned / boundary value and test all
  // constraints at once. Catches "make it huge" (overflow) and "make it
  // tiny" queries in O(#constraints).
  {
    Assignment probe;
    for (const auto& v : vars) probe.mutable_bytes(v.array);
    auto try_probe = [&](auto pick) -> bool {
      for (const auto& v : vars)
        probe.mutable_bytes(v.array)[v.index] = pick(v);
      for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
        cost_out += expr_cost(constraints[ci]);
        if (!evaluate_bool(constraints[ci], probe)) return false;
      }
      for (const auto& v : vars)
        model_out.mutable_bytes(v.array)[v.index] =
            probe.byte(v.array.get(), v.index);
      return true;
    };
    auto low = [](const Var& v) { return v.candidates.front(); };
    auto high = [](const Var& v) {
      // Largest allowed value (domain values are ascending in candidates'
      // tail; use the max of the candidate list).
      std::uint8_t m = 0;
      for (std::uint8_t c : v.candidates) m = std::max(m, c);
      return m;
    };
    auto zeroish = [](const Var& v) {
      for (std::uint8_t c : v.candidates)
        if (c == 0) return std::uint8_t{0};
      return v.candidates.front();
    };
    if (try_probe(low) || try_probe(high) || try_probe(zeroish))
      return SolverResult::kSat;
  }

  // The working assignment; bytes are written in place as the DFS descends.
  Assignment work;
  for (const auto& v : vars) work.mutable_bytes(v.array);

  // Forward checking: each assignment pins the variable's domain so that
  // interval evaluation of any involved constraint can refute a bad
  // SHALLOW value immediately instead of at the deepest variable.
  std::vector<ByteDomain> saved_domain(order.size());
  auto restore_path = [&](std::size_t up_to_depth) {
    for (std::size_t d = 0; d <= up_to_depth && d < order.size(); ++d) {
      Var& pv = vars[order[d]];
      domains.domain(pv.array, pv.index) = saved_domain[d];
    }
  };

  std::uint64_t nodes = 0;
  // Iterative DFS with an explicit choice stack.
  std::vector<std::size_t> choice(order.size(), 0);
  std::size_t depth = 0;
  saved_domain[0] = domains.domain(vars[order[0]].array,
                                   vars[order[0]].index);
  while (true) {
    if (depth == order.size()) {
      // Full assignment found and verified incrementally.
      for (const auto& v : vars) {
        // Copy assigned bytes into the output model.
        model_out.mutable_bytes(v.array)[v.index] =
            work.byte(v.array.get(), v.index);
      }
      restore_path(order.size() - 1);
      return SolverResult::kSat;
    }
    Var& v = vars[order[depth]];
    ByteDomain& dom = domains.domain(v.array, v.index);
    bool advanced = false;
    while (choice[depth] < v.candidates.size()) {
      if (++nodes > max_nodes || cost_out > eval_limit) {
        restore_path(depth);
        return SolverResult::kUnknown;
      }
      const std::uint8_t val = v.candidates[choice[depth]];
      ++choice[depth];
      work.mutable_bytes(v.array)[v.index] = val;
      dom.pin(val);
      bool ok = true;
      // Exact check of constraints whose variables are all assigned.
      for (std::size_t ci : v.closing) {
        cost_out += expr_cost(constraints[ci]);
        if (!evaluate_bool(constraints[ci], work)) {
          ok = false;
          break;
        }
      }
      // Interval forward-check of the other constraints this var touches.
      if (ok) {
        for (std::size_t ci : v.involved) {
          cost_out += expr_cost(constraints[ci]);
          if (interval_of(constraints[ci], domains).hi == 0) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        ++depth;
        if (depth < choice.size()) {
          choice[depth] = 0;
          Var& nv = vars[order[depth]];
          saved_domain[depth] = domains.domain(nv.array, nv.index);
        }
        advanced = true;
        break;
      }
    }
    if (advanced) continue;
    // Exhausted this variable: restore its domain and backtrack.
    dom = saved_domain[depth];
    if (depth == 0) return SolverResult::kUnsat;
    --depth;
  }
}

}  // namespace pbse
