// Bounded backtracking search over symbolic input bytes — the decision
// procedure that stands in for STP/Z3. Works on an independence-sliced
// constraint list whose byte domains have been pre-refined by
// propagate_domains().
#pragma once

#include <cstdint>
#include <vector>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "solver/cache.h"
#include "solver/interval.h"
#include "support/rng.h"

namespace pbse {

/// DFS over byte assignments with most-constrained-variable-first ordering
/// and hint-value-first value ordering.
///
/// `constraints`  conjunction to satisfy (each must contain >= 1 read).
/// `domains`      pre-propagated per-byte domains.
/// `hint`         optional assignment tried first for every byte (the
///                state's last known model / the concolic seed).
/// `max_nodes`    node budget; exhausting it yields kUnknown.
/// `max_evals`    constraint-evaluation budget (same effect).
/// `cost_out`     incremented by the number of constraint evaluations.
/// `model_out`    filled with a satisfying assignment on kSat.
/// `hint_first`   when true, each variable tries its hint value before the
///                boundary values; when false the order is boundaries first.
///                The solver facade runs both orders (split budget): hint-
///                first converges near the current model, boundary-first
///                escapes hint-poisoned subtrees.
/// `candidate_cap` when nonzero, truncates every variable's candidate list
///                to its first N values (hint + boundaries). A capped pass
///                explores the "interesting corners" tree exhaustively and
///                cheaply before any full-domain pass runs.
SolverResult backtracking_search(const std::vector<ExprRef>& constraints,
                                 DomainMap& domains, const Assignment* hint,
                                 bool hint_first, std::size_t candidate_cap,
                                 std::uint64_t max_nodes,
                                 std::uint64_t max_evals,
                                 std::uint64_t& cost_out,
                                 Assignment& model_out);

}  // namespace pbse
