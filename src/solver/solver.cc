#include "solver/solver.h"

#include <algorithm>

#include "obs/trace.h"
#include "solver/search_solver.h"
#include "support/log.h"

namespace pbse {

namespace {

/// Counter / event names interned once — the hot path pays an indexed add,
/// never a string hash (see stats.h).
struct SolverIds {
  obs::MetricId queries = obs::intern_metric("solver.queries");
  obs::MetricId solve_all = obs::intern_metric("solver.solve_all");
  obs::MetricId hint_hits = obs::intern_metric("solver.hint_hits");
  obs::MetricId zero_hits = obs::intern_metric("solver.zero_hits");
  obs::MetricId cache_hits = obs::intern_metric("solver.cache_hits");
  obs::MetricId shared_cache_hits =
      obs::intern_metric("solver.shared_cache_hits");
  /// UNSAT proved by a cached core that is a subset of the current list.
  obs::MetricId partition_hits = obs::intern_metric("solver.partition_hits");
  /// SAT proved by replaying a partition-cached counterexample.
  obs::MetricId model_reuse = obs::intern_metric("solver.model_reuse");
  /// Replays attempted (successful or not) — replay cost denominator.
  obs::MetricId model_replays = obs::intern_metric("solver.model_replays");
  /// Queries whose domain propagation was seeded from the memo.
  obs::MetricId domain_memo_hits =
      obs::intern_metric("solver.domain_memo_hits");
  obs::MetricId propagation_unsat =
      obs::intern_metric("solver.propagation_unsat");
  obs::MetricId search_full_pass =
      obs::intern_metric("solver.search_full_pass");
  obs::MetricId search_restarts = obs::intern_metric("solver.search_restarts");
  obs::MetricId search_sat = obs::intern_metric("solver.search_sat");
  obs::MetricId search_unsat = obs::intern_metric("solver.search_unsat");
  obs::MetricId search_unknown = obs::intern_metric("solver.search_unknown");
  /// UNSAT cores filed into the per-location interpolant table.
  obs::MetricId interpolants_published =
      obs::intern_metric("solver.interpolants_published");
  obs::MetricId deferred_eqs = obs::intern_metric("solver.deferred_eqs");
  obs::MetricId deferred_fallback =
      obs::intern_metric("solver.deferred_fallback");
  /// Log2 histogram: virtual ticks charged per top-level query.
  obs::MetricId query_ticks = obs::intern_metric("solver.query_ticks");
  // Trace event / argument names.
  obs::MetricId ev_query = obs::intern_metric("query");
  obs::MetricId ev_solve_all = obs::intern_metric("solve_all");
  obs::MetricId ev_cache_hit = obs::intern_metric("cache_hit");
  obs::MetricId ev_shared_cache_hit = obs::intern_metric("shared_cache_hit");
  obs::MetricId ev_partition_hit = obs::intern_metric("partition_hit");
  obs::MetricId ev_model_reuse = obs::intern_metric("model_reuse");
  obs::MetricId ev_domain_memo_hit = obs::intern_metric("domain_memo_hit");
  obs::MetricId arg_constraints = obs::intern_metric("constraints");
  obs::MetricId arg_result = obs::intern_metric("result");
};

const SolverIds& ids() {
  static const SolverIds s;
  return s;
}

/// Order-insensitive cache key over a constraint list. Uses the same
/// per-constraint mix as ConstraintSet's hash and partition hashes, so
/// prefix keys compose algebraically:
///   cache_key(list + q) == cache_key(list) ^ mix_constraint_hash(q).
std::uint64_t cache_key(const std::vector<ExprRef>& constraints) {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (const auto& c : constraints) h ^= mix_constraint_hash(c->hash());
  return h;
}

bool satisfies_all(const std::vector<ExprRef>& constraints,
                   CachingEvaluator& eval, std::uint64_t& evals) {
  for (const auto& c : constraints) {
    evals += expr_cost(c);
    if (!eval.evaluate_bool(c)) return false;
  }
  return true;
}

/// Shared evaluator over the all-zeros assignment; its memo persists for
/// the thread (bounded by the thread-local interning table). Thread-local
/// because the memo mutates on every evaluation.
CachingEvaluator& zeros_evaluator() {
  thread_local auto* eval =
      new CachingEvaluator(std::make_shared<Assignment>());
  return *eval;
}

void copy_into(const Assignment& from, Assignment* to,
               const std::vector<ExprRef>& constraints) {
  if (to == nullptr) return;
  std::vector<ReadSite> reads;
  for (const auto& c : constraints) collect_reads(c, reads);
  for (const auto& r : reads)
    to->mutable_bytes(r.array)[r.index] = from.byte(r.array.get(), r.index);
}

/// The per-array byte vectors of `found` restricted to the arrays that
/// `constraints` read — the persistable model for cache entries and the
/// counterexample store.
ModelBytes collect_model_bytes(const std::vector<ExprRef>& constraints,
                               Assignment& found) {
  std::vector<ReadSite> reads;
  for (const auto& c : constraints) collect_reads(c, reads);
  std::vector<ArrayRef> arrays;
  for (const auto& r : reads) {
    bool seen = false;
    for (const auto& a : arrays) seen = seen || a.get() == r.array.get();
    if (!seen) arrays.push_back(r.array);
  }
  ModelBytes mb;
  mb.reserve(arrays.size());
  for (const auto& a : arrays)
    mb.emplace_back(a, std::vector<std::uint8_t>(found.mutable_bytes(a)));
  return mb;
}

/// Sorted mixed constraint hashes of the list — the representation used
/// for UNSAT cores (subset query via std::includes).
std::vector<std::uint64_t> sorted_mixed_hashes(
    const std::vector<ExprRef>& constraints) {
  std::vector<std::uint64_t> hashes;
  hashes.reserve(constraints.size());
  for (const auto& c : constraints)
    hashes.push_back(mix_constraint_hash(c->hash()));
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

}  // namespace

namespace {

/// A deferred "defined-by" equality: `constraint` is Eq(defined, <lanes>)
/// (or its negation) where every lane byte occurs in no other constraint
/// of the list, so the lane bytes can simply be back-computed from a model
/// of the remaining constraints. This is how checksum/CRC equalities stay
/// cheap: solve the data, then write the matching checksum.
struct DeferredEquality {
  ExprRef constraint;
  ExprRef defined;              // the non-assembly side
  std::vector<ByteLane> lanes;  // the free checksum bytes
  bool negated = false;         // Ne instead of Eq
};

std::uint64_t lane_site_key(const ByteLane& lane) {
  return (reinterpret_cast<std::uintptr_t>(lane.array.get()) << 20) ^
         lane.index;
}

std::uint64_t read_site_key(const ReadSite& site) {
  return (reinterpret_cast<std::uintptr_t>(site.array.get()) << 20) ^
         site.index;
}

/// Extracts deferrable equalities from `constraints` (removing them).
std::vector<DeferredEquality> extract_deferred(
    std::vector<ExprRef>& constraints) {
  // Occurrence count of every site across the list.
  std::unordered_map<std::uint64_t, unsigned> occurrences;
  for (const auto& c : constraints)
    for (const auto& r : cached_reads(c)) ++occurrences[read_site_key(r)];

  std::vector<DeferredEquality> deferred;
  std::vector<ExprRef> kept;
  kept.reserve(constraints.size());
  for (const auto& c : constraints) {
    // Accept Eq(a, b) and its Xor-with-true negation.
    ExprRef eq = c;
    bool negated = false;
    if (c->kind() == ExprKind::kXor && c->num_kids() == 2 &&
        c->kid(1)->is_true() && c->kid(0)->kind() == ExprKind::kEq) {
      eq = c->kid(0);
      negated = true;
    }
    bool taken = false;
    if (eq->kind() == ExprKind::kEq) {
      for (int side = 0; side < 2 && !taken; ++side) {
        const ExprRef& candidate = eq->kid(side);
        const ExprRef& other = eq->kid(1 - side);
        std::vector<ByteLane> lanes;
        if (!match_byte_assembly(candidate, lanes)) continue;
        // Every lane byte must be exclusive to this constraint and must
        // not feed the other side.
        bool exclusive = true;
        for (const auto& lane : lanes)
          exclusive = exclusive && occurrences[lane_site_key(lane)] == 1;
        if (!exclusive) continue;
        for (const auto& r : cached_reads(other))
          for (const auto& lane : lanes)
            if (r.array.get() == lane.array.get() && r.index == lane.index)
              exclusive = false;
        if (!exclusive) continue;
        deferred.push_back(DeferredEquality{c, other, lanes, negated});
        taken = true;
      }
    }
    if (!taken) kept.push_back(c);
  }
  constraints.swap(kept);
  return deferred;
}

}  // namespace

CachingEvaluator& Solver::hint_evaluator(const HintRef& hint) {
  if (hint_evaluators_.size() > 256) hint_evaluators_.clear();
  auto& slot = hint_evaluators_[hint.get()];
  if (slot == nullptr || slot->assignment().get() != hint.get())
    slot = std::make_shared<CachingEvaluator>(hint);
  return *slot;
}

void Solver::memo_store(std::uint64_t key, const DomainMap& domains,
                        std::uint32_t delta_depth) {
  if (domain_memo_.size() >= options_.max_domain_memo_entries)
    domain_memo_.clear();  // deterministic wholesale reset
  const auto [it, inserted] =
      domain_memo_.try_emplace(key, DomainMemoEntry{domains, delta_depth});
  if (!inserted && delta_depth < it->second.delta_depth)
    it->second = DomainMemoEntry{domains, delta_depth};
}

void Solver::publish_sat(const SliceCtx& ctx, const ModelBytes& model) {
  if (!options_.use_cache || !options_.use_cex_cache) return;
  // Region ids are stable while a partition grows (the min member-site
  // content hash only changes when a lower-hashing fresh site joins), so
  // filing under the touched partitions is enough: the path's next query
  // over these bytes probes the same ids. check_sat already folded the
  // post-add id (Slice::merged) into ctx.partitions, which covers the
  // fresh-site case too.
  for (const std::uint64_t k : ctx.partitions) {
    cex_.add_model(k, model);
    if (options_.shared_cache != nullptr)
      options_.shared_cache->publish_model(k, model);
  }
}

void Solver::publish_unsat(const SliceCtx& ctx,
                           const std::vector<std::uint64_t>& core) {
  // The one place UNSAT cores leave the pipeline. Every consumer of the
  // core representation (L1 cex store, shared L2, per-location interpolant
  // table) is fed here, so the weakening — "the sliced list's sorted
  // mixed hashes stand in for the full path condition" — exists exactly
  // once.
  if (!options_.use_cache || !options_.use_cex_cache) return;
  // No predicted key: an UNSAT query is never added to the path.
  for (const std::uint64_t k : ctx.partitions) {
    cex_.add_unsat_core(k, core);
    if (options_.shared_cache != nullptr)
      options_.shared_cache->publish_unsat_core(k, core);
  }
  if (interpolant_location_ != kNoInterpolantLocation) {
    interpolants_.add_unsat(interpolant_location_, core);
    stats_.add(ids().interpolants_published);
  }
}

SolverResult Solver::solve_list(const std::vector<ExprRef>& constraints,
                                const SliceCtx& ctx, Assignment* model,
                                const HintRef& hint) {
  std::vector<ExprRef> remaining = constraints;
  const std::vector<DeferredEquality> deferred = extract_deferred(remaining);
  if (!deferred.empty()) stats_.add(ids().deferred_eqs, deferred.size());

  const SolverResult result = solve_core(remaining, ctx, model, hint);
  if (result != SolverResult::kSat || deferred.empty()) return result;
  if (model == nullptr) return result;  // satisfiable either way: the lane
                                        // bytes are free

  // Back-compute the deferred checksum bytes against the final model.
  for (const auto& d : deferred) {
    std::uint64_t value = evaluate(d.defined, *model);
    if (d.negated) value += 1;  // any different value works
    for (const auto& lane : d.lanes) {
      model->mutable_bytes(lane.array)[lane.index] =
          static_cast<std::uint8_t>(value >> lane.bit_offset);
    }
  }
  // Verify (chained definitions would break the one-pass completion).
  for (const auto& d : deferred) {
    clock_.advance(expr_cost(d.constraint));
    if (!evaluate_bool(d.constraint, *model)) {
      stats_.add(ids().deferred_fallback);
      return solve_core(constraints, ctx, model, hint);
    }
  }
  return SolverResult::kSat;
}

SolverResult Solver::solve_core(const std::vector<ExprRef>& constraints,
                                const SliceCtx& ctx, Assignment* model,
                                const HintRef& hint) {
  if (constraints.empty()) return SolverResult::kSat;

  std::uint64_t evals = 0;

  // Fast path 1: the hint assignment already satisfies everything — the
  // concolic fast path that makes re-walking a seed path nearly free.
  // Evaluations are memoized per hint across queries.
  if (hint != nullptr && satisfies_all(constraints, hint_evaluator(hint), evals)) {
    charge(evals);
    stats_.add(ids().hint_hits);
    copy_into(*hint, model, constraints);
    return SolverResult::kSat;
  }

  // Fast path 2: the all-zeros assignment (memo shared process-wide).
  if (satisfies_all(constraints, zeros_evaluator(), evals)) {
    charge(evals);
    Assignment zeros;
    stats_.add(ids().zero_hits);
    copy_into(zeros, model, constraints);
    return SolverResult::kSat;
  }

  const std::uint64_t key = cache_key(constraints);
  const bool cex_enabled = options_.use_cache && options_.use_cex_cache &&
                           !ctx.partitions.empty();
  if (options_.use_cache) {
    if (const QueryCache::Entry* hit = cache_.lookup(key, constraints)) {
      stats_.add(ids().cache_hits);
      obs::trace_instant(obs::Category::kSolver, ids().ev_cache_hit,
                         clock_.now());
      if (hit->result == SolverResult::kSat && model != nullptr) {
        Assignment cached;
        for (const auto& [array, bytes] : hit->model) cached.set(array, bytes);
        copy_into(cached, model, constraints);
      }
      return hit->result;
    }
    // L2: the shared cross-campaign cache. A hit is promoted into the L1
    // (already remapped onto this campaign's arrays by lookup()).
    if (options_.shared_cache != nullptr) {
      if (auto hit = options_.shared_cache->lookup(key, constraints)) {
        stats_.add(ids().shared_cache_hits);
        obs::trace_instant(obs::Category::kSolver, ids().ev_shared_cache_hit,
                           clock_.now());
        const SolverResult shared_result = hit->result;
        if (shared_result == SolverResult::kSat && model != nullptr) {
          Assignment cached;
          for (const auto& [array, bytes] : hit->model)
            cached.set(array, bytes);
          copy_into(cached, model, constraints);
        }
        cache_.insert(key, std::move(*hit));
        return shared_result;
      }
    }
  }

  // Partition-keyed counterexample reuse (the exact caches above missed).
  // Cores/models are filed under the content hash of every independence
  // partition a solved query touched; this query's ctx.partitions name the
  // same regions, so overlapping past results are one hash lookup away.
  std::vector<std::uint64_t> mixed;  // sorted; also the core we'd publish
  if (cex_enabled) {
    mixed = sorted_mixed_hashes(constraints);

    // (a) UNSAT-by-subset: a cached core that is a subset of this list
    // proves this list UNSAT (adding constraints never makes an
    // unsatisfiable subset satisfiable). Hash-compare only — no
    // evaluation; trusted by content hash like exact UNSAT entries.
    const auto core_subsumes = [&](const std::vector<std::uint64_t>& core) {
      evals += core.size();
      return std::includes(mixed.begin(), mixed.end(), core.begin(),
                           core.end());
    };
    bool unsat_by_core = false;
    for (const std::uint64_t pkey : ctx.partitions) {
      const auto* own_cores = cex_.unsat_cores(pkey);
      if (own_cores != nullptr) {
        for (const auto& core : *own_cores)
          if ((unsat_by_core = core_subsumes(core))) break;
      }
      if (!unsat_by_core && options_.shared_cache != nullptr) {
        for (const auto& core :
             options_.shared_cache->partition_unsat_cores(pkey)) {
          // L1 already checked (and charged) this exact core: publishing
          // mirrors every L1 entry into L2, so skipping duplicates
          // uncharged is what keeps single-campaign shared-cache runs
          // tick-identical to --no-share-cache.
          if (own_cores != nullptr &&
              std::find(own_cores->begin(), own_cores->end(), core) !=
                  own_cores->end())
            continue;
          if ((unsat_by_core = core_subsumes(core))) break;
        }
      }
      if (unsat_by_core) break;
    }
    if (unsat_by_core) {
      charge(evals);
      stats_.add(ids().partition_hits);
      obs::trace_instant(obs::Category::kSolver, ids().ev_partition_hit,
                         clock_.now());
      cache_.insert(key, QueryCache::Entry{SolverResult::kUnsat, {}});
      if (options_.shared_cache != nullptr)
        options_.shared_cache->insert(
            key, QueryCache::Entry{SolverResult::kUnsat, {}});
      return SolverResult::kUnsat;
    }

    // (b) Model replay (KLEE's CexCachingSolver superset case): a cached
    // counterexample from an overlapping partition is replayed through the
    // evaluator; if it satisfies every constraint, the query is SAT
    // without search. Replays are verified evaluations — charged to the
    // virtual clock and bounded by max_model_replays per layer.
    const auto replay = [&](const ModelBytes& candidate) {
      stats_.add(ids().model_replays);
      auto assignment = std::make_shared<Assignment>();
      for (const auto& [array, bytes] : candidate)
        assignment->set(array, bytes);
      CachingEvaluator eval(assignment);
      if (!satisfies_all(constraints, eval, evals)) return false;
      charge(evals);
      stats_.add(ids().model_reuse);
      obs::trace_instant(obs::Category::kSolver, ids().ev_model_reuse,
                         clock_.now());
      copy_into(*assignment, model, constraints);
      QueryCache::Entry entry;
      entry.result = SolverResult::kSat;
      entry.model = collect_model_bytes(constraints, *assignment);
      publish_sat(ctx, entry.model);
      if (options_.shared_cache != nullptr)
        options_.shared_cache->insert(key, entry);
      cache_.insert(key, std::move(entry));
      return true;
    };
    std::size_t budget = options_.max_model_replays;
    for (const std::uint64_t pkey : ctx.partitions) {
      if (budget == 0) break;
      if (const auto* models = cex_.models(pkey)) {
        // Newest first: the latest path extensions replay best.
        for (auto it = models->rbegin(); it != models->rend() && budget > 0;
             ++it) {
          --budget;
          if (replay(*it)) return SolverResult::kSat;
        }
      }
    }
    if (options_.shared_cache != nullptr) {
      budget = options_.max_model_replays;
      for (const std::uint64_t pkey : ctx.partitions) {
        if (budget == 0) break;
        const auto* own_models = cex_.models(pkey);
        const auto already_in_l1 = [&](const ModelBytes& candidate) {
          if (own_models == nullptr) return false;
          for (const auto& m : *own_models)
            if (models_equal(m, candidate)) return true;
          return false;
        };
        for (const auto& candidate :
             options_.shared_cache->partition_models(pkey, constraints)) {
          if (budget == 0) break;
          // Same single-campaign parity rule as the core loop: models this
          // solver itself published are already replayed from L1, so a
          // verbatim L2 copy is skipped without charge.
          if (already_in_l1(candidate)) continue;
          --budget;
          if (replay(candidate)) return SolverResult::kSat;
        }
      }
    }
  }

  // Domain propagation, seeded from the per-partition memo when this
  // list extends a previously propagated prefix. The memo key composes
  // algebraically: memo[cache_key(prefix)] holds the prefix's propagated
  // domains, and cache_key(prefix) == key ^ mix(query) — no list
  // materialization needed to probe it. Sound because domains only ever
  // shrink: a prefix's domains over-approximate the full list's feasible
  // set, and propagate_delta re-checks the prefix against the narrowed
  // domains.
  DomainMap domains;
  bool feasible = false;
  std::uint32_t memo_depth = 0;  // delta layers behind `domains`
  if (options_.use_domain_memo && ctx.query != nullptr &&
      std::count(constraints.begin(), constraints.end(), ctx.query) == 1) {
    std::vector<ExprRef> prefix;
    prefix.reserve(constraints.size() - 1);
    for (const auto& c : constraints)
      if (c.get() != ctx.query.get()) prefix.push_back(c);
    const std::uint64_t prefix_key =
        key ^ mix_constraint_hash(ctx.query->hash());
    const std::vector<ExprRef> added{ctx.query};
    const auto it = domain_memo_.find(prefix_key);
    if (it != domain_memo_.end() &&
        it->second.delta_depth < options_.max_domain_memo_delta_depth) {
      domains = it->second.domains;  // copy: the memo entry stays pristine
      evals += domains.size();       // charged like any other solver work
      memo_depth = it->second.delta_depth + 1;
      stats_.add(ids().domain_memo_hits);
      obs::trace_instant(obs::Category::kSolver, ids().ev_domain_memo_hit,
                         clock_.now());
      feasible = propagate_delta(prefix, added, domains, evals);
    } else {
      // Miss — or the entry has exhausted its delta budget, in which case
      // full propagation is recomputed (and re-memoized at depth 0) so
      // one-pass delta imprecision cannot compound along a path.
      // Memoizing the prefix alone before layering the query on lets the
      // sibling query (the branch's other direction shares the exact
      // prefix) and the path's next query both hit.
      feasible = propagate_domains(prefix, domains, evals);
      if (feasible) {
        memo_store(prefix_key, domains, 0);
        memo_depth = 1;
        feasible = propagate_delta(prefix, added, domains, evals);
      }
    }
  } else {
    feasible = propagate_domains(constraints, domains, evals);
  }
  if (!feasible) {
    charge(evals);
    stats_.add(ids().propagation_unsat);
    if (options_.use_cache) {
      cache_.insert(key, QueryCache::Entry{SolverResult::kUnsat, {}});
      if (options_.shared_cache != nullptr)
        options_.shared_cache->insert(key,
                                      QueryCache::Entry{SolverResult::kUnsat, {}});
    }
    if (cex_enabled) publish_unsat(ctx, mixed);
    return SolverResult::kUnsat;
  }
  if (options_.use_domain_memo) {
    // Memoize the full list's domains: when the engine extends this path,
    // the next query's prefix IS this list and probes exactly this key.
    memo_store(key, domains, memo_depth);
  }

  // Bounded backtracking search, staged:
  //   A. candidates capped to hint+boundary values — exhaustively explores
  //      the small "interesting corners" tree (cheap, finds most models);
  //   B. full domains, hint values first (stays close to the model);
  //   C. full domains, boundary values first (escapes hint-poisoned
  //      subtrees).
  // A kUnsat from a CAPPED pass is not conclusive; only full passes may
  // report kUnsat.
  Assignment found;
  const Assignment* hint_raw = hint.get();
  SolverResult result = backtracking_search(
      constraints, domains, hint_raw, /*hint_first=*/true, /*candidate_cap=*/6,
      options_.max_search_nodes / 4, options_.max_search_evals / 4, evals,
      found);
  if (result == SolverResult::kUnsat) result = SolverResult::kUnknown;
  if (result == SolverResult::kUnknown) {
    stats_.add(ids().search_full_pass);
    result = backtracking_search(constraints, domains, hint_raw,
                                 /*hint_first=*/true, /*candidate_cap=*/0,
                                 options_.max_search_nodes / 2,
                                 options_.max_search_evals / 2, evals, found);
  }
  if (result == SolverResult::kUnknown && hint != nullptr) {
    stats_.add(ids().search_restarts);
    result = backtracking_search(constraints, domains, hint_raw,
                                 /*hint_first=*/false, /*candidate_cap=*/0,
                                 options_.max_search_nodes / 4,
                                 options_.max_search_evals / 4, evals, found);
  }
  charge(evals);

  switch (result) {
    case SolverResult::kSat: {
      stats_.add(ids().search_sat);
      copy_into(found, model, constraints);
      if (options_.use_cache) {
        QueryCache::Entry entry;
        entry.result = SolverResult::kSat;
        entry.model = collect_model_bytes(constraints, found);
        publish_sat(ctx, entry.model);
        if (options_.shared_cache != nullptr)
          options_.shared_cache->insert(key, entry);
        cache_.insert(key, std::move(entry));
      }
      return SolverResult::kSat;
    }
    case SolverResult::kUnsat:
      stats_.add(ids().search_unsat);
      if (options_.use_cache) {
        cache_.insert(key, QueryCache::Entry{SolverResult::kUnsat, {}});
        if (options_.shared_cache != nullptr)
          options_.shared_cache->insert(key,
                                        QueryCache::Entry{SolverResult::kUnsat, {}});
      }
      if (cex_enabled) publish_unsat(ctx, mixed);
      return SolverResult::kUnsat;
    case SolverResult::kUnknown:
      stats_.add(ids().search_unknown);
      if (log_level() >= LogLevel::kDebug) {
        PBSE_LOG_DEBUG << "solver unknown over " << constraints.size()
                       << " constraints:";
        for (std::size_t i = 0; i < constraints.size() && i < 8; ++i)
          PBSE_LOG_DEBUG << "  [" << i << "] " << constraints[i]->to_string();
      }
      // Unknown results are NOT cached: a later query with a different hint
      // might succeed within budget.
      return SolverResult::kUnknown;
  }
  return SolverResult::kUnknown;
}

SolverResult Solver::check_sat(const ConstraintSet& cs, const ExprRef& query,
                               Assignment* model, const HintRef& hint) {
  stats_.add(ids().queries);

  if (query->is_false()) return SolverResult::kUnsat;

  ConstraintSet::Slice slice =
      options_.use_independence ? cs.slice(query) : cs.whole();
  SliceCtx ctx;
  ctx.partitions = std::move(slice.partitions);
  if (!query->is_true()) {
    // The query may already be a member of `cs` (validate_model's repair
    // path re-checks a path constraint), in which case the slice already
    // contains it. Appending it again would double its hash in the
    // order-insensitive XOR cache key — the duplicate cancels and the key
    // collapses to the key of the list WITHOUT the query, filing
    // query-narrowed results (domain memo, exact caches, UNSAT cores)
    // under the weaker list's identity.
    const bool already_present =
        std::any_of(slice.constraints.begin(), slice.constraints.end(),
                    [&](const ExprRef& c) { return c.get() == query.get(); });
    if (!already_present) slice.constraints.push_back(query);
    ctx.query = query;
    // Also file/probe under the region id the touched partitions will
    // carry once the query joins the path (min over touched ids and the
    // query's fresh sites): a first query over fresh bytes publishes its
    // counterexample under the id the partition it CREATES will have.
    if (slice.merged != 0 &&
        std::find(ctx.partitions.begin(), ctx.partitions.end(),
                  slice.merged) == ctx.partitions.end()) {
      ctx.partitions.push_back(slice.merged);
      std::sort(ctx.partitions.begin(), ctx.partitions.end());
    }
  }

  const std::uint64_t t0 = clock_.now();
  obs::trace_begin(obs::Category::kSolver, ids().ev_query, t0,
                   slice.constraints.size(), ids().arg_constraints);
  const SolverResult result = solve_list(slice.constraints, ctx, model, hint);
  const std::uint64_t t1 = clock_.now();
  stats_.observe(ids().query_ticks, t1 - t0);
  obs::trace_end(obs::Category::kSolver, ids().ev_query, t1,
                 static_cast<std::uint64_t>(result), ids().arg_result);
  return result;
}

SolverResult Solver::solve_all(const ConstraintSet& cs, Assignment* model,
                               const HintRef& hint) {
  stats_.add(ids().solve_all);
  ConstraintSet::Slice slice = cs.whole();
  SliceCtx ctx;
  ctx.partitions = std::move(slice.partitions);
  const std::uint64_t t0 = clock_.now();
  obs::trace_begin(obs::Category::kSolver, ids().ev_solve_all, t0,
                   slice.constraints.size(), ids().arg_constraints);
  const SolverResult result = solve_list(slice.constraints, ctx, model, hint);
  const std::uint64_t t1 = clock_.now();
  stats_.observe(ids().query_ticks, t1 - t0);
  obs::trace_end(obs::Category::kSolver, ids().ev_solve_all, t1,
                 static_cast<std::uint64_t>(result), ids().arg_result);
  return result;
}

std::optional<std::uint64_t> Solver::get_value(const ConstraintSet& cs,
                                               const ExprRef& e,
                                               const HintRef& hint) {
  if (e->is_constant()) return e->constant_value();
  if (hint != nullptr) {
    // Prefer the hint's value when it is consistent with the constraints.
    CachingEvaluator& eval = hint_evaluator(hint);
    bool ok = true;
    for (const auto& c : cs.constraints()) {
      clock_.advance(options_.ticks_per_eval);
      if (!eval.evaluate_bool(c)) {
        ok = false;
        break;
      }
    }
    if (ok) return eval.evaluate(e);
  }
  Assignment model;
  if (solve_all(cs, &model, hint) != SolverResult::kSat) return std::nullopt;
  return evaluate(e, model);
}

}  // namespace pbse
