// Solver facade: the engine's single entry point for satisfiability and
// value queries. Pipeline per query (incremental across the queries of one
// path — see DESIGN.md §9):
//
//   fast path (hint / all-zeros evaluation)
//     -> independence slicing (persistent partitions, ConstraintSet)
//     -> exact cache lookup (L1, then shared L2)
//     -> partition-keyed UNSAT-core subset check
//     -> partition-keyed counterexample (model) replay
//     -> byte-domain propagation (memoized per partition prefix)
//     -> bounded backtracking search
//     -> cache / counterexample-store fill
//
// Every evaluation performed — including every cached-model replay and
// every memoized-domain delta propagation — is charged to the virtual
// clock, so solver effort competes with interpretation effort exactly as
// in the paper's wall-clock experiments. A budget-exhausted query returns
// kUnknown and the engine treats the branch as unreachable-for-now — this
// is what makes input-dependent loop exits "trap" symbolic execution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "solver/cache.h"
#include "solver/constraint_set.h"
#include "solver/interpolant.h"
#include "solver/interval.h"
#include "support/stats.h"
#include "support/vclock.h"

namespace pbse {

namespace serialize {
class CampaignCodec;
}

struct SolverOptions {
  /// Backtracking node budget per query.
  std::uint64_t max_search_nodes = 40000;
  /// Evaluation-WORK budget per query, in expression-DAG-node units
  /// (expr_cost); caps node*constraint blowup independent of node count.
  std::uint64_t max_search_evals = 1'000'000;
  /// Virtual-clock ticks charged per `charge_divisor` expression-DAG nodes
  /// evaluated. The default ratio makes one typical query cost a few
  /// hundred ticks (instructions cost 1 tick each), roughly KLEE's
  /// instruction-to-solver time split.
  std::uint64_t ticks_per_eval = 1;
  std::uint64_t charge_divisor = 32;
  bool use_cache = true;
  bool use_independence = true;
  /// Partition-keyed counterexample reuse (model replay + UNSAT-core
  /// subset proofs). Requires use_cache.
  bool use_cex_cache = true;
  /// Per-partition memoization of propagated byte domains.
  bool use_domain_memo = true;
  /// Cap on cached models replayed per query (L1 and L2 each); bounds the
  /// worst-case replay cost on a miss.
  std::size_t max_model_replays = 4;
  /// Domain-memo entries retained before a deterministic wholesale clear.
  std::size_t max_domain_memo_entries = 4096;
  /// Consecutive propagate_delta refinements a memo entry may accumulate
  /// before the solver recomputes full propagation from scratch. Delta
  /// propagation runs only one interval pass over the prefix (no second
  /// fixpoint round, no per-byte re-enumeration), so each delta layer may
  /// retain domains a full pass would have narrowed; bounding the chain
  /// bounds the cumulative precision loss along a path.
  std::uint32_t max_domain_memo_delta_depth = 8;
  /// Optional shared L2 cache (thread-safe, sharded). When set, the solver
  /// consults it after an L1 miss and publishes every solved query into it
  /// — whole queries AND partition-keyed partial results — so concurrent
  /// campaigns reuse each other's work. Sharing a cache across campaigns
  /// trades bit-exact serial/parallel determinism for throughput — see
  /// DESIGN.md "Parallel campaigns".
  std::shared_ptr<ShardedQueryCache> shared_cache;
};

class Solver {
 public:
  Solver(VClock& clock, Stats& stats, SolverOptions options = {})
      : clock_(clock), stats_(stats), options_(options) {}

  /// A hint assignment: tried first and seeding the search's value order.
  /// Shared ownership lets the solver keep a memoized evaluator per hint
  /// (states re-issue queries against the same model thousands of times).
  using HintRef = std::shared_ptr<const Assignment>;

  /// Is `cs /\ query` satisfiable? On kSat and `model != nullptr`, `model`
  /// receives a satisfying assignment.
  SolverResult check_sat(const ConstraintSet& cs, const ExprRef& query,
                         Assignment* model = nullptr,
                         const HintRef& hint = nullptr);

  /// True iff `query` can be true under `cs` (kSat). kUnknown counts as
  /// "no" — the engine's conservative treatment of solver timeouts.
  bool may_be_true(const ConstraintSet& cs, const ExprRef& query,
                   const HintRef& hint = nullptr) {
    return check_sat(cs, query, nullptr, hint) == SolverResult::kSat;
  }

  /// Satisfiability of the ENTIRE constraint set (no independence slicing
  /// relative to a query). check_sat assumes the path invariant "cs is
  /// already satisfiable" — use solve_all when that is not yet established,
  /// e.g. when activating a concolic seedState.
  SolverResult solve_all(const ConstraintSet& cs, Assignment* model,
                         const HintRef& hint = nullptr);

  /// A concrete value `e` can take under `cs`, or nullopt if even finding
  /// one model exceeds the budget.
  std::optional<std::uint64_t> get_value(const ConstraintSet& cs,
                                         const ExprRef& e,
                                         const HintRef& hint = nullptr);

  const SolverOptions& options() const { return options_; }
  QueryCache& cache() { return cache_; }
  CexStore& cex_store() { return cex_; }
  std::size_t domain_memo_size() const { return domain_memo_.size(); }

  /// No current interpolant location (cores are not filed per-location).
  static constexpr std::uint64_t kNoInterpolantLocation = ~std::uint64_t{0};

  /// Per-location interpolants derived from the UNSAT cores this solver
  /// proves. The executor sets the current global basic block before
  /// issuing branch/validation queries and probes the table at block
  /// entry; the solver only FILLS it (publish_unsat files each core under
  /// the location as well as under the touched partitions).
  InterpolantTable& interpolants() { return interpolants_; }
  const InterpolantTable& interpolants() const { return interpolants_; }

  /// Sets the global basic block subsequent UNSAT cores are attributed to.
  /// kNoInterpolantLocation (the default) disables interpolant filing —
  /// the executor only sets a location when subsumption is enabled, which
  /// keeps the off-mode solver byte-identical in behavior.
  void set_interpolant_location(std::uint64_t location) {
    interpolant_location_ = location;
  }

 private:
  /// Snapshots the solver's L1 stores (cache_, cex_, domain_memo_,
  /// interpolants_) — they steer tick charging and control flow, so a
  /// tick-exact resume must restore them. hint_evaluators_ is NOT
  /// snapshotted: evaluator memo warmth never affects charging (all
  /// charges use expr_cost / domain sizes), so rebuilding it lazily after
  /// restore is observationally identical.
  friend class serialize::CampaignCodec;

  /// Slice metadata threaded through the pipeline: which independence
  /// partitions the query touches (counterexample / domain-memo keys) and
  /// which list element is the query (for prefix hashing).
  struct SliceCtx {
    /// Sorted, distinct content hashes of the touched partitions; empty
    /// disables partition-keyed reuse for the query.
    std::vector<std::uint64_t> partitions;
    /// The appended query constraint; null for solve_all-style lists.
    ExprRef query;
  };

  /// Shared pipeline over an already-assembled constraint list. Runs the
  /// defined-by elimination first (checksum/CRC equalities whose stored
  /// bytes appear nowhere else are deferred and back-computed), then the
  /// fast paths, caches, propagation and search over the remainder.
  SolverResult solve_list(const std::vector<ExprRef>& constraints,
                          const SliceCtx& ctx, Assignment* model,
                          const HintRef& hint);

  /// Pipeline body without elimination (used by solve_list and as its
  /// fallback when a deferred equality turns out to chain).
  SolverResult solve_core(const std::vector<ExprRef>& constraints,
                          const SliceCtx& ctx, Assignment* model,
                          const HintRef& hint);

  /// Files a solved result into the partition-keyed stores (L1 cex store
  /// and, when configured, the shared L2).
  void publish_sat(const SliceCtx& ctx, const ModelBytes& model);
  void publish_unsat(const SliceCtx& ctx,
                     const std::vector<std::uint64_t>& core);

  /// Memoized evaluator for `hint`, cached by identity (the evaluator keeps
  /// the assignment alive, so pointer reuse cannot alias).
  CachingEvaluator& hint_evaluator(const HintRef& hint);

  void charge(std::uint64_t evals) {
    clock_.advance(evals * options_.ticks_per_eval / options_.charge_divisor +
                   1);
  }

  /// Stores `domains` in the memo under `key`. `delta_depth` counts the
  /// propagate_delta layers behind the domains (0 = full propagation). An
  /// existing entry is only replaced by one with a strictly smaller depth:
  /// for the same content key, fewer delta layers means domains at least
  /// as narrow.
  void memo_store(std::uint64_t key, const DomainMap& domains,
                  std::uint32_t delta_depth);

  VClock& clock_;
  Stats& stats_;
  SolverOptions options_;
  QueryCache cache_;
  /// Partition-keyed counterexample store (models + UNSAT cores).
  CexStore cex_;
  struct DomainMemoEntry {
    DomainMap domains;
    /// propagate_delta refinements since the last full propagation; entries
    /// at max_domain_memo_delta_depth are recomputed rather than extended.
    std::uint32_t delta_depth = 0;
  };
  /// Propagated byte domains memoized by the content hash of the
  /// constraint list they were computed from (the "prefix": the sliced
  /// list without the query). Entries are only written after a propagation
  /// that did NOT prove UNSAT, so a hit always seeds feasible domains.
  std::unordered_map<std::uint64_t, DomainMemoEntry> domain_memo_;
  InterpolantTable interpolants_;
  std::uint64_t interpolant_location_ = kNoInterpolantLocation;
  std::unordered_map<const Assignment*, std::shared_ptr<CachingEvaluator>>
      hint_evaluators_;
};

}  // namespace pbse
