// Solver facade: the engine's single entry point for satisfiability and
// value queries. Pipeline per query:
//
//   fast path (hint / all-zeros evaluation)
//     -> independence slicing
//     -> cache lookup
//     -> byte-domain propagation
//     -> bounded backtracking search
//     -> cache fill
//
// Every evaluation performed is charged to the virtual clock, so solver
// effort competes with interpretation effort exactly as in the paper's
// wall-clock experiments. A budget-exhausted query returns kUnknown and the
// engine treats the branch as unreachable-for-now — this is what makes
// input-dependent loop exits "trap" symbolic execution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "solver/cache.h"
#include "solver/constraint_set.h"
#include "support/stats.h"
#include "support/vclock.h"

namespace pbse {

struct SolverOptions {
  /// Backtracking node budget per query.
  std::uint64_t max_search_nodes = 40000;
  /// Evaluation-WORK budget per query, in expression-DAG-node units
  /// (expr_cost); caps node*constraint blowup independent of node count.
  std::uint64_t max_search_evals = 1'000'000;
  /// Virtual-clock ticks charged per `charge_divisor` expression-DAG nodes
  /// evaluated. The default ratio makes one typical query cost a few
  /// hundred ticks (instructions cost 1 tick each), roughly KLEE's
  /// instruction-to-solver time split.
  std::uint64_t ticks_per_eval = 1;
  std::uint64_t charge_divisor = 32;
  bool use_cache = true;
  bool use_independence = true;
  /// Optional shared L2 cache (thread-safe, sharded). When set, the solver
  /// consults it after an L1 miss and publishes every solved query into it,
  /// so concurrent campaigns reuse each other's sat/unsat results. Sharing
  /// a cache across campaigns trades bit-exact serial/parallel determinism
  /// for throughput — see DESIGN.md "Parallel campaigns".
  std::shared_ptr<ShardedQueryCache> shared_cache;
};

class Solver {
 public:
  Solver(VClock& clock, Stats& stats, SolverOptions options = {})
      : clock_(clock), stats_(stats), options_(options) {}

  /// A hint assignment: tried first and seeding the search's value order.
  /// Shared ownership lets the solver keep a memoized evaluator per hint
  /// (states re-issue queries against the same model thousands of times).
  using HintRef = std::shared_ptr<const Assignment>;

  /// Is `cs /\ query` satisfiable? On kSat and `model != nullptr`, `model`
  /// receives a satisfying assignment.
  SolverResult check_sat(const ConstraintSet& cs, const ExprRef& query,
                         Assignment* model = nullptr,
                         const HintRef& hint = nullptr);

  /// True iff `query` can be true under `cs` (kSat). kUnknown counts as
  /// "no" — the engine's conservative treatment of solver timeouts.
  bool may_be_true(const ConstraintSet& cs, const ExprRef& query,
                   const HintRef& hint = nullptr) {
    return check_sat(cs, query, nullptr, hint) == SolverResult::kSat;
  }

  /// Satisfiability of the ENTIRE constraint set (no independence slicing
  /// relative to a query). check_sat assumes the path invariant "cs is
  /// already satisfiable" — use solve_all when that is not yet established,
  /// e.g. when activating a concolic seedState.
  SolverResult solve_all(const ConstraintSet& cs, Assignment* model,
                         const HintRef& hint = nullptr);

  /// A concrete value `e` can take under `cs`, or nullopt if even finding
  /// one model exceeds the budget.
  std::optional<std::uint64_t> get_value(const ConstraintSet& cs,
                                         const ExprRef& e,
                                         const HintRef& hint = nullptr);

  const SolverOptions& options() const { return options_; }
  QueryCache& cache() { return cache_; }

 private:
  /// Shared pipeline over an already-assembled constraint list. Runs the
  /// defined-by elimination first (checksum/CRC equalities whose stored
  /// bytes appear nowhere else are deferred and back-computed), then the
  /// fast paths, cache, propagation and search over the remainder.
  SolverResult solve_list(const std::vector<ExprRef>& constraints,
                          Assignment* model, const HintRef& hint);

  /// Pipeline body without elimination (used by solve_list and as its
  /// fallback when a deferred equality turns out to chain).
  SolverResult solve_core(const std::vector<ExprRef>& constraints,
                          Assignment* model, const HintRef& hint);

  /// Memoized evaluator for `hint`, cached by identity (the evaluator keeps
  /// the assignment alive, so pointer reuse cannot alias).
  CachingEvaluator& hint_evaluator(const HintRef& hint);

  void charge(std::uint64_t evals) {
    clock_.advance(evals * options_.ticks_per_eval / options_.charge_divisor +
                   1);
  }

  VClock& clock_;
  Stats& stats_;
  SolverOptions options_;
  QueryCache cache_;
  std::unordered_map<const Assignment*, std::shared_ptr<CachingEvaluator>>
      hint_evaluators_;
};

}  // namespace pbse
