#include "support/argparse.h"

#include <limits>

namespace pbse::support {

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return false;  // overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_positive_count(const std::string& flag, const std::string& value,
                          unsigned& out, std::string& error) {
  std::uint64_t v = 0;
  if (!parse_u64(value, v)) {
    error = flag + " expects a positive integer, got '" + value + "'";
    return false;
  }
  if (v == 0) {
    error = flag + " must be at least 1, got 0";
    return false;
  }
  if (v > std::numeric_limits<unsigned>::max()) {
    error = flag + " value " + value + " is out of range";
    return false;
  }
  out = static_cast<unsigned>(v);
  return true;
}

bool parse_u64_flag(const std::string& flag, const std::string& value,
                    std::uint64_t min, std::uint64_t& out, std::string& error) {
  std::uint64_t v = 0;
  if (!parse_u64(value, v)) {
    error = flag + " expects a non-negative integer, got '" + value + "'";
    return false;
  }
  if (v < min) {
    error = flag + " must be at least " + std::to_string(min) + ", got " +
            value;
    return false;
  }
  out = v;
  return true;
}

}  // namespace pbse::support
