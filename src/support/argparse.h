// Shared strict flag parsing for the CLI tools, benches, and the server.
//
// The historical `--jobs=` handlers used strtoul + "0 means 1" coercion,
// which silently accepted `--jobs=abc` (strtoul returns 0) and
// `--jobs=-3` (wraps to a huge unsigned). A typo'd worker count should be
// a loud usage error, not a silently-serial run — these helpers reject
// non-numeric, negative, zero, and out-of-range values with a message
// naming the flag.
#pragma once

#include <cstdint>
#include <string>

namespace pbse::support {

/// Strict base-10 parse of an unsigned integer: the whole string must be
/// digits (no sign, no whitespace, no trailing junk, no overflow).
bool parse_u64(const std::string& text, std::uint64_t& out);

/// Parses a positive (>= 1) count flag value such as `--jobs=N` or
/// `--workers=N`. On failure returns false and fills `error` with a
/// one-line diagnostic that names `flag`.
bool parse_positive_count(const std::string& flag, const std::string& value,
                          unsigned& out, std::string& error);

/// Same strictness for u64-valued flags (tick budgets, intervals) with an
/// inclusive minimum.
bool parse_u64_flag(const std::string& flag, const std::string& value,
                    std::uint64_t min, std::uint64_t& out, std::string& error);

}  // namespace pbse::support
