#include "support/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pbse {

namespace {
LogLevel g_level = [] {
  const char* env = std::getenv("PBSE_LOG");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  return LogLevel::kOff;
}();
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (g_level < level || msg.empty()) return;
  std::fprintf(stderr, "[pbse] %s\n", msg.c_str());
}

}  // namespace pbse
