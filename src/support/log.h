// Minimal leveled logging to stderr. Off by default so tests and benches
// stay quiet; enable with PBSE_LOG=info or PBSE_LOG=debug in the
// environment, or programmatically via set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace pbse {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2 };

/// Sets the global log threshold.
void set_log_level(LogLevel level);

/// Current threshold (initialized once from $PBSE_LOG).
LogLevel log_level();

/// Writes one formatted line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (log_level() >= level_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace pbse

#define PBSE_LOG_INFO ::pbse::detail::LogMessage(::pbse::LogLevel::kInfo)
#define PBSE_LOG_DEBUG ::pbse::detail::LogMessage(::pbse::LogLevel::kDebug)
