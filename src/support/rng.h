// Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
//
// std::mt19937 is avoided so that random sequences are identical across
// standard-library implementations; reproducing the paper's tables requires
// bit-exact determinism.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pbse {

/// xoshiro256** seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill the state; avoids the all-zero state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n) {
    // Rejection-free multiply-shift; bias is negligible (< 2^-64 * n) and
    // determinism matters more than perfect uniformity here.
    unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Raw generator state, for snapshot/restore (src/serialize). A restored
  /// Rng continues the exact sequence the saved one would have produced.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pbse
