// Lightweight named-counter registry used across the engine for
// introspection (queries issued, cache hits, forks, states killed, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pbse {

/// A bag of named monotonic counters. Cheap enough to pass by reference
/// everywhere; not thread-safe (each campaign owns its own Stats and runs
/// on one thread — merge with `merge()` after the campaigns join).
class Stats {
 public:
  void add(const std::string& name, std::uint64_t n = 1) { counters_[name] += n; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void clear() { counters_.clear(); }

  /// Adds every counter of `other` into this bag (campaign aggregation).
  void merge(const Stats& other) {
    for (const auto& [name, n] : other.all()) counters_[name] += n;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace pbse
