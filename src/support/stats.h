// Lightweight named-counter registry used across the engine for
// introspection (queries issued, cache hits, forks, states killed, ...).
//
// Since the observability subsystem landed, Stats is a thin string-keyed
// facade over obs::MetricStore: names are interned once into the global
// metric registry and the per-campaign storage is a vector indexed by
// MetricId. Hot paths intern their names up front (see e.g. the id structs
// in solver.cc / executor.cc) and call the MetricId overloads — a bounds
// check and an indexed add, no string hashing per increment. The string
// overloads remain for cold paths and tests.
//
// ORDERING CONTRACT: all() returns counters sorted by name (std::map), so
// any output derived from iterating it — bench tables, JSONL exports,
// golden files — is reproducible run to run. Locked in by
// support_test.cc:StatsIterationOrderIsSortedByName; do not weaken this to
// an unordered container.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"

namespace pbse {

/// A bag of named monotonic counters and log2 histograms. Cheap enough to
/// pass by reference everywhere; not thread-safe (each campaign owns its
/// own Stats and runs on one thread — merge with `merge()` after the
/// campaigns join).
class Stats {
 public:
  // --- Counters -----------------------------------------------------------
  void add(const std::string& name, std::uint64_t n = 1) {
    store_.add(obs::intern_metric(name), n);
  }
  void add(obs::MetricId id, std::uint64_t n = 1) { store_.add(id, n); }

  std::uint64_t get(const std::string& name) const {
    const obs::MetricId id = obs::find_metric(name);
    return id == obs::kInvalidMetric ? 0 : store_.counter(id);
  }
  std::uint64_t get(obs::MetricId id) const { return store_.counter(id); }

  /// Snapshot of every nonzero counter, SORTED BY NAME (see the ordering
  /// contract above).
  std::map<std::string, std::uint64_t> all() const {
    std::map<std::string, std::uint64_t> out;
    store_.visit_counters([&out](obs::MetricId id, std::uint64_t n) {
      out.emplace(obs::metric_name(id), n);
    });
    return out;
  }

  // --- Histograms ---------------------------------------------------------
  void observe(obs::MetricId id, std::uint64_t value) {
    store_.observe(id, value);
  }
  void observe(const std::string& name, std::uint64_t value) {
    store_.observe(obs::intern_metric(name), value);
  }
  /// nullptr when nothing was observed under that name.
  const obs::Histogram* histogram(const std::string& name) const {
    const obs::MetricId id = obs::find_metric(name);
    return id == obs::kInvalidMetric ? nullptr : store_.histogram(id);
  }

  /// Every histogram, sorted by name.
  std::map<std::string, const obs::Histogram*> histograms() const {
    std::map<std::string, const obs::Histogram*> out;
    store_.visit_histograms([&out](obs::MetricId id, const obs::Histogram& h) {
      out.emplace(obs::metric_name(id), &h);
    });
    return out;
  }

  void clear() { store_.clear(); }

  /// Adds every counter and histogram of `other` into this bag (campaign
  /// aggregation).
  void merge(const Stats& other) { store_.merge(other.store_); }

  const obs::MetricStore& store() const { return store_; }
  /// Mutable store, for snapshot restore (src/serialize).
  obs::MetricStore& mutable_store() { return store_; }

 private:
  obs::MetricStore store_;
};

}  // namespace pbse
