#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pbse {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.is_separator) widen(r.cells);

  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out << c << std::string(widths[i] - c.size(), ' ');
      if (i + 1 < widths.size()) out << " | ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total > 3 ? total - 3 : total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    if (r.is_separator)
      out << std::string(total > 3 ? total - 3 : total, '-') << '\n';
    else
      emit(r.cells);
  }
  return out.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f%%", ratio * 100.0);
  return buf;
}

}  // namespace pbse
