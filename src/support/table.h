// Plain-text table printer used by the bench harnesses to emit
// paper-style tables (Table I, II, III).
#pragma once

#include <string>
#include <vector>

namespace pbse {

/// Accumulates rows of cells and renders them as an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal separator line at this position.
  void separator();

  /// Renders the table; every column is padded to its widest cell.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats `v` with `digits` decimal places (helper for table cells).
std::string fmt_double(double v, int digits = 1);

/// Formats a ratio as a percentage string like "109%".
std::string fmt_percent(double ratio);

}  // namespace pbse
