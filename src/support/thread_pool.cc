#include "support/thread_pool.h"

#include <stdexcept>

namespace pbse {

ThreadPool::ThreadPool(unsigned num_threads) {
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();  // inline mode
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Reject rather than enqueue: a task pushed after the workers were
    // told to stop could be popped by no one, leaving a future that never
    // becomes ready — an error here is diagnosable, a lost task hangs.
    if (stopping_)
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& t : tasks) futures.push_back(submit(std::move(t)));
  // Wait for everything first so no task is left running, then surface the
  // first failure by submission order.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task routes exceptions into the future
  }
}

}  // namespace pbse
