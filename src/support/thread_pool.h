// A small fixed-size thread pool for campaign-level parallelism.
//
// Design constraints (see DESIGN.md "Parallel campaigns"):
//  * Tasks are coarse (whole pbSE / KLEE campaigns, seconds to minutes),
//    so a single mutex-guarded FIFO queue is plenty — no work stealing.
//  * Exceptions thrown by a task are captured and re-thrown from the
//    matching future's get(), never swallowed.
//  * A pool constructed with zero threads runs every task inline on the
//    submitting thread at submit() time. That degenerate mode is what
//    `--jobs 1` uses: identical code path, zero scheduling nondeterminism,
//    and no worker-thread hop for the thread-local expression interner.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pbse {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means "inline mode" (tasks run on the
  /// submitting thread inside submit()).
  explicit ThreadPool(unsigned num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future that becomes ready when it
  /// finishes. An exception escaping `fn` is delivered through the future.
  /// Throws std::runtime_error if the pool is already shutting down — a
  /// rejected task is diagnosable; a silently dropped one would leave its
  /// future forever pending.
  std::future<void> submit(std::function<void()> fn);

  /// Number of worker threads (0 in inline mode).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs every task and waits for all of them. Exceptions are collected
  /// and the FIRST one (by task index, not completion order — so failures
  /// are reported deterministically) is re-thrown after every task has
  /// settled.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pbse
