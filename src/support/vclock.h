// Deterministic virtual clock used for all time budgets in pbse.
//
// The paper measures coverage after 1 and 10 wall-clock hours on a 12-core
// Xeon. Wall time is neither reproducible nor affordable here, so every
// component charges work to a VClock instead: one tick per interpreted
// instruction, plus explicit charges for solver work. "1h" / "10h" budgets
// in the benches are tick budgets (see bench/budget.h).
#pragma once

#include <cstdint>

namespace pbse {

/// Monotonic tick counter. Not thread-safe by design: each campaign owns
/// its own VClock and runs on one thread — determinism is the point.
class VClock {
 public:
  using Ticks = std::uint64_t;

  /// Advance the clock by `n` ticks.
  void advance(Ticks n) { now_ += n; }

  /// Current tick count since construction (or last reset).
  Ticks now() const { return now_; }

  void reset() { now_ = 0; }

  /// Restores a snapshotted tick count (src/serialize): a resumed campaign
  /// continues from the exact virtual time it was checkpointed at.
  void set(Ticks now) { now_ = now; }

 private:
  Ticks now_ = 0;
};

/// A deadline against a VClock. Default-constructed deadline never expires.
class Deadline {
 public:
  Deadline() = default;
  Deadline(const VClock& clock, VClock::Ticks budget)
      : clock_(&clock), expires_at_(clock.now() + budget) {}

  bool expired() const { return clock_ != nullptr && clock_->now() >= expires_at_; }

  /// Ticks remaining before expiry; 0 if expired or max if unlimited.
  VClock::Ticks remaining() const {
    if (clock_ == nullptr) return ~VClock::Ticks{0};
    return expired() ? 0 : expires_at_ - clock_->now();
  }

 private:
  const VClock* clock_ = nullptr;
  VClock::Ticks expires_at_ = 0;
};

}  // namespace pbse
