// Target registry and the shared build helper.
#include <cstdio>
#include <cstdlib>

#include "ir/verifier.h"
#include "lang/codegen.h"
#include "targets/targets.h"

namespace pbse::targets {

ir::Module build_target(const char* source) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error)) {
    std::fprintf(stderr, "target compile error: %s\n", error.c_str());
    std::abort();
  }
  module.finalize();
  const auto problems = ir::verify(module);
  if (!problems.empty()) {
    for (const auto& p : problems)
      std::fprintf(stderr, "target verifier: %s\n", p.c_str());
    std::abort();
  }
  return module;
}

const std::vector<TargetInfo>& all_targets() {
  static const auto* targets = new std::vector<TargetInfo>{
      {"libpng", "pngtest", &pngtest_source, &make_mpng_seed,
       {"CVE-2015-7981", "CVE-2015-8540"}},
      {"libtiff", "gif2tiff", &gif2tiff_source, &make_mgif_seed, {"N", "N"}},
      {"libtiff", "tiff2rgba", &tiff2rgba_source, &make_mtif_seed, {"N"}},
      {"libtiff", "tiff2bw", &tiff2bw_source, &make_mtif_seed, {"N", "N"}},
      {"libdwarf", "dwarfdump", &dwarfdump_source, &make_mdwf_seed,
       {"CVE-2015-8538", "N", "CVE-2015-8750", "CVE-2016-2050", "N", "N", "N",
        "CVE-2016-2091", "N", "CVE-2014-9482"}},
      {"binutils", "readelf", &readelf_source, &make_melf_seed,
       {"N", "N", "N", "N"}},
      {"tcpdump", "tcpdump", &tcpdump_source, &make_mpcp_seed, {}},
  };
  return *targets;
}

}  // namespace pbse::targets
