// dwarfdump — libdwarf's dwarfdump analog.
//
// Format "MDWF": header { 'M','D','W','F', u16 nsec }, then nsec 10-byte
// section entries { u16 type | u32 off | u32 size }. Section types:
//   1 .debug_abbrev   2 .debug_info   3 .debug_line
//   4 .debug_str      5 .debug_ranges 6 .debug_macro
//
// .debug_abbrev: ULEB-coded { code, tag, nattrs, nattrs*form } lists, code
// 0 terminates. .debug_info: DIE stream { abbrev_code, per-form payloads,
// children flag }. .debug_line: file table + a bytecode state machine.
//
// Injected bugs (10 = 7 OOB reads + 2 OOB writes + 1 null deref, matching
// the paper's libdwarf tally):
//   W1 parse_abbrev: abbrev table index not bounded by 64 -> OOB write.
//   W2 parse_line: file-table index from the file, not bounded -> OOB write.
//   R1 parse_die: per-DIE form reads use the UNCLAMPED nattrs -> OOB read
//      of abbrev_forms.
//   R2 parse_die form 3: str offset indexes the 128-byte str cache
//      unchecked -> OOB read.
//   R3 parse_die form 4: block payload bytes read past the input -> OOB
//      input read.
//   R4 read_ranges: range pairs read at an unchecked offset -> OOB input
//      read.
//   R5 parse_macro: macro bytes read at unchecked section offset -> OOB
//      input read.
//   R6 parse_line extended op: argument bytes read unchecked -> OOB input
//      read.
//   R7 parse_die form 6 (sibling): peeks the sibling offset unchecked ->
//      OOB input read.
//   N1 parse_die: find_abbrev returns null for unknown codes and the tag
//      pointer is dereferenced without a check -> null deref.
//
// Phase structure: section table loop -> abbrev ULEB loop (trap) -> DIE
// walk (trap; recursion via explicit depth) -> line state machine (trap)
// -> ranges/macro dumps (deep phases).
#include "targets/targets.h"

namespace pbse::targets {

const char* dwarfdump_source() {
  return R"MINIC(
// ---- mini dwarfdump --------------------------------------------------------

u32 sec_abbrev_off;  u32 sec_abbrev_size;
u32 sec_info_off;    u32 sec_info_size;
u32 sec_line_off;    u32 sec_line_size;
u32 sec_str_off;     u32 sec_str_size;
u32 sec_ranges_off;  u32 sec_ranges_size;
u32 sec_macro_off;   u32 sec_macro_size;
u32 sec_aranges_off; u32 sec_aranges_size;
u32 sec_frame_off;   u32 sec_frame_size;

u32 abbrev_codes[64];
u8 abbrev_tags[64];
u8 abbrev_nattrs[64];
u8 abbrev_forms[256];
u32 n_abbrevs;

u8 str_cache[128];
u8 line_files[16];

u32 uleb_pos;

u32 read_u16(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8);
}

u32 read_u32(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8)
       | ((u32)f[off + 2] << 16) | ((u32)f[off + 3] << 24);
}

u32 read_uleb(u8* f, u32 size) {
  u32 result = 0;
  u32 shift = 0;
  while (uleb_pos < size) {
    u32 b = (u32)f[uleb_pos];
    uleb_pos += 1;
    result = result | ((b & 0x7f) << shift);
    if ((b & 0x80) == 0) { break; }
    shift += 7;
    if (shift > 28) { break; }
  }
  return result;
}

u32 read_sections(u8* f, u32 size) {
  if (size < 6) { return 0; }
  if (f[0] != 'M') { return 0; }
  if (f[1] != 'D') { return 0; }
  if (f[2] != 'W') { return 0; }
  if (f[3] != 'F') { return 0; }
  u32 nsec = read_u16(f, 4);
  if (6 + nsec * 10 > size) { return 0; }
  for (u32 i = 0; i < nsec; ++i) {      // section table loop
    u32 e = 6 + i * 10;
    u32 stype = read_u16(f, e);
    u32 soff = read_u32(f, e + 2);
    u32 ssize = read_u32(f, e + 6);
    if (stype == 1) { sec_abbrev_off = soff; sec_abbrev_size = ssize; }
    else if (stype == 2) { sec_info_off = soff; sec_info_size = ssize; }
    else if (stype == 3) { sec_line_off = soff; sec_line_size = ssize; }
    else if (stype == 4) { sec_str_off = soff; sec_str_size = ssize; }
    else if (stype == 5) { sec_ranges_off = soff; sec_ranges_size = ssize; }
    else if (stype == 6) { sec_macro_off = soff; sec_macro_size = ssize; }
    else if (stype == 7) { sec_aranges_off = soff; sec_aranges_size = ssize; }
    else if (stype == 8) { sec_frame_off = soff; sec_frame_size = ssize; }
  }
  out(nsec);
  return 1;
}

// Trap phase: ULEB decode loop over the abbrev section.
u32 parse_abbrev(u8* f, u32 size) {
  if (sec_abbrev_size == 0) { return 0; }
  if (sec_abbrev_off + sec_abbrev_size > size) { return 0; }
  u32 limit = sec_abbrev_off + sec_abbrev_size;
  uleb_pos = sec_abbrev_off;
  n_abbrevs = 0;
  while (uleb_pos < limit) {
    u32 code = read_uleb(f, limit);
    if (code == 0) { break; }
    u32 tag = read_uleb(f, limit);
    u32 nattrs = read_uleb(f, limit);
    abbrev_codes[n_abbrevs] = code;       // <-- W1: OOB write when > 64
    abbrev_tags[n_abbrevs] = (u8)tag;
    abbrev_nattrs[n_abbrevs] = (u8)nattrs;  // stored UNCLAMPED (see R1)
    for (u32 j = 0; j < nattrs; ++j) {
      u32 form = read_uleb(f, limit);
      if (j < 4 && n_abbrevs < 64) {
        abbrev_forms[n_abbrevs * 4 + j] = (u8)form;
      }
    }
    n_abbrevs += 1;
  }
  out(n_abbrevs);
  return 1;
}

// Returns a pointer to the abbrev's tag byte, or null when `code` is not
// declared (the caller must check -- it does not: N1).
u8* find_abbrev(u32 code) {
  for (u32 i = 0; i < n_abbrevs && i < 64; ++i) {
    if (abbrev_codes[i] == code) {
      return &abbrev_tags[i];
    }
  }
  return 0;
}

u32 abbrev_index(u32 code) {
  for (u32 i = 0; i < n_abbrevs && i < 64; ++i) {
    if (abbrev_codes[i] == code) { return i; }
  }
  return 64;
}

u32 load_str_cache(u8* f, u32 size) {
  if (sec_str_size == 0) { return 1; }
  if (sec_str_off + sec_str_size > size) { return 0; }
  u32 n = sec_str_size;
  if (n > 128) { n = 128; }
  for (u32 i = 0; i < n; ++i) {
    str_cache[i] = f[sec_str_off + i];
  }
  return 1;
}

// R4: range pairs are read at roff without checking against the section
// (or file) end.
u32 read_ranges(u8* f, u32 size, u32 attr_value) {
  u32 roff = sec_ranges_off + attr_value;
  u32 pairs = 0;
  while (pairs < 8) {
    u32 lo = read_u32(f, roff);          // <-- R4: OOB input read
    u32 hi = read_u32(f, roff + 4);
    roff += 8;
    pairs += 1;
    if (lo == 0 && hi == 0) { break; }
    out(hi - lo);
  }
  return pairs;
}

// Trap phase: the DIE walk over .debug_info.
u32 parse_info(u8* f, u32 size) {
  if (sec_info_size == 0) { return 0; }
  if (sec_info_off + sec_info_size > size) { return 0; }
  u32 limit = sec_info_off + sec_info_size;
  uleb_pos = sec_info_off;
  u32 depth = 0;
  u32 dies = 0;
  while (uleb_pos < limit && dies < 200) {
    u32 code = read_uleb(f, limit);
    if (code == 0) {
      if (depth == 0) { break; }
      depth -= 1;
      continue;
    }
    u8* tagp = find_abbrev(code);
    u8 tag = *tagp;                      // <-- N1: null deref on unknown code
    u32 idx = abbrev_index(code);
    u32 nattrs = (u32)abbrev_nattrs[idx];
    for (u32 j = 0; j < nattrs; ++j) {
      u32 form = (u32)abbrev_forms[idx * 4 + j];  // <-- R1: j unclamped
      if (form == 1) {                   // uleb constant
        out(read_uleb(f, limit));
      } else if (form == 2) {            // 4-byte constant
        out(read_u32(f, uleb_pos));
        uleb_pos += 4;
      } else if (form == 3) {            // str offset
        u32 soff = read_uleb(f, limit);
        u8 first = str_cache[soff];      // <-- R2: OOB read of str cache
        out((u32)first);
      } else if (form == 4) {            // block
        u32 blen = read_uleb(f, limit);
        u32 bsum = 0;
        for (u32 k = 0; k < blen && k < 64; ++k) {
          bsum += (u32)f[uleb_pos];      // <-- R3: OOB input read
          uleb_pos += 1;
        }
        out(bsum);
      } else if (form == 5) {            // ranges ref
        u32 rv = read_uleb(f, limit);
        read_ranges(f, size, rv);
      } else if (form == 6) {            // sibling offset
        u32 sib = read_uleb(f, limit);
        out((u32)f[sec_info_off + sib]); // <-- R7: OOB input read
      } else {
        uleb_pos += 1;                   // unknown form: skip a byte
      }
    }
    if (uleb_pos < limit && f[uleb_pos] != 0) {
      depth += 1;                        // has children
    }
    if (uleb_pos < limit) { uleb_pos += 1; }
    dies += 1;
    out(tag);
  }
  out(dies);
  return 1;
}

// Trap phase: line-number state machine.
u32 parse_line(u8* f, u32 size) {
  if (sec_line_size == 0) { return 1; }
  if (sec_line_off + sec_line_size > size) { return 0; }
  u32 limit = sec_line_off + sec_line_size;
  uleb_pos = sec_line_off;
  u32 nfiles = read_uleb(f, limit);
  for (u32 i = 0; i < nfiles; ++i) {
    u32 name_hash = read_uleb(f, limit);
    line_files[i] = (u8)name_hash;       // <-- W2: OOB write when > 16
  }
  u32 address = 0;
  u32 line = 1;
  u32 emitted = 0;
  while (uleb_pos < limit && emitted < 100) {
    u32 op = (u32)f[uleb_pos];
    uleb_pos += 1;
    if (op == 0) {                       // extended op
      u32 arglen = read_uleb(f, limit);
      u32 asum = 0;
      for (u32 k = 0; k < arglen && k < 32; ++k) {
        asum += (u32)f[uleb_pos + k];    // <-- R6: OOB input read
      }
      uleb_pos += arglen;
      out(asum);
    } else if (op == 1) {                // copy
      out(address);
      out(line);
      emitted += 1;
    } else if (op == 2) {                // advance pc
      address += read_uleb(f, limit);
    } else if (op == 3) {                // advance line
      line += read_uleb(f, limit);
    } else {                             // special opcode
      address += op / 4;
      line += op % 4;
      out(line);
      emitted += 1;
    }
  }
  out(emitted);
  return 1;
}

// Deep phase. R5: macro bytes are read at the raw section offset with no
// bound check at all.
u32 parse_macro(u8* f, u32 size) {
  if (sec_macro_size == 0) { return 1; }
  u32 n = sec_macro_size;
  if (n > 32) { n = 32; }
  u32 sum = 0;
  for (u32 i = 0; i < n; ++i) {
    sum += (u32)f[sec_macro_off + i];    // <-- R5: OOB input read
  }
  out(sum);
  return 1;
}

// .debug_aranges: address-range tuple loop per compile unit.
u32 parse_aranges(u8* f, u32 size) {
  if (sec_aranges_size == 0) { return 1; }
  if (sec_aranges_off + sec_aranges_size > size) { return 0; }
  u32 limit = sec_aranges_off + sec_aranges_size;
  u32 pos = sec_aranges_off;
  u32 tuples = 0;
  while (pos + 8 <= limit && tuples < 64) {
    u32 addr = read_u32(f, pos);
    u32 length = read_u32(f, pos + 4);
    pos += 8;
    if (addr == 0 && length == 0) { break; }
    if (length == 0) { out('z'); } else { out(addr + length); }
    tuples += 1;
  }
  out(tuples);
  return 1;
}

// .debug_frame: a call-frame-information state machine (trap-ish loop).
u32 parse_frame(u8* f, u32 size) {
  if (sec_frame_size == 0) { return 1; }
  if (sec_frame_off + sec_frame_size > size) { return 0; }
  u32 limit = sec_frame_off + sec_frame_size;
  uleb_pos = sec_frame_off;
  u32 cfa_reg = 7;
  u32 cfa_off = 8;
  u32 loc = 0;
  u32 rules = 0;
  while (uleb_pos < limit && rules < 128) {
    u32 op = (u32)f[uleb_pos];
    uleb_pos += 1;
    u32 hi = op >> 6;
    u32 lo = op & 0x3f;
    if (hi == 1) {                      // advance_loc
      loc += lo;
      out(loc);
    } else if (hi == 2) {               // offset(reg, uleb)
      u32 o = read_uleb(f, limit);
      out(lo);
      out(o * 4);
    } else if (hi == 3) {               // restore(reg)
      out(lo);
    } else if (op == 0x0c) {            // def_cfa reg, off
      cfa_reg = read_uleb(f, limit);
      cfa_off = read_uleb(f, limit);
      out(cfa_reg);
      out(cfa_off);
    } else if (op == 0x0e) {            // def_cfa_offset
      cfa_off = read_uleb(f, limit);
      out(cfa_off);
    } else if (op == 0x02) {            // advance_loc1
      if (uleb_pos < limit) { loc += (u32)f[uleb_pos]; uleb_pos += 1; }
      out(loc);
    } else if (op == 0x00) {            // nop
    } else {
      out(op);
    }
    rules += 1;
  }
  out(rules);
  return 1;
}

u32 main(u8* file, u32 size) {
  if (read_sections(file, size) == 0) { return 1; }
  if (load_str_cache(file, size) == 0) { return 2; }
  if (parse_abbrev(file, size) == 0) { return 3; }
  if (parse_info(file, size) == 0) { return 4; }
  if (parse_line(file, size) == 0) { return 5; }
  if (parse_macro(file, size) == 0) { return 6; }
  if (parse_aranges(file, size) == 0) { return 7; }
  if (parse_frame(file, size) == 0) { return 8; }
  return 0;
}
)MINIC";
}

namespace {

void push_u16d(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void push_u32d(std::vector<std::uint8_t>& v, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void push_uleb(std::vector<std::uint8_t>& v, std::uint32_t x) {
  do {
    std::uint8_t b = x & 0x7f;
    x >>= 7;
    if (x != 0) b |= 0x80;
    v.push_back(b);
  } while (x != 0);
}

}  // namespace

std::vector<std::uint8_t> make_mdwf_seed(unsigned scale) {
  // Build the six section payloads first.
  std::vector<std::uint8_t> abbrev;
  // abbrev 1: tag 17 (compile unit), 3 attrs: forms 1 (uleb), 3 (str), 2 (u32)
  push_uleb(abbrev, 1);
  push_uleb(abbrev, 17);
  push_uleb(abbrev, 3);
  push_uleb(abbrev, 1);
  push_uleb(abbrev, 3);
  push_uleb(abbrev, 2);
  // abbrev 2: tag 46 (subprogram), 2 attrs: forms 4 (block), 5 (ranges)
  push_uleb(abbrev, 2);
  push_uleb(abbrev, 46);
  push_uleb(abbrev, 2);
  push_uleb(abbrev, 4);
  push_uleb(abbrev, 5);
  push_uleb(abbrev, 0);  // terminator

  std::vector<std::uint8_t> info;
  // DIE: compile unit (code 1) with children.
  push_uleb(info, 1);
  push_uleb(info, 42);            // form 1: uleb constant
  push_uleb(info, 4);             // form 3: str offset 4
  push_u32d(info, 0x11223344);    // form 2
  info.push_back(1);              // children flag
  for (unsigned i = 0; i < scale; ++i) {
    // DIE: subprogram (code 2), no children.
    push_uleb(info, 2);
    push_uleb(info, 3);           // form 4: block length 3
    info.push_back(static_cast<std::uint8_t>(i));
    info.push_back(static_cast<std::uint8_t>(i + 1));
    info.push_back(static_cast<std::uint8_t>(i + 2));
    push_uleb(info, 0);           // form 5: ranges at offset 0
    info.push_back(0);            // no children
  }
  push_uleb(info, 0);  // end of children

  std::vector<std::uint8_t> line;
  push_uleb(line, 2);   // two files
  push_uleb(line, 0x21);
  push_uleb(line, 0x35);
  for (unsigned i = 0; i < 4 * scale; ++i) {
    line.push_back(2);  // advance pc
    push_uleb(line, 4);
    line.push_back(1);  // copy
  }
  line.push_back(0);    // extended op
  push_uleb(line, 2);
  line.push_back(9);
  line.push_back(9);

  std::vector<std::uint8_t> str;
  for (unsigned i = 0; i < 32 + 8 * scale && i < 128; ++i)
    str.push_back(static_cast<std::uint8_t>('a' + i % 26));

  std::vector<std::uint8_t> ranges;
  push_u32d(ranges, 0x1000);
  push_u32d(ranges, 0x2000);
  push_u32d(ranges, 0);
  push_u32d(ranges, 0);

  std::vector<std::uint8_t> macro;
  for (unsigned i = 0; i < 16; ++i) macro.push_back(static_cast<std::uint8_t>(i));

  std::vector<std::uint8_t> aranges;
  for (unsigned i = 0; i < 2 * scale; ++i) {
    push_u32d(aranges, 0x4000 + i * 0x100);
    push_u32d(aranges, 0x80 + i);
  }
  push_u32d(aranges, 0);
  push_u32d(aranges, 0);

  std::vector<std::uint8_t> frame;
  frame.push_back(0x0c);        // def_cfa r7, 8
  push_uleb(frame, 7);
  push_uleb(frame, 8);
  for (unsigned i = 0; i < 3 * scale; ++i) {
    frame.push_back(static_cast<std::uint8_t>(0x40 | (1 + i % 16)));  // advance
    frame.push_back(static_cast<std::uint8_t>(0x80 | (i % 8)));       // offset
    push_uleb(frame, 2 + i % 4);
  }
  frame.push_back(0x0e);        // def_cfa_offset
  push_uleb(frame, 16);

  // Assemble: header + section table + payloads.
  const std::vector<std::pair<std::uint16_t, const std::vector<std::uint8_t>*>>
      sections = {{1, &abbrev}, {2, &info},    {3, &line},
                  {4, &str},    {5, &ranges},  {6, &macro},
                  {7, &aranges}, {8, &frame}};
  std::vector<std::uint8_t> f = {'M', 'D', 'W', 'F'};
  push_u16d(f, static_cast<std::uint32_t>(sections.size()));
  std::uint32_t off =
      6 + static_cast<std::uint32_t>(sections.size()) * 10;
  std::vector<std::uint8_t> table;
  for (const auto& [stype, payload] : sections) {
    push_u16d(table, stype);
    push_u32d(table, off);
    push_u32d(table, static_cast<std::uint32_t>(payload->size()));
    off += static_cast<std::uint32_t>(payload->size());
  }
  f.insert(f.end(), table.begin(), table.end());
  for (const auto& [stype, payload] : sections) {
    (void)stype;
    f.insert(f.end(), payload->begin(), payload->end());
  }
  return f;
}

}  // namespace pbse::targets
