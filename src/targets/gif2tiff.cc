// gif2tiff — libtiff's gif2tiff analog.
//
// Format "MGIF": 6-byte header "MGIF87"/"MGIF89", screen descriptor
//   { u16 width | u16 height | u8 flags | u8 background | u8 aspect },
// optional global color table (when flags & 0x80; size 3 * 2^((flags&7)+1)),
// then blocks: 0x2C image descriptor + LZW-style coded data in sub-blocks,
// 0x21 extensions (graphics control 0xF9 / comment 0xFE / plain text 0x01),
// 0x3B trailer. After the trailer the decoded image is converted and
// written as a mini-TIFF (row conversion + strip checksumming).
//
// Injected bugs (2, Table III libtiff/gif2tiff rows, both "N"):
//   * readcolormap: the entry count is computed with the WRONG flag mask
//     ((flags & 15) instead of (flags & 7)), so crafted flags make
//     3 * 2^16 entries stream into the fixed 768-byte color map ->
//     out-of-bounds write.
//   * lzw_decode: the table-growth guard uses the GIF-spec maximum (4096)
//     instead of the 512-entry tables actually allocated -> out-of-bounds
//     write once a clear-free stream pushes `avail` past 512 (and the
//     prefix-chain expansion then reads out of bounds too).
//
// Phase structure (the paper's Fig 4 subject): header/colormap/extension
// handling -> LZW decode double loop (trap) -> row conversion loop (trap)
// -> strip write loop (trap). Distinct long loop regimes so BBV clustering
// has real phases to find.
#include "targets/targets.h"

namespace pbse::targets {

const char* gif2tiff_source() {
  return R"MINIC(
// ---- mini gif2tiff ---------------------------------------------------------

u32 scr_width;
u32 scr_height;
u32 scr_flags;
u32 gct_entries;
u32 interlaced;
u32 transparent_index;

u8 colormap[768];
u8 gamma_map[768];
u16 prefix_tab[512];
u8 suffix_tab[512];
u8 stack_buf[512];
u8 image_buf[4096];
u8 row_rgb[1024];
u32 strip_sums[64];

u32 read_u16(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8);
}

u32 check_header(u8* f, u32 size) {
  if (size < 13) { return 0; }
  if (f[0] != 'M') { return 0; }
  if (f[1] != 'G') { return 0; }
  if (f[2] != 'I') { return 0; }
  if (f[3] != 'F') { return 0; }
  if (f[4] != '8') { return 0; }
  if (f[5] != '7' && f[5] != '9') { return 0; }
  scr_width = read_u16(f, 6);
  scr_height = read_u16(f, 8);
  scr_flags = (u32)f[10];
  out(scr_width);
  out(scr_height);
  return 1;
}

// BUG 1: the mask should be (flags & 7); & 15 lets entries reach 2^16 and
// the copy overruns the 768-byte colormap (out-of-bounds write).
u32 readcolormap(u8* f, u32 size, u32 off) {
  u32 bits = (scr_flags & 15) + 1;
  u32 entries = (u32)1 << bits;
  gct_entries = entries;
  for (u32 i = 0; i < entries; ++i) {
    if (off + 3 > size) { return 0; }
    colormap[i * 3] = f[off];          // <-- OOB write when entries > 256
    colormap[i * 3 + 1] = f[off + 1];
    colormap[i * 3 + 2] = f[off + 2];
    off += 3;
  }
  out(entries);
  return off;
}

// Gamma-correct the palette (pure table pass; part of the setup phase).
u32 gamma_correct() {
  for (u32 i = 0; i < 768; ++i) {
    u32 v = (u32)colormap[i];
    // piecewise approximation of v^(1/2.2) scaled to 255
    u32 g = v;
    if (v < 64) { g = v * 2; }
    else if (v < 128) { g = 96 + v / 2; }
    else { g = 128 + v / 4; }
    if (g > 255) { g = 255; }
    gamma_map[i] = (u8)g;
  }
  return 1;
}

// LZW-style decode over the sub-block byte stream. The nested loops over
// sub-blocks and codes are the trap phase.
// BUG 2: `code` indexes prefix_tab/suffix_tab without the table-size
// check -> out-of-bounds read for crafted streams.
u32 lzw_decode(u8* f, u32 size, u32 off, u32 pixels) {
  if (off >= size) { return 0; }
  u32 datasize = (u32)f[off];
  off += 1;
  if (datasize > 8) { return 0; }
  u32 clear = (u32)1 << datasize;
  u32 eoi = clear + 1;
  u32 avail = clear + 2;
  u32 codesize = datasize + 1;
  u32 codemask = ((u32)1 << codesize) - 1;
  u32 bits = 0;
  u32 nbits = 0;
  u32 oldcode = 0xffff;
  u32 produced = 0;

  for (u32 i = clear; i > 0; --i) {
    prefix_tab[i - 1] = 0xffff;
    suffix_tab[i - 1] = (u8)(i - 1);
  }

  while (off < size) {
    u32 blocklen = (u32)f[off];
    off += 1;
    if (blocklen == 0) { break; }
    if (off + blocklen > size) { return 0; }
    for (u32 b = 0; b < blocklen; ++b) {
      bits = bits | ((u32)f[off + b] << nbits);
      nbits += 8;
      while (nbits >= codesize) {
        u32 code = bits & codemask;
        bits = bits >> codesize;
        nbits -= codesize;
        if (code == clear) {
          avail = clear + 2;
          codesize = datasize + 1;
          codemask = ((u32)1 << codesize) - 1;
          oldcode = 0xffff;
          continue;
        }
        if (code == eoi) { out(produced); return produced; }
        // Expand the code through the prefix chain.
        u32 sp = 0;
        u32 cur = code;
        while (cur > clear && sp < 500) {
          stack_buf[sp] = suffix_tab[cur];   // <-- OOB read: cur unchecked
          cur = (u32)prefix_tab[cur];        //     against the table size
          sp += 1;
        }
        stack_buf[sp] = suffix_tab[cur & 511];
        sp += 1;
        while (sp > 0) {
          sp -= 1;
          image_buf[produced & 4095] = stack_buf[sp];
          produced += 1;
          if (produced > pixels) { return produced; }
        }
        if (oldcode != 0xffff && avail < 4096) {   // <-- wrong bound: the
          prefix_tab[avail] = (u16)oldcode;          //     tables hold 512
          suffix_tab[avail] = stack_buf[0];          //     entries (OOB write
          avail += 1;                                //     once avail >= 512)
          if ((avail & codemask) == 0 && codesize < 12) {
            codesize += 1;
            codemask = ((u32)1 << codesize) - 1;
          }
        }
        oldcode = code;
      }
    }
    off += blocklen;
  }
  return produced;
}

u32 skip_subblocks(u8* f, u32 size, u32 off) {
  while (off < size) {
    u32 len = (u32)f[off];
    off += 1;
    if (len == 0) { return off; }
    off += len;
  }
  return off;
}

// Extension dispatch: graphics control sets transparency; others skipped.
u32 handle_extension(u8* f, u32 size, u32 off) {
  if (off >= size) { return 0; }
  u32 label = (u32)f[off];
  off += 1;
  if (label == 0xF9) {                   // graphics control
    if (off + 6 > size) { return 0; }
    u32 blocklen = (u32)f[off];
    u32 gflags = (u32)f[off + 1];
    if (blocklen == 4 && (gflags & 1)) {
      transparent_index = (u32)f[off + 4];
      out(transparent_index);
    }
    return skip_subblocks(f, size, off);
  }
  if (label == 0xFE) {                   // comment: checksum the text
    u32 pos = off;
    u32 csum = 0;
    while (pos < size) {
      u32 len = (u32)f[pos];
      pos += 1;
      if (len == 0) { break; }
      if (pos + len > size) { return 0; }
      for (u32 i = 0; i < len; ++i) { csum += (u32)f[pos + i]; }
      pos += len;
    }
    out(csum);
    return pos;
  }
  if (label == 0x01) {                   // plain text: skip grid header
    if (off + 13 > size) { return 0; }
    return skip_subblocks(f, size, off + 13);
  }
  return skip_subblocks(f, size, off);
}

// Phase: convert decoded indices to RGB rows through the gamma-corrected
// palette (per-pixel loop over the whole image).
u32 convert_rows(u32 width, u32 height) {
  u32 rows = height;
  if (rows > 64) { rows = 64; }
  u32 cols = width;
  if (cols > 255) { cols = 255; }
  u32 converted = 0;
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) {
      u32 idx = (u32)image_buf[(r * cols + c) & 4095];
      u32 pi = (idx & 255) * 3;
      row_rgb[(c * 3) & 1023] = gamma_map[pi];
      row_rgb[(c * 3 + 1) & 1023] = gamma_map[pi + 1];
      row_rgb[(c * 3 + 2) & 1023] = gamma_map[pi + 2];
      converted += 1;
    }
    strip_sums[r & 63] = (u32)row_rgb[0] + (u32)row_rgb[1];
  }
  out(converted);
  return converted;
}

// Phase: write TIFF strips (checksum loop standing in for the encoder).
u32 write_strips(u32 width, u32 height) {
  u32 rows = height;
  if (rows > 64) { rows = 64; }
  u32 cols = width;
  if (cols > 255) { cols = 255; }
  u32 checksum = 0;
  for (u32 r = 0; r < rows; ++r) {
    u32 rowsum = strip_sums[r & 63];
    for (u32 c = 0; c < cols; ++c) {
      u32 idx = (u32)image_buf[(r * cols + c) & 4095];
      rowsum = rowsum + (u32)colormap[(idx & 255) * 3];
      rowsum = (rowsum << 1) | (rowsum >> 31);
    }
    checksum = checksum ^ rowsum;
    out(rowsum & 0xff);
  }
  out(checksum);
  return 1;
}

u32 pixel_hist[16];

// Histogram analysis over the decoded image: the branches below only
// unlock when many pixels take specific values — trivially true for real
// images (the seed), nearly unreachable for symbolic execution that must
// steer every pixel through the LZW decoder.
u32 analyze_histogram(u32 width, u32 height) {
  for (u32 i = 0; i < 16; ++i) { pixel_hist[i] = 0; }
  u32 n = width * height;
  if (n > 4096) { n = 4096; }
  for (u32 i = 0; i < n; ++i) {
    pixel_hist[(u32)image_buf[i] & 15] += 1;
  }
  u32 classes = 0;
  if (pixel_hist[0] > 16) { out('0'); classes += 1; }
  if (pixel_hist[1] > 16) { out('1'); classes += 1; }
  if (pixel_hist[2] > 16) { out('2'); classes += 1; }
  if (pixel_hist[3] > 16) { out('3'); classes += 1; }
  if (pixel_hist[4] > 16) { out('4'); classes += 1; }
  if (pixel_hist[5] > 16) { out('5'); classes += 1; }
  if (pixel_hist[6] > 16) { out('6'); classes += 1; }
  if (pixel_hist[7] > 16) { out('7'); classes += 1; }
  if (classes > 6) { out('R'); }         // rich palette usage
  else if (classes > 3) { out('M'); }
  else if (classes > 1) { out('P'); }
  else { out('F'); }                     // flat image
  return classes;
}

// Edge statistics: adjacent-pixel differences classified into buckets.
u32 detect_edges(u32 width, u32 height) {
  u32 cols = width;
  if (cols > 255) { cols = 255; }
  u32 rows = height;
  if (rows > 64) { rows = 64; }
  if (cols < 2 || rows < 1) { return 0; }
  u32 flat = 0;
  u32 soft = 0;
  u32 hard = 0;
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 1; c < cols; ++c) {
      u32 a = (u32)image_buf[(r * cols + c - 1) & 4095];
      u32 b = (u32)image_buf[(r * cols + c) & 4095];
      u32 d = a > b ? a - b : b - a;
      if (d == 0) { flat += 1; }
      else if (d < 3) { soft += 1; }
      else { hard += 1; }
    }
  }
  if (hard > soft && hard > flat) { out('H'); }
  else if (soft > flat) { out('S'); }
  else { out('L'); }
  out(flat);
  out(soft);
  out(hard);
  return hard;
}

// TIFF writer options, decided from raw GIF header fields: aspect byte,
// screen flags (sort / color resolution bits), background index and the
// transparency settings. Every branch is one more block that phase-guided
// exploration unlocks by flipping a single input byte.
u32 render_options(u8* f) {
  u32 opts = 0;
  u32 aspect = (u32)f[12];
  if (aspect == 0) { out('d'); }                 // default 1:1
  else if (aspect < 49) { opts |= 1; out('n'); } // narrow
  else if (aspect == 49) { opts |= 2; out('q'); }// square
  else { opts |= 3; out('w'); }                  // wide
  if (scr_flags & 0x08) { opts |= 4; out('S'); } // sorted palette
  u32 cres = (scr_flags >> 4) & 7;               // color resolution
  if (cres == 0) { out('1'); }
  else if (cres < 3) { opts |= 8; out('4'); }
  else if (cres < 6) { opts |= 16; out('6'); }
  else { opts |= 32; out('8'); }
  u32 bg = (u32)f[11];                           // background index
  if (bg >= gct_entries) { out('B'); opts |= 64; }
  else if (bg == transparent_index) { out('T'); opts |= 128; }
  else { out('b'); }
  if (interlaced) { opts |= 256; out('I'); }
  return opts;
}

// Strip compression choice: run-length heuristic over the first row, with
// the decision thresholds driven by the color-resolution bits.
u32 choose_compression(u32 width, u32 opts) {
  u32 cols = width;
  if (cols > 255) { cols = 255; }
  u32 runs = 1;
  for (u32 c = 1; c < cols; ++c) {
    if (image_buf[c] != image_buf[c - 1]) { runs += 1; }
  }
  u32 threshold = 32;
  if (opts & 8) { threshold = 16; }
  else if (opts & 16) { threshold = 48; }
  else if (opts & 32) { threshold = 96; }
  if (runs < threshold / 4) { out('R'); return 2; }  // RLE pays off
  if (runs < threshold) { out('L'); return 1; }      // LZW
  out('N');
  return 0;                                          // store raw
}

u32 main(u8* file, u32 size) {
  if (check_header(file, size) == 0) { return 1; }
  u32 off = 13;
  if (scr_flags & 0x80) {
    off = readcolormap(file, size, off);
    if (off == 0) { return 2; }
    gamma_correct();
  }
  u32 images = 0;
  u32 last_w = 0;
  u32 last_h = 0;
  while (off < size) {
    u32 block = (u32)file[off];
    off += 1;
    if (block == 0x2C) {                 // image descriptor
      if (off + 9 > size) { return 3; }
      u32 iw = read_u16(file, off + 4);
      u32 ih = read_u16(file, off + 6);
      u32 iflags = (u32)file[off + 8];
      interlaced = (iflags >> 6) & 1;
      off += 9;
      if (iw == 0 || ih == 0) { return 4; }
      if (iw < 8 || ih < 8) { out('t'); return 10; }  // no thumbnail strips
      u32 produced = lzw_decode(file, size, off, iw * ih);
      if (produced == 0) { return 5; }
      off = skip_subblocks(file, size, off + 1);
      last_w = iw;
      last_h = ih;
      images += 1;
    } else if (block == 0x21) {          // extension
      off = handle_extension(file, size, off);
      if (off == 0) { return 6; }
    } else if (block == 0x3B) {          // trailer
      if (images == 0) { return 7; }
      u32 opts = render_options(file);
      convert_rows(last_w, last_h);
      analyze_histogram(last_w, last_h);
      detect_edges(last_w, last_h);
      choose_compression(last_w, opts);
      write_strips(last_w, last_h);
      out(images);
      return 0;
    } else {
      return 8;
    }
  }
  return 9;
}
)MINIC";
}

std::vector<std::uint8_t> make_mgif_seed(unsigned scale) {
  std::vector<std::uint8_t> g = {'M', 'G', 'I', 'F', '8', '7'};
  const std::uint32_t width = 8 * scale;
  const std::uint32_t height = 4 * scale;
  g.push_back(static_cast<std::uint8_t>(width));
  g.push_back(static_cast<std::uint8_t>(width >> 8));
  g.push_back(static_cast<std::uint8_t>(height));
  g.push_back(static_cast<std::uint8_t>(height >> 8));
  g.push_back(0x80 | 0x02 | 0x20);  // GCT, 8 entries, color res 2
  g.push_back(1);                   // background index
  g.push_back(49);                  // aspect: square

  for (unsigned i = 0; i < 8; ++i) {  // color table: 8 entries
    g.push_back(static_cast<std::uint8_t>(i * 30));
    g.push_back(static_cast<std::uint8_t>(255 - i * 30));
    g.push_back(static_cast<std::uint8_t>(i * 11));
  }

  // Graphics-control extension with transparency.
  g.push_back(0x21);
  g.push_back(0xF9);
  g.push_back(4);
  g.push_back(1);  // flags: transparent
  g.push_back(0);
  g.push_back(0);
  g.push_back(3);  // transparent index
  g.push_back(0);

  // A comment extension whose text scales with the seed.
  g.push_back(0x21);
  g.push_back(0xFE);
  for (unsigned chunk = 0; chunk < scale; ++chunk) {
    g.push_back(32);
    for (unsigned i = 0; i < 32; ++i)
      g.push_back(static_cast<std::uint8_t>('a' + (chunk + i) % 26));
  }
  g.push_back(0);

  // Two images: the per-image LZW decode runs are temporally distinct
  // phases that execute the SAME code — exactly the case where the
  // coverage element of the BBV is needed to tell them apart (Fig 4).
  auto push_image = [&g](std::uint32_t w, std::uint32_t h) {
    g.push_back(0x2C);
    for (int i = 0; i < 4; ++i) g.push_back(0);  // left, top
    g.push_back(static_cast<std::uint8_t>(w));
    g.push_back(static_cast<std::uint8_t>(w >> 8));
    g.push_back(static_cast<std::uint8_t>(h));
    g.push_back(static_cast<std::uint8_t>(h >> 8));
    g.push_back(0);  // image flags

    // LZW data: min code size 3 (clear=8, eoi=9). A clear code every four
    // literals keeps `avail` below 16 so the decoder's code size stays at
    // 4 bits, matching this packer.
    g.push_back(3);  // datasize
    std::vector<std::uint8_t> codes;
    for (std::uint32_t p = 0; p < w * h && p < 6000; ++p) {
      if (p % 4 == 0) codes.push_back(8);  // clear
      codes.push_back(static_cast<std::uint8_t>(p % 8));  // literal
    }
    codes.push_back(9);  // eoi
    // Pack 4-bit codes little-endian.
    std::vector<std::uint8_t> packed;
    std::uint32_t bits = 0, nbits = 0;
    for (std::uint8_t c : codes) {
      bits |= static_cast<std::uint32_t>(c) << nbits;
      nbits += 4;
      while (nbits >= 8) {
        packed.push_back(static_cast<std::uint8_t>(bits & 0xff));
        bits >>= 8;
        nbits -= 8;
      }
    }
    if (nbits > 0) packed.push_back(static_cast<std::uint8_t>(bits & 0xff));
    // Emit as sub-blocks of <= 255 bytes.
    std::size_t pos = 0;
    while (pos < packed.size()) {
      const std::size_t n = std::min<std::size_t>(255, packed.size() - pos);
      g.push_back(static_cast<std::uint8_t>(n));
      g.insert(g.end(), packed.begin() + pos, packed.begin() + pos + n);
      pos += n;
    }
    g.push_back(0);  // sub-block terminator
  };
  // Multiple frames, comment-separated: the repeated LZW decodes are the
  // temporally-distinct same-code phases of Fig 4.
  push_image(width, height);
  for (int frame = 0; frame < 2; ++frame) {
    g.push_back(0x21);
    g.push_back(0xFE);
    g.push_back(8);
    for (unsigned i = 0; i < 8; ++i)
      g.push_back(static_cast<std::uint8_t>('f' + i + frame));
    g.push_back(0);
    push_image(width, height);
  }

  g.push_back(0x3B);  // trailer
  return g;
}

}  // namespace pbse::targets
