// pngtest — libpng analog.
//
// Format "MPNG": 8-byte signature, then chunks of
//   { u32 len | 4-byte type | data[len] | u32 crc }, where crc is a
//   rotate-sum over TYPE + DATA (like real PNG CRCs cover both).
// Chunk types: IHDR, PLTE, tIME, tEXt, IDAT, IEND.
//
// Injected bugs (the paper's libpng case study):
//   * png_convert_to_rfc1123 / tIME: month == 0 makes the short_months
//     index (month-1) % 12 == -1 -> out-of-bounds read (CVE-2015-7981
//     analog, Fig 8).
//   * png_check_keyword / tEXt: an all-spaces keyword walks kp below the
//     buffer while trimming trailing spaces -> under-buffer access
//     (CVE-2015-8540 analog, Fig 7).
//
// Phase structure: signature check -> IHDR -> per-chunk loop whose CRC
// byte-sum check is an input-dependent loop (trap) -> IDAT row-filter
// double loop (trap) -> ancillary chunk handlers.
#include "targets/targets.h"

namespace pbse::targets {

const char* pngtest_source() {
  return R"MINIC(
// ---- mini libpng ----------------------------------------------------------

u8 short_months[36] = {
  'J','a','n', 'F','e','b', 'M','a','r', 'A','p','r',
  'M','a','y', 'J','u','n', 'J','u','l', 'A','u','g',
  'S','e','p', 'O','c','t', 'N','o','v', 'D','e','c'
};
u8 time_buffer[32];
u8 new_key[80];
u8 palette[768];
u8 row_buffer[512];
u8 prev_row[512];

u32 ihdr_width;
u32 ihdr_height;
u32 ihdr_bit_depth;
u32 ihdr_color_type;

u32 read_u32(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8)
       | ((u32)f[off + 2] << 16) | ((u32)f[off + 3] << 24);
}

u32 check_signature(u8* f, u32 size) {
  if (size < 8) { return 0; }
  if (f[0] != 137) { return 0; }
  if (f[1] != 'P') { return 0; }
  if (f[2] != 'N') { return 0; }
  if (f[3] != 'G') { return 0; }
  if (f[4] != 13) { return 0; }
  if (f[5] != 10) { return 0; }
  if (f[6] != 26) { return 0; }
  if (f[7] != 10) { return 0; }
  return 1;
}

// CRC stand-in: sum of the data bytes, truncated to 32 bits. The loop over
// the chunk body is input-length dependent -> symbolic execution must
// reason about every byte to forge a chunk.
u32 chunk_crc(u8* f, u32 off, u32 len) {
  u32 sum = 0;
  for (u32 i = 0; i < len; ++i) {
    sum = sum + (u32)f[off + i];
    sum = (sum << 1) | (sum >> 31);
  }
  return sum;
}

u32 png_handle_IHDR(u8* f, u32 off, u32 len) {
  if (len < 13) { return 0; }
  ihdr_width = read_u32(f, off);
  ihdr_height = read_u32(f, off + 4);
  ihdr_bit_depth = (u32)f[off + 8];
  ihdr_color_type = (u32)f[off + 9];
  if (ihdr_width == 0 || ihdr_height == 0) { return 0; }
  if (ihdr_bit_depth != 1 && ihdr_bit_depth != 2 && ihdr_bit_depth != 4 &&
      ihdr_bit_depth != 8 && ihdr_bit_depth != 16) { return 0; }
  if (ihdr_color_type > 6) { return 0; }
  out(ihdr_width);
  out(ihdr_height);
  return 1;
}

u32 png_handle_PLTE(u8* f, u32 off, u32 len) {
  u32 entries = len / 3;
  if (entries > 256) { entries = 256; }
  for (u32 i = 0; i < entries; ++i) {
    palette[i * 3] = f[off + i * 3];
    palette[i * 3 + 1] = f[off + i * 3 + 1];
    palette[i * 3 + 2] = f[off + i * 3 + 2];
  }
  out(entries);
  return 1;
}

// Fig 8 analog (CVE-2015-7981): month == 0 gives index -1 into
// short_months -> out-of-bounds read.
u32 png_convert_to_rfc1123(u32 year, u32 month, u32 day,
                           u32 hour, u32 minute, u32 second) {
  i32 midx = ((i32)month - 1) % 12;
  u8 m0 = short_months[midx * 3];       // <-- OOB read when month == 0
  u8 m1 = short_months[midx * 3 + 1];
  u8 m2 = short_months[midx * 3 + 2];
  time_buffer[0] = (u8)('0' + day % 32 / 10);
  time_buffer[1] = (u8)('0' + day % 10);
  time_buffer[2] = ' ';
  time_buffer[3] = m0;
  time_buffer[4] = m1;
  time_buffer[5] = m2;
  time_buffer[6] = ' ';
  time_buffer[7] = (u8)('0' + year % 10);
  time_buffer[8] = ':';
  time_buffer[9] = (u8)('0' + hour % 24 / 10);
  time_buffer[10] = (u8)('0' + hour % 24 % 10);
  time_buffer[11] = ':';
  time_buffer[12] = (u8)('0' + minute % 60 / 10);
  time_buffer[13] = (u8)('0' + minute % 60 % 10);
  time_buffer[14] = ':';
  time_buffer[15] = (u8)('0' + second % 61 / 10);
  time_buffer[16] = (u8)('0' + second % 61 % 10);
  out((u32)time_buffer[3]);
  return 17;
}

u32 png_handle_tIME(u8* f, u32 off, u32 len) {
  if (len < 7) { return 0; }
  u32 year = (u32)f[off] | ((u32)f[off + 1] << 8);
  u32 month = (u32)f[off + 2];
  u32 day = (u32)f[off + 3];
  u32 hour = (u32)f[off + 4];
  u32 minute = (u32)f[off + 5];
  u32 second = (u32)f[off + 6];
  return png_convert_to_rfc1123(year, month, day, hour, minute, second);
}

// Fig 7 analog (CVE-2015-8540): trailing-space trimming can walk kp below
// new_key when the keyword is entirely spaces.
u32 png_check_keyword(u8* f, u32 off, u32 len) {
  u32 key_len = 0;
  while (key_len < len && key_len < 79 && f[off + key_len] != 0) {
    new_key[key_len] = f[off + key_len];
    key_len += 1;
  }
  new_key[key_len] = 0;
  if (key_len == 0) { return 0; }
  u8* kp = &new_key[0] + (key_len - 1);
  if (*kp == ' ') {
    while (*kp == ' ') {        // <-- reads below new_key when all spaces
      *kp = 0;                  //     (under-buffer access)
      kp = kp - 1;
      key_len -= 1;
    }
  }
  return key_len;
}

u32 png_handle_tEXt(u8* f, u32 off, u32 len) {
  u32 key_len = png_check_keyword(f, off, len);
  if (key_len == 0) { return 0; }
  // Echo the text payload after the keyword's NUL.
  u32 text_off = key_len + 1;
  u32 shown = 0;
  while (text_off + shown < len && shown < 16) {
    out((u32)f[off + text_off + shown]);
    shown += 1;
  }
  return 1;
}

// IDAT: per-row filter reconstruction — the deep nested loop (trap phase).
u32 png_handle_IDAT(u8* f, u32 off, u32 len) {
  u32 rowbytes = ihdr_width;
  if (rowbytes > 511) { rowbytes = 511; }
  if (rowbytes == 0) { return 0; }
  u32 pos = 0;
  u32 rows = 0;
  while (pos < len) {
    u32 filter = (u32)f[off + pos];
    pos += 1;
    u32 n = rowbytes;
    if (n > len - pos) { n = len - pos; }
    for (u32 i = 0; i < n; ++i) {
      u32 raw = (u32)f[off + pos + i];
      u32 left = 0;
      if (i > 0) { left = (u32)row_buffer[i - 1]; }
      u32 up = (u32)prev_row[i];
      if (filter == 0) { row_buffer[i] = (u8)raw; }
      else if (filter == 1) { row_buffer[i] = (u8)(raw + left); }
      else if (filter == 2) { row_buffer[i] = (u8)(raw + up); }
      else if (filter == 3) { row_buffer[i] = (u8)(raw + (left + up) / 2); }
      else { row_buffer[i] = (u8)(raw + left + up); }
    }
    for (u32 i = 0; i < n; ++i) { prev_row[i] = row_buffer[i]; }
    pos += n;
    rows += 1;
    if (rows > ihdr_height) { return 0; }
  }
  out(rows);
  return 1;
}

u32 match_type(u8* f, u32 off, u8 a, u8 b, u8 c, u8 d) {
  if (f[off] != a) { return 0; }
  if (f[off + 1] != b) { return 0; }
  if (f[off + 2] != c) { return 0; }
  if (f[off + 3] != d) { return 0; }
  return 1;
}


u32 gamma_value;
u32 bkgd_index;
u8 trans_alpha[256];
u32 trans_count;
u16 hist_counts[256];
u8 recon_sig[8];

u32 png_handle_gAMA(u8* f, u32 off, u32 len) {
  if (len < 4) { return 0; }
  gamma_value = read_u32(f, off);
  if (gamma_value == 0) { return 0; }
  if (gamma_value > 5000000) { out('G'); }
  out(gamma_value);
  return 1;
}

u32 png_handle_bKGD(u8* f, u32 off, u32 len) {
  if (ihdr_color_type == 3) {
    if (len < 1) { return 0; }
    bkgd_index = (u32)f[off];
    out(bkgd_index);
    return 1;
  }
  if (len < 2) { return 0; }
  out((u32)f[off] | ((u32)f[off + 1] << 8));
  return 1;
}

u32 png_handle_tRNS(u8* f, u32 off, u32 len) {
  if (ihdr_color_type != 3) { return 0; }
  u32 n = len;
  if (n > 256) { n = 256; }
  for (u32 i = 0; i < n; ++i) {
    trans_alpha[i] = f[off + i];
  }
  trans_count = n;
  out(n);
  return 1;
}

u32 png_handle_hIST(u8* f, u32 off, u32 len) {
  u32 entries = len / 2;
  if (entries > 256) { entries = 256; }
  u32 peak = 0;
  for (u32 i = 0; i < entries; ++i) {
    u32 v = (u32)f[off + i * 2] | ((u32)f[off + i * 2 + 1] << 8);
    hist_counts[i] = (u16)v;
    if (v > peak) { peak = v; }
  }
  out(peak);
  return 1;
}

u32 png_handle_pHYs(u8* f, u32 off, u32 len) {
  if (len < 9) { return 0; }
  u32 x_ppu = read_u32(f, off);
  u32 y_ppu = read_u32(f, off + 4);
  u32 unit = (u32)f[off + 8];
  if (unit > 1) { return 0; }
  if (x_ppu == y_ppu) { out('s'); } else { out('a'); }
  return 1;
}

// zTXt: keyword + "compressed" text expanded with a run-length scheme
// (stands in for zlib; still an input-driven decode loop).
u32 png_handle_zTXt(u8* f, u32 off, u32 len) {
  u32 key_len = png_check_keyword(f, off, len);
  if (key_len == 0) { return 0; }
  u32 pos = key_len + 2;   // NUL + compression method
  u32 expanded = 0;
  while (pos + 2 <= len && expanded < 256) {
    u32 count = (u32)f[off + pos];
    u32 byte = (u32)f[off + pos + 1];
    pos += 2;
    if (count == 0) { break; }
    for (u32 i = 0; i < count && expanded < 256; ++i) {
      out(byte);
      expanded += 1;
    }
  }
  out(expanded);
  return 1;
}

// pngtest's round trip: re-walk the file chunk by chunk, recomputing every
// CRC and comparing (the "write" half of pngtest).
u32 png_write_roundtrip(u8* f, u32 size) {
  for (u32 i = 0; i < 8; ++i) { recon_sig[i] = f[i]; }
  u32 off = 8;
  u32 rewritten = 0;
  u32 mismatches = 0;
  while (off + 12 <= size) {
    u32 len = read_u32(f, off);
    if (len > size - off - 12) { break; }
    u32 data_off = off + 8;
    u32 crc = chunk_crc(f, off + 4, len + 4);
    if (crc != read_u32(f, data_off + len)) { mismatches += 1; }
    rewritten += 1;
    if (match_type(f, off + 4, 'I', 'E', 'N', 'D')) { break; }
    off = data_off + len + 4;
  }
  out(rewritten);
  out(mismatches);
  return 1;
}

// Chunk-name validation (png_check_chunk_name): each of the four bytes
// must be an ASCII letter; case bits carry chunk properties. Runs BEFORE
// the CRC check, so plain symbolic execution explores it freely.
u32 check_chunk_name(u8* f, u32 off) {
  u32 props = 0;
  for (u32 i = 0; i < 4; ++i) {
    u32 c = (u32)f[off + i];
    u32 upper = 0;
    if (c >= 'A' && c <= 'Z') { upper = 1; }
    else if (c >= 'a' && c <= 'z') { upper = 0; }
    else { return 0xffffffff; }
    props = (props << 1) | upper;
  }
  // bit3: critical, bit2: public, bit1: reserved (must be upper), bit0: copy-safe
  if ((props & 2) == 0) { return 0xffffffff; }  // reserved bit violation
  if (props & 8) { out('C'); } else { out('a'); }
  if (props & 4) { out('P'); } else { out('p'); }
  return props;
}

// Per-type length sanity (before the CRC gate).
u32 check_chunk_length(u8* f, u32 off, u32 len) {
  if (match_type(f, off, 'I', 'H', 'D', 'R')) { return len == 13; }
  if (match_type(f, off, 't', 'I', 'M', 'E')) { return len == 7; }
  if (match_type(f, off, 'g', 'A', 'M', 'A')) { return len == 4; }
  if (match_type(f, off, 'p', 'H', 'Y', 's')) { return len == 9; }
  if (match_type(f, off, 'P', 'L', 'T', 'E')) {
    if (len % 3 != 0) { return 0; }
    if (len > 768) { return 0; }
    return 1;
  }
  if (match_type(f, off, 'I', 'E', 'N', 'D')) { return len == 0; }
  if (len > 65535) { return 0; }
  return 1;
}

u32 main(u8* file, u32 size) {
  if (check_signature(file, size) == 0) { return 1; }
  u32 off = 8;
  u32 seen_ihdr = 0;
  u32 chunks = 0;
  while (off + 12 <= size) {
    u32 len = read_u32(file, off);
    if (len > size - off - 12) { return 2; }
    u32 type_off = off + 4;
    u32 data_off = off + 8;
    if (check_chunk_name(file, type_off) == 0xffffffff) { return 7; }
    if (check_chunk_length(file, type_off, len) == 0) { return 8; }
    u32 stored_crc = read_u32(file, data_off + len);
    u32 actual_crc = chunk_crc(file, type_off, len + 4);  // crc(type+data)
    if (stored_crc != actual_crc) { return 3; }

    if (match_type(file, type_off, 'I', 'H', 'D', 'R')) {
      if (png_handle_IHDR(file, data_off, len) == 0) { return 4; }
      seen_ihdr = 1;
    } else if (seen_ihdr == 0) {
      return 5;
    } else if (match_type(file, type_off, 'P', 'L', 'T', 'E')) {
      png_handle_PLTE(file, data_off, len);
    } else if (match_type(file, type_off, 't', 'I', 'M', 'E')) {
      png_handle_tIME(file, data_off, len);
    } else if (match_type(file, type_off, 'g', 'A', 'M', 'A')) {
      png_handle_gAMA(file, data_off, len);
    } else if (match_type(file, type_off, 'b', 'K', 'G', 'D')) {
      png_handle_bKGD(file, data_off, len);
    } else if (match_type(file, type_off, 't', 'R', 'N', 'S')) {
      png_handle_tRNS(file, data_off, len);
    } else if (match_type(file, type_off, 'h', 'I', 'S', 'T')) {
      png_handle_hIST(file, data_off, len);
    } else if (match_type(file, type_off, 'p', 'H', 'Y', 's')) {
      png_handle_pHYs(file, data_off, len);
    } else if (match_type(file, type_off, 'z', 'T', 'X', 't')) {
      png_handle_zTXt(file, data_off, len);
    } else if (match_type(file, type_off, 't', 'E', 'X', 't')) {
      png_handle_tEXt(file, data_off, len);
    } else if (match_type(file, type_off, 'I', 'D', 'A', 'T')) {
      png_handle_IDAT(file, data_off, len);
    } else if (match_type(file, type_off, 'I', 'E', 'N', 'D')) {
      png_write_roundtrip(file, size);
      out(chunks);
      return 0;
    }
    chunks += 1;
    off = data_off + len + 4;
  }
  return 6;
}
)MINIC";
}

namespace {

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t mpng_crc(const std::vector<std::uint8_t>& data) {
  std::uint32_t sum = 0;
  for (std::uint8_t b : data) {
    sum += b;
    sum = (sum << 1) | (sum >> 31);
  }
  return sum;
}

void push_chunk(std::vector<std::uint8_t>& out, const char type[5],
                const std::vector<std::uint8_t>& data) {
  push_u32(out, static_cast<std::uint32_t>(data.size()));
  std::vector<std::uint8_t> covered;  // crc covers type + data
  for (int i = 0; i < 4; ++i)
    covered.push_back(static_cast<std::uint8_t>(type[i]));
  covered.insert(covered.end(), data.begin(), data.end());
  out.insert(out.end(), covered.begin(), covered.end());
  push_u32(out, mpng_crc(covered));
}

}  // namespace

std::vector<std::uint8_t> make_mpng_seed(unsigned scale) {
  std::vector<std::uint8_t> png = {137, 'P', 'N', 'G', 13, 10, 26, 10};

  const std::uint32_t width = 16 * scale;
  const std::uint32_t height = 4 * scale;
  std::vector<std::uint8_t> ihdr;
  push_u32(ihdr, width);
  push_u32(ihdr, height);
  ihdr.push_back(8);  // bit depth
  ihdr.push_back(3);  // color type: palette
  ihdr.push_back(0);  // compression
  ihdr.push_back(0);  // filter
  ihdr.push_back(0);  // interlace
  push_chunk(png, "IHDR", ihdr);

  std::vector<std::uint8_t> plte;
  for (unsigned i = 0; i < 16 * scale && i < 256; ++i) {
    plte.push_back(static_cast<std::uint8_t>(i * 3));
    plte.push_back(static_cast<std::uint8_t>(255 - i));
    plte.push_back(static_cast<std::uint8_t>(i * 7));
  }
  push_chunk(png, "PLTE", plte);

  // Valid tIME (month 6).
  push_chunk(png, "tIME", {230, 7, 6, 15, 12, 30, 45});

  // Ancillary chunks: gamma, background, transparency, histogram, phys.
  push_chunk(png, "gAMA", {0x18, 0x7a, 0x01, 0x00});  // 96792 LE-ish
  push_chunk(png, "bKGD", {2});
  {
    std::vector<std::uint8_t> trns;
    for (unsigned i = 0; i < 4 * scale && i < 256; ++i)
      trns.push_back(static_cast<std::uint8_t>(255 - i));
    push_chunk(png, "tRNS", trns);
  }
  {
    std::vector<std::uint8_t> hist;
    for (unsigned i = 0; i < 8 * scale && i < 256; ++i) {
      hist.push_back(static_cast<std::uint8_t>(i * 3));
      hist.push_back(static_cast<std::uint8_t>(i / 2));
    }
    push_chunk(png, "hIST", hist);
  }
  push_chunk(png, "pHYs", {72, 0, 0, 0, 72, 0, 0, 0, 1});
  {
    std::vector<std::uint8_t> ztxt = {'S', 'w', 0};
    ztxt.push_back(0);  // method
    for (unsigned i = 0; i < scale; ++i) {
      ztxt.push_back(static_cast<std::uint8_t>(3 + i % 5));  // run length
      ztxt.push_back(static_cast<std::uint8_t>('A' + i % 26));
    }
    ztxt.push_back(0);
    push_chunk(png, "zTXt", ztxt);
  }

  // tEXt with a sane (short) keyword.
  std::vector<std::uint8_t> text = {'C', 'm', 't', 0};
  for (unsigned i = 0; i < 8 * scale; ++i)
    text.push_back(static_cast<std::uint8_t>('a' + i % 26));
  push_chunk(png, "tEXt", text);

  // IDAT rows with mixed filters.
  std::vector<std::uint8_t> idat;
  const std::uint32_t rowbytes = width > 511 ? 511 : width;
  for (std::uint32_t r = 0; r < height; ++r) {
    idat.push_back(static_cast<std::uint8_t>(r % 5));  // filter
    for (std::uint32_t i = 0; i < rowbytes; ++i)
      idat.push_back(static_cast<std::uint8_t>((r * 31 + i * 7) & 0xff));
  }
  push_chunk(png, "IDAT", idat);

  push_chunk(png, "IEND", {});
  return png;
}

}  // namespace pbse::targets
