// readelf — binutils readelf analog.
//
// Format "MELF" (24-byte header, little-endian):
//   0-3   magic 0x7F 'M' 'E' 'L'
//   4     class (1 or 2)          5     version (must be 1)
//   6-7   e_type                  8-9   e_phnum
//   10-11 e_shnum                 12-15 e_phoff
//   16-19 e_shoff                 20-21 e_symnum
//   22-23 e_symoff/16 (paragraph index of the symbol table)
// Program header entry (12B): { u32 type | u32 offset | u32 size }
// Section header entry (16B): { u16 name_off | u16 type | u32 flags |
//                               u32 offset | u32 size }
// Symbol entry (8B): { u16 name_off | u8 info | u8 other | u32 value }
//
// Phase structure mirrors the paper's Fig 1/2 analysis: Phase A handles the
// file header + the FIVE input-dependent loops ending on e_phnum/e_shnum
// (program headers, section headers, section groups, dynamic section,
// symbols); Phase B processes section contents, notes and version info.
// process_section_groups reproduces Fig 2's early returns that let a few
// paths leak into Phase B.
//
// Injected bugs (4, Table III binutils rows):
//   * process_symbols: symbol name_off indexes a fixed 64-byte string
//     table copy without a bound -> OOB read.
//   * process_section_contents: section offset+size unchecked against the
//     file size -> OOB read of the input buffer.
//   * process_notes: namesz-byte copy into a 32-byte name buffer guarded
//     by the wrong limit -> OOB write.
//   * process_version_info: count * entsize via checked_mul -> integer
//     overflow report.
#include "targets/targets.h"

namespace pbse::targets {

const char* readelf_source() {
  return R"MINIC(
// ---- mini readelf -----------------------------------------------------------

u32 e_type;
u32 e_phnum;
u32 e_shnum;
u32 e_phoff;
u32 e_shoff;
u32 e_symnum;
u32 e_symoff;
u32 do_dynamic;
u32 do_section_groups;
u32 do_notes;

u8 strtab[64];
u8 note_name[32];

u32 read_u16(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8);
}

u32 read_u32(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8)
       | ((u32)f[off + 2] << 16) | ((u32)f[off + 3] << 24);
}

u32 process_file_header(u8* f, u32 size) {
  if (size < 24) { return 0; }
  if (f[0] != 0x7f) { return 0; }
  if (f[1] != 'M') { return 0; }
  if (f[2] != 'E') { return 0; }
  if (f[3] != 'L') { return 0; }
  if (f[4] != 1 && f[4] != 2) { return 0; }
  if (f[5] != 1) { return 0; }
  e_type = read_u16(f, 6);
  e_phnum = read_u16(f, 8);
  e_shnum = read_u16(f, 10);
  e_phoff = read_u32(f, 12);
  e_shoff = read_u32(f, 16);
  e_symnum = read_u16(f, 20);
  e_symoff = read_u16(f, 22) * 16;
  do_dynamic = e_type & 1;
  do_section_groups = (e_type >> 1) & 1;
  do_notes = (e_type >> 2) & 1;
  out(e_phnum);
  out(e_shnum);
  return 1;
}

// Input-dependent loop #1: ends on e_phnum.
u32 process_program_headers(u8* f, u32 size) {
  if (e_phnum == 0) { return 1; }
  if (e_phoff + e_phnum * 12 > size) { return 0; }
  u32 loads = 0;
  for (u32 i = 0; i < e_phnum; ++i) {
    u32 off = e_phoff + i * 12;
    u32 ptype = read_u32(f, off);
    u32 poff = read_u32(f, off + 4);
    u32 psize = read_u32(f, off + 8);
    if (ptype == 1) {       // LOAD
      loads += 1;
      if (poff + psize > size) { out(0xdead); }
    } else if (ptype == 2) { // DYNAMIC
      out(poff);
    }
  }
  out(loads);
  return 1;
}

// Input-dependent loop #2: ends on e_shnum.
u32 process_section_headers(u8* f, u32 size) {
  if (e_shnum == 0) { return 1; }
  if (e_shoff + e_shnum * 16 > size) { return 0; }
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    u32 stype = read_u16(f, off + 2);
    u32 ssize = read_u32(f, off + 12);
    if (stype == 8) {        // NOBITS
      out(ssize);
    }
  }
  return 1;
}

// Fig 2 analog: early returns let some paths bypass loop #3 entirely.
u32 process_section_groups(u8* f, u32 size) {
  if (do_section_groups == 0) {
    return 1;
  }
  if (e_shnum == 0) {
    out('g');
    return 1;
  }
  u32 groups = 0;
  for (u32 i = 0; i < e_shnum; ++i) {     // input-dependent loop #3
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    u32 stype = read_u16(f, off + 2);
    if (stype == 17) { groups += 1; }     // GROUP
  }
  out(groups);
  return 1;
}

// Input-dependent loop #4: walks the dynamic section's tag/value pairs.
u32 process_dynamic_section(u8* f, u32 size) {
  if (do_dynamic == 0) { return 1; }
  u32 dyn_off = 0;
  u32 dyn_size = 0;
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) == 6) {      // DYNAMIC section type
      dyn_off = read_u32(f, off + 8);
      dyn_size = read_u32(f, off + 12);
    }
  }
  if (dyn_size == 0) { return 1; }
  if (dyn_off + dyn_size > size) { return 0; }
  u32 ent = 0;
  while (ent + 8 <= dyn_size) {
    u32 tag = read_u32(f, dyn_off + ent);
    u32 val = read_u32(f, dyn_off + ent + 4);
    if (tag == 0) { break; }              // DT_NULL
    if (tag == 1) { out(val); }           // DT_NEEDED
    ent += 8;
  }
  return 1;
}

// Input-dependent loop #5 + BUG 1: name_off indexes the fixed 64-byte
// strtab copy without any bound check.
u32 process_symbols(u8* f, u32 size) {
  if (e_symnum == 0) { return 1; }
  if (e_symoff + e_symnum * 8 > size) { return 0; }
  // Fill the fixed-size string table copy from the tail of the symbol area.
  u32 str_base = e_symoff + e_symnum * 8;
  for (u32 i = 0; i < 64 && str_base + i < size; ++i) {
    strtab[i] = f[str_base + i];
  }
  u32 named = 0;
  for (u32 i = 0; i < e_symnum; ++i) {
    u32 off = e_symoff + i * 8;
    u32 name_off = read_u16(f, off);
    u32 info = (u32)f[off + 2];
    if (info == 1) {
      u8 first = strtab[name_off];        // <-- BUG: OOB read, no bound
      if (first != 0) { named += 1; }
    }
  }
  out(named);
  return 1;
}

// Phase B: dump section contents. BUG 2: sec_off + i can run past the end
// of the file (missing size check before the dump loop).
u32 process_section_contents(u8* f, u32 size) {
  u32 dumped = 0;
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    u32 stype = read_u16(f, off + 2);
    u32 sec_off = read_u32(f, off + 8);
    u32 sec_size = read_u32(f, off + 12);
    if (stype == 3) {                     // STRTAB: hex dump
      u32 n = sec_size;
      if (n > 16) { n = 16; }
      for (u32 j = 0; j < n; ++j) {
        out((u32)f[sec_off + j]);         // <-- BUG: sec_off unchecked
        dumped += 1;
      }
    }
  }
  return dumped;
}

// BUG 3: namesz is limited to 256, but note_name only holds 32 bytes.
u32 process_notes(u8* f, u32 size) {
  if (do_notes == 0) { return 1; }
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) != 7) { continue; }   // NOTE section type
    u32 noff = read_u32(f, off + 8);
    u32 nsize = read_u32(f, off + 12);
    if (noff + nsize > size || nsize < 8) { continue; }
    u32 namesz = read_u32(f, noff);
    u32 descsz = read_u32(f, noff + 4);
    if (namesz > 256) { continue; }       // wrong limit (should be 32)
    if (8 + namesz > nsize) { continue; }
    for (u32 j = 0; j < namesz; ++j) {
      note_name[j] = f[noff + 8 + j];     // <-- BUG: OOB write when > 32
    }
    out(descsz);
  }
  return 1;
}

// BUG 4: count * entsize overflows u32 (reported by checked_mul).
u32 process_version_info(u8* f, u32 size) {
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) != 11) { continue; } // VERSYM section type
    u32 voff = read_u32(f, off + 8);
    u32 count = read_u32(f, off + 12);
    u32 entsize = read_u16(f, off);               // reuse name_off as entsize
    if (entsize == 0) { continue; }
    u32 total = checked_mul(count, entsize);      // <-- BUG: overflow
    if (voff + total > size) { continue; }
    u32 sum = 0;
    u32 n = total;
    if (n > 32) { n = 32; }
    for (u32 j = 0; j < n; ++j) { sum += (u32)f[voff + j]; }
    out(sum);
  }
  return 1;
}

// Decode section flag bits (readelf's get_elf_section_flags analog):
// a chain of bit tests, each with its own observable output.
u32 decode_section_flags(u32 flags) {
  u32 shown = 0;
  if (flags & 0x1) { out('W'); shown += 1; }
  if (flags & 0x2) { out('A'); shown += 1; }
  if (flags & 0x4) { out('X'); shown += 1; }
  if (flags & 0x10) { out('M'); shown += 1; }
  if (flags & 0x20) { out('S'); shown += 1; }
  if (flags & 0x40) { out('I'); shown += 1; }
  if (flags & 0x80) { out('L'); shown += 1; }
  if (flags & 0x100) { out('O'); shown += 1; }
  if (flags & 0x200) { out('G'); shown += 1; }
  if (flags & 0x400) { out('T'); shown += 1; }
  return shown;
}

// Relocation dump: per-entry type dispatch (readelf's dump_relocations).
u32 process_relocs(u8* f, u32 size) {
  u32 total = 0;
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) != 9) { continue; }   // REL section type
    u32 roff = read_u32(f, off + 8);
    u32 rsize = read_u32(f, off + 12);
    if (roff + rsize > size) { return 0; }
    u32 ent = 0;
    while (ent + 8 <= rsize) {
      u32 r_offset = read_u32(f, roff + ent);
      u32 r_info = read_u32(f, roff + ent + 4);
      u32 r_type = r_info & 0xff;
      u32 r_sym = r_info >> 8;
      if (r_type == 1) { out(r_offset); }          // ABS32
      else if (r_type == 2) { out(r_offset + 4); } // PC32
      else if (r_type == 3) { out(r_sym); }        // GOT32
      else if (r_type == 4) { out(r_sym * 2); }    // PLT32
      else if (r_type == 5) { }                    // COPY: nothing
      else if (r_type == 6) { out(r_offset ^ r_sym); } // GLOB_DAT
      else if (r_type == 7) { out(r_offset + r_sym); } // JMP_SLOT
      else { out(0xbad); }
      total += 1;
      ent += 8;
    }
  }
  out(total);
  return 1;
}

// Hash-table dump: bucket loop + chain walks (readelf's hash section).
u32 process_hash_table(u8* f, u32 size) {
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) != 5) { continue; }   // HASH section type
    u32 hoff = read_u32(f, off + 8);
    u32 hsize = read_u32(f, off + 12);
    if (hoff + hsize > size || hsize < 4) { continue; }
    u32 nbucket = read_u16(f, hoff);
    u32 nchain = read_u16(f, hoff + 2);
    if (4 + (nbucket + nchain) * 2 > hsize) { continue; }
    u32 longest = 0;
    for (u32 b = 0; b < nbucket; ++b) {
      u32 len = 0;
      u32 idx = read_u16(f, hoff + 4 + b * 2);
      while (idx != 0 && idx < nchain && len < 64) {
        idx = read_u16(f, hoff + 4 + nbucket * 2 + idx * 2);
        len += 1;
      }
      if (len > longest) { longest = len; }
      out(len);
    }
    out(longest);
  }
  return 1;
}

// Arch-specific attribute section: tag/value pairs with nested dispatch.
u32 process_arch_specific(u8* f, u32 size) {
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) != 12) { continue; }  // ARCH section type
    u32 aoff = read_u32(f, off + 8);
    u32 asize = read_u32(f, off + 12);
    if (aoff + asize > size) { continue; }
    u32 pos = 0;
    while (pos + 2 <= asize) {
      u32 tag = (u32)f[aoff + pos];
      u32 val = (u32)f[aoff + pos + 1];
      pos += 2;
      if (tag == 0) { break; }
      if (tag == 4) {                              // CPU arch
        if (val < 3) { out('v'); } else if (val < 8) { out('V'); }
        else { out('?'); }
      } else if (tag == 6) {                       // FP arch
        if (val == 0) { out('n'); } else { out('f'); }
      } else if (tag == 8) {                       // align
        out((u32)1 << (val & 7));
      } else {
        out(tag);
      }
    }
  }
  return 1;
}

// Unwind-table dump: per-entry opcode decode loop.
u32 process_unwind(u8* f, u32 size) {
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    if (read_u16(f, off + 2) != 13) { continue; }  // UNWIND section type
    u32 uoff = read_u32(f, off + 8);
    u32 usize = read_u32(f, off + 12);
    if (uoff + usize > size) { continue; }
    u32 pos = 0;
    while (pos + 8 <= usize) {
      u32 fn_addr = read_u32(f, uoff + pos);
      u32 word = read_u32(f, uoff + pos + 4);
      pos += 8;
      out(fn_addr);
      // Decode up to 4 unwind opcodes packed in the word.
      for (u32 b = 0; b < 4; ++b) {
        u32 op = (word >> (b * 8)) & 0xff;
        if (op < 0x40) { out(op * 4); }            // vsp += imm
        else if (op < 0x80) { out((op & 0x3f) * 4); } // vsp -= imm
        else if (op == 0xb0) { break; }            // finish
        else if (op < 0xc0) { out(op & 0xf); }     // pop regs
        else { out('u'); }
      }
    }
  }
  return 1;
}

// Section-flag table pass: decode the flag field of every section.
u32 process_section_flags(u8* f, u32 size) {
  u32 shown = 0;
  for (u32 i = 0; i < e_shnum; ++i) {
    u32 off = e_shoff + i * 16;
    if (off + 16 > size) { return 0; }
    shown += decode_section_flags(read_u32(f, off + 4));
  }
  out(shown);
  return 1;
}

// String-table walk: per-string inner loop over the 64-byte cache.
u32 dump_string_table() {
  u32 pos = 0;
  u32 strings = 0;
  while (pos < 64) {
    u32 len = 0;
    while (pos + len < 64 && strtab[pos + len] != 0) { len += 1; }
    if (len > 0) { out(len); strings += 1; }
    pos += len + 1;
  }
  out(strings);
  return 1;
}

u32 main(u8* file, u32 size) {
  if (process_file_header(file, size) == 0) { return 1; }
  if (process_program_headers(file, size) == 0) { return 2; }
  if (process_section_headers(file, size) == 0) { return 3; }
  if (process_section_groups(file, size) == 0) { return 4; }
  if (process_dynamic_section(file, size) == 0) { return 5; }
  if (process_symbols(file, size) == 0) { return 6; }
  if (process_section_flags(file, size) == 0) { return 7; }
  if (process_relocs(file, size) == 0) { return 8; }
  if (process_hash_table(file, size) == 0) { return 9; }
  if (process_section_contents(file, size) == 0) { return 10; }
  if (process_notes(file, size) == 0) { return 11; }
  if (process_version_info(file, size) == 0) { return 12; }
  if (process_arch_specific(file, size) == 0) { return 13; }
  if (process_unwind(file, size) == 0) { return 14; }
  if (dump_string_table() == 0) { return 15; }
  return 0;
}
)MINIC";
}

namespace {

void put_u16(std::vector<std::uint8_t>& v, std::size_t off, std::uint32_t x) {
  v[off] = static_cast<std::uint8_t>(x);
  v[off + 1] = static_cast<std::uint8_t>(x >> 8);
}

void put_u32(std::vector<std::uint8_t>& v, std::size_t off, std::uint32_t x) {
  v[off] = static_cast<std::uint8_t>(x);
  v[off + 1] = static_cast<std::uint8_t>(x >> 8);
  v[off + 2] = static_cast<std::uint8_t>(x >> 16);
  v[off + 3] = static_cast<std::uint8_t>(x >> 24);
}

}  // namespace

std::vector<std::uint8_t> make_melf_seed(unsigned scale) {
  const std::uint32_t phnum = 2 + scale;
  const std::uint32_t symnum = 2 * scale;

  // Section payloads, generated first so the headers can point at them.
  struct Section {
    std::uint16_t type;
    std::uint32_t flags;
    std::vector<std::uint8_t> data;
  };
  std::vector<Section> sections;

  {  // STRTAB (type 3)
    Section s{3, 0x20, {}};
    s.data.resize(16);
    for (std::uint32_t i = 0; i < s.data.size(); ++i)
      s.data[i] = static_cast<std::uint8_t>('a' + i % 26);
    sections.push_back(std::move(s));
  }
  {  // DYNAMIC (type 6): NEEDED entries then NULL.
    Section s{6, 0x3, {}};
    for (unsigned i = 0; i < 1 + scale / 2; ++i) {
      for (int b = 0; b < 4; ++b) s.data.push_back(b == 0 ? 1 : 0);  // tag 1
      for (int b = 0; b < 4; ++b)
        s.data.push_back(static_cast<std::uint8_t>(40 + i) * (b == 0));
    }
    for (int b = 0; b < 8; ++b) s.data.push_back(0);  // DT_NULL
    sections.push_back(std::move(s));
  }
  {  // NOTE (type 7): namesz=8, descsz=4, name bytes.
    Section s{7, 0x2, {}};
    s.data = {8, 0, 0, 0, 4, 0, 0, 0};
    for (int i = 0; i < 12; ++i) s.data.push_back('N');
    sections.push_back(std::move(s));
  }
  {  // REL (type 9): relocation entries of varied types.
    Section s{9, 0x42, {}};
    for (unsigned i = 0; i < 2 * scale; ++i) {
      const std::uint32_t r_offset = 0x100 + i * 4;
      const std::uint32_t r_info = ((i % 8) == 0 ? 1 : (i % 8)) | (i << 8);
      for (int b = 0; b < 4; ++b)
        s.data.push_back(static_cast<std::uint8_t>(r_offset >> (8 * b)));
      for (int b = 0; b < 4; ++b)
        s.data.push_back(static_cast<std::uint8_t>(r_info >> (8 * b)));
    }
    sections.push_back(std::move(s));
  }
  {  // HASH (type 5): nbucket/nchain + tables.
    Section s{5, 0x2, {}};
    const std::uint16_t nbucket = 4;
    const std::uint16_t nchain = static_cast<std::uint16_t>(4 + scale);
    s.data.push_back(nbucket & 0xff);
    s.data.push_back(nbucket >> 8);
    s.data.push_back(nchain & 0xff);
    s.data.push_back(nchain >> 8);
    for (std::uint16_t b = 0; b < nbucket; ++b) {  // bucket heads
      const std::uint16_t head = (b + 1) % nchain;
      s.data.push_back(head & 0xff);
      s.data.push_back(head >> 8);
    }
    for (std::uint16_t cidx = 0; cidx < nchain; ++cidx) {  // chains
      const std::uint16_t next =
          cidx + 4 < nchain ? static_cast<std::uint16_t>(cidx + 4) : 0;
      s.data.push_back(next & 0xff);
      s.data.push_back(next >> 8);
    }
    sections.push_back(std::move(s));
  }
  {  // ARCH attributes (type 12): tag/value pairs, 0-terminated.
    Section s{12, 0, {}};
    s.data = {4, 2, 6, 1, 8, 3, 5, 9, 0, 0};
    sections.push_back(std::move(s));
  }
  {  // UNWIND (type 13): fn addr + packed opcodes.
    Section s{13, 0x82, {}};
    for (unsigned i = 0; i < 1 + scale / 2; ++i) {
      const std::uint32_t addr = 0x8000 + i * 16;
      const std::uint32_t word = 0x00b08041 + (i << 24);
      for (int b = 0; b < 4; ++b)
        s.data.push_back(static_cast<std::uint8_t>(addr >> (8 * b)));
      for (int b = 0; b < 4; ++b)
        s.data.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    }
    sections.push_back(std::move(s));
  }
  for (unsigned g = 0; g < scale; ++g) {  // GROUP fillers (type 17)
    Section s{17, g % 2 ? 0x210u : 0x110u, {}};
    s.data.resize(8, static_cast<std::uint8_t>(g));
    sections.push_back(std::move(s));
  }

  const auto shnum = static_cast<std::uint32_t>(sections.size());
  const std::uint32_t phoff = 24;
  const std::uint32_t shoff = phoff + phnum * 12;
  std::uint32_t symoff = shoff + shnum * 16;
  symoff = (symoff + 15) / 16 * 16;  // paragraph aligned
  const std::uint32_t stroff = symoff + symnum * 8;
  std::uint32_t secdata = stroff + 64;

  std::uint32_t total = secdata;
  for (const Section& s : sections)
    total += static_cast<std::uint32_t>(s.data.size());

  std::vector<std::uint8_t> f(total, 0);
  f[0] = 0x7f; f[1] = 'M'; f[2] = 'E'; f[3] = 'L';
  f[4] = 1; f[5] = 1;
  put_u16(f, 6, 0x7);  // do_dynamic | do_section_groups | do_notes
  put_u16(f, 8, phnum);
  put_u16(f, 10, shnum);
  put_u32(f, 12, phoff);
  put_u32(f, 16, shoff);
  put_u16(f, 20, symnum);
  put_u16(f, 22, symoff / 16);

  // Program headers: LOADs + one DYNAMIC.
  for (std::uint32_t i = 0; i < phnum; ++i) {
    const std::uint32_t off = phoff + i * 12;
    put_u32(f, off, i == 1 ? 2 : 1);
    put_u32(f, off + 4, stroff + i * 4);
    put_u32(f, off + 8, 8);
  }

  // Section headers + payload placement.
  std::uint32_t payload = secdata;
  for (std::uint32_t i = 0; i < shnum; ++i) {
    const std::uint32_t off = shoff + i * 16;
    const Section& s = sections[i];
    put_u16(f, off, 4);  // name_off / entsize
    put_u16(f, off + 2, s.type);
    put_u32(f, off + 4, s.flags);
    put_u32(f, off + 8, payload);
    put_u32(f, off + 12, static_cast<std::uint32_t>(s.data.size()));
    for (std::size_t b = 0; b < s.data.size(); ++b) f[payload + b] = s.data[b];
    payload += static_cast<std::uint32_t>(s.data.size());
  }

  // Symbols referencing the string table.
  for (std::uint32_t i = 0; i < symnum; ++i) {
    const std::uint32_t off = symoff + i * 8;
    put_u16(f, off, (i * 5) % 60);
    f[off + 2] = 1;  // info: named
    put_u32(f, off + 4, 0x1000 + i);
  }
  // String table content (read by process_symbols into its 64-byte cache).
  for (std::uint32_t i = 0; i < 64; ++i)
    f[stroff + i] = static_cast<std::uint8_t>('a' + i % 26);

  return f;
}

}  // namespace pbse::targets
