// The programs under test: MiniC re-implementations of the paper's
// subjects that preserve their *phase structure* (multiple input-dependent
// header/record loops guarding deeper parsing stages) and their *bug
// patterns* (Figs 6, 7, 8 ported nearly line-for-line), plus seed-file
// generators for each synthetic format.
//
// Formats are little-endian simplifications of the real ones; DESIGN.md
// documents each substitution.
//
//   readelf    "MELF"  executable-metadata dump (binutils readelf analog)
//   gif2tiff   "MGIF"  image converter (libtiff gif2tiff analog)
//   pngtest    "MPNG"  png round-trip test (libpng pngtest analog)
//   tiff2rgba  "MTIF"  CIELab -> RGBA converter (Fig 6 bug)
//   tiff2bw    "MTIF"  grayscale converter
//   dwarfdump  "MDWF"  debug-info dump (libdwarf dwarfdump analog)
//   tcpdump    "MPCP"  packet printer (negative control: no deep parsing,
//                       no bugs — matches the paper's tcpdump result)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace pbse::targets {

// --- MiniC sources ----------------------------------------------------------
const char* readelf_source();
const char* gif2tiff_source();
const char* pngtest_source();
const char* tiff2rgba_source();
const char* tiff2bw_source();
const char* dwarfdump_source();
const char* tcpdump_source();

/// Compiles `source`, finalizes and verifies the module. Aborts with a
/// diagnostic on any error (target sources are compiled-in constants).
ir::Module build_target(const char* source);

// --- Seed generators ---------------------------------------------------------
// Each returns a VALID file of the synthetic format that exercises the deep
// phases; `scale` stretches repeated sections to reach paper-like sizes.

std::vector<std::uint8_t> make_melf_seed(unsigned scale = 4);
std::vector<std::uint8_t> make_mgif_seed(unsigned scale = 4);
std::vector<std::uint8_t> make_mpng_seed(unsigned scale = 4);
std::vector<std::uint8_t> make_mtif_seed(unsigned scale = 4);
/// A seed that triggers the Fig 6 CIELab out-of-bounds read in tiff2rgba
/// (for the Fig 5 buggy-seed experiment).
std::vector<std::uint8_t> make_mtif_buggy_seed();
std::vector<std::uint8_t> make_mdwf_seed(unsigned scale = 4);
std::vector<std::uint8_t> make_mpcp_seed(unsigned scale = 4);

// --- Registry ----------------------------------------------------------------

struct TargetInfo {
  std::string package;      // "libpng", "libtiff", ...
  std::string driver;       // "pngtest", "gif2tiff", ...
  const char* (*source)();  // MiniC source
  std::vector<std::uint8_t> (*seed)(unsigned scale);
  /// Real-world CVE ids the injected bugs are analogs of (count == number
  /// of injected bug sites expected reachable by pbSE; "N" = no CVE).
  std::vector<std::string> cve_analogs;
};

/// All targets, in the paper's Table III order.
const std::vector<TargetInfo>& all_targets();

}  // namespace pbse::targets
