// tcpdump — negative control (paper Sec. IV-C "Others"): a packet printer
// that does no deep multi-stage parsing, so pbSE finds no bugs in it and
// gains little over plain symbolic execution. All accesses are properly
// bounds-checked.
//
// Format "MPCP": header { 'M','P','C','P', u16 npkts }, then packets
// { u32 ts | u16 caplen | data[caplen] }.
#include "targets/targets.h"

namespace pbse::targets {

const char* tcpdump_source() {
  return R"MINIC(
// ---- mini tcpdump ----------------------------------------------------------

u32 read_u16(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8);
}

u32 read_u32(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8)
       | ((u32)f[off + 2] << 16) | ((u32)f[off + 3] << 24);
}

// Header pretty-printers: each reads FIXED offsets with explicit bounds
// checks first — shallow single-pass printing, no stateful decode, which
// is why pbSE finds nothing here (the paper's negative result).
u32 print_ethernet(u8* f, u32 off, u32 caplen) {
  if (caplen < 14) { return 0; }
  for (u32 i = 0; i < 6; ++i) { out((u32)f[off + i]); }        // dst mac
  u32 ethertype = ((u32)f[off + 12] << 8) | (u32)f[off + 13];
  out(ethertype);
  return ethertype;
}

u32 print_ipv4(u8* f, u32 off, u32 caplen) {
  if (caplen < 34) { return 0; }
  u32 ip = off + 14;
  u32 vihl = (u32)f[ip];
  if ((vihl >> 4) != 4) { out('?'); return 0; }
  u32 ihl = (vihl & 15) * 4;
  u32 total_len = ((u32)f[ip + 2] << 8) | (u32)f[ip + 3];
  u32 ttl = (u32)f[ip + 8];
  u32 proto = (u32)f[ip + 9];
  out(total_len);
  out(ttl);
  for (u32 i = 0; i < 4; ++i) { out((u32)f[ip + 12 + i]); }    // src ip
  for (u32 i = 0; i < 4; ++i) { out((u32)f[ip + 16 + i]); }    // dst ip
  if (ihl < 20) { out('!'); return 0; }
  return proto;
}

u32 print_udp(u8* f, u32 off, u32 caplen) {
  if (caplen < 42) { return 0; }
  u32 udp = off + 34;
  out(((u32)f[udp] << 8) | (u32)f[udp + 1]);         // sport
  out(((u32)f[udp + 2] << 8) | (u32)f[udp + 3]);     // dport
  return 1;
}

u32 print_tcp(u8* f, u32 off, u32 caplen) {
  if (caplen < 54) { return 0; }
  u32 tcp = off + 34;
  out(((u32)f[tcp] << 8) | (u32)f[tcp + 1]);         // sport
  out(((u32)f[tcp + 2] << 8) | (u32)f[tcp + 3]);     // dport
  u32 flags = (u32)f[tcp + 13];
  if (flags & 0x02) { out('S'); }
  if (flags & 0x10) { out('A'); }
  if (flags & 0x01) { out('F'); }
  if (flags & 0x04) { out('R'); }
  return 1;
}

u32 print_packet(u8* f, u32 off, u32 caplen) {
  u32 ethertype = print_ethernet(f, off, caplen);
  if (ethertype == 0x0800) {             // IPv4
    u32 proto = print_ipv4(f, off, caplen);
    if (proto == 17) { print_udp(f, off, caplen); }
    else if (proto == 6) { print_tcp(f, off, caplen); }
    else if (proto != 0) { out(proto); }
  }
  // Hex-dump the first payload bytes.
  u32 n = caplen;
  if (n > 16) { n = 16; }
  for (u32 i = 0; i < n; ++i) {
    out((u32)f[off + i]);
  }
  return n;
}

u32 main(u8* file, u32 size) {
  if (size < 6) { return 1; }
  if (file[0] != 'M') { return 1; }
  if (file[1] != 'P') { return 1; }
  if (file[2] != 'C') { return 1; }
  if (file[3] != 'P') { return 1; }
  u32 npkts = read_u16(file, 4);
  u32 off = 6;
  u32 printed = 0;
  for (u32 p = 0; p < npkts; ++p) {
    if (off + 6 > size) { return 2; }
    u32 ts = read_u32(file, off);
    u32 caplen = read_u16(file, off + 4);
    off += 6;
    if (off + caplen > size) { return 3; }
    out(ts);
    printed += print_packet(file, off, caplen);
    off += caplen;
  }
  out(printed);
  return 0;
}
)MINIC";
}

std::vector<std::uint8_t> make_mpcp_seed(unsigned scale) {
  std::vector<std::uint8_t> f = {'M', 'P', 'C', 'P'};
  const std::uint32_t npkts = 2 * scale;
  f.push_back(static_cast<std::uint8_t>(npkts));
  f.push_back(static_cast<std::uint8_t>(npkts >> 8));
  for (std::uint32_t p = 0; p < npkts; ++p) {
    for (int i = 0; i < 4; ++i)
      f.push_back(static_cast<std::uint8_t>((p * 1000) >> (8 * i)));
    // Alternate UDP and TCP packets with proper ethernet/IP framing.
    const bool tcp = p % 2 == 1;
    const std::uint32_t caplen = (tcp ? 54 : 42) + p % 12;
    f.push_back(static_cast<std::uint8_t>(caplen));
    f.push_back(static_cast<std::uint8_t>(caplen >> 8));
    std::vector<std::uint8_t> pkt(caplen, 0);
    for (int i = 0; i < 12; ++i) pkt[i] = static_cast<std::uint8_t>(2 + i);
    pkt[12] = 0x08;  // ethertype IPv4
    pkt[13] = 0x00;
    pkt[14] = 0x45;  // v4, ihl 5
    pkt[16] = 0;
    pkt[17] = static_cast<std::uint8_t>(caplen - 14);
    pkt[22] = 64;    // ttl
    pkt[23] = tcp ? 6 : 17;
    for (int i = 0; i < 8; ++i)
      pkt[26 + i] = static_cast<std::uint8_t>(10 + i + p);
    pkt[34] = 0x13;  // sport
    pkt[35] = 0x37;
    pkt[36] = 0x00;  // dport
    pkt[37] = 80;
    if (tcp) pkt[47] = 0x12;  // SYN|ACK
    f.insert(f.end(), pkt.begin(), pkt.end());
  }
  return f;
}

}  // namespace pbse::targets
