// tiff2rgba and tiff2bw — libtiff tool analogs sharing the "MTIF" format.
//
// Format "MTIF": 8-byte header { 'M','T','I','F', u32 ifd_off }, one IFD:
//   { u16 count | count * 12-byte entries { u16 tag | u16 type | u32 n |
//     u32 value } }.
// Tags: 256 width, 257 height, 258 bits, 259 compression, 262 photometric,
//       273 strip offset, 279 strip byte count.
//
// tiff2rgba injected bug (1, Table III): putcontig8bitCIELab is Fig 6
// ported line-for-line — `pp` walks w*h*3 bytes through a fixed 257-byte
// buffer -> out-of-bounds read when the file's w*h is large enough.
//
// tiff2bw injected bugs (2): band accumulation writes bands[bits] with the
// band index taken from the file unchecked -> OOB write; and the total
// pixel count w*h is computed with checked_mul -> integer-overflow report.
//
// Phase structure: header -> IFD entry loop (trap: count from file) ->
// strip read loop -> per-pixel conversion double loop (trap, deep).
#include "targets/targets.h"

namespace pbse::targets {

namespace {

// Shared MTIF parsing prelude (placeholders: %BODY% is the tool-specific
// part). Kept as one source string per tool for self-containedness.
constexpr const char kTiffCommon[] = R"MINIC(
u32 tag_width;
u32 tag_height;
u32 tag_bits;
u32 tag_compression;
u32 tag_photometric;
u32 tag_strip_off;
u32 tag_strip_count;
u32 tag_predictor;
u32 tag_orientation;
u32 tag_resolution;
u32 tag_nstrips;
u32 strip_offs[8];
u32 strip_lens[8];

u8 pp_buf[257];
u32 raster[1024];
u8 bands[16];

u32 read_u16(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8);
}

u32 read_u32(u8* f, u32 off) {
  return (u32)f[off] | ((u32)f[off + 1] << 8)
       | ((u32)f[off + 2] << 16) | ((u32)f[off + 3] << 24);
}

u32 read_header(u8* f, u32 size) {
  if (size < 8) { return 0; }
  if (f[0] != 'M') { return 0; }
  if (f[1] != 'T') { return 0; }
  if (f[2] != 'I') { return 0; }
  if (f[3] != 'F') { return 0; }
  u32 ifd = read_u32(f, 4);
  if (ifd + 2 > size) { return 0; }
  return ifd;
}

// IFD entry loop: count is read from the file (input-dependent loop).
u32 read_ifd(u8* f, u32 size, u32 ifd) {
  u32 count = read_u16(f, ifd);
  if (ifd + 2 + count * 12 > size) { return 0; }
  for (u32 i = 0; i < count; ++i) {
    u32 e = ifd + 2 + i * 12;
    u32 tag = read_u16(f, e);
    u32 ftype = read_u16(f, e + 2);
    u32 n = read_u32(f, e + 4);
    u32 value = read_u32(f, e + 8);
    if (ftype == 0 || ftype > 5) { return 0; }   // malformed field type
    if (tag == 256) { tag_width = value; }
    else if (tag == 257) { tag_height = value; }
    else if (tag == 258) { tag_bits = value; }
    else if (tag == 259) { tag_compression = value; }
    else if (tag == 262) { tag_photometric = value; }
    else if (tag == 273) {
      if (n <= 1) { tag_strip_off = value; tag_nstrips = 1; strip_offs[0] = value; }
      else {
        // value points at an offsets array
        tag_nstrips = n;
        if (tag_nstrips > 8) { tag_nstrips = 8; }
        for (u32 k = 0; k < tag_nstrips; ++k) {
          if (value + k * 4 + 4 > size) { return 0; }
          strip_offs[k] = read_u32(f, value + k * 4);
        }
        tag_strip_off = strip_offs[0];
      }
    }
    else if (tag == 279) {
      if (n <= 1) { tag_strip_count = value; strip_lens[0] = value; }
      else {
        u32 m = n;
        if (m > 8) { m = 8; }
        for (u32 k = 0; k < m; ++k) {
          if (value + k * 4 + 4 > size) { return 0; }
          strip_lens[k] = read_u32(f, value + k * 4);
        }
        tag_strip_count = strip_lens[0];
      }
    }
    else if (tag == 274) { tag_orientation = value; }
    else if (tag == 282) { tag_resolution = value; }
    else if (tag == 317) { tag_predictor = value; }
  }
  if (tag_width == 0 || tag_height == 0) { return 0; }
  if (tag_orientation > 8) { return 0; }
  out(tag_width);
  out(tag_height);
  return 1;
}

// Horizontal-differencing predictor pass (TIFF predictor 2).
u32 apply_predictor(u32 n) {
  if (tag_predictor != 2) { return 0; }
  if (n > 257) { n = 257; }
  for (u32 i = 1; i < n; ++i) {
    pp_buf[i] = (u8)((u32)pp_buf[i] + (u32)pp_buf[i - 1]);
  }
  out('P');
  return 1;
}

// Strip loader: concatenates all strips into pp_buf (bounded, correct).
u32 load_strip(u8* f, u32 size) {
  if (tag_nstrips == 0) { tag_nstrips = 1; strip_offs[0] = tag_strip_off;
                          strip_lens[0] = tag_strip_count; }
  u32 filled = 0;
  for (u32 s = 0; s < tag_nstrips; ++s) {
    u32 off = strip_offs[s];
    u32 len = strip_lens[s];
    if (off + len > size) { return 0; }
    for (u32 i = 0; i < len && filled < 257; ++i) {
      pp_buf[filled] = f[off + i];
      filled += 1;
    }
  }
  if (filled == 0) { return 0; }
  apply_predictor(filled);
  return filled;
}
)MINIC";

}  // namespace

const char* tiff2rgba_source() {
  static const std::string source = std::string(kTiffCommon) + R"MINIC(
// Fig 6 ported: DECLAREContigPutFunc(putcontig8bitCIELab). pp walks 3
// bytes per pixel through the FIXED 257-byte buffer; when w*h*3 > 257 the
// read runs out of bounds (the paper's libtiff case-study bug).
u32 putcontig8bitCIELab(u32 w, u32 h, i32 fromskew, i32 toskew) {
  u32 cp = 0;
  u8* pp = &pp_buf[0];
  fromskew = fromskew * 3;
  while (h > 0) {
    h -= 1;
    for (u32 x = w; x > 0; --x) {
      u32 l = (u32)pp[0];                 // <-- OOB read when w*h*3 > 257
      u32 a = (u32)pp[1];
      u32 b = (u32)pp[2];
      u32 r = (l * 299 + a * 587 + b * 114) / 1000;
      raster[cp & 1023] = (r << 16) | (a << 8) | b;
      cp += 1;
      pp = pp + 3;
    }
    cp = cp + (u32)toskew;
    pp = pp + fromskew;
  }
  return cp;
}

// Grayscale path: one byte per pixel, orientation-aware write order.
u32 putgray8(u32 w, u32 h) {
  u32 n = w * h;
  if (n > 257) { n = 257; }
  u32 cp = 0;
  for (u32 i = 0; i < n; ++i) {
    u32 g = (u32)pp_buf[i];
    u32 px = (g << 16) | (g << 8) | g;
    if (tag_orientation == 1 || tag_orientation == 0) {
      raster[cp & 1023] = px;
    } else {
      raster[(1023 - cp) & 1023] = px;    // bottom-up orientations
    }
    cp += 1;
  }
  return cp;
}

// Bilevel path: expand bits to pixels.
u32 putbilevel(u32 w, u32 h) {
  u32 n = w * h / 8 + 1;
  if (n > 257) { n = 257; }
  u32 cp = 0;
  for (u32 i = 0; i < n; ++i) {
    u32 byte = (u32)pp_buf[i];
    for (u32 b = 0; b < 8; ++b) {
      u32 bit = (byte >> (7 - b)) & 1;
      raster[cp & 1023] = bit ? 0xFFFFFF : 0;
      cp += 1;
    }
  }
  return cp;
}

u32 gt_process(u32 w, u32 h) {
  if (tag_photometric == 8) {             // CIELab
    return putcontig8bitCIELab(w, h, 0, 0);
  }
  if (tag_photometric == 1 && tag_bits == 8) {   // grayscale
    return putgray8(w, h);
  }
  if (tag_photometric == 0 && tag_bits == 1) {   // bilevel
    return putbilevel(w, h);
  }
  // RGB path: bounded, correct.
  u32 cp = 0;
  u32 n = w * h;
  if (n > 85) { n = 85; }                 // 85 * 3 = 255 <= 257
  for (u32 i = 0; i < n; ++i) {
    u32 r = (u32)pp_buf[i * 3];
    raster[cp & 1023] = r << 16;
    cp += 1;
  }
  return cp;
}

u32 main(u8* file, u32 size) {
  u32 ifd = read_header(file, size);
  if (ifd == 0) { return 1; }
  if (read_ifd(file, size, ifd) == 0) { return 2; }
  if (tag_bits != 8) { return 3; }
  if (tag_compression != 1) { return 4; }
  if (load_strip(file, size) == 0) { return 5; }
  u32 pixels = gt_process(tag_width, tag_height);
  out(pixels);
  return 0;
}
)MINIC";
  return source.c_str();
}

const char* tiff2bw_source() {
  static const std::string source = std::string(kTiffCommon) + R"MINIC(
// tiff2bw: accumulate per-band sums, then emit a grayscale strip.
u32 accumulate_bands(u32 w, u32 h) {
  // BUG: the band index comes straight from tag_bits without a bound
  // check against the 8-entry bands array -> OOB write for crafted files.
  u32 band = tag_bits;
  u32 n = w;
  if (n > 85) { n = 85; }
  u32 sum = 0;
  for (u32 i = 0; i < n; ++i) {
    sum += (u32)pp_buf[i * 3];
  }
  bands[band] = (u8)sum;                  // <-- OOB write when bits > 15
  return sum;
}

u32 emit_gray(u32 w, u32 h) {
  // BUG: total pixel count via checked_mul -> integer-overflow report
  // for large w*h.
  u32 total = checked_mul(w, h);          // <-- overflow
  u32 n = total;
  if (n > 255) { n = 255; }
  u32 check = 0;
  for (u32 i = 0; i < n; ++i) {
    u32 r = (u32)pp_buf[(i * 3) % 257];
    u32 g = (u32)pp_buf[(i * 3 + 1) % 257];
    u32 b = (u32)pp_buf[(i * 3 + 2) % 257];
    u32 gray = (r * 28 + g * 59 + b * 11) / 100;
    raster[i & 1023] = gray;
    check += gray;
  }
  out(check);
  return 1;
}

u32 main(u8* file, u32 size) {
  u32 ifd = read_header(file, size);
  if (ifd == 0) { return 1; }
  if (read_ifd(file, size, ifd) == 0) { return 2; }
  if (tag_compression != 1) { return 3; }
  if (load_strip(file, size) == 0) { return 4; }
  accumulate_bands(tag_width, tag_height);
  emit_gray(tag_width, tag_height);
  return 0;
}
)MINIC";
  return source.c_str();
}

namespace {

void push_u16v(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void push_u32v(std::vector<std::uint8_t>& v, std::uint32_t x) {
  v.push_back(static_cast<std::uint8_t>(x));
  v.push_back(static_cast<std::uint8_t>(x >> 8));
  v.push_back(static_cast<std::uint8_t>(x >> 16));
  v.push_back(static_cast<std::uint8_t>(x >> 24));
}

void push_entry(std::vector<std::uint8_t>& v, std::uint16_t tag,
                std::uint32_t value) {
  push_u16v(v, tag);
  push_u16v(v, 3);  // type
  push_u32v(v, 1);  // n
  push_u32v(v, value);
}

std::vector<std::uint8_t> make_mtif(std::uint32_t width, std::uint32_t height,
                                    std::uint32_t photometric,
                                    unsigned strip_len) {
  std::vector<std::uint8_t> t = {'M', 'T', 'I', 'F'};
  push_u32v(t, 8);  // ifd at offset 8
  const std::uint32_t entries = 7;
  push_u16v(t, entries);
  const std::uint32_t strip_off = 8 + 2 + entries * 12;
  push_entry(t, 256, width);
  push_entry(t, 257, height);
  push_entry(t, 258, 8);   // bits
  push_entry(t, 259, 1);   // compression: none
  push_entry(t, 262, photometric);
  push_entry(t, 273, strip_off);
  push_entry(t, 279, strip_len);
  for (unsigned i = 0; i < strip_len; ++i)
    t.push_back(static_cast<std::uint8_t>((i * 13 + 7) & 0xff));
  return t;
}

}  // namespace

std::vector<std::uint8_t> make_mtif_seed(unsigned scale) {
  // Benign: photometric RGB (2), small image, generous strip data so the
  // conversion loops run but stay within pp_buf.
  return make_mtif(5 + scale, 3, 2, 60 * scale);
}

std::vector<std::uint8_t> make_mtif_buggy_seed() {
  // CIELab photometric with w*h*3 far beyond the 257-byte pp buffer:
  // triggers the Fig 6 out-of-bounds read concretely (Fig 5(b) seed).
  return make_mtif(64, 16, 8, 200);
}

}  // namespace pbse::targets
