// pbse — command-line driver, the downstream user's entry point.
//
//   pbse list
//       List registered targets.
//   pbse klee <target> [--searcher=S] [--sym-size=N] [--budget=T]
//       Plain symbolic execution with a whole-file symbolic input.
//   pbse run <target> [--seed-scale=K] [--budget=T]
//       Full pbSE (Algorithm 1): concolic + phase analysis + scheduling.
//   pbse concolic <target> [--seed-scale=K]
//       Concolic run only; prints the BBV/phase summary.
//   pbse phases <target> [--seed-scale=K]
//       Phase division report (the Fig 4 view).
//
// For 'klee' and 'run', <target> may be a single driver name, a
// comma-separated list, or 'all'; --jobs=N runs the per-target campaigns
// on N worker threads sharing the sharded solver cache (disable sharing
// with --no-share-cache for bit-exact serial/parallel parity).
//
// Budgets are virtual-clock ticks (default 1,000,000 = the bench "1h").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "concolic/concolic_executor.h"
#include "core/driver.h"
#include "obs/trace.h"
#include "core/parallel.h"
#include "phase/phase_analysis.h"
#include "support/argparse.h"
#include "targets/targets.h"

namespace {

using namespace pbse;

struct Args {
  std::string command;
  std::string target;
  search::SearcherKind searcher = search::SearcherKind::kDefault;
  std::uint32_t sym_size = 1000;
  std::uint64_t budget = 1'000'000;
  unsigned seed_scale = 6;
  unsigned jobs = 1;
  bool share_cache = true;
  bool subsumption = true;
  bool fingerprint_dedup = true;
  std::string trace_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: pbse <list|klee|run|concolic|phases> [target]\n"
               "  <target> for klee/run: driver name, comma-list, or 'all'\n"
               "  --searcher=dfs|bfs|random-state|random-path|covnew|md2u|"
               "default\n"
               "  --sym-size=N   symbolic file size for 'klee' (default 1000)\n"
               "  --budget=T     tick budget (default 1000000)\n"
               "  --seed-scale=K seed generator scale (default 6)\n"
               "  --jobs=N       worker threads for multi-target campaigns\n"
               "  --no-share-cache  per-campaign private solver caches\n"
               "  --no-subsumption  disable interpolant state subsumption\n"
               "  --no-fingerprint-dedup  disable duplicate-state "
               "fingerprints\n"
               "  --target=NAME  alternative to the positional <target>\n"
               "  --trace=PATH   capture a trace (.json -> Chrome "
               "trace_event,\n"
               "                 anything else -> JSONL; see pbse-trace)\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int pos = 2;
  if (args.command != "list" && argc >= 3 &&
      std::strncmp(argv[2], "--", 2) != 0) {
    args.target = argv[2];
    pos = 3;
  }
  for (int i = pos; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--searcher=")) {
      if (!search::parse_searcher_kind(v, args.searcher)) return false;
    } else if (const char* v = value_of("--sym-size=")) {
      args.sym_size = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--budget=")) {
      args.budget = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seed-scale=")) {
      args.seed_scale = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--jobs=")) {
      std::string error;
      if (!support::parse_positive_count("--jobs", v, args.jobs, error)) {
        std::fprintf(stderr, "pbse: %s\n", error.c_str());
        return false;
      }
    } else if (const char* v = value_of("--target=")) {
      args.target = v;
    } else if (const char* v = value_of("--trace=")) {
      args.trace_path = v;
    } else if (arg == "--no-share-cache") {
      args.share_cache = false;
    } else if (arg == "--no-subsumption") {
      args.subsumption = false;
    } else if (arg == "--no-fingerprint-dedup") {
      args.fingerprint_dedup = false;
    } else {
      return false;
    }
  }
  if (args.command != "list" && args.target.empty()) return false;
  return true;
}

const targets::TargetInfo* find_target(const std::string& driver) {
  for (const auto& t : targets::all_targets())
    if (t.driver == driver) return &t;
  std::fprintf(stderr, "unknown target '%s'; try 'pbse list'\n",
               driver.c_str());
  return nullptr;
}

std::string format_bugs(const vm::Executor& executor) {
  std::string out;
  char buf[256];
  for (const auto& bug : executor.bugs()) {
    std::snprintf(buf, sizeof buf, "BUG %s at %s:%u  (%s)\n    witness:",
                  vm::bug_kind_name(bug.kind), bug.function.c_str(), bug.line,
                  bug.message.c_str());
    out += buf;
    for (std::size_t i = 0; i < bug.input.size() && i < 24; ++i) {
      std::snprintf(buf, sizeof buf, " %02x", bug.input[i]);
      out += buf;
    }
    if (bug.input.size() > 24) out += " ...";
    out += "\n";
  }
  return out;
}

/// <target> for klee/run: a driver name, comma-list, or 'all'.
std::vector<std::string> resolve_targets(const std::string& spec) {
  std::vector<std::string> out;
  if (spec == "all") {
    for (const auto& t : targets::all_targets()) out.push_back(t.driver);
    return out;
  }
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string name = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!name.empty()) out.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Runs the campaigns (inline for --jobs=1), prints each campaign's
/// preformatted output (rows[i][0]) in campaign order, and an aggregate
/// footer when more than one campaign or worker was involved.
int run_campaigns(const Args& args, std::vector<core::Campaign> campaigns) {
  core::ParallelOptions popts;
  popts.jobs = args.jobs;
  popts.share_solver_cache = args.share_cache;
  core::ParallelCampaignRunner runner(popts);
  const auto outcomes = runner.run(campaigns);
  int rc = 0;
  for (const auto& o : outcomes) {
    for (const auto& row : o.rows) std::printf("%s", row[0].c_str());
    if (o.stats.get("cli.failed") != 0) rc = 1;
  }
  if (outcomes.size() > 1 || args.jobs > 1) {
    const Stats& agg = runner.aggregate_stats();
    const std::uint64_t hits = agg.get("cache.shared_hits");
    const std::uint64_t misses = agg.get("cache.shared_misses");
    std::printf("-- %zu campaigns, %u job(s), %.2fs wall", outcomes.size(),
                args.jobs, runner.wall_seconds());
    if (args.share_cache && hits + misses > 0)
      std::printf(", shared cache hit-rate %.1f%%",
                  100.0 * hits / static_cast<double>(hits + misses));
    std::printf("\n");
  }
  return rc;
}

int cmd_list() {
  std::printf("%-12s %-10s %-8s %s\n", "driver", "package", "blocks",
              "CVE analogs");
  for (const auto& t : targets::all_targets()) {
    ir::Module module = targets::build_target(t.source());
    std::string cves;
    for (const auto& c : t.cve_analogs)
      if (c != "N") cves += c + " ";
    std::printf("%-12s %-10s %-8u %s\n", t.driver.c_str(), t.package.c_str(),
                module.total_blocks(), cves.c_str());
  }
  return 0;
}

int cmd_klee(const Args& args) {
  std::vector<core::Campaign> campaigns;
  for (const std::string& name : resolve_targets(args.target)) {
    if (find_target(name) == nullptr) return 1;
    campaigns.push_back({name, [name, &args](const core::CampaignContext& ctx) {
      const auto* info = find_target(name);
      ir::Module module = targets::build_target(info->source());
      core::KleeRunOptions options;
      options.searcher = args.searcher;
      options.sym_file_size = args.sym_size;
      options.solver.shared_cache = ctx.shared_cache;
      options.executor.use_subsumption = args.subsumption;
      options.executor.use_fingerprint_dedup = args.fingerprint_dedup;
      options.executor.campaign_index = static_cast<std::uint32_t>(ctx.index);
      core::KleeRun run(module, "main", options);
      run.run(args.budget);
      core::CampaignOutcome out;
      out.covered = run.executor().num_covered();
      out.ticks = run.clock().now();
      out.bugs = run.executor().bugs().size();
      out.stats = run.stats();
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s: covered %llu / %u blocks in %llu ticks (%s, sym-%u)\n"
                    "states live: %zu, test cases: %zu, bugs: %zu\n",
                    name.c_str(), static_cast<unsigned long long>(out.covered),
                    module.total_blocks(),
                    static_cast<unsigned long long>(out.ticks),
                    search::searcher_kind_name(args.searcher), args.sym_size,
                    run.num_states(), run.executor().test_cases().size(),
                    run.executor().bugs().size());
      out.rows = {{std::string(buf) + format_bugs(run.executor())}};
      return out;
    }});
  }
  return run_campaigns(args, std::move(campaigns));
}

int cmd_run(const Args& args) {
  std::vector<core::Campaign> campaigns;
  for (const std::string& name : resolve_targets(args.target)) {
    if (find_target(name) == nullptr) return 1;
    campaigns.push_back({name, [name, &args](const core::CampaignContext& ctx) {
      const auto* info = find_target(name);
      ir::Module module = targets::build_target(info->source());
      const auto seed = info->seed(args.seed_scale);
      core::PbseOptions options;
      options.solver.shared_cache = ctx.shared_cache;
      options.executor.use_subsumption = args.subsumption;
      options.executor.use_fingerprint_dedup = args.fingerprint_dedup;
      options.executor.campaign_index = static_cast<std::uint32_t>(ctx.index);
      core::PbseDriver driver(module, "main", options);
      core::CampaignOutcome out;
      if (!driver.prepare(seed)) {
        out.rows = {{name + ": prepare failed: no symbolic branches on the "
                            "seed\n"}};
        out.stats.add("cli.failed");
        return out;
      }
      char buf[256];
      std::snprintf(
          buf, sizeof buf,
          "%s concolic: %llu ticks, %zu phases (%u traps), %llu seedStates\n",
          name.c_str(), static_cast<unsigned long long>(driver.c_time_ticks()),
          driver.phases().phases.size(), driver.phases().num_trap_phases,
          static_cast<unsigned long long>(
              driver.stats().get("pbse.seed_states_kept")));
      std::string text = buf;
      if (args.budget > driver.clock().now())
        driver.run(args.budget - driver.clock().now());
      out.covered = driver.executor().num_covered();
      out.ticks = driver.clock().now();
      out.bugs = driver.executor().bugs().size();
      out.stats = driver.stats();
      std::snprintf(buf, sizeof buf,
                    "%s: covered %llu / %u blocks in %llu ticks\n",
                    name.c_str(), static_cast<unsigned long long>(out.covered),
                    module.total_blocks(),
                    static_cast<unsigned long long>(out.ticks));
      text += buf;
      out.rows = {{text + format_bugs(driver.executor())}};
      return out;
    }});
  }
  return run_campaigns(args, std::move(campaigns));
}

int cmd_concolic(const Args& args) {
  const auto* info = find_target(args.target);
  if (info == nullptr) return 1;
  ir::Module module = targets::build_target(info->source());
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  const auto seed = info->seed(args.seed_scale);
  const auto result = concolic::run_concolic(executor, "main", seed);
  std::printf("%s: seed %zu bytes -> %llu instructions, %llu/%u blocks, "
              "%zu BBV intervals, %zu seedStates, %zu bug(s)\n",
              args.target.c_str(), seed.size(),
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(executor.num_covered()),
              module.total_blocks(), result.bbvs.size(),
              result.seed_states.size(), executor.bugs().size());
  std::printf("%s", format_bugs(executor).c_str());
  return 0;
}

int cmd_phases(const Args& args) {
  const auto* info = find_target(args.target);
  if (info == nullptr) return 1;
  ir::Module module = targets::build_target(info->source());
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions copts;
  copts.record_trace = false;
  const auto result =
      concolic::run_concolic(executor, "main", info->seed(args.seed_scale), copts);
  const auto analysis = phase::analyze_phases(result.bbvs);
  std::printf("%s: %zu intervals, k=%u -> %zu phases, %u trap(s)\n",
              args.target.c_str(), result.bbvs.size(), analysis.chosen_k,
              analysis.phases.size(), analysis.num_trap_phases);
  for (const auto& p : analysis.phases)
    std::printf("  phase %u%s: %zu intervals, first tick %llu, longest run "
                "%u\n",
                p.id, p.is_trap ? " [trap]" : "", p.intervals.size(),
                static_cast<unsigned long long>(p.first_ticks), p.longest_run);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  if (!args.trace_path.empty())
    pbse::obs::start_tracing_to_file(args.trace_path);
  int rc = 2;
  if (args.command == "list") rc = cmd_list();
  else if (args.command == "klee") rc = cmd_klee(args);
  else if (args.command == "run") rc = cmd_run(args);
  else if (args.command == "concolic") rc = cmd_concolic(args);
  else if (args.command == "phases") rc = cmd_phases(args);
  else return usage();
  pbse::obs::stop_tracing();
  return rc;
}
