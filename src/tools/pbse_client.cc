// pbse-client: command-line client for pbse-serve.
//
//   pbse-client --socket=PATH submit <target> [--mode=pbse|klee]
//       [--budget=TICKS] [--searcher=NAME] [--sym-size=N]
//       [--seed-scale=N] [--rng-seed=N] [--slice=TICKS] [--wait]
//   pbse-client --socket=PATH status <job-id>
//   pbse-client --socket=PATH list
//   pbse-client --socket=PATH wait <job-id>
//   pbse-client --socket=PATH ping
//   pbse-client --socket=PATH shutdown
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/job.h"
#include "support/argparse.h"

namespace {

using pbse::server::Client;
using pbse::server::JobSpec;
using pbse::server::Json;

int usage() {
  std::fprintf(stderr,
               "usage: pbse-client [--socket=PATH | --tcp-port=N] "
               "<ping|submit|status|list|wait|shutdown> [args]\n"
               "  submit <target> [--mode=pbse|klee] [--budget=TICKS]\n"
               "         [--searcher=NAME] [--sym-size=N] [--seed-scale=N]\n"
               "         [--rng-seed=N] [--slice=TICKS] [--wait]\n"
               "  status <job-id>\n"
               "  wait   <job-id>\n");
  return 2;
}

void print_progress(const Json& progress) {
  std::printf("ticks=%llu covered=%llu bugs=%llu tests=%llu\n",
              static_cast<unsigned long long>(progress.get_u64("ticks", 0)),
              static_cast<unsigned long long>(progress.get_u64("covered", 0)),
              static_cast<unsigned long long>(progress.get_u64("bugs", 0)),
              static_cast<unsigned long long>(
                  progress.get_u64("test_cases", 0)));
}

int wait_and_report(Client& client, std::uint64_t job) {
  Json final_ev = client.wait(job);
  std::printf("job %llu %s: ", static_cast<unsigned long long>(job),
              final_ev.get_string("event", "?").c_str());
  print_progress(final_ev.get("progress"));
  if (final_ev.has("error"))
    std::fprintf(stderr, "error: %s\n",
                 final_ev.get_string("error", "").c_str());
  return final_ev.get_string("event", "") == "done" ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "pbse-serve.sock";
  std::uint16_t tcp_port = 0;
  std::vector<std::string> rest;
  std::string error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--tcp-port=", 0) == 0) {
      std::uint64_t port = 0;
      if (!pbse::support::parse_u64_flag("--tcp-port", arg.substr(11), 1, port,
                                         error) ||
          port > 65535) {
        std::fprintf(stderr, "pbse-client: %s\n",
                     error.empty() ? "--tcp-port out of range" : error.c_str());
        return usage();
      }
      tcp_port = static_cast<std::uint16_t>(port);
    } else {
      rest.push_back(arg);
    }
  }
  if (rest.empty()) return usage();
  const std::string cmd = rest[0];

  try {
    Client client = tcp_port != 0 ? Client::connect_tcp(tcp_port)
                                  : Client::connect_unix(socket_path);

    if (cmd == "ping" || cmd == "shutdown") {
      Json req = Json::object();
      req.set("cmd", Json::string(cmd));
      Json resp = client.request(req);
      std::printf("%s\n", resp.dump().c_str());
      return resp.get_bool("ok", false) ? 0 : 1;
    }

    if (cmd == "list") {
      Json req = Json::object();
      req.set("cmd", Json::string("list"));
      Json resp = client.request(req);
      if (!resp.get_bool("ok", false)) {
        std::fprintf(stderr, "pbse-client: %s\n",
                     resp.get_string("error", "list failed").c_str());
        return 1;
      }
      for (const Json& rec : resp.get("jobs").items()) {
        std::printf("job %llu [%s] %s/%s ",
                    static_cast<unsigned long long>(rec.get_u64("id", 0)),
                    rec.get_string("state", "?").c_str(),
                    rec.get("spec").get_string("mode", "?").c_str(),
                    rec.get("spec").get_string("target", "?").c_str());
        print_progress(rec.get("progress"));
      }
      return 0;
    }

    if (cmd == "status" || cmd == "wait") {
      if (rest.size() < 2) return usage();
      std::uint64_t job = 0;
      if (!pbse::support::parse_u64(rest[1], job)) {
        std::fprintf(stderr, "pbse-client: '%s' is not a job id\n",
                     rest[1].c_str());
        return 2;
      }
      if (cmd == "wait") return wait_and_report(client, job);
      Json req = Json::object();
      req.set("cmd", Json::string("status"));
      req.set("job", Json::number(job));
      Json resp = client.request(req);
      if (!resp.get_bool("ok", false)) {
        std::fprintf(stderr, "pbse-client: %s\n",
                     resp.get_string("error", "status failed").c_str());
        return 1;
      }
      std::printf("%s\n", resp.get("record").dump().c_str());
      return 0;
    }

    if (cmd == "submit") {
      if (rest.size() < 2) return usage();
      JobSpec spec;
      spec.target = rest[1];
      bool wait_after = false;
      for (std::size_t i = 2; i < rest.size(); ++i) {
        const std::string& arg = rest[i];
        auto value_of = [&arg](const char* prefix) -> const char* {
          const std::size_t n = std::strlen(prefix);
          return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
        };
        if (const char* v = value_of("--mode=")) {
          if (!pbse::server::parse_job_mode(v, spec.mode)) {
            std::fprintf(stderr, "pbse-client: unknown mode '%s'\n", v);
            return 2;
          }
        } else if (const char* v = value_of("--budget=")) {
          if (!pbse::support::parse_u64_flag("--budget", v, 1,
                                             spec.budget_ticks, error)) {
            std::fprintf(stderr, "pbse-client: %s\n", error.c_str());
            return 2;
          }
        } else if (const char* v = value_of("--searcher=")) {
          if (!pbse::search::parse_searcher_kind(v, spec.searcher)) {
            std::fprintf(stderr, "pbse-client: unknown searcher '%s'\n", v);
            return 2;
          }
        } else if (const char* v = value_of("--sym-size=")) {
          unsigned n = 0;
          if (!pbse::support::parse_positive_count("--sym-size", v, n, error)) {
            std::fprintf(stderr, "pbse-client: %s\n", error.c_str());
            return 2;
          }
          spec.sym_size = n;
        } else if (const char* v = value_of("--seed-scale=")) {
          unsigned n = 0;
          if (!pbse::support::parse_positive_count("--seed-scale", v, n,
                                                   error)) {
            std::fprintf(stderr, "pbse-client: %s\n", error.c_str());
            return 2;
          }
          spec.seed_scale = n;
        } else if (const char* v = value_of("--rng-seed=")) {
          if (!pbse::support::parse_u64_flag("--rng-seed", v, 0, spec.rng_seed,
                                             error)) {
            std::fprintf(stderr, "pbse-client: %s\n", error.c_str());
            return 2;
          }
        } else if (const char* v = value_of("--slice=")) {
          if (!pbse::support::parse_u64_flag("--slice", v, 1, spec.slice_ticks,
                                             error)) {
            std::fprintf(stderr, "pbse-client: %s\n", error.c_str());
            return 2;
          }
        } else if (arg == "--wait") {
          wait_after = true;
        } else {
          std::fprintf(stderr, "pbse-client: unknown flag '%s'\n", arg.c_str());
          return usage();
        }
      }
      std::uint64_t id = client.submit(spec);
      std::printf("job %llu submitted\n", static_cast<unsigned long long>(id));
      if (wait_after) return wait_and_report(client, id);
      return 0;
    }

    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pbse-client: %s\n", e.what());
    return 1;
  }
}
