// pbse-serve: campaign daemon. Accepts jobs over a Unix (or loopback TCP)
// socket, runs them on a work-stealing scheduler, checkpoints to the state
// directory, and resumes interrupted jobs on restart. See DESIGN.md §11.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"
#include "support/argparse.h"

namespace {

pbse::server::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server) g_server->request_stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pbse-serve [options]\n"
      "  --socket=PATH     unix socket to listen on (default "
      "pbse-serve.sock)\n"
      "  --tcp-port=N      also listen on 127.0.0.1:N (default off)\n"
      "  --state-dir=DIR   checkpoint directory (default pbse-serve-state)\n"
      "  --workers=N       scheduler worker threads (default 2)\n"
      "  --slice=TICKS     default slice length (default 50000)\n"
      "  --checkpoint-interval=TICKS  min ticks between persisted\n"
      "                    checkpoints (default 0 = every slice)\n"
      "  --oneshot         exit once every queued job is done (smoke tests)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pbse::server::ServerOptions options;
  bool oneshot = false;
  std::string error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--socket=")) {
      options.socket_path = v;
    } else if (const char* v = value_of("--state-dir=")) {
      options.state_dir = v;
    } else if (const char* v = value_of("--tcp-port=")) {
      std::uint64_t port = 0;
      if (!pbse::support::parse_u64_flag("--tcp-port", v, 1, port, error) ||
          port > 65535) {
        std::fprintf(stderr, "pbse-serve: %s\n",
                     error.empty() ? "--tcp-port out of range" : error.c_str());
        return usage();
      }
      options.tcp_port = static_cast<std::uint16_t>(port);
    } else if (const char* v = value_of("--workers=")) {
      if (!pbse::support::parse_positive_count("--workers", v,
                                               options.scheduler.workers,
                                               error)) {
        std::fprintf(stderr, "pbse-serve: %s\n", error.c_str());
        return usage();
      }
    } else if (const char* v = value_of("--slice=")) {
      if (!pbse::support::parse_u64_flag(
              "--slice", v, 1, options.scheduler.default_slice_ticks, error)) {
        std::fprintf(stderr, "pbse-serve: %s\n", error.c_str());
        return usage();
      }
    } else if (const char* v = value_of("--checkpoint-interval=")) {
      if (!pbse::support::parse_u64_flag(
              "--checkpoint-interval", v, 0,
              options.scheduler.checkpoint_interval_ticks, error)) {
        std::fprintf(stderr, "pbse-serve: %s\n", error.c_str());
        return usage();
      }
    } else if (arg == "--oneshot") {
      oneshot = true;
    } else {
      std::fprintf(stderr, "pbse-serve: unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }

  try {
    pbse::server::Server server(options);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    server.start();
    std::printf("pbse-serve: listening on %s (%u workers, %zu jobs recovered)\n",
                options.socket_path.c_str(), options.scheduler.workers,
                server.recovered_jobs());
    std::fflush(stdout);
    if (oneshot) {
      // Oneshot still serves the socket (a client may stream events); a
      // watcher thread flips running_ once the scheduler drains.
      std::thread waiter([&server] { server.request_stop_when_idle(); });
      server.serve_forever();
      waiter.join();
    } else {
      server.serve_forever();
    }
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pbse-serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
