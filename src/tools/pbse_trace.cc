// pbse-trace — offline analysis of engine traces (JSONL, see obs/).
//
//   pbse-trace summarize <trace.jsonl>
//       Per-phase coverage timeline, solver-time breakdown, and the
//       scheduler decision log of one run.
//   pbse-trace diff <old.jsonl> <new.jsonl>
//       Event-count and solver-time deltas between two runs.
//
// Both commands exit nonzero on malformed input, with the first bad line
// number — CI runs `summarize` on a freshly captured trace, so any drift
// between the sink and the reader fails the build.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/trace_reader.h"

namespace {

using pbse::obs::ParsedEvent;

int usage() {
  std::fprintf(stderr,
               "usage: pbse-trace summarize <trace.jsonl>\n"
               "       pbse-trace diff <old.jsonl> <new.jsonl>\n");
  return 2;
}

std::vector<ParsedEvent> load_or_die(const std::string& path) {
  std::vector<ParsedEvent> events;
  std::string error;
  if (!pbse::obs::read_trace_jsonl(path, events, error)) {
    std::fprintf(stderr, "pbse-trace: %s: %s\n", path.c_str(), error.c_str());
    std::exit(1);
  }
  return events;
}

/// Pairs B/E events per (cid, tid, name) and sums the durations per
/// (cat, name). Unbalanced ends are ignored; unbalanced begins contribute
/// nothing (their ends were cut off by the budget).
std::map<std::pair<std::string, std::string>, std::pair<std::uint64_t, std::uint64_t>>
duration_breakdown(const std::vector<ParsedEvent>& events) {
  std::map<std::pair<std::string, std::string>,
           std::pair<std::uint64_t, std::uint64_t>>
      out;  // (cat,name) -> (count, total ticks)
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::string>,
           std::vector<std::uint64_t>>
      open;  // (cid,tid,name) -> begin-ts stack
  for (const auto& e : events) {
    if (e.ph == 'B') {
      open[{e.cid, e.tid, e.name}].push_back(e.ts);
    } else if (e.ph == 'E') {
      auto it = open.find({e.cid, e.tid, e.name});
      if (it == open.end() || it->second.empty()) continue;
      const std::uint64_t begin = it->second.back();
      it->second.pop_back();
      auto& slot = out[{e.cat, e.name}];
      ++slot.first;
      slot.second += e.ts >= begin ? e.ts - begin : 0;
    }
  }
  return out;
}

int cmd_summarize(const std::string& path) {
  std::vector<ParsedEvent> events = load_or_die(path);
  // The sink drains per-thread rings, so the file is only ordered within a
  // thread; all timeline analysis below wants global tick order.
  std::stable_sort(events.begin(), events.end(),
                   [](const ParsedEvent& a, const ParsedEvent& b) {
                     return a.ts < b.ts;
                   });

  std::set<std::uint32_t> campaigns, threads;
  std::uint64_t ts_min = ~std::uint64_t{0}, ts_max = 0;
  for (const auto& e : events) {
    campaigns.insert(e.cid);
    threads.insert(e.tid);
    ts_min = std::min(ts_min, e.ts);
    ts_max = std::max(ts_max, e.ts);
  }
  if (events.empty()) ts_min = 0;
  std::printf("%s: %zu events, %zu campaign(s), %zu thread(s), ticks %" PRIu64
              "..%" PRIu64 "\n",
              path.c_str(), events.size(), campaigns.size(), threads.size(),
              ts_min, ts_max);

  // --- Per-phase coverage timeline -------------------------------------
  // Scheduler turns bracket phase execution; new_cover instants landing
  // inside a campaign's open turn belong to that turn's phase. Coverage
  // hit outside any turn (the concolic seed run) is charged to "seed".
  struct PhaseAgg {
    std::uint64_t turns = 0;
    std::uint64_t ticks = 0;
    std::uint64_t cover = 0;
    std::uint64_t first_cover_ts = ~std::uint64_t{0};
    std::uint64_t last_cover_ts = 0;
  };
  std::map<std::pair<std::uint32_t, std::string>, PhaseAgg> phases;
  std::map<std::uint32_t, std::pair<bool, std::string>> open_turn;  // cid
  std::map<std::uint32_t, std::uint64_t> turn_begin_ts;
  std::uint64_t sched_events = 0;
  for (const auto& e : events) {
    if (e.cat == "sched" && e.name == "turn") {
      ++sched_events;
      const std::string phase = "phase " + std::to_string(e.arg("phase"));
      if (e.ph == 'B') {
        open_turn[e.cid] = {true, phase};
        turn_begin_ts[e.cid] = e.ts;
      } else if (e.ph == 'E') {
        auto& agg = phases[{e.cid, open_turn[e.cid].second}];
        ++agg.turns;
        agg.ticks += e.ts - turn_begin_ts[e.cid];
        open_turn[e.cid].first = false;
      }
    } else if (e.cat == "vm" && e.name == "new_cover") {
      const auto it = open_turn.find(e.cid);
      const std::string phase = (it != open_turn.end() && it->second.first)
                                    ? it->second.second
                                    : std::string("seed");
      auto& agg = phases[{e.cid, phase}];
      ++agg.cover;
      agg.first_cover_ts = std::min(agg.first_cover_ts, e.ts);
      agg.last_cover_ts = std::max(agg.last_cover_ts, e.ts);
    }
  }
  std::printf("\ncoverage timeline (per campaign, per phase):\n");
  std::printf("  %-4s %-10s %6s %10s %7s %12s %12s\n", "cid", "phase",
              "turns", "ticks", "cover", "first-cover", "last-cover");
  for (const auto& [key, agg] : phases) {
    std::printf("  %-4u %-10s %6" PRIu64 " %10" PRIu64 " %7" PRIu64, key.first,
                key.second.c_str(), agg.turns, agg.ticks, agg.cover);
    if (agg.cover != 0)
      std::printf(" %12" PRIu64 " %12" PRIu64 "\n", agg.first_cover_ts,
                  agg.last_cover_ts);
    else
      std::printf(" %12s %12s\n", "-", "-");
  }

  // --- Solver-time breakdown -------------------------------------------
  const auto durations = duration_breakdown(events);
  // Reuse hit classes of the incremental pipeline, cheapest first (see
  // solver.h): exact cache -> UNSAT-core subset -> model replay -> domain
  // memo. Their sum over solver.queries is the reuse rate EXPERIMENTS.md
  // tracks.
  std::uint64_t cache_hits = 0, shared_hits = 0, partition_hits = 0,
                model_reuse = 0, domain_memo_hits = 0;
  for (const auto& e : events) {
    if (e.cat != "solver") continue;
    if (e.name == "cache_hit") ++cache_hits;
    if (e.name == "shared_cache_hit") ++shared_hits;
    if (e.name == "partition_hit") ++partition_hits;
    if (e.name == "model_reuse") ++model_reuse;
    if (e.name == "domain_memo_hit") ++domain_memo_hits;
  }
  std::printf("\nsolver breakdown:\n");
  for (const auto& [key, cnt_ticks] : durations) {
    if (key.first != "solver") continue;
    std::printf("  %-12s %8" PRIu64 " calls  %10" PRIu64 " ticks\n",
                key.second.c_str(), cnt_ticks.first, cnt_ticks.second);
  }
  std::printf("  %-12s %8" PRIu64 " hits\n", "cache", cache_hits);
  if (shared_hits != 0)
    std::printf("  %-12s %8" PRIu64 " hits\n", "shared-cache", shared_hits);
  if (partition_hits != 0)
    std::printf("  %-12s %8" PRIu64 " hits (unsat-core subset)\n",
                "partition", partition_hits);
  if (model_reuse != 0)
    std::printf("  %-12s %8" PRIu64 " hits (replayed counterexamples)\n",
                "model-reuse", model_reuse);
  if (domain_memo_hits != 0)
    std::printf("  %-12s %8" PRIu64 " hits (memoized domain prefixes)\n",
                "domain-memo", domain_memo_hits);

  // --- Scheduler decision log ------------------------------------------
  constexpr std::size_t kMaxLog = 40;
  std::printf("\nscheduler decisions (%" PRIu64 " turn events):\n",
              sched_events);
  std::size_t printed = 0;
  for (const auto& e : events) {
    if (e.cat != "sched") continue;
    if (printed == kMaxLog) {
      std::printf("  ... (truncated)\n");
      break;
    }
    ++printed;
    if (e.name == "turn" && e.ph == 'B') {
      std::printf("  [%10" PRIu64 "] cid %u: phase %" PRIu64 " turn %" PRIu64
                  " begins\n",
                  e.ts, e.cid, e.arg("phase"), e.arg("turn"));
    } else if (e.name == "turn" && e.ph == 'E') {
      std::printf("  [%10" PRIu64 "] cid %u: turn ends, %" PRIu64
                  " state(s), +%" PRIu64 " cover\n",
                  e.ts, e.cid, e.arg("states"), e.arg("cover"));
    } else if (e.name == "phase_activate") {
      std::printf("  [%10" PRIu64 "] cid %u: phase %" PRIu64
                  " activated with %" PRIu64 " state(s)\n",
                  e.ts, e.cid, e.arg("phase"), e.arg("states"));
    } else if (e.name == "phase_retired") {
      std::printf("  [%10" PRIu64 "] cid %u: phase %" PRIu64
                  " retired (reason %" PRIu64 ")\n",
                  e.ts, e.cid, e.arg("phase"), e.arg("reason"));
    } else {
      std::printf("  [%10" PRIu64 "] cid %u: %s %c\n", e.ts, e.cid,
                  e.name.c_str(), e.ph);
    }
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const std::vector<ParsedEvent> a = load_or_die(path_a);
  const std::vector<ParsedEvent> b = load_or_die(path_b);

  auto count_by_name = [](const std::vector<ParsedEvent>& events) {
    std::map<std::pair<std::string, std::string>, std::uint64_t> out;
    for (const auto& e : events) ++out[{e.cat, e.name}];
    return out;
  };
  const auto ca = count_by_name(a);
  const auto cb = count_by_name(b);

  std::printf("%s: %zu events  ->  %s: %zu events\n", path_a.c_str(), a.size(),
              path_b.c_str(), b.size());
  std::printf("\nevent-count deltas (cat/name: old -> new):\n");
  std::set<std::pair<std::string, std::string>> keys;
  for (const auto& [k, v] : ca) keys.insert(k);
  for (const auto& [k, v] : cb) keys.insert(k);
  bool any = false;
  for (const auto& k : keys) {
    const std::uint64_t va = ca.count(k) ? ca.at(k) : 0;
    const std::uint64_t vb = cb.count(k) ? cb.at(k) : 0;
    if (va == vb) continue;
    any = true;
    std::printf("  %s/%s: %" PRIu64 " -> %" PRIu64 " (%+" PRId64 ")\n",
                k.first.c_str(), k.second.c_str(), va, vb,
                static_cast<std::int64_t>(vb) - static_cast<std::int64_t>(va));
  }
  if (!any) std::printf("  (identical event counts)\n");

  const auto da = duration_breakdown(a);
  const auto db = duration_breakdown(b);
  std::printf("\nsolver-time deltas (ticks):\n");
  any = false;
  for (const auto& k : keys) {
    if (k.first != "solver") continue;
    const std::uint64_t va = da.count(k) ? da.at(k).second : 0;
    const std::uint64_t vb = db.count(k) ? db.at(k).second : 0;
    if (va == vb) continue;
    any = true;
    std::printf("  %s: %" PRIu64 " -> %" PRIu64 " (%+" PRId64 ")\n",
                k.second.c_str(), va, vb,
                static_cast<std::int64_t>(vb) - static_cast<std::int64_t>(va));
  }
  if (!any) std::printf("  (identical)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "summarize")
    return cmd_summarize(argv[2]);
  if (argc == 4 && std::string(argv[1]) == "diff")
    return cmd_diff(argv[2], argv[3]);
  return usage();
}
