#include "vm/bugs.h"

namespace pbse::vm {

const char* bug_kind_name(BugKind kind) {
  switch (kind) {
    case BugKind::kOutOfBoundsRead: return "out-of-bounds-read";
    case BugKind::kOutOfBoundsWrite: return "out-of-bounds-write";
    case BugKind::kNullDeref: return "null-deref";
    case BugKind::kDivByZero: return "div-by-zero";
    case BugKind::kIntegerOverflow: return "integer-overflow";
    case BugKind::kAssertFail: return "assert-fail";
    case BugKind::kUseAfterReturn: return "use-after-return";
  }
  return "?";
}

}  // namespace pbse::vm
