// Bug taxonomy and reports — the classes of memory error the paper's
// evaluation counts (out-of-bounds read/write, integer overflow, null
// dereference, division by zero, assertion failure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pbse::vm {

enum class BugKind : std::uint8_t {
  kOutOfBoundsRead,
  kOutOfBoundsWrite,
  kNullDeref,
  kDivByZero,
  kIntegerOverflow,
  kAssertFail,
  kUseAfterReturn,
};

const char* bug_kind_name(BugKind kind);

struct BugReport {
  BugKind kind = BugKind::kAssertFail;
  std::string function;   // enclosing function name
  std::uint32_t line = 0; // MiniC source line
  std::uint32_t global_bb = 0;
  std::string message;
  std::uint64_t found_at_ticks = 0;   // virtual time of discovery
  std::uint64_t state_id = 0;
  std::vector<std::uint8_t> input;    // triggering input (test case)

  /// Bugs are deduplicated by site: (kind, function, line).
  std::string site_key() const {
    return std::string(bug_kind_name(kind)) + "@" + function + ":" +
           std::to_string(line);
  }
};

}  // namespace pbse::vm
