#include "vm/executor.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "support/log.h"

namespace pbse::vm {

namespace {

ir::BinOp bin_of(const ir::Instruction& inst) { return inst.bin; }

/// Interned counter / trace-event names for the VM hot loop (see stats.h).
struct VmIds {
  obs::MetricId unique_bugs = obs::intern_metric("executor.unique_bugs");
  obs::MetricId duplicate_bugs = obs::intern_metric("executor.duplicate_bugs");
  obs::MetricId term_exit = obs::intern_metric("executor.term_exit");
  obs::MetricId term_bug = obs::intern_metric("executor.term_bug");
  obs::MetricId term_infeasible =
      obs::intern_metric("executor.term_infeasible");
  obs::MetricId term_recursion = obs::intern_metric("executor.term_recursion");
  obs::MetricId term_insts = obs::intern_metric("executor.term_insts");
  obs::MetricId concolic_offpath_bugs =
      obs::intern_metric("executor.concolic_offpath_bugs");
  obs::MetricId offpath_bugs = obs::intern_metric("executor.offpath_bugs");
  obs::MetricId concretized_offsets =
      obs::intern_metric("executor.concretized_offsets");
  obs::MetricId symbolic_branches =
      obs::intern_metric("concolic.symbolic_branches");
  obs::MetricId seed_states = obs::intern_metric("concolic.seed_states");
  obs::MetricId seed_states_deduped =
      obs::intern_metric("concolic.seed_states_deduped");
  obs::MetricId forks = obs::intern_metric("executor.forks");
  obs::MetricId fork_unknown = obs::intern_metric("executor.fork_unknown");
  obs::MetricId fork_unsat = obs::intern_metric("executor.fork_unsat");
  obs::MetricId fork_suppressed =
      obs::intern_metric("executor.fork_suppressed");
  obs::MetricId recursion_limit =
      obs::intern_metric("executor.recursion_limit");
  obs::MetricId seedstate_unsat =
      obs::intern_metric("executor.seedstate_unsat");
  obs::MetricId seedstate_unknown =
      obs::intern_metric("executor.seedstate_unknown");
  obs::MetricId seedstate_repaired =
      obs::intern_metric("executor.seedstate_repaired");
  obs::MetricId out_calls = obs::intern_metric("executor.out_calls");
  obs::MetricId unreachable = obs::intern_metric("executor.unreachable");
  // Subsumption / fingerprint hit classes (DESIGN.md §10).
  obs::MetricId term_subsumed = obs::intern_metric("executor.term_subsumed");
  /// Live states killed at block entry by an UNSAT-core interpolant.
  obs::MetricId subsumed_unsat = obs::intern_metric("executor.subsumed_unsat");
  /// States killed at block entry by a barren-death interpolant.
  obs::MetricId subsumed_barren =
      obs::intern_metric("executor.subsumed_barren");
  /// seedStates killed in validate_model by an UNSAT-core interpolant
  /// (each one replaces a solver repair query).
  obs::MetricId subsumed_seedstates =
      obs::intern_metric("executor.subsumed_seedstates");
  /// States killed as exact duplicates by the campaign-local registry.
  obs::MetricId fingerprint_kills =
      obs::intern_metric("executor.fingerprint_kills");
  /// States killed as duplicates of ANOTHER campaign's exploration.
  obs::MetricId fingerprint_shared_kills =
      obs::intern_metric("executor.fingerprint_shared_kills");
  /// Barren interpolant entries filed (dead states x ring snapshots).
  obs::MetricId barren_recorded =
      obs::intern_metric("executor.barren_recorded");
  // Trace event / argument names.
  obs::MetricId ev_new_cover = obs::intern_metric("new_cover");
  obs::MetricId ev_bug = obs::intern_metric("bug");
  obs::MetricId ev_terminate = obs::intern_metric("terminate");
  obs::MetricId ev_fork = obs::intern_metric("fork");
  obs::MetricId ev_seed_state = obs::intern_metric("seed_state");
  obs::MetricId arg_bb = obs::intern_metric("bb");
  obs::MetricId arg_total = obs::intern_metric("total");
  obs::MetricId arg_kind = obs::intern_metric("kind");
  obs::MetricId arg_reason = obs::intern_metric("reason");
  obs::MetricId arg_insts = obs::intern_metric("insts");
  obs::MetricId arg_state = obs::intern_metric("state");
};

const VmIds& ids() {
  static const VmIds v;
  return v;
}

// fp_term / fp_chain / kFpMetaIndex live in vm/state.h next to the mem_fp
// field they maintain (shared with the micro-benchmarks and tests).

std::uint64_t pointer_hash(const Pointer& p) {
  if (p.is_null()) return 0x9ae16a3b2f90404fULL;
  return mix_constraint_hash((std::uint64_t{p.object} + 1) *
                                 0xff51afd7ed558ccdULL ^
                             p.offset->hash());
}

std::uint64_t value_hash(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNone: return 0x2545f4914f6cdd1dULL;
    case Value::Kind::kInt: return mix_constraint_hash(v.i->hash());
    case Value::Kind::kPtr: return pointer_hash(v.p);
  }
  return 0;
}

}  // namespace

Executor::Executor(const ir::Module& module, Solver& solver, VClock& clock,
                   Stats& stats, ExecutorOptions options)
    : module_(module),
      solver_(solver),
      clock_(clock),
      stats_(stats),
      options_(options) {
  assert(module.finalized() && "finalize the module before execution");
  covered_.assign(module.total_blocks(), false);
}

std::unique_ptr<ExecutionState> Executor::make_initial_state(
    const std::string& entry, const ArrayRef& input,
    const std::vector<std::uint8_t>& seed) {
  input_array_ = input;

  auto state = std::make_unique<ExecutionState>();
  state->id = allocate_state_id();
  state->born_at_ticks = clock_.now();

  // Globals get object ids 0..G-1, matching their module indices.
  for (std::uint32_t gi = 0; gi < module_.num_globals(); ++gi) {
    const ir::Global& g = module_.global(gi);
    const std::uint32_t id = state->memory.add(MemObject::make_concrete(
        g.size, g.init, "global " + g.name, g.writable));
    (void)id;
    assert(id == gi);
  }
  const std::uint32_t input_obj =
      state->memory.add(MemObject::make_symbolic(input, "input"));
  input_object_ = input_obj;

  // Model: the seed bytes (zero-padded / truncated to the array size).
  {
    auto model = std::make_shared<Assignment>();
    std::vector<std::uint8_t> bytes(input->size(), 0);
    for (std::size_t i = 0; i < bytes.size() && i < seed.size(); ++i)
      bytes[i] = seed[i];
    model->set(input, std::move(bytes));
    state->model = std::move(model);
  }

  const ir::Function* fn = module_.function_by_name(entry);
  assert(fn != nullptr && "unknown entry function");
  assert(fn->params().size() == 2 && fn->params()[0].is_ptr() &&
         fn->params()[1].is_int() &&
         "entry must have signature (ptr file, int size)");

  StackFrame frame;
  frame.fn = fn;
  frame.regs.resize(fn->num_regs());
  frame.slots.resize(fn->num_slots());
  frame.regs[0] = Value::from_ptr(Pointer::to(input_obj, mk_const(0, 64)));
  frame.regs[1] =
      Value::from_int(mk_const(input->size(), fn->params()[1].width));
  state->stack.push_back(std::move(frame));

  if (fp_enabled()) {
    for (std::uint32_t gi = 0; gi < module_.num_globals(); ++gi)
      fp_add_object(*state, gi);
    fp_add_object(*state, input_obj);
  }

  symbolic_mode_ = false;  // the birth entry below is never probed
  enter_block(*state, 0);
  return state;
}

// --- Operand evaluation -----------------------------------------------------

Value Executor::eval_operand(const ExecutionState& state,
                             const ir::Operand& op) const {
  switch (op.kind) {
    case ir::Operand::Kind::kNone:
      return Value::none();
    case ir::Operand::Kind::kConst:
      if (op.type.is_ptr()) return Value::from_ptr(Pointer::null());
      return Value::from_int(mk_const(op.cval, op.type.width));
    case ir::Operand::Kind::kReg:
      return state.frame().regs[op.reg];
  }
  return Value::none();
}

ExprRef Executor::eval_int(const ExecutionState& state,
                           const ir::Operand& op) const {
  Value v = eval_operand(state, op);
  assert(v.is_int() && "expected an integer operand");
  return v.i;
}

// --- Coverage ----------------------------------------------------------------

void Executor::enter_block(ExecutionState& state, std::uint32_t block_id) {
  StackFrame& f = state.frame();
  f.block = block_id;
  f.inst = 0;
  record_coverage(state);
}

void Executor::record_coverage(ExecutionState& state) {
  const std::uint32_t gid = state.current_global_bb();
  bool newly_covered = false;
  if (!covered_[gid]) {
    covered_[gid] = true;
    ++num_covered_;
    ++coverage_epoch_;
    coverage_log_.push_back(CoverEvent{clock_.now(), gid});
    state.covered_new = true;
    newly_covered = true;
    obs::trace_instant(obs::Category::kVm, ids().ev_new_cover, clock_.now(),
                       gid, ids().arg_bb, num_covered_, ids().arg_total);
  }
  if (on_block_entered) on_block_entered(state, gid);
  // Pruning applies to symbolic exploration only: the concolic seed walk
  // and initial-state construction must run to completion unconditionally.
  if (symbolic_mode_ && fp_enabled() && !state.done())
    probe_subsumption(state, gid, /*may_kill=*/!newly_covered);
}

// --- Subsumption / fingerprint dedup (DESIGN.md §10) -------------------------

void Executor::fp_add_object(ExecutionState& state, std::uint32_t id) const {
  const MemObject* obj = state.memory.find(id);
  for (std::uint64_t i = 0; i < obj->size; ++i)
    state.mem_fp ^= fp_term(id, i, obj->bytes[i]->hash());
  state.mem_fp ^= fp_term(id, kFpMetaIndex, obj->alive ? 1 : 0);
}

void Executor::fp_remove_object(ExecutionState& state, std::uint32_t id) const {
  // XOR is its own inverse: removing an object re-XORs its current terms.
  fp_add_object(state, id);
}

std::uint64_t Executor::context_fingerprint(const ExecutionState& state) const {
  std::uint64_t h = state.mem_fp;
  std::uint64_t frame_index = 0;
  for (const StackFrame& f : state.stack) {
    // Function identity by its entry block's global id — content-stable
    // across campaigns, unlike a pointer.
    std::uint64_t fh = (std::uint64_t{f.fn->block(0).global_id} << 32) ^
                       (std::uint64_t{f.block} << 8) ^ f.inst;
    fh = fp_chain(fh, std::uint64_t{f.ret_reg});
    for (const Value& v : f.regs) fh = fp_chain(fh, value_hash(v));
    for (const Pointer& p : f.slots) fh = fp_chain(fh, pointer_hash(p));
    for (const std::uint32_t id : f.allocas) fh = fp_chain(fh, id);
    // Positional across frames: XOR-combining alone would let two equal
    // frames cancel.
    h ^= mix_constraint_hash(fh + (frame_index + 1) * 0x9e3779b97f4a7c15ULL);
    ++frame_index;
  }
  return h;
}

void Executor::probe_subsumption(ExecutionState& state, std::uint32_t gid,
                                 bool may_kill) {
  // Queries issued while executing this block are attributed to it in the
  // interpolant table (per-instruction refresh happens in step()).
  if (options_.use_subsumption) solver_.set_interpolant_location(gid);

  if (options_.use_subsumption) {
    // Snapshot the state's FIRST kMaxEntrySnapshots block entries since
    // its birth fork — (block id, constraint count at entry), packed. The
    // counts so close to birth make the filed prefixes (terminate) nearly
    // the state's birth path condition, which every descendant of the
    // state still carries — so one barren death marks the whole coasting
    // subtree killable at these blocks. Snapshot BEFORE the kill checks:
    // a state dying right here files under this entry too.
    if (state.num_entry_snapshots < ExecutionState::kMaxEntrySnapshots) {
      state.entry_snapshots[state.num_entry_snapshots++] =
          (std::uint64_t{gid} << 32) |
          std::uint64_t{static_cast<std::uint32_t>(state.constraints.size())};
    }

    if (may_kill) {
      const auto& hashes = state.constraints.sorted_hashes();
      // A live state's model satisfies its constraints, so an UNSAT-core
      // hit is collision-grade rare here; the probe is one hash lookup and
      // keeps the block-entry contract uniform with validate_model.
      if (solver_.interpolants().unsat_subsumes(gid, hashes)) {
        stats_.add(ids().subsumed_unsat);
        terminate(state, TerminationReason::kSubsumed);
        return;
      }
      // Barren interpolants are heuristic (entry-prefix weakening, not a
      // weakest precondition), so the kill is gated on the state itself
      // having stalled: a state still covering new code is never pruned
      // by this class, bounding the worst case to paths that were already
      // coasting through covered territory.
      if (state.insts_since_cov_new >= options_.subsumption_min_stall &&
          solver_.interpolants().barren_subsumes(gid, hashes)) {
        stats_.add(ids().subsumed_barren);
        terminate(state, TerminationReason::kSubsumed);
        return;
      }
    }
  }

  if (options_.use_fingerprint_dedup && may_kill) {
    const std::uint64_t ctx_fp = context_fingerprint(state);
    const std::uint64_t key = mix_constraint_hash(
        ctx_fp ^ (std::uint64_t{gid} + 1) * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t full =
        mix_constraint_hash(key ^ state.constraints.hash());
    if (seen_fingerprints_.size() >= kMaxSeenFingerprints)
      seen_fingerprints_.clear();  // deterministic wholesale reset
    if (!seen_fingerprints_.insert(full).second) {
      stats_.add(ids().fingerprint_kills);
      terminate(state, TerminationReason::kSubsumed);
      return;
    }
    const auto& shared = solver_.options().shared_cache;
    if (shared != nullptr &&
        !shared->test_and_publish_fingerprint(full, options_.campaign_index)) {
      stats_.add(ids().fingerprint_shared_kills);
      terminate(state, TerminationReason::kSubsumed);
      return;
    }
  }
}

// --- Bug reporting ------------------------------------------------------------

std::vector<std::uint8_t> Executor::extract_input(const Assignment& a) const {
  std::vector<std::uint8_t> bytes(input_array_ ? input_array_->size() : 0, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = a.byte(input_array_.get(), static_cast<std::uint32_t>(i));
  return bytes;
}

void Executor::report_bug(ExecutionState& state, BugKind kind,
                          const std::string& message,
                          const Assignment& witness) {
  const ir::Instruction& inst = state.current_inst();
  BugReport report;
  report.kind = kind;
  report.function = state.frame().fn->name();
  report.line = inst.line;
  report.global_bb = state.current_global_bb();
  report.message = message;
  report.found_at_ticks = clock_.now();
  report.state_id = state.id;
  report.input = extract_input(witness);
  if (bug_sites_.insert(report.site_key()).second) {
    stats_.add(ids().unique_bugs);
    obs::trace_instant(obs::Category::kVm, ids().ev_bug, clock_.now(),
                       report.global_bb, ids().arg_bb,
                       static_cast<std::uint64_t>(kind), ids().arg_kind);
    bugs_.push_back(std::move(report));
  } else {
    stats_.add(ids().duplicate_bugs);
  }
}

void Executor::terminate(ExecutionState& state, TerminationReason reason) {
  state.termination = reason;
  switch (reason) {
    case TerminationReason::kExit: stats_.add(ids().term_exit); break;
    case TerminationReason::kBug: stats_.add(ids().term_bug); break;
    case TerminationReason::kInfeasible:
      stats_.add(ids().term_infeasible);
      break;
    case TerminationReason::kRecursionLimit:
      stats_.add(ids().term_recursion);
      break;
    case TerminationReason::kSubsumed:
      stats_.add(ids().term_subsumed);
      break;
    default: break;
  }
  // Barren recording (the TracerX "half interpolation" move, DESIGN.md
  // §10): this state ran its suffix to completion through already-covered
  // territory — weaken the path condition it held on entry to each ringed
  // block (the first `count` constraints of its append-only list) into a
  // barren interpolant for that block. A later state that still carries
  // all of those constraints (hash superset ⇒ syntactic implication) is
  // attempting a restriction of the same suffix; if it is also coasting
  // (see probe_subsumption) it is terminated. Recorded ONLY from states
  // that (a) exhausted their path (kExit, kRecursionLimit — not kBug,
  // which must stay diverse; not kInfeasible, whose entry prefix was
  // satisfiable and is covered by the UNSAT class; not kSubsumed, whose
  // re-filing would cascade a heuristic kill into ever-wider interpolants)
  // and (b) were themselves coverage-stalled at death — a state that was
  // still finding blocks is evidence its window was productive, not
  // barren. The ring is only populated in symbolic mode, so concolic
  // deaths are naturally excluded.
  if (options_.use_subsumption && state.num_entry_snapshots > 0 &&
      state.insts_since_cov_new >= options_.subsumption_min_stall &&
      (reason == TerminationReason::kExit ||
       reason == TerminationReason::kRecursionLimit)) {
    const auto& ordered = state.constraints.constraints();
    std::vector<std::uint64_t> prefix;
    for (std::uint32_t i = 0; i < state.num_entry_snapshots; ++i) {
      const std::uint64_t packed = state.entry_snapshots[i];
      const std::uint32_t gid = static_cast<std::uint32_t>(packed >> 32);
      const std::size_t count = std::min<std::size_t>(
          static_cast<std::uint32_t>(packed), ordered.size());
      // An empty prefix would subsume every state at the block; skip it.
      if (count == 0) continue;
      prefix.clear();
      prefix.reserve(count);
      for (std::size_t c = 0; c < count; ++c)
        prefix.push_back(mix_constraint_hash(ordered[c]->hash()));
      std::sort(prefix.begin(), prefix.end());
      solver_.interpolants().add_barren(gid, prefix);
      stats_.add(ids().barren_recorded);
    }
  }
  stats_.add(ids().term_insts, state.instructions);
  obs::trace_instant(obs::Category::kVm, ids().ev_terminate, clock_.now(),
                     static_cast<std::uint64_t>(reason), ids().arg_reason,
                     state.instructions, ids().arg_insts);
  if (live_states_ > 0) --live_states_;
}

void Executor::record_test_case(const ExecutionState& state,
                                const std::string& why) {
  if (test_cases_.size() >= options_.max_test_cases) return;
  TestCase tc;
  tc.input = extract_input(*state.model);
  tc.state_id = state.id;
  tc.generated_at_ticks = clock_.now();
  tc.reason = why;
  test_cases_.push_back(std::move(tc));
}

// --- Guards --------------------------------------------------------------------

bool Executor::guard(ExecutionState& state, const ExprRef& error_cond,
                     BugKind kind, const std::string& message,
                     ConcolicCtx* ctx, bool concolic_feasibility) {
  if (error_cond->is_false()) return true;

  if (ctx != nullptr) {
    // Concolic: the seed's concrete behaviour decides the path (Algorithm
    // 2's isFindBug()).
    clock_.advance(1);
    if (error_cond->is_true() || ctx->seed_eval->evaluate_bool(error_cond)) {
      report_bug(state, kind, message, *ctx->seed);
      terminate(state, TerminationReason::kBug);
      return false;
    }
    // For fixed-size internal buffers, the symbolic half of the lockstep
    // additionally asks whether ANOTHER input could violate the access —
    // exactly what KLEE's seeded mode reports (the paper's libpng month
    // bug lives in straight-line code only this check can reach).
    if (concolic_feasibility && ctx->offpath_bug_checks) {
      Assignment witness(*ctx->seed);
      if (solver_.check_sat(state.constraints, error_cond, &witness,
                            ctx->seed) == SolverResult::kSat) {
        report_bug(state, kind, message, witness);
        stats_.add(ids().concolic_offpath_bugs);
      }
    }
    state.constraints.add(mk_lnot(error_cond));
    return true;
  }

  if (error_cond->is_true()) {
    report_bug(state, kind, message, *state.model);
    terminate(state, TerminationReason::kBug);
    return false;
  }

  const ExprRef ok = mk_lnot(error_cond);
  clock_.advance(1);
  if (eval_model(state, error_cond) != 0) {
    // The current model triggers the bug: report it, then try to continue
    // on the ok side with a repaired model.
    report_bug(state, kind, message, *state.model);
    Assignment repaired(*state.model);
    if (solver_.check_sat(state.constraints, ok, &repaired,
                          state.model) == SolverResult::kSat) {
      state.constraints.add(ok);
      state.model = std::make_shared<Assignment>(std::move(repaired));
      return true;
    }
    terminate(state, TerminationReason::kBug);
    return false;
  }

  // Model is fine; ask whether some other input could trigger the bug.
  Assignment witness(*state.model);
  if (solver_.check_sat(state.constraints, error_cond, &witness,
                        state.model) == SolverResult::kSat) {
    report_bug(state, kind, message, witness);
    stats_.add(ids().offpath_bugs);
  }
  state.constraints.add(ok);
  return true;
}

// --- Memory --------------------------------------------------------------------

std::optional<Executor::Access> Executor::check_access(ExecutionState& state,
                                                       const Pointer& ptr,
                                                       unsigned bytes,
                                                       bool is_write,
                                                       ConcolicCtx* ctx) {
  const Assignment& concretizer =
      ctx != nullptr ? *ctx->seed : *state.model;
  if (ptr.is_null()) {  // the null pointer carries no offset expr: check first
    report_bug(state, BugKind::kNullDeref, "dereference of null pointer",
               concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }
  // Concolic feasibility checks are worthwhile for fixed-size internal
  // buffers indexed by SHALLOW input-derived expressions (the paper's
  // table-lookup bug pattern); offsets derived from deep computation
  // (e.g. LZW-decoded data) are left to phase exploration, which parks
  // states next to the branches that produce them.
  const bool internal_object =
      ptr.object != input_object_ &&
      (ptr.offset->is_constant() || expr_cost(ptr.offset) <= 512);
  const MemObject* obj = state.memory.find(ptr.object);
  if (obj == nullptr) {
    // The object was erased on frame return: a dangling pointer.
    report_bug(state, BugKind::kUseAfterReturn,
               "access through a dangling pointer", concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }
  if (options_.detect_use_after_return && !obj->alive) {
    report_bug(state, BugKind::kUseAfterReturn,
               "access to object after its frame returned (" + obj->name + ")",
               concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }
  if (is_write && !obj->writable) {
    report_bug(state, BugKind::kOutOfBoundsWrite,
               "write to read-only object (" + obj->name + ")", concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }

  const BugKind oob_kind =
      is_write ? BugKind::kOutOfBoundsWrite : BugKind::kOutOfBoundsRead;
  const std::string what = is_write ? "write" : "read";

  if (ptr.offset->is_constant()) {
    const std::uint64_t off = ptr.offset->constant_value();
    if (off + bytes > obj->size || off + bytes < off) {
      report_bug(state, oob_kind,
                 "out-of-bounds " + what + " of " + obj->name + " at offset " +
                     std::to_string(off) + " (size " +
                     std::to_string(obj->size) + ")",
                 concretizer);
      terminate(state, TerminationReason::kBug);
      return std::nullopt;
    }
    return Access{ptr.object, off};
  }

  // Symbolic offset: OOB iff offset + bytes > size (including wraparound).
  const ExprRef end = mk_add(ptr.offset, mk_const(bytes, 64));
  const ExprRef oob = mk_lor(mk_ult(mk_const(obj->size, 64), end),
                             mk_ult(end, ptr.offset));
  if (!guard(state, oob, oob_kind,
             "out-of-bounds " + what + " of " + obj->name +
                 " at symbolic offset",
             ctx, /*concolic_feasibility=*/internal_object))
    return std::nullopt;

  // Concretize the (now in-bounds) offset along this path.
  clock_.advance(1);
  const std::uint64_t off = ctx != nullptr
                                ? ctx->seed_eval->evaluate(ptr.offset)
                                : eval_model(state, ptr.offset);
  state.constraints.add(mk_eq(ptr.offset, mk_const(off, 64)));
  stats_.add(ids().concretized_offsets);
  assert(off + bytes <= obj->size);
  return Access{ptr.object, off};
}

ExprRef Executor::load_bytes(const ExecutionState& state, std::uint32_t object,
                             std::uint64_t offset, unsigned width) const {
  const MemObject* obj = state.memory.find(object);
  const unsigned n = width / 8;
  ExprRef value = obj->bytes[offset];
  for (unsigned i = 1; i < n; ++i)
    value = mk_concat(obj->bytes[offset + i], value);  // little-endian
  return value;
}

void Executor::store_bytes(ExecutionState& state, std::uint32_t object,
                           std::uint64_t offset, const ExprRef& value) {
  MemObject& obj = state.memory.ensure_unique(object);
  const unsigned n = value->width() / 8;
  const bool fp = fp_enabled();
  for (unsigned i = 0; i < n; ++i) {
    ExprRef byte = mk_extract(value, 8 * i, 8);
    if (fp)
      state.mem_fp ^= fp_term(object, offset + i, obj.bytes[offset + i]->hash()) ^
                      fp_term(object, offset + i, byte->hash());
    obj.bytes[offset + i] = std::move(byte);
  }
}

// --- Branches -------------------------------------------------------------------

void Executor::execute_branch(
    ExecutionState& state, const ir::Instruction& inst,
    std::vector<std::unique_ptr<ExecutionState>>* forked, ConcolicCtx* ctx) {
  const ExprRef cond = eval_int(state, inst.ops[0]);

  if (cond->is_constant()) {
    enter_block(state, cond->constant_value() != 0 ? inst.bb_then
                                                   : inst.bb_else);
    return;
  }

  if (ctx != nullptr) {
    // Concolic: follow the seed; record the off-path side as a seedState
    // parked AT this branch (it re-executes the branch on activation, once
    // its model has been validated against the flipped constraint).
    clock_.advance(1);
    const bool dir = ctx->seed_eval->evaluate_bool(cond);
    const ExprRef taken = dir ? cond : mk_lnot(cond);
    stats_.add(ids().symbolic_branches);

    // Algorithm 2 records one seedState per symbolic branch: the FLIPPED
    // (unexplored) direction only. The seed-following side needs no
    // snapshot — the concolic state itself keeps walking it, and phase
    // scheduling re-enters seed-path code through the flipped states'
    // symbolic re-execution. Record-time dedup keeps only the EARLIEST
    // seedState per fork point — the paper's Sec. III-B3 selection.
    const std::uint64_t fork_point =
        (std::uint64_t{state.current_global_bb()} << 32) |
        state.frame().inst;
    if (concolic_seen_forks_.insert(fork_point).second) {
      ForkRecord record;
      record.fork_ticks = clock_.now();
      record.fork_bb = state.current_global_bb();
      record.fork_inst = state.frame().inst;
      auto child = state.fork(allocate_state_id());
      child->born_at_ticks = clock_.now();
      child->fork_bb = record.fork_bb;
      child->fork_inst = record.fork_inst;
      if (child->constraints.add(mk_lnot(taken))) {
        obs::trace_instant(obs::Category::kConcolic, ids().ev_seed_state,
                           clock_.now(), record.fork_bb, ids().arg_bb,
                           child->id, ids().arg_state);
        record.state = std::shared_ptr<ExecutionState>(std::move(child));
        ctx->fork_records->push_back(std::move(record));
        stats_.add(ids().seed_states);
      }
    } else {
      stats_.add(ids().seed_states_deduped);
    }

    state.constraints.add(taken);
    enter_block(state, dir ? inst.bb_then : inst.bb_else);
    return;
  }

  // Symbolic: follow the model's direction for free; query only the other.
  clock_.advance(1);
  const bool dir = eval_model(state, cond) != 0;
  const ExprRef taken = dir ? cond : mk_lnot(cond);
  const ExprRef other = mk_lnot(taken);

  if (forked != nullptr && live_states_ < options_.max_live_states) {
    Assignment other_model(*state.model);
    const SolverResult r = solver_.check_sat(state.constraints, other,
                                             &other_model, state.model);
    if (r == SolverResult::kSat) {
      auto child = state.fork(allocate_state_id());
      child->born_at_ticks = clock_.now();
      child->fork_bb = state.current_global_bb();
      child->fork_inst = state.frame().inst;
      child->constraints.add(other);
      child->model = std::make_shared<Assignment>(std::move(other_model));
      obs::trace_instant(obs::Category::kVm, ids().ev_fork, clock_.now(),
                         state.current_global_bb(), ids().arg_bb, child->id,
                         ids().arg_state);
      // Count the child live BEFORE its first block entry: the entry probe
      // may subsume it on the spot, and terminate() decrements the count.
      ++live_states_;
      enter_block(*child, dir ? inst.bb_else : inst.bb_then);
      stats_.add(ids().forks);
      // A child subsumed at birth is dropped here — searchers must only
      // ever be told about states they were handed, so it never reaches
      // the engine's `forked` list.
      if (!child->done()) forked->push_back(std::move(child));
    } else if (r == SolverResult::kUnknown) {
      stats_.add(ids().fork_unknown);
      PBSE_LOG_DEBUG << "fork unknown in " << state.frame().fn->name()
                     << " line " << inst.line << ": " << other->to_string();
    } else {
      stats_.add(ids().fork_unsat);
    }
  } else {
    stats_.add(ids().fork_suppressed);
  }

  state.constraints.add(taken);
  enter_block(state, dir ? inst.bb_then : inst.bb_else);
}

// --- Main dispatch -----------------------------------------------------------------

void Executor::step(ExecutionState& state,
                    std::vector<std::unique_ptr<ExecutionState>>& forked) {
  symbolic_mode_ = true;
  // Attribute solver queries issued by this instruction to its block, so
  // UNSAT cores land in the interpolant table under the location where a
  // later state can match them.
  if (options_.use_subsumption)
    solver_.set_interpolant_location(state.current_global_bb());
  execute(state, &forked, nullptr);
}

void Executor::step_concolic(ExecutionState& state, const Assignment& seed,
                             CachingEvaluator& seed_eval,
                             std::vector<ForkRecord>& fork_records,
                             bool offpath_bug_checks) {
  // The evaluator owns a shared reference to the seed assignment; reuse it
  // so feasibility queries get a cache-friendly hint.
  (void)seed;
  symbolic_mode_ = false;
  if (options_.use_subsumption)
    solver_.set_interpolant_location(Solver::kNoInterpolantLocation);
  ConcolicCtx ctx{seed_eval.assignment(), &seed_eval, &fork_records,
                  offpath_bug_checks};
  execute(state, nullptr, &ctx);
}

std::uint64_t Executor::eval_model(ExecutionState& state, const ExprRef& e) {
  if (state.model_eval == nullptr ||
      state.model_eval->assignment().get() != state.model.get()) {
    state.model_eval = std::make_shared<CachingEvaluator>(state.model);
  }
  return state.model_eval->evaluate(e);
}

bool Executor::validate_model(ExecutionState& state) {
  if (options_.use_subsumption) {
    // The state is parked at its fork block; attribute the repair query
    // there — and first check whether an earlier seedState at this block
    // already proved a subset of these constraints UNSAT. This is the
    // UNSAT-interpolant payoff: every hit replaces a whole solver query.
    const std::uint32_t gid = state.current_global_bb();
    solver_.set_interpolant_location(gid);
    if (solver_.interpolants().unsat_subsumes(
            gid, state.constraints.sorted_hashes())) {
      stats_.add(ids().subsumed_seedstates);
      terminate(state, TerminationReason::kSubsumed);
      return false;
    }
  }
  // Fast path: the recorded model may already satisfy the constraints.
  std::vector<ExprRef> violated;
  for (const auto& c : state.constraints.constraints()) {
    clock_.advance(1);
    if (eval_model(state, c) == 0) violated.push_back(c);
  }
  if (violated.empty()) return true;

  Assignment repaired(*state.model);
  // Repair only the violated constraints' independent slice — usually a
  // seedState's model (the seed) violates exactly the flipped branch
  // constraint. This is sound: the untouched partitions' bytes keep
  // satisfying the constraints they are connected to, and it is vastly
  // cheaper than re-solving the whole path. Multiple violations are folded
  // into one conjunction query so the slice still covers them all while
  // the solver's partition caches stay in play.
  ExprRef repair_query = violated.front();
  for (std::size_t i = 1; i < violated.size(); ++i)
    repair_query = mk_land(repair_query, violated[i]);
  const SolverResult r =
      solver_.check_sat(state.constraints, repair_query, &repaired,
                        state.model);
  if (r != SolverResult::kSat) {
    stats_.add(r == SolverResult::kUnsat ? ids().seedstate_unsat
                                         : ids().seedstate_unknown);
    terminate(state, TerminationReason::kInfeasible);
    return false;
  }
  state.model = std::make_shared<Assignment>(std::move(repaired));
  stats_.add(ids().seedstate_repaired);
  return true;
}

void Executor::execute(ExecutionState& state,
                       std::vector<std::unique_ptr<ExecutionState>>* forked,
                       ConcolicCtx* ctx) {
  assert(!state.done() && !state.stack.empty());
  const ir::Instruction& inst = state.current_inst();
  clock_.advance(options_.ticks_per_instruction);
  ++state.instructions;
  StackFrame& f = state.frame();

  auto set_result = [&](Value v) {
    state.frame().regs[inst.result] = std::move(v);
  };

  switch (inst.op) {
    case ir::Opcode::kAlloca: {
      const std::uint32_t id = state.memory.add(MemObject::make(
          inst.alloca_size, "alloca in " + f.fn->name()));
      if (fp_enabled()) fp_add_object(state, id);
      f.allocas.push_back(id);
      set_result(Value::from_ptr(Pointer::to(id, mk_const(0, 64))));
      ++f.inst;
      return;
    }

    case ir::Opcode::kLoad: {
      Value p = eval_operand(state, inst.ops[0]);
      assert(p.is_ptr());
      auto access = check_access(state, p.p, inst.width / 8, false, ctx);
      if (!access) return;
      set_result(Value::from_int(load_bytes(state, access->object,
                                            access->concrete_offset,
                                            inst.width)));
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kStore: {
      Value p = eval_operand(state, inst.ops[0]);
      assert(p.is_ptr());
      const ExprRef value = eval_int(state, inst.ops[1]);
      auto access = check_access(state, p.p, value->width() / 8, true, ctx);
      if (!access) return;
      store_bytes(state, access->object, access->concrete_offset, value);
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kGep: {
      Value p = eval_operand(state, inst.ops[0]);
      assert(p.is_ptr());
      const ExprRef delta = eval_int(state, inst.ops[1]);
      assert(delta->width() == 64);
      if (p.p.is_null()) {
        // Pointer arithmetic on null stays null; the eventual dereference
        // reports the bug.
        set_result(Value::from_ptr(Pointer::null()));
      } else {
        set_result(Value::from_ptr(
            Pointer::to(p.p.object, mk_add(p.p.offset, delta))));
      }
      ++f.inst;
      return;
    }

    case ir::Opcode::kBin: {
      const ExprRef a = eval_int(state, inst.ops[0]);
      const ExprRef b = eval_int(state, inst.ops[1]);
      const ir::BinOp op = bin_of(inst);
      if (op == ir::BinOp::kUDiv || op == ir::BinOp::kSDiv ||
          op == ir::BinOp::kURem || op == ir::BinOp::kSRem) {
        if (!guard(state, mk_eq(b, mk_const(0, b->width())),
                   BugKind::kDivByZero, "division by zero", ctx))
          return;
      }
      ExprRef r;
      switch (op) {
        case ir::BinOp::kAdd: r = mk_add(a, b); break;
        case ir::BinOp::kSub: r = mk_sub(a, b); break;
        case ir::BinOp::kMul: r = mk_mul(a, b); break;
        case ir::BinOp::kUDiv: r = mk_udiv(a, b); break;
        case ir::BinOp::kSDiv: r = mk_sdiv(a, b); break;
        case ir::BinOp::kURem: r = mk_urem(a, b); break;
        case ir::BinOp::kSRem: r = mk_srem(a, b); break;
        case ir::BinOp::kAnd: r = mk_and(a, b); break;
        case ir::BinOp::kOr: r = mk_or(a, b); break;
        case ir::BinOp::kXor: r = mk_xor(a, b); break;
        case ir::BinOp::kShl: r = mk_shl(a, b); break;
        case ir::BinOp::kLShr: r = mk_lshr(a, b); break;
        case ir::BinOp::kAShr: r = mk_ashr(a, b); break;
      }
      set_result(Value::from_int(std::move(r)));
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kCmp: {
      Value va = eval_operand(state, inst.ops[0]);
      Value vb = eval_operand(state, inst.ops[1]);
      ExprRef r;
      if (va.is_ptr() || vb.is_ptr()) {
        assert(va.is_ptr() && vb.is_ptr());
        assert(inst.pred == ir::CmpPred::kEq || inst.pred == ir::CmpPred::kNe);
        ExprRef eq;
        if (va.p.is_null() && vb.p.is_null())
          eq = mk_bool(true);
        else if (va.p.is_null() || vb.p.is_null())
          eq = mk_bool(false);
        else if (va.p.object == vb.p.object)
          eq = mk_eq(va.p.offset, vb.p.offset);
        else
          eq = mk_bool(false);
        r = inst.pred == ir::CmpPred::kEq ? eq : mk_lnot(eq);
      } else {
        const ExprRef a = va.i;
        const ExprRef b = vb.i;
        switch (inst.pred) {
          case ir::CmpPred::kEq: r = mk_eq(a, b); break;
          case ir::CmpPred::kNe: r = mk_ne(a, b); break;
          case ir::CmpPred::kUlt: r = mk_ult(a, b); break;
          case ir::CmpPred::kUle: r = mk_ule(a, b); break;
          case ir::CmpPred::kUgt: r = mk_ugt(a, b); break;
          case ir::CmpPred::kUge: r = mk_uge(a, b); break;
          case ir::CmpPred::kSlt: r = mk_slt(a, b); break;
          case ir::CmpPred::kSle: r = mk_sle(a, b); break;
          case ir::CmpPred::kSgt: r = mk_sgt(a, b); break;
          case ir::CmpPred::kSge: r = mk_sge(a, b); break;
        }
      }
      set_result(Value::from_int(std::move(r)));
      ++f.inst;
      return;
    }

    case ir::Opcode::kCast: {
      const ExprRef v = eval_int(state, inst.ops[0]);
      ExprRef r;
      switch (inst.cast) {
        case ir::CastOp::kZExt: r = mk_zext(v, inst.width); break;
        case ir::CastOp::kSExt: r = mk_sext(v, inst.width); break;
        case ir::CastOp::kTrunc: r = mk_extract(v, 0, inst.width); break;
      }
      set_result(Value::from_int(std::move(r)));
      ++f.inst;
      return;
    }

    case ir::Opcode::kSelect: {
      const ExprRef c = eval_int(state, inst.ops[0]);
      const ExprRef a = eval_int(state, inst.ops[1]);
      const ExprRef b = eval_int(state, inst.ops[2]);
      set_result(Value::from_int(mk_select(c, a, b)));
      ++f.inst;
      return;
    }

    case ir::Opcode::kBr:
      execute_branch(state, inst, forked, ctx);
      return;

    case ir::Opcode::kJmp:
      enter_block(state, inst.bb_then);
      return;

    case ir::Opcode::kCall: {
      if (state.stack.size() >= options_.max_call_depth) {
        stats_.add(ids().recursion_limit);
        terminate(state, TerminationReason::kRecursionLimit);
        return;
      }
      const ir::Function* callee = module_.function(inst.callee);
      StackFrame frame;
      frame.fn = callee;
      frame.regs.resize(callee->num_regs());
      frame.slots.resize(callee->num_slots());
      frame.ret_reg = inst.result;
      for (std::size_t i = 0; i < inst.ops.size(); ++i)
        frame.regs[i] = eval_operand(state, inst.ops[i]);
      ++f.inst;  // the caller resumes after the call
      state.stack.push_back(std::move(frame));
      enter_block(state, 0);
      return;
    }

    case ir::Opcode::kRet: {
      Value result = inst.ops.empty() ? Value::none()
                                      : eval_operand(state, inst.ops[0]);
      // Retire this frame's allocas.
      const bool fp = fp_enabled();
      if (options_.detect_use_after_return) {
        for (std::uint32_t id : f.allocas) {
          MemObject& obj = state.memory.ensure_unique(id);
          if (fp && obj.alive)
            state.mem_fp ^=
                fp_term(id, kFpMetaIndex, 1) ^ fp_term(id, kFpMetaIndex, 0);
          obj.alive = false;
        }
      } else {
        for (std::uint32_t id : f.allocas) {
          if (fp) fp_remove_object(state, id);
          state.memory.erase(id);
        }
      }
      const std::uint32_t ret_reg = f.ret_reg;
      state.stack.pop_back();
      if (state.stack.empty()) {
        terminate(state, TerminationReason::kExit);
        record_test_case(state, "exit");
        return;
      }
      if (ret_reg != ir::kNoReg) state.frame().regs[ret_reg] = std::move(result);
      return;
    }

    case ir::Opcode::kIntrinsic: {
      switch (inst.intrinsic) {
        case ir::Intrinsic::kOut: {
          const ExprRef v = eval_int(state, inst.ops[0]);
          if (out_log_.size() < 4096)
            out_log_.push_back(ctx != nullptr ? ctx->seed_eval->evaluate(v)
                                              : eval_model(state, v));
          stats_.add(ids().out_calls);
          break;
        }
        case ir::Intrinsic::kAssert: {
          const ExprRef cond = eval_int(state, inst.ops[0]);
          if (!guard(state, mk_lnot(cond), BugKind::kAssertFail,
                     "check() failed", ctx))
            return;
          break;
        }
        case ir::Intrinsic::kAbort:
          terminate(state, TerminationReason::kExit);
          record_test_case(state, "stop");
          return;
        case ir::Intrinsic::kCheckedAdd: {
          const ExprRef a = eval_int(state, inst.ops[0]);
          const ExprRef b = eval_int(state, inst.ops[1]);
          const ExprRef sum = mk_add(a, b);
          // Unsigned wraparound: sum < a.
          if (!guard(state, mk_ult(sum, a), BugKind::kIntegerOverflow,
                     "integer overflow in checked_add", ctx))
            return;
          set_result(Value::from_int(sum));
          break;
        }
        case ir::Intrinsic::kCheckedMul: {
          const ExprRef a = eval_int(state, inst.ops[0]);
          const ExprRef b = eval_int(state, inst.ops[1]);
          const unsigned w = a->width();
          const ExprRef product = mk_mul(a, b);
          ExprRef overflow;
          if (w <= 32) {
            const ExprRef wide = mk_mul(mk_zext(a, 2 * w), mk_zext(b, 2 * w));
            overflow = mk_ult(mk_const(truncate_to_width(~std::uint64_t{0}, w),
                                       2 * w),
                              wide);
          } else {
            // w == 64: a*b overflows iff b != 0 and (a*b)/b != a.
            overflow = mk_and(mk_ne(b, mk_const(0, w)),
                              mk_ne(mk_udiv(product, b), a));
          }
          if (!guard(state, overflow, BugKind::kIntegerOverflow,
                     "integer overflow in checked_mul", ctx))
            return;
          set_result(Value::from_int(product));
          break;
        }
      }
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kSlotGet:
      set_result(Value::from_ptr(f.slots[inst.slot]));
      ++f.inst;
      return;

    case ir::Opcode::kSlotSet: {
      Value v = eval_operand(state, inst.ops[0]);
      assert(v.is_ptr());
      f.slots[inst.slot] = std::move(v.p);
      ++f.inst;
      return;
    }

    case ir::Opcode::kGlobalAddr:
      set_result(Value::from_ptr(Pointer::to(inst.slot, mk_const(0, 64))));
      ++f.inst;
      return;

    case ir::Opcode::kUnreachable:
      terminate(state, TerminationReason::kInfeasible);
      stats_.add(ids().unreachable);
      return;
  }
}

}  // namespace pbse::vm
