#include "vm/executor.h"

#include <cassert>

#include "obs/trace.h"
#include "support/log.h"

namespace pbse::vm {

namespace {

ir::BinOp bin_of(const ir::Instruction& inst) { return inst.bin; }

/// Interned counter / trace-event names for the VM hot loop (see stats.h).
struct VmIds {
  obs::MetricId unique_bugs = obs::intern_metric("executor.unique_bugs");
  obs::MetricId duplicate_bugs = obs::intern_metric("executor.duplicate_bugs");
  obs::MetricId term_exit = obs::intern_metric("executor.term_exit");
  obs::MetricId term_bug = obs::intern_metric("executor.term_bug");
  obs::MetricId term_infeasible =
      obs::intern_metric("executor.term_infeasible");
  obs::MetricId term_recursion = obs::intern_metric("executor.term_recursion");
  obs::MetricId term_insts = obs::intern_metric("executor.term_insts");
  obs::MetricId concolic_offpath_bugs =
      obs::intern_metric("executor.concolic_offpath_bugs");
  obs::MetricId offpath_bugs = obs::intern_metric("executor.offpath_bugs");
  obs::MetricId concretized_offsets =
      obs::intern_metric("executor.concretized_offsets");
  obs::MetricId symbolic_branches =
      obs::intern_metric("concolic.symbolic_branches");
  obs::MetricId seed_states = obs::intern_metric("concolic.seed_states");
  obs::MetricId seed_states_deduped =
      obs::intern_metric("concolic.seed_states_deduped");
  obs::MetricId forks = obs::intern_metric("executor.forks");
  obs::MetricId fork_unknown = obs::intern_metric("executor.fork_unknown");
  obs::MetricId fork_unsat = obs::intern_metric("executor.fork_unsat");
  obs::MetricId fork_suppressed =
      obs::intern_metric("executor.fork_suppressed");
  obs::MetricId recursion_limit =
      obs::intern_metric("executor.recursion_limit");
  obs::MetricId seedstate_unsat =
      obs::intern_metric("executor.seedstate_unsat");
  obs::MetricId seedstate_unknown =
      obs::intern_metric("executor.seedstate_unknown");
  obs::MetricId seedstate_repaired =
      obs::intern_metric("executor.seedstate_repaired");
  obs::MetricId out_calls = obs::intern_metric("executor.out_calls");
  obs::MetricId unreachable = obs::intern_metric("executor.unreachable");
  // Trace event / argument names.
  obs::MetricId ev_new_cover = obs::intern_metric("new_cover");
  obs::MetricId ev_bug = obs::intern_metric("bug");
  obs::MetricId ev_terminate = obs::intern_metric("terminate");
  obs::MetricId ev_fork = obs::intern_metric("fork");
  obs::MetricId ev_seed_state = obs::intern_metric("seed_state");
  obs::MetricId arg_bb = obs::intern_metric("bb");
  obs::MetricId arg_total = obs::intern_metric("total");
  obs::MetricId arg_kind = obs::intern_metric("kind");
  obs::MetricId arg_reason = obs::intern_metric("reason");
  obs::MetricId arg_insts = obs::intern_metric("insts");
  obs::MetricId arg_state = obs::intern_metric("state");
};

const VmIds& ids() {
  static const VmIds v;
  return v;
}

}  // namespace

Executor::Executor(const ir::Module& module, Solver& solver, VClock& clock,
                   Stats& stats, ExecutorOptions options)
    : module_(module),
      solver_(solver),
      clock_(clock),
      stats_(stats),
      options_(options) {
  assert(module.finalized() && "finalize the module before execution");
  covered_.assign(module.total_blocks(), false);
}

std::unique_ptr<ExecutionState> Executor::make_initial_state(
    const std::string& entry, const ArrayRef& input,
    const std::vector<std::uint8_t>& seed) {
  input_array_ = input;

  auto state = std::make_unique<ExecutionState>();
  state->id = allocate_state_id();
  state->born_at_ticks = clock_.now();

  // Globals get object ids 0..G-1, matching their module indices.
  for (std::uint32_t gi = 0; gi < module_.num_globals(); ++gi) {
    const ir::Global& g = module_.global(gi);
    const std::uint32_t id = state->memory.add(MemObject::make_concrete(
        g.size, g.init, "global " + g.name, g.writable));
    (void)id;
    assert(id == gi);
  }
  const std::uint32_t input_obj =
      state->memory.add(MemObject::make_symbolic(input, "input"));
  input_object_ = input_obj;

  // Model: the seed bytes (zero-padded / truncated to the array size).
  {
    auto model = std::make_shared<Assignment>();
    std::vector<std::uint8_t> bytes(input->size(), 0);
    for (std::size_t i = 0; i < bytes.size() && i < seed.size(); ++i)
      bytes[i] = seed[i];
    model->set(input, std::move(bytes));
    state->model = std::move(model);
  }

  const ir::Function* fn = module_.function_by_name(entry);
  assert(fn != nullptr && "unknown entry function");
  assert(fn->params().size() == 2 && fn->params()[0].is_ptr() &&
         fn->params()[1].is_int() &&
         "entry must have signature (ptr file, int size)");

  StackFrame frame;
  frame.fn = fn;
  frame.regs.resize(fn->num_regs());
  frame.slots.resize(fn->num_slots());
  frame.regs[0] = Value::from_ptr(Pointer::to(input_obj, mk_const(0, 64)));
  frame.regs[1] =
      Value::from_int(mk_const(input->size(), fn->params()[1].width));
  state->stack.push_back(std::move(frame));

  enter_block(*state, 0);
  return state;
}

// --- Operand evaluation -----------------------------------------------------

Value Executor::eval_operand(const ExecutionState& state,
                             const ir::Operand& op) const {
  switch (op.kind) {
    case ir::Operand::Kind::kNone:
      return Value::none();
    case ir::Operand::Kind::kConst:
      if (op.type.is_ptr()) return Value::from_ptr(Pointer::null());
      return Value::from_int(mk_const(op.cval, op.type.width));
    case ir::Operand::Kind::kReg:
      return state.frame().regs[op.reg];
  }
  return Value::none();
}

ExprRef Executor::eval_int(const ExecutionState& state,
                           const ir::Operand& op) const {
  Value v = eval_operand(state, op);
  assert(v.is_int() && "expected an integer operand");
  return v.i;
}

// --- Coverage ----------------------------------------------------------------

void Executor::enter_block(ExecutionState& state, std::uint32_t block_id) {
  StackFrame& f = state.frame();
  f.block = block_id;
  f.inst = 0;
  record_coverage(state);
}

void Executor::record_coverage(ExecutionState& state) {
  const std::uint32_t gid = state.current_global_bb();
  if (!covered_[gid]) {
    covered_[gid] = true;
    ++num_covered_;
    ++coverage_epoch_;
    coverage_log_.push_back(CoverEvent{clock_.now(), gid});
    state.covered_new = true;
    obs::trace_instant(obs::Category::kVm, ids().ev_new_cover, clock_.now(),
                       gid, ids().arg_bb, num_covered_, ids().arg_total);
  }
  if (on_block_entered) on_block_entered(state, gid);
}

// --- Bug reporting ------------------------------------------------------------

std::vector<std::uint8_t> Executor::extract_input(const Assignment& a) const {
  std::vector<std::uint8_t> bytes(input_array_ ? input_array_->size() : 0, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = a.byte(input_array_.get(), static_cast<std::uint32_t>(i));
  return bytes;
}

void Executor::report_bug(ExecutionState& state, BugKind kind,
                          const std::string& message,
                          const Assignment& witness) {
  const ir::Instruction& inst = state.current_inst();
  BugReport report;
  report.kind = kind;
  report.function = state.frame().fn->name();
  report.line = inst.line;
  report.global_bb = state.current_global_bb();
  report.message = message;
  report.found_at_ticks = clock_.now();
  report.state_id = state.id;
  report.input = extract_input(witness);
  if (bug_sites_.insert(report.site_key()).second) {
    stats_.add(ids().unique_bugs);
    obs::trace_instant(obs::Category::kVm, ids().ev_bug, clock_.now(),
                       report.global_bb, ids().arg_bb,
                       static_cast<std::uint64_t>(kind), ids().arg_kind);
    bugs_.push_back(std::move(report));
  } else {
    stats_.add(ids().duplicate_bugs);
  }
}

void Executor::terminate(ExecutionState& state, TerminationReason reason) {
  state.termination = reason;
  switch (reason) {
    case TerminationReason::kExit: stats_.add(ids().term_exit); break;
    case TerminationReason::kBug: stats_.add(ids().term_bug); break;
    case TerminationReason::kInfeasible:
      stats_.add(ids().term_infeasible);
      break;
    case TerminationReason::kRecursionLimit:
      stats_.add(ids().term_recursion);
      break;
    default: break;
  }
  stats_.add(ids().term_insts, state.instructions);
  obs::trace_instant(obs::Category::kVm, ids().ev_terminate, clock_.now(),
                     static_cast<std::uint64_t>(reason), ids().arg_reason,
                     state.instructions, ids().arg_insts);
  if (live_states_ > 0) --live_states_;
}

void Executor::record_test_case(const ExecutionState& state,
                                const std::string& why) {
  if (test_cases_.size() >= options_.max_test_cases) return;
  TestCase tc;
  tc.input = extract_input(*state.model);
  tc.state_id = state.id;
  tc.generated_at_ticks = clock_.now();
  tc.reason = why;
  test_cases_.push_back(std::move(tc));
}

// --- Guards --------------------------------------------------------------------

bool Executor::guard(ExecutionState& state, const ExprRef& error_cond,
                     BugKind kind, const std::string& message,
                     ConcolicCtx* ctx, bool concolic_feasibility) {
  if (error_cond->is_false()) return true;

  if (ctx != nullptr) {
    // Concolic: the seed's concrete behaviour decides the path (Algorithm
    // 2's isFindBug()).
    clock_.advance(1);
    if (error_cond->is_true() || ctx->seed_eval->evaluate_bool(error_cond)) {
      report_bug(state, kind, message, *ctx->seed);
      terminate(state, TerminationReason::kBug);
      return false;
    }
    // For fixed-size internal buffers, the symbolic half of the lockstep
    // additionally asks whether ANOTHER input could violate the access —
    // exactly what KLEE's seeded mode reports (the paper's libpng month
    // bug lives in straight-line code only this check can reach).
    if (concolic_feasibility && ctx->offpath_bug_checks) {
      Assignment witness(*ctx->seed);
      if (solver_.check_sat(state.constraints, error_cond, &witness,
                            ctx->seed) == SolverResult::kSat) {
        report_bug(state, kind, message, witness);
        stats_.add(ids().concolic_offpath_bugs);
      }
    }
    state.constraints.add(mk_lnot(error_cond));
    return true;
  }

  if (error_cond->is_true()) {
    report_bug(state, kind, message, *state.model);
    terminate(state, TerminationReason::kBug);
    return false;
  }

  const ExprRef ok = mk_lnot(error_cond);
  clock_.advance(1);
  if (eval_model(state, error_cond) != 0) {
    // The current model triggers the bug: report it, then try to continue
    // on the ok side with a repaired model.
    report_bug(state, kind, message, *state.model);
    Assignment repaired(*state.model);
    if (solver_.check_sat(state.constraints, ok, &repaired,
                          state.model) == SolverResult::kSat) {
      state.constraints.add(ok);
      state.model = std::make_shared<Assignment>(std::move(repaired));
      return true;
    }
    terminate(state, TerminationReason::kBug);
    return false;
  }

  // Model is fine; ask whether some other input could trigger the bug.
  Assignment witness(*state.model);
  if (solver_.check_sat(state.constraints, error_cond, &witness,
                        state.model) == SolverResult::kSat) {
    report_bug(state, kind, message, witness);
    stats_.add(ids().offpath_bugs);
  }
  state.constraints.add(ok);
  return true;
}

// --- Memory --------------------------------------------------------------------

std::optional<Executor::Access> Executor::check_access(ExecutionState& state,
                                                       const Pointer& ptr,
                                                       unsigned bytes,
                                                       bool is_write,
                                                       ConcolicCtx* ctx) {
  const Assignment& concretizer =
      ctx != nullptr ? *ctx->seed : *state.model;
  if (ptr.is_null()) {  // the null pointer carries no offset expr: check first
    report_bug(state, BugKind::kNullDeref, "dereference of null pointer",
               concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }
  // Concolic feasibility checks are worthwhile for fixed-size internal
  // buffers indexed by SHALLOW input-derived expressions (the paper's
  // table-lookup bug pattern); offsets derived from deep computation
  // (e.g. LZW-decoded data) are left to phase exploration, which parks
  // states next to the branches that produce them.
  const bool internal_object =
      ptr.object != input_object_ &&
      (ptr.offset->is_constant() || expr_cost(ptr.offset) <= 512);
  const MemObject* obj = state.memory.find(ptr.object);
  if (obj == nullptr) {
    // The object was erased on frame return: a dangling pointer.
    report_bug(state, BugKind::kUseAfterReturn,
               "access through a dangling pointer", concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }
  if (options_.detect_use_after_return && !obj->alive) {
    report_bug(state, BugKind::kUseAfterReturn,
               "access to object after its frame returned (" + obj->name + ")",
               concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }
  if (is_write && !obj->writable) {
    report_bug(state, BugKind::kOutOfBoundsWrite,
               "write to read-only object (" + obj->name + ")", concretizer);
    terminate(state, TerminationReason::kBug);
    return std::nullopt;
  }

  const BugKind oob_kind =
      is_write ? BugKind::kOutOfBoundsWrite : BugKind::kOutOfBoundsRead;
  const std::string what = is_write ? "write" : "read";

  if (ptr.offset->is_constant()) {
    const std::uint64_t off = ptr.offset->constant_value();
    if (off + bytes > obj->size || off + bytes < off) {
      report_bug(state, oob_kind,
                 "out-of-bounds " + what + " of " + obj->name + " at offset " +
                     std::to_string(off) + " (size " +
                     std::to_string(obj->size) + ")",
                 concretizer);
      terminate(state, TerminationReason::kBug);
      return std::nullopt;
    }
    return Access{ptr.object, off};
  }

  // Symbolic offset: OOB iff offset + bytes > size (including wraparound).
  const ExprRef end = mk_add(ptr.offset, mk_const(bytes, 64));
  const ExprRef oob = mk_lor(mk_ult(mk_const(obj->size, 64), end),
                             mk_ult(end, ptr.offset));
  if (!guard(state, oob, oob_kind,
             "out-of-bounds " + what + " of " + obj->name +
                 " at symbolic offset",
             ctx, /*concolic_feasibility=*/internal_object))
    return std::nullopt;

  // Concretize the (now in-bounds) offset along this path.
  clock_.advance(1);
  const std::uint64_t off = ctx != nullptr
                                ? ctx->seed_eval->evaluate(ptr.offset)
                                : eval_model(state, ptr.offset);
  state.constraints.add(mk_eq(ptr.offset, mk_const(off, 64)));
  stats_.add(ids().concretized_offsets);
  assert(off + bytes <= obj->size);
  return Access{ptr.object, off};
}

ExprRef Executor::load_bytes(const ExecutionState& state, std::uint32_t object,
                             std::uint64_t offset, unsigned width) const {
  const MemObject* obj = state.memory.find(object);
  const unsigned n = width / 8;
  ExprRef value = obj->bytes[offset];
  for (unsigned i = 1; i < n; ++i)
    value = mk_concat(obj->bytes[offset + i], value);  // little-endian
  return value;
}

void Executor::store_bytes(ExecutionState& state, std::uint32_t object,
                           std::uint64_t offset, const ExprRef& value) {
  MemObject& obj = state.memory.ensure_unique(object);
  const unsigned n = value->width() / 8;
  for (unsigned i = 0; i < n; ++i)
    obj.bytes[offset + i] = mk_extract(value, 8 * i, 8);
}

// --- Branches -------------------------------------------------------------------

void Executor::execute_branch(
    ExecutionState& state, const ir::Instruction& inst,
    std::vector<std::unique_ptr<ExecutionState>>* forked, ConcolicCtx* ctx) {
  const ExprRef cond = eval_int(state, inst.ops[0]);

  if (cond->is_constant()) {
    enter_block(state, cond->constant_value() != 0 ? inst.bb_then
                                                   : inst.bb_else);
    return;
  }

  if (ctx != nullptr) {
    // Concolic: follow the seed; record the off-path side as a seedState
    // parked AT this branch (it re-executes the branch on activation, once
    // its model has been validated against the flipped constraint).
    clock_.advance(1);
    const bool dir = ctx->seed_eval->evaluate_bool(cond);
    const ExprRef taken = dir ? cond : mk_lnot(cond);
    stats_.add(ids().symbolic_branches);

    // Algorithm 2 records one seedState per symbolic branch: the FLIPPED
    // (unexplored) direction only. The seed-following side needs no
    // snapshot — the concolic state itself keeps walking it, and phase
    // scheduling re-enters seed-path code through the flipped states'
    // symbolic re-execution. Record-time dedup keeps only the EARLIEST
    // seedState per fork point — the paper's Sec. III-B3 selection.
    const std::uint64_t fork_point =
        (std::uint64_t{state.current_global_bb()} << 32) |
        state.frame().inst;
    if (concolic_seen_forks_.insert(fork_point).second) {
      ForkRecord record;
      record.fork_ticks = clock_.now();
      record.fork_bb = state.current_global_bb();
      record.fork_inst = state.frame().inst;
      auto child = state.fork(allocate_state_id());
      child->born_at_ticks = clock_.now();
      child->fork_bb = record.fork_bb;
      child->fork_inst = record.fork_inst;
      if (child->constraints.add(mk_lnot(taken))) {
        obs::trace_instant(obs::Category::kConcolic, ids().ev_seed_state,
                           clock_.now(), record.fork_bb, ids().arg_bb,
                           child->id, ids().arg_state);
        record.state = std::shared_ptr<ExecutionState>(std::move(child));
        ctx->fork_records->push_back(std::move(record));
        stats_.add(ids().seed_states);
      }
    } else {
      stats_.add(ids().seed_states_deduped);
    }

    state.constraints.add(taken);
    enter_block(state, dir ? inst.bb_then : inst.bb_else);
    return;
  }

  // Symbolic: follow the model's direction for free; query only the other.
  clock_.advance(1);
  const bool dir = eval_model(state, cond) != 0;
  const ExprRef taken = dir ? cond : mk_lnot(cond);
  const ExprRef other = mk_lnot(taken);

  if (forked != nullptr && live_states_ < options_.max_live_states) {
    Assignment other_model(*state.model);
    const SolverResult r = solver_.check_sat(state.constraints, other,
                                             &other_model, state.model);
    if (r == SolverResult::kSat) {
      auto child = state.fork(allocate_state_id());
      child->born_at_ticks = clock_.now();
      child->fork_bb = state.current_global_bb();
      child->fork_inst = state.frame().inst;
      child->constraints.add(other);
      child->model = std::make_shared<Assignment>(std::move(other_model));
      obs::trace_instant(obs::Category::kVm, ids().ev_fork, clock_.now(),
                         state.current_global_bb(), ids().arg_bb, child->id,
                         ids().arg_state);
      enter_block(*child, dir ? inst.bb_else : inst.bb_then);
      forked->push_back(std::move(child));
      ++live_states_;
      stats_.add(ids().forks);
    } else if (r == SolverResult::kUnknown) {
      stats_.add(ids().fork_unknown);
      PBSE_LOG_DEBUG << "fork unknown in " << state.frame().fn->name()
                     << " line " << inst.line << ": " << other->to_string();
    } else {
      stats_.add(ids().fork_unsat);
    }
  } else {
    stats_.add(ids().fork_suppressed);
  }

  state.constraints.add(taken);
  enter_block(state, dir ? inst.bb_then : inst.bb_else);
}

// --- Main dispatch -----------------------------------------------------------------

void Executor::step(ExecutionState& state,
                    std::vector<std::unique_ptr<ExecutionState>>& forked) {
  execute(state, &forked, nullptr);
}

void Executor::step_concolic(ExecutionState& state, const Assignment& seed,
                             CachingEvaluator& seed_eval,
                             std::vector<ForkRecord>& fork_records,
                             bool offpath_bug_checks) {
  // The evaluator owns a shared reference to the seed assignment; reuse it
  // so feasibility queries get a cache-friendly hint.
  (void)seed;
  ConcolicCtx ctx{seed_eval.assignment(), &seed_eval, &fork_records,
                  offpath_bug_checks};
  execute(state, nullptr, &ctx);
}

std::uint64_t Executor::eval_model(ExecutionState& state, const ExprRef& e) {
  if (state.model_eval == nullptr ||
      state.model_eval->assignment().get() != state.model.get()) {
    state.model_eval = std::make_shared<CachingEvaluator>(state.model);
  }
  return state.model_eval->evaluate(e);
}

bool Executor::validate_model(ExecutionState& state) {
  // Fast path: the recorded model may already satisfy the constraints.
  std::vector<ExprRef> violated;
  for (const auto& c : state.constraints.constraints()) {
    clock_.advance(1);
    if (eval_model(state, c) == 0) violated.push_back(c);
  }
  if (violated.empty()) return true;

  Assignment repaired(*state.model);
  // Repair only the violated constraints' independent slice — usually a
  // seedState's model (the seed) violates exactly the flipped branch
  // constraint. This is sound: the untouched partitions' bytes keep
  // satisfying the constraints they are connected to, and it is vastly
  // cheaper than re-solving the whole path. Multiple violations are folded
  // into one conjunction query so the slice still covers them all while
  // the solver's partition caches stay in play.
  ExprRef repair_query = violated.front();
  for (std::size_t i = 1; i < violated.size(); ++i)
    repair_query = mk_land(repair_query, violated[i]);
  const SolverResult r =
      solver_.check_sat(state.constraints, repair_query, &repaired,
                        state.model);
  if (r != SolverResult::kSat) {
    stats_.add(r == SolverResult::kUnsat ? ids().seedstate_unsat
                                         : ids().seedstate_unknown);
    terminate(state, TerminationReason::kInfeasible);
    return false;
  }
  state.model = std::make_shared<Assignment>(std::move(repaired));
  stats_.add(ids().seedstate_repaired);
  return true;
}

void Executor::execute(ExecutionState& state,
                       std::vector<std::unique_ptr<ExecutionState>>* forked,
                       ConcolicCtx* ctx) {
  assert(!state.done() && !state.stack.empty());
  const ir::Instruction& inst = state.current_inst();
  clock_.advance(options_.ticks_per_instruction);
  ++state.instructions;
  StackFrame& f = state.frame();

  auto set_result = [&](Value v) {
    state.frame().regs[inst.result] = std::move(v);
  };

  switch (inst.op) {
    case ir::Opcode::kAlloca: {
      const std::uint32_t id = state.memory.add(MemObject::make(
          inst.alloca_size, "alloca in " + f.fn->name()));
      f.allocas.push_back(id);
      set_result(Value::from_ptr(Pointer::to(id, mk_const(0, 64))));
      ++f.inst;
      return;
    }

    case ir::Opcode::kLoad: {
      Value p = eval_operand(state, inst.ops[0]);
      assert(p.is_ptr());
      auto access = check_access(state, p.p, inst.width / 8, false, ctx);
      if (!access) return;
      set_result(Value::from_int(load_bytes(state, access->object,
                                            access->concrete_offset,
                                            inst.width)));
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kStore: {
      Value p = eval_operand(state, inst.ops[0]);
      assert(p.is_ptr());
      const ExprRef value = eval_int(state, inst.ops[1]);
      auto access = check_access(state, p.p, value->width() / 8, true, ctx);
      if (!access) return;
      store_bytes(state, access->object, access->concrete_offset, value);
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kGep: {
      Value p = eval_operand(state, inst.ops[0]);
      assert(p.is_ptr());
      const ExprRef delta = eval_int(state, inst.ops[1]);
      assert(delta->width() == 64);
      if (p.p.is_null()) {
        // Pointer arithmetic on null stays null; the eventual dereference
        // reports the bug.
        set_result(Value::from_ptr(Pointer::null()));
      } else {
        set_result(Value::from_ptr(
            Pointer::to(p.p.object, mk_add(p.p.offset, delta))));
      }
      ++f.inst;
      return;
    }

    case ir::Opcode::kBin: {
      const ExprRef a = eval_int(state, inst.ops[0]);
      const ExprRef b = eval_int(state, inst.ops[1]);
      const ir::BinOp op = bin_of(inst);
      if (op == ir::BinOp::kUDiv || op == ir::BinOp::kSDiv ||
          op == ir::BinOp::kURem || op == ir::BinOp::kSRem) {
        if (!guard(state, mk_eq(b, mk_const(0, b->width())),
                   BugKind::kDivByZero, "division by zero", ctx))
          return;
      }
      ExprRef r;
      switch (op) {
        case ir::BinOp::kAdd: r = mk_add(a, b); break;
        case ir::BinOp::kSub: r = mk_sub(a, b); break;
        case ir::BinOp::kMul: r = mk_mul(a, b); break;
        case ir::BinOp::kUDiv: r = mk_udiv(a, b); break;
        case ir::BinOp::kSDiv: r = mk_sdiv(a, b); break;
        case ir::BinOp::kURem: r = mk_urem(a, b); break;
        case ir::BinOp::kSRem: r = mk_srem(a, b); break;
        case ir::BinOp::kAnd: r = mk_and(a, b); break;
        case ir::BinOp::kOr: r = mk_or(a, b); break;
        case ir::BinOp::kXor: r = mk_xor(a, b); break;
        case ir::BinOp::kShl: r = mk_shl(a, b); break;
        case ir::BinOp::kLShr: r = mk_lshr(a, b); break;
        case ir::BinOp::kAShr: r = mk_ashr(a, b); break;
      }
      set_result(Value::from_int(std::move(r)));
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kCmp: {
      Value va = eval_operand(state, inst.ops[0]);
      Value vb = eval_operand(state, inst.ops[1]);
      ExprRef r;
      if (va.is_ptr() || vb.is_ptr()) {
        assert(va.is_ptr() && vb.is_ptr());
        assert(inst.pred == ir::CmpPred::kEq || inst.pred == ir::CmpPred::kNe);
        ExprRef eq;
        if (va.p.is_null() && vb.p.is_null())
          eq = mk_bool(true);
        else if (va.p.is_null() || vb.p.is_null())
          eq = mk_bool(false);
        else if (va.p.object == vb.p.object)
          eq = mk_eq(va.p.offset, vb.p.offset);
        else
          eq = mk_bool(false);
        r = inst.pred == ir::CmpPred::kEq ? eq : mk_lnot(eq);
      } else {
        const ExprRef a = va.i;
        const ExprRef b = vb.i;
        switch (inst.pred) {
          case ir::CmpPred::kEq: r = mk_eq(a, b); break;
          case ir::CmpPred::kNe: r = mk_ne(a, b); break;
          case ir::CmpPred::kUlt: r = mk_ult(a, b); break;
          case ir::CmpPred::kUle: r = mk_ule(a, b); break;
          case ir::CmpPred::kUgt: r = mk_ugt(a, b); break;
          case ir::CmpPred::kUge: r = mk_uge(a, b); break;
          case ir::CmpPred::kSlt: r = mk_slt(a, b); break;
          case ir::CmpPred::kSle: r = mk_sle(a, b); break;
          case ir::CmpPred::kSgt: r = mk_sgt(a, b); break;
          case ir::CmpPred::kSge: r = mk_sge(a, b); break;
        }
      }
      set_result(Value::from_int(std::move(r)));
      ++f.inst;
      return;
    }

    case ir::Opcode::kCast: {
      const ExprRef v = eval_int(state, inst.ops[0]);
      ExprRef r;
      switch (inst.cast) {
        case ir::CastOp::kZExt: r = mk_zext(v, inst.width); break;
        case ir::CastOp::kSExt: r = mk_sext(v, inst.width); break;
        case ir::CastOp::kTrunc: r = mk_extract(v, 0, inst.width); break;
      }
      set_result(Value::from_int(std::move(r)));
      ++f.inst;
      return;
    }

    case ir::Opcode::kSelect: {
      const ExprRef c = eval_int(state, inst.ops[0]);
      const ExprRef a = eval_int(state, inst.ops[1]);
      const ExprRef b = eval_int(state, inst.ops[2]);
      set_result(Value::from_int(mk_select(c, a, b)));
      ++f.inst;
      return;
    }

    case ir::Opcode::kBr:
      execute_branch(state, inst, forked, ctx);
      return;

    case ir::Opcode::kJmp:
      enter_block(state, inst.bb_then);
      return;

    case ir::Opcode::kCall: {
      if (state.stack.size() >= options_.max_call_depth) {
        stats_.add(ids().recursion_limit);
        terminate(state, TerminationReason::kRecursionLimit);
        return;
      }
      const ir::Function* callee = module_.function(inst.callee);
      StackFrame frame;
      frame.fn = callee;
      frame.regs.resize(callee->num_regs());
      frame.slots.resize(callee->num_slots());
      frame.ret_reg = inst.result;
      for (std::size_t i = 0; i < inst.ops.size(); ++i)
        frame.regs[i] = eval_operand(state, inst.ops[i]);
      ++f.inst;  // the caller resumes after the call
      state.stack.push_back(std::move(frame));
      enter_block(state, 0);
      return;
    }

    case ir::Opcode::kRet: {
      Value result = inst.ops.empty() ? Value::none()
                                      : eval_operand(state, inst.ops[0]);
      // Retire this frame's allocas.
      if (options_.detect_use_after_return) {
        for (std::uint32_t id : f.allocas)
          state.memory.ensure_unique(id).alive = false;
      } else {
        for (std::uint32_t id : f.allocas) state.memory.erase(id);
      }
      const std::uint32_t ret_reg = f.ret_reg;
      state.stack.pop_back();
      if (state.stack.empty()) {
        terminate(state, TerminationReason::kExit);
        record_test_case(state, "exit");
        return;
      }
      if (ret_reg != ir::kNoReg) state.frame().regs[ret_reg] = std::move(result);
      return;
    }

    case ir::Opcode::kIntrinsic: {
      switch (inst.intrinsic) {
        case ir::Intrinsic::kOut: {
          const ExprRef v = eval_int(state, inst.ops[0]);
          if (out_log_.size() < 4096)
            out_log_.push_back(ctx != nullptr ? ctx->seed_eval->evaluate(v)
                                              : eval_model(state, v));
          stats_.add(ids().out_calls);
          break;
        }
        case ir::Intrinsic::kAssert: {
          const ExprRef cond = eval_int(state, inst.ops[0]);
          if (!guard(state, mk_lnot(cond), BugKind::kAssertFail,
                     "check() failed", ctx))
            return;
          break;
        }
        case ir::Intrinsic::kAbort:
          terminate(state, TerminationReason::kExit);
          record_test_case(state, "stop");
          return;
        case ir::Intrinsic::kCheckedAdd: {
          const ExprRef a = eval_int(state, inst.ops[0]);
          const ExprRef b = eval_int(state, inst.ops[1]);
          const ExprRef sum = mk_add(a, b);
          // Unsigned wraparound: sum < a.
          if (!guard(state, mk_ult(sum, a), BugKind::kIntegerOverflow,
                     "integer overflow in checked_add", ctx))
            return;
          set_result(Value::from_int(sum));
          break;
        }
        case ir::Intrinsic::kCheckedMul: {
          const ExprRef a = eval_int(state, inst.ops[0]);
          const ExprRef b = eval_int(state, inst.ops[1]);
          const unsigned w = a->width();
          const ExprRef product = mk_mul(a, b);
          ExprRef overflow;
          if (w <= 32) {
            const ExprRef wide = mk_mul(mk_zext(a, 2 * w), mk_zext(b, 2 * w));
            overflow = mk_ult(mk_const(truncate_to_width(~std::uint64_t{0}, w),
                                       2 * w),
                              wide);
          } else {
            // w == 64: a*b overflows iff b != 0 and (a*b)/b != a.
            overflow = mk_and(mk_ne(b, mk_const(0, w)),
                              mk_ne(mk_udiv(product, b), a));
          }
          if (!guard(state, overflow, BugKind::kIntegerOverflow,
                     "integer overflow in checked_mul", ctx))
            return;
          set_result(Value::from_int(product));
          break;
        }
      }
      ++state.frame().inst;
      return;
    }

    case ir::Opcode::kSlotGet:
      set_result(Value::from_ptr(f.slots[inst.slot]));
      ++f.inst;
      return;

    case ir::Opcode::kSlotSet: {
      Value v = eval_operand(state, inst.ops[0]);
      assert(v.is_ptr());
      f.slots[inst.slot] = std::move(v.p);
      ++f.inst;
      return;
    }

    case ir::Opcode::kGlobalAddr:
      set_result(Value::from_ptr(Pointer::to(inst.slot, mk_const(0, 64))));
      ++f.inst;
      return;

    case ir::Opcode::kUnreachable:
      terminate(state, TerminationReason::kInfeasible);
      stats_.add(ids().unreachable);
      return;
  }
}

}  // namespace pbse::vm
