// The interpreter / symbolic executor over the Mini-IR — KLEE's Executor.
//
// Two modes share one instruction dispatcher:
//
//  * Symbolic (step): branch feasibility is decided with the solver; both
//    feasible directions fork. The state's `model` is kept as an invariant
//    satisfying assignment, so the direction the model already takes is
//    followed for free and only the off-model direction needs a query —
//    KLEE's seed-mode optimization generalized.
//
//  * Concolic (step_concolic, Algorithm 2 of the paper): one state follows
//    the seed input concretely while accumulating symbolic constraints. At
//    every symbolic branch the flipped (unexplored) direction is recorded
//    as a *seedState* (ForkRecord) without any solver work — one per
//    distinct fork point, keeping the earliest; bugs are only reported if
//    the seed itself triggers them.
//
// All checks KLEE performs are implemented: load/store bounds (symbolic
// offsets become solver queries and feasible violations become bug
// reports), null dereference, division by zero, use-after-return, checked
// integer overflow, and check() assertions.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>

#include "ir/ir.h"
#include "solver/solver.h"
#include "support/stats.h"
#include "support/vclock.h"
#include "vm/bugs.h"
#include "vm/state.h"
#include "vm/testcase.h"

namespace pbse::serialize {
class CampaignCodec;
}

namespace pbse::vm {

struct ExecutorOptions {
  std::uint64_t ticks_per_instruction = 1;
  std::uint64_t max_call_depth = 128;
  /// Above this many live states the executor stops forking and follows the
  /// model direction only (memory cap; KLEE's --max-forks analog).
  std::uint64_t max_live_states = 50000;
  /// When on, returned-from allocas are kept (dead) so accesses report
  /// use-after-return; when off they are erased, keeping the per-state
  /// object map — and therefore fork cost — proportional to live memory.
  bool detect_use_after_return = false;
  /// Cap on stored test cases (bug reports are always kept).
  std::uint64_t max_test_cases = 4096;
  /// Interpolant-based state subsumption at block entry: states whose
  /// constraint set is subsumed by a stored UNSAT-core or barren-death
  /// interpolant are terminated without solver work (DESIGN.md §10).
  bool use_subsumption = true;
  /// Coverage-stall gate on the heuristic barren-interpolant class, in
  /// instructions without new coverage. A state is only KILLED by a barren
  /// interpolant — and only RECORDS one at death — when it has run at
  /// least this long without covering new code: states actively finding
  /// blocks are untouchable by the heuristic class (the sound UNSAT-core /
  /// exact-fingerprint classes have no such gate). 0 makes the class
  /// unconditional (used by tests to exercise the mechanism determinately).
  std::uint64_t subsumption_min_stall = 16;
  /// Exact-duplicate state pruning via incremental fingerprints: a state
  /// whose full fingerprint (memory + stack + constraints) was already
  /// seen at the same block is terminated. Cross-campaign dedup rides the
  /// solver's shared L2 cache when one is configured.
  bool use_fingerprint_dedup = true;
  /// This campaign's index in a parallel run; lets the shared fingerprint
  /// registry distinguish own re-publications from foreign duplicates.
  std::uint32_t campaign_index = 0;
};

/// A seedState: the flipped (off-seed) fork recorded during concolic
/// execution (paper Sec. III-B2). Its `model` is still the seed (which does
/// NOT satisfy the flipped constraint); pbSE validates it on activation.
struct ForkRecord {
  std::shared_ptr<ExecutionState> state;
  std::uint64_t fork_ticks = 0;
  std::uint32_t fork_bb = 0;    // global block id of the fork point
  std::uint32_t fork_inst = 0;  // instruction index within the block
};

class Executor {
 public:
  Executor(const ir::Module& module, Solver& solver, VClock& clock,
           Stats& stats, ExecutorOptions options = {});

  /// Builds the initial state: globals materialized, `entry(file, size)`
  /// on the call stack with `input` as the symbolic file. `seed` initializes
  /// the state's model (pass the seed bytes in concolic mode; empty means
  /// all-zeros). Entry must have signature (ptr, int).
  std::unique_ptr<ExecutionState> make_initial_state(
      const std::string& entry, const ArrayRef& input,
      const std::vector<std::uint8_t>& seed);

  /// Executes one instruction of `state` symbolically. Fork children are
  /// appended to `forked`. Check state.done() afterwards.
  void step(ExecutionState& state,
            std::vector<std::unique_ptr<ExecutionState>>& forked);

  /// Executes one instruction in concolic lockstep along `seed`.
  /// `seed_eval` must be a caching evaluator over the same seed assignment
  /// (kept by the caller for the whole run). With `offpath_bug_checks`
  /// guards also report feasible-but-off-seed violations of internal
  /// buffers (solved witness input); without it only bugs the seed itself
  /// triggers are reported — pure replay semantics.
  void step_concolic(ExecutionState& state, const Assignment& seed,
                     CachingEvaluator& seed_eval,
                     std::vector<ForkRecord>& fork_records,
                     bool offpath_bug_checks = true);

  // --- Coverage ----------------------------------------------------------
  struct CoverEvent {
    std::uint64_t ticks;
    std::uint32_t global_bb;
  };
  const std::vector<bool>& covered() const { return covered_; }
  std::uint64_t num_covered() const { return num_covered_; }
  const std::vector<CoverEvent>& coverage_log() const { return coverage_log_; }
  /// Bumped every time a new block is covered (used by covnew/md2u to
  /// invalidate cached distances).
  std::uint64_t coverage_epoch() const { return coverage_epoch_; }

  /// Called on EVERY block entry (not just first coverage): BBV gathering.
  std::function<void(const ExecutionState&, std::uint32_t)> on_block_entered;

  // --- Results -----------------------------------------------------------
  const std::vector<BugReport>& bugs() const { return bugs_; }
  const std::vector<TestCase>& test_cases() const { return test_cases_; }

  /// Values passed to out(), evaluated under the emitting state's model
  /// (capped; primarily for tests and examples).
  const std::vector<std::uint64_t>& out_log() const { return out_log_; }

  const ir::Module& module() const { return module_; }
  Solver& solver() { return solver_; }
  Stats& stats() { return stats_; }
  const VClock& clock() const { return clock_; }
  const ArrayRef& input_array() const { return input_array_; }

  /// Number of unique bug sites found so far.
  std::size_t num_bug_sites() const { return bug_sites_.size(); }

  std::uint64_t allocate_state_id() { return next_state_id_++; }

  /// Re-establishes the model invariant of a seedState before symbolic
  /// execution (paper: "lazy pass through"). Returns false (and sets
  /// termination) if the recorded constraints are unsatisfiable or the
  /// solver exceeds its budget.
  bool validate_model(ExecutionState& state);

 private:
  /// Snapshots/restores campaign progress (coverage, bugs, test cases, id
  /// counters, dedup sets). input_array_ is re-bound by the codec so that
  /// restored expressions intern against the canonical array of the
  /// restoring process. symbolic_mode_ is transient (false between steps).
  friend class pbse::serialize::CampaignCodec;

  struct ConcolicCtx {
    Solver::HintRef seed;
    CachingEvaluator* seed_eval = nullptr;
    std::vector<ForkRecord>* fork_records = nullptr;
    /// Gates the feasibility half of guard(): off = pure concrete replay.
    bool offpath_bug_checks = true;
  };

  // One instruction; ctx == nullptr means symbolic mode.
  void execute(ExecutionState& state,
               std::vector<std::unique_ptr<ExecutionState>>* forked,
               ConcolicCtx* ctx);

  Value eval_operand(const ExecutionState& state, const ir::Operand& op) const;
  ExprRef eval_int(const ExecutionState& state, const ir::Operand& op) const;

  /// Evaluates `e` under the state's model through the state's memoized
  /// evaluator (rebinding it if the model was replaced).
  std::uint64_t eval_model(ExecutionState& state, const ExprRef& e);

  void enter_block(ExecutionState& state, std::uint32_t block_id);
  void record_coverage(ExecutionState& state);

  // Subsumption / fingerprint dedup (DESIGN.md §10).
  /// True when the incremental memory fingerprint must be maintained
  /// (either pruning mechanism needs it).
  bool fp_enabled() const {
    return options_.use_subsumption || options_.use_fingerprint_dedup;
  }
  /// XORs object `id`'s byte terms and liveness term into/out of the
  /// state's rolling memory fingerprint.
  void fp_add_object(ExecutionState& state, std::uint32_t id) const;
  void fp_remove_object(ExecutionState& state, std::uint32_t id) const;
  /// Content hash of everything that drives future execution EXCEPT the
  /// constraint set: memory fingerprint plus the full stack (function
  /// identity, position, registers, slots, pending allocas).
  std::uint64_t context_fingerprint(const ExecutionState& state) const;
  /// Block-entry probe: tries the UNSAT-core interpolants, the barren
  /// interpolants and the (local, then shared) fingerprint registries, in
  /// that order; terminates the state with kSubsumed on a hit. Takes the
  /// (block, context) ring snapshot used by barren recording. `may_kill`
  /// is false when this entry just covered a new block — a state that is
  /// actively producing coverage is never pruned.
  void probe_subsumption(ExecutionState& state, std::uint32_t gid,
                         bool may_kill);

  // Branch handling.
  void execute_branch(ExecutionState& state, const ir::Instruction& inst,
                      std::vector<std::unique_ptr<ExecutionState>>* forked,
                      ConcolicCtx* ctx);

  // Guard checks: returns true if execution may continue on the "ok" side.
  // `error_cond` is the width-1 expression that is true exactly when the
  // bug fires. In concolic mode the check is normally concrete-only
  // (Algorithm 2's isFindBug); `concolic_feasibility` additionally runs the
  // symbolic feasibility query — used for fixed-size internal buffers,
  // where KLEE's seeded mode reports off-seed violations too.
  bool guard(ExecutionState& state, const ExprRef& error_cond, BugKind kind,
             const std::string& message, ConcolicCtx* ctx,
             bool concolic_feasibility = false);

  // Memory access helpers.
  struct Access {
    std::uint32_t object = kNullObject;
    std::uint64_t concrete_offset = 0;  // valid after check succeeds
  };
  std::optional<Access> check_access(ExecutionState& state, const Pointer& ptr,
                                     unsigned bytes, bool is_write,
                                     ConcolicCtx* ctx);
  ExprRef load_bytes(const ExecutionState& state, std::uint32_t object,
                     std::uint64_t offset, unsigned width) const;
  void store_bytes(ExecutionState& state, std::uint32_t object,
                   std::uint64_t offset, const ExprRef& value);

  void report_bug(ExecutionState& state, BugKind kind,
                  const std::string& message, const Assignment& witness);
  void terminate(ExecutionState& state, TerminationReason reason);
  void record_test_case(const ExecutionState& state, const std::string& why);

  std::vector<std::uint8_t> extract_input(const Assignment& a) const;

  const ir::Module& module_;
  Solver& solver_;
  VClock& clock_;
  Stats& stats_;
  ExecutorOptions options_;

  ArrayRef input_array_;
  std::vector<bool> covered_;
  std::uint64_t num_covered_ = 0;
  std::uint64_t coverage_epoch_ = 0;
  std::vector<CoverEvent> coverage_log_;

  std::vector<BugReport> bugs_;
  std::unordered_set<std::string> bug_sites_;
  std::vector<TestCase> test_cases_;
  std::vector<std::uint64_t> out_log_;

  std::uint64_t next_state_id_ = 1;
  std::uint64_t live_states_ = 1;  // informational fork cap counter
  std::uint32_t input_object_ = kNullObject;  // id of the symbolic file
  /// Fork points already materialized as seedStates in concolic mode
  /// (record-time half of the paper's keep-earliest dedup).
  std::unordered_set<std::uint64_t> concolic_seen_forks_;
  /// True while executing under step() — subsumption probes and barren
  /// recording only apply to symbolic exploration; the concolic seed walk
  /// and initial-state construction must never be pruned.
  bool symbolic_mode_ = false;
  /// Full state fingerprints seen at block entries (campaign-local dedup;
  /// shared across every engine driving this executor). Bounded by a
  /// deterministic wholesale clear.
  std::unordered_set<std::uint64_t> seen_fingerprints_;
  static constexpr std::size_t kMaxSeenFingerprints = std::size_t{1} << 20;
};

}  // namespace pbse::vm
