#include "vm/memory.h"

namespace pbse::vm {

std::shared_ptr<MemObject> MemObject::make(std::uint64_t size,
                                           std::string name, bool writable) {
  auto obj = std::make_shared<MemObject>();
  obj->size = size;
  obj->bytes.assign(size, mk_const(0, 8));
  obj->writable = writable;
  obj->name = std::move(name);
  return obj;
}

std::shared_ptr<MemObject> MemObject::make_symbolic(const ArrayRef& array,
                                                    std::string name) {
  auto obj = std::make_shared<MemObject>();
  obj->size = array->size();
  obj->bytes.reserve(obj->size);
  for (std::uint32_t i = 0; i < obj->size; ++i)
    obj->bytes.push_back(mk_read(array, i));
  obj->writable = true;
  obj->name = std::move(name);
  return obj;
}

std::shared_ptr<MemObject> MemObject::make_concrete(
    std::uint64_t size, const std::vector<std::uint8_t>& init,
    std::string name, bool writable) {
  auto obj = std::make_shared<MemObject>();
  obj->size = size;
  obj->bytes.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i)
    obj->bytes.push_back(mk_const(i < init.size() ? init[i] : 0, 8));
  obj->writable = writable;
  obj->name = std::move(name);
  return obj;
}

}  // namespace pbse::vm
