// Per-state memory: copy-on-write byte objects addressed by object id.
//
// Cloning a state shallow-copies the object map (shared MemObject
// pointers); the first write to a shared object clones it. Bytes are
// symbolic expressions; concrete bytes are interned width-8 constants, so
// a fully concrete object costs one pointer per byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace pbse::vm {

/// One allocation: a fixed-size array of symbolic bytes.
struct MemObject {
  std::uint64_t size = 0;
  std::vector<ExprRef> bytes;  // size() == size
  bool writable = true;
  bool alive = true;  // false after the owning frame returns
  std::string name;   // for diagnostics ("global foo", "alloca", "input")

  /// A zero-filled object.
  static std::shared_ptr<MemObject> make(std::uint64_t size, std::string name,
                                         bool writable = true);
  /// An object backed by the symbolic array `array` (the input file).
  static std::shared_ptr<MemObject> make_symbolic(const ArrayRef& array,
                                                  std::string name);
  /// An object with concrete initial contents, zero-padded to `size`.
  static std::shared_ptr<MemObject> make_concrete(
      std::uint64_t size, const std::vector<std::uint8_t>& init,
      std::string name, bool writable);
};

/// The object map of one execution state. Value-copyable: copies share
/// MemObjects until written (ensure_unique).
class Memory {
 public:
  /// Adds an object under a fresh id and returns the id.
  std::uint32_t add(std::shared_ptr<MemObject> obj) {
    const std::uint32_t id = next_id_++;
    objects_[id] = std::move(obj);
    return id;
  }

  const MemObject* find(std::uint32_t id) const {
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
  }

  /// Returns a uniquely-owned, mutable view of object `id` (clones a shared
  /// object first). Must exist.
  MemObject& ensure_unique(std::uint32_t id) {
    auto& slot = objects_.at(id);
    if (slot.use_count() > 1) slot = std::make_shared<MemObject>(*slot);
    return *slot;
  }

  /// Removes an object outright (frame teardown when use-after-return
  /// detection is off — keeps the map, and therefore fork cost, small).
  void erase(std::uint32_t id) { objects_.erase(id); }

  std::size_t num_objects() const { return objects_.size(); }

  /// Snapshot/restore access (src/serialize). restore_object installs a
  /// shared MemObject under an explicit id — installing the SAME pointer
  /// into several states preserves the copy-on-write sharing the snapshot
  /// recorded, so a restored campaign forks as cheaply as the original.
  const std::unordered_map<std::uint32_t, std::shared_ptr<MemObject>>&
  objects() const {
    return objects_;
  }
  void restore_object(std::uint32_t id, std::shared_ptr<MemObject> obj) {
    objects_[id] = std::move(obj);
  }
  std::uint32_t next_id() const { return next_id_; }
  void set_next_id(std::uint32_t id) { next_id_ = id; }

 private:
  std::unordered_map<std::uint32_t, std::shared_ptr<MemObject>> objects_;
  std::uint32_t next_id_ = 0;
};

}  // namespace pbse::vm
