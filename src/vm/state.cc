#include "vm/state.h"

namespace pbse::vm {

std::unique_ptr<ExecutionState> ExecutionState::fork(
    std::uint64_t new_id) const {
  auto child = std::make_unique<ExecutionState>(*this);
  child->id = new_id;
  child->parent_id = id;
  child->depth = depth + 1;
  child->covered_new = false;
  // The entry ring records a state's OWN first block entries: a fresh fork
  // starts a fresh ring, so a barren death files the path condition the
  // subtree was born under, not the parent's (see executor.cc terminate).
  child->num_entry_snapshots = 0;
  return child;
}

}  // namespace pbse::vm
