#include "vm/state.h"

namespace pbse::vm {

std::unique_ptr<ExecutionState> ExecutionState::fork(
    std::uint64_t new_id) const {
  auto child = std::make_unique<ExecutionState>(*this);
  child->id = new_id;
  child->parent_id = id;
  child->depth = depth + 1;
  child->covered_new = false;
  return child;
}

}  // namespace pbse::vm
