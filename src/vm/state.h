// ExecutionState: one path through the program — KLEE's ExecutionState.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "expr/evaluator.h"
#include "ir/ir.h"
#include "solver/constraint_set.h"
#include "vm/memory.h"
#include "vm/value.h"

namespace pbse::vm {

// --- Fingerprint terms (DESIGN.md §10) --------------------------------------
//
// The memory fingerprint (ExecutionState::mem_fp) is an XOR of
// independently mixed per-byte terms, so any single mutation is an O(1)
// update: XOR the old term out, XOR the new one in. Terms mix the object
// id, the byte index and the byte's expression hash; expression hashes are
// content-based (arrays hash by name+size) and object ids are
// allocation-order-deterministic, so structurally identical states produce
// identical fingerprints across campaigns — the property cross-worker
// dedup rests on.

/// Index reserved for an object's existence/liveness term (no real byte
/// index reaches it: objects are far smaller than 2^64).
inline constexpr std::uint64_t kFpMetaIndex = ~std::uint64_t{0};

inline std::uint64_t fp_term(std::uint64_t object, std::uint64_t index,
                             std::uint64_t payload) {
  std::uint64_t h = (object + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (index + 1) * 0xc2b2ae3d27d4eb4fULL;
  return mix_constraint_hash(h ^ payload);
}

/// Order-sensitive accumulation (frames and registers are positional).
inline std::uint64_t fp_chain(std::uint64_t h, std::uint64_t x) {
  return mix_constraint_hash(h ^ (x + 0x632be59bd9b4e019ULL));
}

/// One activation record.
struct StackFrame {
  const ir::Function* fn = nullptr;
  std::uint32_t block = 0;     // current basic block (function-local id)
  std::uint32_t inst = 0;      // next instruction index within the block
  std::vector<Value> regs;     // virtual registers
  std::vector<Pointer> slots;  // mutable pointer-slot locals
  std::uint32_t ret_reg = ir::kNoReg;  // caller register receiving the result
  std::vector<std::uint32_t> allocas;  // objects to retire on return
};

/// Why a state stopped executing.
enum class TerminationReason : std::uint8_t {
  kRunning,
  kExit,          // main returned / stop()
  kBug,           // terminated at a bug site
  kInfeasible,    // both branch directions unsatisfiable / solver unknown
  kRecursionLimit,
  kStepLimit,
  kSubsumed,      // pruned at block entry (interpolant / fingerprint dedup)
};

class ExecutionState {
 public:
  ExecutionState() = default;

  /// Forks a copy with a fresh id. Memory and model are shared
  /// copy-on-write; the clone records `this` as its parent.
  std::unique_ptr<ExecutionState> fork(std::uint64_t new_id) const;

  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;
  std::vector<StackFrame> stack;
  Memory memory;
  ConstraintSet constraints;

  /// Last satisfying assignment seen for this path: the solver-hint that
  /// makes re-traversing the path cheap, and the bytes test cases are
  /// generated from. Shared copy-on-write across forks.
  std::shared_ptr<const Assignment> model = std::make_shared<Assignment>();

  /// Memoized evaluator bound to `model` (lazily [re]created by the
  /// executor when the model is replaced). Shared across forks while the
  /// model is shared; purely a cache, never semantics.
  std::shared_ptr<CachingEvaluator> model_eval;

  TerminationReason termination = TerminationReason::kRunning;
  std::uint64_t instructions = 0;   // executed by this state
  std::uint64_t depth = 0;          // fork depth
  std::uint64_t born_at_ticks = 0;  // VClock time of creation (fork time)
  std::uint32_t fork_bb = 0;        // global bb of the creating fork point
  std::uint32_t fork_inst = 0;      // instruction index of the fork point
  bool covered_new = false;         // covered a new block since last reset
  /// Instructions executed since this state last covered new code
  /// (maintained by the engine loop; drives the covnew searcher).
  std::uint64_t insts_since_cov_new = 0;

  // --- Subsumption / fingerprint bookkeeping (see DESIGN.md §10) ---------
  /// Rolling XOR of per-byte memory terms, maintained incrementally by the
  /// executor at alloca/store/retire points. Combined with the stack and
  /// constraint hashes at block entry to form the state fingerprint.
  std::uint64_t mem_fp = 0;
  /// The state's first kMaxEntrySnapshots block entries since its birth
  /// fork (reset by fork()), each packed as (global block id << 32 |
  /// constraint count at entry). When the state dies barren, the
  /// entry-time PREFIX of its constraint list (the first `count`
  /// constraints, which fork inheritance keeps append-only) is weakened
  /// into a barren interpolant filed under the block id.
  static constexpr std::size_t kMaxEntrySnapshots = 8;
  std::array<std::uint64_t, kMaxEntrySnapshots> entry_snapshots{};
  std::uint32_t num_entry_snapshots = 0;  // valid entries (<= capacity)

  StackFrame& frame() { return stack.back(); }
  const StackFrame& frame() const { return stack.back(); }
  bool done() const { return termination != TerminationReason::kRunning; }

  /// The instruction about to execute. Stack must be non-empty.
  const ir::Instruction& current_inst() const {
    const StackFrame& f = frame();
    return f.fn->block(f.block).insts[f.inst];
  }

  /// Global id of the current basic block.
  std::uint32_t current_global_bb() const {
    const StackFrame& f = frame();
    return f.fn->block(f.block).global_id;
  }
};

}  // namespace pbse::vm
