// ExecutionState: one path through the program — KLEE's ExecutionState.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "expr/evaluator.h"
#include "ir/ir.h"
#include "solver/constraint_set.h"
#include "vm/memory.h"
#include "vm/value.h"

namespace pbse::vm {

/// One activation record.
struct StackFrame {
  const ir::Function* fn = nullptr;
  std::uint32_t block = 0;     // current basic block (function-local id)
  std::uint32_t inst = 0;      // next instruction index within the block
  std::vector<Value> regs;     // virtual registers
  std::vector<Pointer> slots;  // mutable pointer-slot locals
  std::uint32_t ret_reg = ir::kNoReg;  // caller register receiving the result
  std::vector<std::uint32_t> allocas;  // objects to retire on return
};

/// Why a state stopped executing.
enum class TerminationReason : std::uint8_t {
  kRunning,
  kExit,          // main returned / stop()
  kBug,           // terminated at a bug site
  kInfeasible,    // both branch directions unsatisfiable / solver unknown
  kRecursionLimit,
  kStepLimit,
};

class ExecutionState {
 public:
  ExecutionState() = default;

  /// Forks a copy with a fresh id. Memory and model are shared
  /// copy-on-write; the clone records `this` as its parent.
  std::unique_ptr<ExecutionState> fork(std::uint64_t new_id) const;

  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;
  std::vector<StackFrame> stack;
  Memory memory;
  ConstraintSet constraints;

  /// Last satisfying assignment seen for this path: the solver-hint that
  /// makes re-traversing the path cheap, and the bytes test cases are
  /// generated from. Shared copy-on-write across forks.
  std::shared_ptr<const Assignment> model = std::make_shared<Assignment>();

  /// Memoized evaluator bound to `model` (lazily [re]created by the
  /// executor when the model is replaced). Shared across forks while the
  /// model is shared; purely a cache, never semantics.
  std::shared_ptr<CachingEvaluator> model_eval;

  TerminationReason termination = TerminationReason::kRunning;
  std::uint64_t instructions = 0;   // executed by this state
  std::uint64_t depth = 0;          // fork depth
  std::uint64_t born_at_ticks = 0;  // VClock time of creation (fork time)
  std::uint32_t fork_bb = 0;        // global bb of the creating fork point
  std::uint32_t fork_inst = 0;      // instruction index of the fork point
  bool covered_new = false;         // covered a new block since last reset
  /// Instructions executed since this state last covered new code
  /// (maintained by the engine loop; drives the covnew searcher).
  std::uint64_t insts_since_cov_new = 0;

  StackFrame& frame() { return stack.back(); }
  const StackFrame& frame() const { return stack.back(); }
  bool done() const { return termination != TerminationReason::kRunning; }

  /// The instruction about to execute. Stack must be non-empty.
  const ir::Instruction& current_inst() const {
    const StackFrame& f = frame();
    return f.fn->block(f.block).insts[f.inst];
  }

  /// Global id of the current basic block.
  std::uint32_t current_global_bb() const {
    const StackFrame& f = frame();
    return f.fn->block(f.block).global_id;
  }
};

}  // namespace pbse::vm
