// Generated test inputs (KLEE's .ktest analog).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pbse::vm {

struct TestCase {
  std::vector<std::uint8_t> input;
  std::uint64_t state_id = 0;
  std::uint64_t generated_at_ticks = 0;
  std::string reason;  // "exit", "bug:<kind>", ...
};

}  // namespace pbse::vm
