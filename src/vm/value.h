// Runtime values of the VM: symbolic integers and typed pointers.
//
// A pointer is an (object id, symbolic byte offset) pair — KLEE's memory
// model — so every access can be bounds-checked with a solver query and
// out-of-bounds feasibility becomes a bug report.
#pragma once

#include <cstdint>

#include "expr/expr.h"

namespace pbse::vm {

inline constexpr std::uint32_t kNullObject = ~std::uint32_t{0};

/// A typed pointer value. `offset` always has width 64.
struct Pointer {
  std::uint32_t object = kNullObject;
  ExprRef offset;  // null for the null pointer

  bool is_null() const { return object == kNullObject; }

  static Pointer null() { return {}; }
  static Pointer to(std::uint32_t object, ExprRef offset) {
    return {object, std::move(offset)};
  }
};

/// A register value: unset, an integer expression, or a pointer.
struct Value {
  enum class Kind : std::uint8_t { kNone, kInt, kPtr };
  Kind kind = Kind::kNone;
  ExprRef i;  // kInt
  Pointer p;  // kPtr

  static Value none() { return {}; }
  static Value from_int(ExprRef e) {
    Value v;
    v.kind = Kind::kInt;
    v.i = std::move(e);
    return v;
  }
  static Value from_ptr(Pointer p) {
    Value v;
    v.kind = Kind::kPtr;
    v.p = std::move(p);
    return v;
  }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_ptr() const { return kind == Kind::kPtr; }
};

}  // namespace pbse::vm
