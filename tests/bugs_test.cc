// The injected-bug inventory: hand-crafted trigger files for the paper's
// case-study bugs, replayed by plain concrete execution (no solver
// involved), pinning each bug's precondition exactly as the paper's
// Figs 6, 7, 8 describe — plus discovery tests that pbSE reaches the
// deeper sites on its own.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "core/driver.h"
#include "solver/solver.h"
#include "targets/targets.h"

namespace pbse {
namespace {

struct Replay {
  std::vector<vm::BugReport> bugs;
  vm::TerminationReason termination;
};

Replay replay(const char* source, const std::vector<std::uint8_t>& input) {
  ir::Module module = targets::build_target(source);
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions options;
  options.record_trace = false;
  options.offpath_bug_checks = false;  // pure replay: no solver bugs
  const auto result = concolic::run_concolic(executor, "main", input, options);
  return Replay{executor.bugs(), result.termination};
}

// --- mini-PNG builders -------------------------------------------------------

std::uint32_t mpng_crc(const std::vector<std::uint8_t>& data) {
  std::uint32_t sum = 0;
  for (std::uint8_t b : data) {
    sum += b;
    sum = (sum << 1) | (sum >> 31);
  }
  return sum;
}

void png_chunk(std::vector<std::uint8_t>& out, const char type[5],
               const std::vector<std::uint8_t>& data) {
  auto push32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  push32(static_cast<std::uint32_t>(data.size()));
  std::vector<std::uint8_t> covered;  // crc covers type + data
  for (int i = 0; i < 4; ++i)
    covered.push_back(static_cast<std::uint8_t>(type[i]));
  covered.insert(covered.end(), data.begin(), data.end());
  out.insert(out.end(), covered.begin(), covered.end());
  push32(mpng_crc(covered));
}

std::vector<std::uint8_t> png_with(const char type[5],
                                   const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> png = {137, 'P', 'N', 'G', 13, 10, 26, 10};
  png_chunk(png, "IHDR",
            {16, 0, 0, 0, 4, 0, 0, 0, 8, 3, 0, 0, 0});  // 16x4, depth 8, pal
  png_chunk(png, type, data);
  png_chunk(png, "IEND", {});
  return png;
}

TEST(BugInventory, PngMonthZeroOobRead_CVE_2015_7981) {
  // Fig 8: tIME with month == 0 -> short_months index -1.
  const auto input = png_with("tIME", {230, 7, /*month=*/0, 15, 12, 30, 45});
  const auto result = replay(targets::pngtest_source(), input);
  ASSERT_EQ(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsRead);
  EXPECT_EQ(result.bugs[0].function, "png_convert_to_rfc1123");
}

TEST(BugInventory, PngMonthInRangeIsClean) {
  for (std::uint8_t month = 1; month <= 12; ++month) {
    const auto input = png_with("tIME", {230, 7, month, 15, 12, 30, 45});
    const auto result = replay(targets::pngtest_source(), input);
    EXPECT_TRUE(result.bugs.empty()) << "month " << int(month);
  }
}

TEST(BugInventory, PngAllSpacesKeywordUnderflow_CVE_2015_8540) {
  // Fig 7: a keyword of only spaces walks kp below new_key.
  const auto input = png_with("tEXt", {' ', ' ', ' ', 0, 'h', 'i'});
  const auto result = replay(targets::pngtest_source(), input);
  ASSERT_EQ(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].function, "png_check_keyword");
}

TEST(BugInventory, PngTrailingSpaceKeywordIsClean) {
  // Trailing spaces after a real keyword are trimmed legally.
  const auto input = png_with("tEXt", {'k', 'e', 'y', ' ', ' ', 0, 'h', 'i'});
  const auto result = replay(targets::pngtest_source(), input);
  EXPECT_TRUE(result.bugs.empty());
}

// --- mini-GIF builders --------------------------------------------------------

TEST(BugInventory, GifColormapOverflowViaFlagMask) {
  // readcolormap uses (flags & 15) instead of (flags & 7): flags 0x8B ->
  // bits 12 -> 4096 entries streaming into the 768-byte colormap.
  std::vector<std::uint8_t> gif = {'M', 'G', 'I', 'F', '8', '7',
                                   16,  0,   16,  0,   0x8B, 0, 0};
  // Enough color-table payload to reach entry 256 (offset 768).
  for (int i = 0; i < 3 * 300; ++i)
    gif.push_back(static_cast<std::uint8_t>(i));
  const auto result = replay(targets::gif2tiff_source(), gif);
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsWrite);
  EXPECT_EQ(result.bugs[0].function, "readcolormap");
}

TEST(BugInventory, GifLzwCodeOverflowsDecodeTables) {
  // A clear-free stream grows the code size to 10 bits; the out-of-table
  // code 600 is then chased through suffix_tab[600] -> out-of-bounds read
  // (and a longer literal run would also overflow the table writes).
  std::vector<std::uint8_t> gif = {'M', 'G', 'I', 'F', '8', '7',
                                   16,  0,   16,  0,   0x00, 0, 0};
  gif.push_back(0x2C);  // image descriptor
  for (int i = 0; i < 4; ++i) gif.push_back(0);
  gif.push_back(16); gif.push_back(0);  // 16 x 16
  gif.push_back(16); gif.push_back(0);
  gif.push_back(0);
  gif.push_back(8);  // datasize 8 -> clear 256, eoi 257
  // Pack 9/10-bit codes: 255 literals grow avail past 512, then code 600.
  std::vector<std::uint8_t> packed;
  std::uint32_t bits = 0, nbits = 0;
  unsigned codesize = 9;
  unsigned avail = 258;
  auto put = [&](std::uint32_t code) {
    bits |= code << nbits;
    nbits += codesize;
    while (nbits >= 8) {
      packed.push_back(static_cast<std::uint8_t>(bits & 0xff));
      bits >>= 8;
      nbits -= 8;
    }
  };
  put(256);  // clear
  for (unsigned i = 0; i < 255; ++i) {
    put(i % 200);
    if (i > 0) {  // decoder adds a table entry per code after the first
      ++avail;
      if ((avail & ((1u << codesize) - 1)) == 0) ++codesize;
    }
  }
  put(600);  // out-of-table code at the grown code size
  if (nbits > 0) packed.push_back(static_cast<std::uint8_t>(bits & 0xff));
  std::size_t pos = 0;
  while (pos < packed.size()) {
    const std::size_t n = std::min<std::size_t>(255, packed.size() - pos);
    gif.push_back(static_cast<std::uint8_t>(n));
    gif.insert(gif.end(), packed.begin() + pos, packed.begin() + pos + n);
    pos += n;
  }
  gif.push_back(0);
  gif.push_back(0x3B);
  const auto result = replay(targets::gif2tiff_source(), gif);
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsRead);
  EXPECT_EQ(result.bugs[0].function, "lzw_decode");
}

// --- mini-TIFF builders --------------------------------------------------------

std::vector<std::uint8_t> mtif(std::uint32_t width, std::uint32_t height,
                               std::uint32_t bits, std::uint32_t photometric,
                               unsigned strip_len) {
  std::vector<std::uint8_t> t = {'M', 'T', 'I', 'F'};
  auto push32 = [&t](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      t.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto push16 = [&t](std::uint32_t v) {
    t.push_back(static_cast<std::uint8_t>(v));
    t.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  push32(8);  // ifd offset
  push16(7);  // entries
  const std::uint32_t strip_off = 8 + 2 + 7 * 12;
  auto entry = [&](std::uint16_t tag, std::uint32_t value) {
    push16(tag);
    push16(3);
    push32(1);
    push32(value);
  };
  entry(256, width);
  entry(257, height);
  entry(258, bits);
  entry(259, 1);
  entry(262, photometric);
  entry(273, strip_off);
  entry(279, strip_len);
  for (unsigned i = 0; i < strip_len; ++i)
    t.push_back(static_cast<std::uint8_t>(i * 7 + 3));
  return t;
}

TEST(BugInventory, Tiff2RgbaCielabOobRead_Fig6) {
  // w*h*3 far beyond the 257-byte pp buffer.
  const auto result =
      replay(targets::tiff2rgba_source(), mtif(64, 16, 8, 8, 200));
  ASSERT_EQ(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsRead);
  EXPECT_EQ(result.bugs[0].function, "putcontig8bitCIELab");
}

TEST(BugInventory, Tiff2RgbaSmallCielabIsClean) {
  // 5 x 3 x 3 = 45 bytes < 257: in bounds.
  const auto result =
      replay(targets::tiff2rgba_source(), mtif(5, 3, 8, 8, 200));
  EXPECT_TRUE(result.bugs.empty());
}

TEST(BugInventory, Tiff2BwBandIndexOobWrite) {
  // tag_bits lands in bands[tag_bits] unchecked; 200 > 15.
  const auto result =
      replay(targets::tiff2bw_source(), mtif(5, 3, 200, 2, 60));
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsWrite);
  EXPECT_EQ(result.bugs[0].function, "accumulate_bands");
}

TEST(BugInventory, Tiff2BwPixelCountOverflow) {
  // checked_mul(w, h) with 0x20000 * 0x20000 wraps 32 bits.
  const auto result =
      replay(targets::tiff2bw_source(), mtif(0x20000, 0x20000, 8, 2, 60));
  bool overflow = false;
  for (const auto& bug : result.bugs)
    overflow = overflow || bug.kind == vm::BugKind::kIntegerOverflow;
  EXPECT_TRUE(overflow);
}


// --- mini-ELF builders ---------------------------------------------------------

std::vector<std::uint8_t> melf_with_symbol(std::uint16_t name_off) {
  // Minimal MELF: no program/section headers, one symbol whose name_off
  // indexes the fixed 64-byte string-table cache.
  std::vector<std::uint8_t> f(48, 0);
  f[0] = 0x7f; f[1] = 'M'; f[2] = 'E'; f[3] = 'L';
  f[4] = 1; f[5] = 1;
  // e_type 0: no dynamic/groups/notes. phnum = shnum = 0.
  f[20] = 1;              // e_symnum = 1
  f[22] = 2;              // e_symoff = 2 * 16 = 32
  f[32] = static_cast<std::uint8_t>(name_off);
  f[33] = static_cast<std::uint8_t>(name_off >> 8);
  f[34] = 1;              // info: named
  return f;
}

TEST(BugInventory, ReadelfSymbolNameOffsetOobRead) {
  const auto result =
      replay(targets::readelf_source(), melf_with_symbol(200));
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsRead);
  EXPECT_EQ(result.bugs[0].function, "process_symbols");
}

TEST(BugInventory, ReadelfSymbolNameInRangeIsClean) {
  const auto result =
      replay(targets::readelf_source(), melf_with_symbol(40));
  EXPECT_TRUE(result.bugs.empty());
}

// --- mini-DWARF builders --------------------------------------------------------

std::vector<std::uint8_t> mdwf(const std::vector<std::uint8_t>& abbrev,
                               const std::vector<std::uint8_t>& info) {
  std::vector<std::uint8_t> f = {'M', 'D', 'W', 'F', 2, 0};
  auto entry = [&f](std::uint16_t type, std::uint32_t off, std::uint32_t size) {
    f.push_back(static_cast<std::uint8_t>(type));
    f.push_back(static_cast<std::uint8_t>(type >> 8));
    for (int i = 0; i < 4; ++i) f.push_back(static_cast<std::uint8_t>(off >> (8 * i)));
    for (int i = 0; i < 4; ++i) f.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  };
  const std::uint32_t base = 6 + 2 * 10;
  entry(1, base, static_cast<std::uint32_t>(abbrev.size()));
  entry(2, base + static_cast<std::uint32_t>(abbrev.size()),
        static_cast<std::uint32_t>(info.size()));
  f.insert(f.end(), abbrev.begin(), abbrev.end());
  f.insert(f.end(), info.begin(), info.end());
  return f;
}

TEST(BugInventory, DwarfdumpUnknownAbbrevCodeNullDeref) {
  // Declared abbrev code 1; the DIE stream uses code 2 -> find_abbrev
  // returns null and parse_info dereferences it.
  const std::vector<std::uint8_t> abbrev = {1, 17, 0, 0};  // code 1, no attrs
  const std::vector<std::uint8_t> info = {2, 0};           // unknown code 2
  const auto result = replay(targets::dwarfdump_source(), mdwf(abbrev, info));
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kNullDeref);
  EXPECT_EQ(result.bugs[0].function, "parse_info");
}

TEST(BugInventory, DwarfdumpAbbrevTableOverflowWrite) {
  // 70 abbrev declarations overflow the 64-entry tables (W1).
  std::vector<std::uint8_t> abbrev;
  for (int i = 1; i <= 70; ++i) {
    abbrev.push_back(static_cast<std::uint8_t>(i));  // code (single-byte uleb)
    abbrev.push_back(17);                            // tag
    abbrev.push_back(0);                             // no attrs
  }
  abbrev.push_back(0);
  const std::vector<std::uint8_t> info = {1, 0};
  const auto result = replay(targets::dwarfdump_source(), mdwf(abbrev, info));
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsWrite);
  EXPECT_EQ(result.bugs[0].function, "parse_abbrev");
}

TEST(BugInventory, DwarfdumpStrOffsetOobRead) {
  // Form 3 (str offset) indexes the 128-byte str cache unchecked (R2).
  const std::vector<std::uint8_t> abbrev = {1, 17, 1, 3, 0};  // 1 attr, form 3
  const std::vector<std::uint8_t> info = {1, 0xC8, 0x02, 0};  // uleb 328 > 128
  const auto result = replay(targets::dwarfdump_source(), mdwf(abbrev, info));
  ASSERT_GE(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].kind, vm::BugKind::kOutOfBoundsRead);
  EXPECT_EQ(result.bugs[0].function, "parse_info");
}

// --- discovery: pbSE reaches the deep sites on its own -----------------------

TEST(BugInventory, PbseDiscoversDeepReadelfBugs) {
  ir::Module module = targets::build_target(targets::readelf_source());
  core::PbseDriver driver(module, "main");
  ASSERT_TRUE(driver.prepare(targets::make_melf_seed(4)));
  driver.run(3'000'000);
  EXPECT_GE(driver.executor().num_bug_sites(), 2u);
}

TEST(BugInventory, PbseDiscoversDeepDwarfdumpBugs) {
  ir::Module module = targets::build_target(targets::dwarfdump_source());
  core::PbseDriver driver(module, "main");
  ASSERT_TRUE(driver.prepare(targets::make_mdwf_seed(4)));
  driver.run(3'000'000);
  EXPECT_GE(driver.executor().num_bug_sites(), 3u);
}

}  // namespace
}  // namespace pbse
