// Concolic execution (Algorithm 2): lockstep fidelity, BBV gathering,
// seedState recording and their constraint semantics.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "ir/verifier.h"
#include "lang/codegen.h"
#include "solver/solver.h"
#include "vm/executor.h"

namespace pbse {
namespace {

ir::Module compile(const std::string& source) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error))
    ADD_FAILURE() << "compile error: " << error;
  module.finalize();
  return module;
}

constexpr const char* kLoopy = R"(
u32 main(u8* f, u32 size) {
  u32 n = (u32)f[0];
  u32 sum = 0;
  for (u32 i = 0; i < n && i < 32; ++i) {
    sum += (u32)f[1 + i];
  }
  out(sum);
  if (f[0] == 9 && f[1] == 7) { out(0xBEEF); }
  return 0;
}
)";

struct Fixture {
  explicit Fixture(const std::string& source) : module(compile(source)),
        executor(module, solver, clock, stats) {}
  ir::Module module;
  VClock clock;
  Stats stats;
  Solver solver{clock, stats};
  vm::Executor executor;
};

TEST(Concolic, FollowsSeedExactly) {
  Fixture fx(kLoopy);
  const std::vector<std::uint8_t> seed = {3, 10, 20, 30, 40};
  const auto result = concolic::run_concolic(fx.executor, "main", seed);
  EXPECT_EQ(result.termination, vm::TerminationReason::kExit);
  ASSERT_FALSE(fx.executor.out_log().empty());
  EXPECT_EQ(fx.executor.out_log()[0], 60u) << "sum of 3 bytes after f[0]";
  EXPECT_EQ(fx.executor.bugs().size(), 0u);
}

TEST(Concolic, UsesNoSolver) {
  Fixture fx(kLoopy);
  concolic::run_concolic(fx.executor, "main", {5, 1, 2, 3, 4, 5, 6});
  EXPECT_EQ(fx.stats.get("solver.queries"), 0u)
      << "Algorithm 2 performs no feasibility queries";
}

TEST(Concolic, SeedStatesFlipTheFollowedBranch) {
  Fixture fx(kLoopy);
  const std::vector<std::uint8_t> seed = {2, 5, 5, 0, 0};
  auto result = concolic::run_concolic(fx.executor, "main", seed);
  ASSERT_FALSE(result.seed_states.empty());

  Assignment seed_assignment;
  seed_assignment.set(result.input_array, seed);
  for (const auto& record : result.seed_states) {
    // Every seedState's newest constraint contradicts the seed: the seed
    // CANNOT satisfy the full set (it went the other way). Algorithm 2
    // records ONLY these flipped states — a seed-following snapshot would
    // satisfy its whole constraint set and fail this check.
    const auto& constraints = record.state->constraints.constraints();
    ASSERT_FALSE(constraints.empty());
    bool all = true;
    for (const auto& c : constraints)
      all = all && evaluate_bool(c, seed_assignment);
    EXPECT_FALSE(all) << "seedState must diverge from the seed path";
  }
}

TEST(Concolic, SeedStatesDedupedByForkPoint) {
  Fixture fx(kLoopy);
  // n = 8: the loop guard forks at the same site every iteration; only the
  // earliest is recorded (paper Sec. III-B3).
  auto result = concolic::run_concolic(fx.executor, "main",
                                       {8, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  std::set<std::pair<std::uint32_t, std::uint32_t>> points;
  for (const auto& record : result.seed_states) {
    const auto point = std::make_pair(record.fork_bb, record.fork_inst);
    EXPECT_TRUE(points.insert(point).second)
        << "duplicate seedState for one fork point";
  }
  // kLoopy has exactly four symbolic fork points on this seed: the loop
  // guard `i < n`, its materialized `&&` re-branch in and.end, the
  // `f[0] == 9` test, and ITS and.end re-branch. One seedState per
  // distinct fork point — the both-directions regression doubles this.
  EXPECT_EQ(result.seed_states.size(), 4u);
  // The guard re-forks on every one of the 8 remaining iterations plus the
  // exit test; all but the first encounter dedup away.
  EXPECT_GT(fx.stats.get("concolic.seed_states_deduped"), 0u);
  EXPECT_EQ(result.seed_states.size() +
                fx.stats.get("concolic.seed_states_deduped"),
            fx.stats.get("concolic.symbolic_branches"));
}

TEST(Concolic, SeedStatesAllUnsatisfiableUnderSeed) {
  // Regression guard for the both-directions bug: EVERY recorded seedState
  // (across a seed that exercises loops and nested conditions) must be
  // unsatisfiable under the seed assignment, and there must be exactly one
  // per distinct fork point.
  Fixture fx(kLoopy);
  const std::vector<std::uint8_t> seed = {9, 7, 3, 0, 0, 0, 0, 0, 0, 0, 0};
  auto result = concolic::run_concolic(fx.executor, "main", seed);
  ASSERT_FALSE(result.seed_states.empty());

  Assignment seed_assignment;
  seed_assignment.set(result.input_array, seed);
  std::set<std::pair<std::uint32_t, std::uint32_t>> points;
  for (const auto& record : result.seed_states) {
    points.insert({record.fork_bb, record.fork_inst});
    bool all = true;
    for (const auto& c : record.state->constraints.constraints())
      all = all && evaluate_bool(c, seed_assignment);
    EXPECT_FALSE(all) << "seed-side snapshot leaked into seedStates";
  }
  EXPECT_EQ(points.size(), result.seed_states.size())
      << "seedStates must be deduplicated on the fork point alone";
  // f[0] == 9 here, so the `f[1] == 7` arm IS reached (it feeds the second
  // and.end re-branch): loop guard + its and.end + `f[0] == 9` + its
  // and.end — four distinct fork points, recorded exactly once each.
  EXPECT_EQ(result.seed_states.size(), 4u);
}

TEST(Concolic, BBVsPartitionTheExecution) {
  Fixture fx(kLoopy);
  concolic::ConcolicOptions options;
  options.interval_ticks = 64;
  auto result = concolic::run_concolic(fx.executor, "main",
                                       {32, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                        1, 2, 3, 4, 5, 6, 7, 8, 9, 0,
                                        1, 2, 3, 4, 5, 6, 7, 8, 9, 0,
                                        1, 2, 3},
                                       options);
  ASSERT_GT(result.bbvs.size(), 2u);
  // Intervals tile time without overlap and in order.
  for (std::size_t i = 1; i < result.bbvs.size(); ++i) {
    EXPECT_EQ(result.bbvs[i - 1].end_ticks, result.bbvs[i].start_ticks);
    EXPECT_LE(result.bbvs[i].start_ticks, result.bbvs[i].end_ticks);
  }
  // Total BBV entries == trace length (every block entry is counted once).
  std::uint64_t entries = 0;
  for (const auto& bbv : result.bbvs) entries += bbv.total_entries();
  EXPECT_EQ(entries, result.trace.size());
  // Coverage element is a monotone fraction in [0, 1].
  double last = 0;
  for (const auto& bbv : result.bbvs) {
    EXPECT_GE(bbv.coverage, last);
    EXPECT_LE(bbv.coverage, 1.0);
    last = bbv.coverage;
  }
}

TEST(Concolic, TraceTimesAreMonotonic) {
  Fixture fx(kLoopy);
  auto result =
      concolic::run_concolic(fx.executor, "main", {4, 1, 2, 3, 4, 5});
  for (std::size_t i = 1; i < result.trace.size(); ++i)
    EXPECT_LE(result.trace[i - 1].first, result.trace[i].first);
}

TEST(Concolic, BugOnSeedPathIsReported) {
  Fixture fx(R"(
    u8 small[2];
    u32 main(u8* f, u32 size) {
      small[f[0]] = 1;
      return 0;
    })");
  concolic::run_concolic(fx.executor, "main", {9});
  ASSERT_EQ(fx.executor.bugs().size(), 1u);
  EXPECT_EQ(fx.executor.bugs()[0].kind, vm::BugKind::kOutOfBoundsWrite);
}

TEST(Concolic, FeaturizeNormalizesRows) {
  Fixture fx(kLoopy);
  concolic::ConcolicOptions options;
  options.interval_ticks = 64;
  auto result = concolic::run_concolic(
      fx.executor, "main", {16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3, 4, 5, 6, 7},
      options);
  const auto points = concolic::featurize_bbvs(result.bbvs, 0.0);
  for (const auto& p : points) {
    double l1 = 0;
    for (double v : p) l1 += v;
    if (l1 > 0) EXPECT_NEAR(l1, 1.0, 1e-9);
  }
  // With the coverage element the rows get one extra dimension.
  const auto with_cov = concolic::featurize_bbvs(result.bbvs, 2.0);
  ASSERT_FALSE(with_cov.empty());
  EXPECT_EQ(with_cov[0].size(), points[0].size() + 1);
}

}  // namespace
}  // namespace pbse
