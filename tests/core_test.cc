// pbSE core: seed selection heuristic, the PbseDriver pipeline
// (Algorithm 1), the phase scheduler (Algorithm 3), and KleeRun.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/seed_select.h"
#include "ir/verifier.h"
#include "lang/codegen.h"

namespace pbse {
namespace {

ir::Module compile(const std::string& source) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error))
    ADD_FAILURE() << "compile error: " << error;
  module.finalize();
  return module;
}

// A three-stage pipeline program (the structure pbSE targets): stage
// boundaries are guarded by values read from the input, and the deepest
// stage hides a bug.
constexpr const char* kPipeline = R"(
u8 table[4] = { 1, 2, 3, 4 };
u32 main(u8* f, u32 size) {
  if (size < 8) { return 1; }
  if (f[0] != 'P' || f[1] != '1') { return 2; }
  // Stage 1: header loop ending on a count from the input.
  u32 n = (u32)f[2];
  u32 sum = 0;
  for (u32 i = 0; i < n; ++i) {
    if (3 + i >= size) { return 3; }
    sum += (u32)f[3 + i];
  }
  out(sum);
  // Stage 2: records.
  u32 off = 3 + n;
  u32 records = 0;
  while (off + 2 <= size) {
    u32 kind = (u32)f[off];
    u32 value = (u32)f[off + 1];
    off += 2;
    if (kind == 0) { break; }
    if (kind == 3) {
      out(table[value]);     // <-- OOB read when value > 3 (deep stage)
    }
    records += 1;
  }
  out(records);
  return 0;
}
)";

std::vector<std::uint8_t> pipeline_seed() {
  //            P    1  n=3 [ 3 payload ] k  v   k  v   end
  return {'P', '1', 3, 10, 20, 30, 3, 1, 3, 2, 0, 0};
}

TEST(SeedSelect, PicksBestCoverageAmongTenSmallest) {
  ir::Module module = compile(kPipeline);
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.push_back({'X'});                       // tiny, bad magic
  seeds.push_back(pipeline_seed());             // good
  seeds.push_back({'P', '1', 0, 0});            // valid but shallow
  std::vector<std::uint8_t> huge(4096, 0);      // large, bad
  seeds.push_back(huge);
  std::vector<core::SeedScore> scores;
  const std::size_t chosen = core::select_seed(module, "main", seeds, &scores);
  EXPECT_EQ(chosen, 1u);
  EXPECT_EQ(scores.size(), 4u);
}

TEST(SeedSelect, OnlyTenSmallestAreMeasured) {
  ir::Module module = compile(kPipeline);
  std::vector<std::vector<std::uint8_t>> seeds;
  for (unsigned i = 0; i < 14; ++i)
    seeds.push_back(std::vector<std::uint8_t>(10 + i, 0));
  // The one good seed is the LARGEST: it must NOT be considered.
  auto good = pipeline_seed();
  good.resize(200, 0);
  seeds.push_back(good);
  std::vector<core::SeedScore> scores;
  const std::size_t chosen = core::select_seed(module, "main", seeds, &scores);
  EXPECT_EQ(scores.size(), 10u);
  EXPECT_NE(chosen, seeds.size() - 1)
      << "the paper's heuristic only looks at the 10 smallest seeds";
}

TEST(PbseDriver, PrepareProducesPhasesAndSeedStates) {
  ir::Module module = compile(kPipeline);
  core::PbseDriver driver(module, "main");
  ASSERT_TRUE(driver.prepare(pipeline_seed()));
  EXPECT_GT(driver.c_time_ticks(), 0u);
  EXPECT_GT(driver.p_time_ticks(), 0u);
  EXPECT_FALSE(driver.phases().phases.empty());
  std::size_t total_seed_states = 0;
  for (const auto& list : driver.phase_seed_states())
    total_seed_states += list.size();
  EXPECT_GT(total_seed_states, 0u);
}

TEST(PbseDriver, FindsTheDeepBugAndTagsItsPhase) {
  ir::Module module = compile(kPipeline);
  core::PbseDriver driver(module, "main");
  ASSERT_TRUE(driver.prepare(pipeline_seed()));
  driver.run(500'000);
  ASSERT_GE(driver.executor().bugs().size(), 1u);
  const auto& bugs = driver.executor().bugs();
  bool oob = false;
  for (std::size_t i = 0; i < bugs.size(); ++i) {
    if (bugs[i].kind == vm::BugKind::kOutOfBoundsRead) {
      oob = true;
      // Bug found during phase scheduling gets a valid phase id.
      ASSERT_LT(i, driver.bug_phases().size());
    }
  }
  EXPECT_TRUE(oob);
  EXPECT_EQ(driver.bug_phases().size(), bugs.size());
}

TEST(PbseDriver, PrepareFailsOnConstantProgram) {
  ir::Module module = compile(R"(
    u32 main(u8* f, u32 size) { out(1); return 0; }
  )");
  core::PbseDriver driver(module, "main");
  EXPECT_FALSE(driver.prepare({1, 2, 3}))
      << "no symbolic branches -> nothing to schedule";
}

TEST(PbseDriver, CoverageBeatsOrMatchesConcolicAlone) {
  ir::Module module = compile(kPipeline);
  core::PbseDriver driver(module, "main");
  ASSERT_TRUE(driver.prepare(pipeline_seed()));
  const std::uint64_t after_concolic = driver.executor().num_covered();
  driver.run(500'000);
  EXPECT_GT(driver.executor().num_covered(), after_concolic)
      << "phase scheduling must add coverage beyond the seed path";
}

TEST(KleeRun, ResumableBudgets) {
  ir::Module module = compile(kPipeline);
  core::KleeRunOptions options;
  options.sym_file_size = 16;
  core::KleeRun run(module, "main", options);
  run.run(20'000);
  const auto c1 = run.executor().num_covered();
  run.run(500'000);
  const auto c2 = run.executor().num_covered();
  EXPECT_GE(c2, c1);
  EXPECT_GT(c2, 0u);
}

TEST(PbseTesting, EndToEndEntryPoint) {
  ir::Module module = compile(kPipeline);
  std::vector<std::vector<std::uint8_t>> seeds = {pipeline_seed(),
                                                  {'P', '1', 0, 0}};
  const auto result = core::pbse_testing(module, "main", seeds, 500'000);
  ASSERT_NE(result.driver, nullptr);
  EXPECT_EQ(result.chosen_seed_index, 0u);
  EXPECT_GT(result.driver->executor().num_covered(), 10u);
}

TEST(PbseDriver, TimePeriodGrowsAcrossTurns) {
  // Indirect check of Algorithm 3's turn structure: with a tiny TimePeriod
  // the driver still terminates and visits every phase (no starvation).
  ir::Module module = compile(kPipeline);
  core::PbseOptions options;
  options.time_period_ticks = 500;
  options.no_new_cover_window = 200;
  core::PbseDriver driver(module, "main", options);
  ASSERT_TRUE(driver.prepare(pipeline_seed()));
  driver.run(300'000);
  EXPECT_GT(driver.executor().num_covered(), 10u);
}

}  // namespace
}  // namespace pbse
