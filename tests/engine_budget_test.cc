// Virtual-time economics: the properties the tables depend on.
//  * instructions and solver work both consume the clock,
//  * a KLEE run's coverage is monotone and budget-bounded,
//  * pbSE's c-time/p-time accounting matches the paper's structure
//    (small relative to the symbolic budget),
//  * determinism: identical runs produce identical results.
#include <gtest/gtest.h>

#include "core/driver.h"
#include "targets/targets.h"

namespace pbse {
namespace {

TEST(Budget, IdenticalRunsAreBitIdentical) {
  ir::Module module_a = targets::build_target(targets::readelf_source());
  ir::Module module_b = targets::build_target(targets::readelf_source());
  auto run = [](const ir::Module& module) {
    core::KleeRunOptions options;
    options.sym_file_size = 200;
    core::KleeRun run(module, "main", options);
    run.run(300'000);
    return std::make_tuple(run.executor().num_covered(),
                           run.clock().now(),
                           run.executor().bugs().size(),
                           run.executor().test_cases().size());
  };
  EXPECT_EQ(run(module_a), run(module_b))
      << "virtual-clock execution must be deterministic";
}

TEST(Budget, CoverageIsMonotoneInBudget) {
  ir::Module module = targets::build_target(targets::dwarfdump_source());
  std::uint64_t last = 0;
  core::KleeRunOptions options;
  options.sym_file_size = 400;
  core::KleeRun run(module, "main", options);
  for (int step = 0; step < 4; ++step) {
    run.run(150'000);
    const std::uint64_t covered = run.executor().num_covered();
    EXPECT_GE(covered, last);
    last = covered;
  }
}

TEST(Budget, PbsePreparationIsCheapRelativeToSearch) {
  // Paper: "less than 10 minutes cost in the concolic execution and phase
  // analysis steps" of 10-hour runs. Check c-time + p-time is a small
  // fraction of the 10h budget for the standard seeds.
  for (const char* driver : {"readelf", "dwarfdump", "pngtest"}) {
    SCOPED_TRACE(driver);
    const targets::TargetInfo* info = nullptr;
    for (const auto& t : targets::all_targets())
      if (t.driver == driver) info = &t;
    ir::Module module = targets::build_target(info->source());
    core::PbseDriver pbse(module, "main");
    ASSERT_TRUE(pbse.prepare(info->seed(4)));
    const std::uint64_t prep = pbse.c_time_ticks() + pbse.p_time_ticks();
    EXPECT_LT(prep, 10'000'000ull / 10)
        << "preparation must stay well under the 10h budget";
  }
}

TEST(Budget, SolverWorkIsCharged) {
  ir::Module module = targets::build_target(targets::readelf_source());
  core::KleeRunOptions options;
  options.sym_file_size = 200;
  core::KleeRun run(module, "main", options);
  run.run(200'000);
  // Ticks must exceed pure instruction count: solver charges land too.
  std::uint64_t instructions = 0;
  (void)instructions;
  EXPECT_GT(run.stats().get("solver.queries"), 0u);
  EXPECT_GE(run.clock().now(), 200'000u);
}

TEST(Budget, DeadlineOvershootIsBounded) {
  // One instruction batch may overshoot the deadline by at most the cost
  // of its in-flight solver queries; the engine must never run a fresh
  // batch past an expired deadline.
  ir::Module module = targets::build_target(targets::pngtest_source());
  core::KleeRunOptions options;
  options.sym_file_size = 500;
  core::KleeRun run(module, "main", options);
  run.run(100'000);
  EXPECT_LT(run.clock().now(), 100'000u + 1'000'000u);
}

}  // namespace
}  // namespace pbse
