// Rewrite-soundness sweep: every simplification the builders perform must
// preserve semantics. We generate random small expression DAGs through the
// builder API (which simplifies aggressively) and in parallel compute the
// expected value through a reference interpreter over the same random
// structure, across many random byte assignments.
#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "support/rng.h"

namespace pbse {
namespace {

/// Reference node: mirrors the structure we asked the builders for,
/// REGARDLESS of what they simplified it to.
struct RefNode {
  ExprRef built;                        // what the builder returned
  std::function<std::uint64_t(const Assignment&)> eval;  // ground truth
  unsigned width;
};

RefNode make_leaf(const ArrayRef& array, Rng& rng) {
  if (rng.below(3) == 0) {
    const std::uint64_t v = rng() & 0xff;
    return {mk_const(v, 8), [v](const Assignment&) { return v; }, 8};
  }
  const std::uint32_t index = static_cast<std::uint32_t>(rng.below(4));
  auto arr = array;
  return {mk_read(array, index),
          [arr, index](const Assignment& a) {
            return static_cast<std::uint64_t>(a.byte(arr.get(), index));
          },
          8};
}

RefNode combine(RefNode a, RefNode b, Rng& rng) {
  // Bring to a common width first (like the frontend does).
  const unsigned w = std::max(a.width, b.width);
  auto widen = [w](RefNode n) {
    if (n.width == w) return n;
    auto inner = n.eval;
    return RefNode{mk_zext(n.built, w),
                   [inner](const Assignment& asg) { return inner(asg); }, w};
  };
  a = widen(std::move(a));
  b = widen(std::move(b));
  const auto ea = a.eval;
  const auto eb = b.eval;
  const std::uint64_t mask = truncate_to_width(~0ull, w);
  switch (rng.below(8)) {
    case 0:
      return {mk_add(a.built, b.built),
              [=](const Assignment& s) { return (ea(s) + eb(s)) & mask; }, w};
    case 1:
      return {mk_sub(a.built, b.built),
              [=](const Assignment& s) { return (ea(s) - eb(s)) & mask; }, w};
    case 2:
      return {mk_mul(a.built, b.built),
              [=](const Assignment& s) { return (ea(s) * eb(s)) & mask; }, w};
    case 3:
      return {mk_and(a.built, b.built),
              [=](const Assignment& s) { return ea(s) & eb(s); }, w};
    case 4:
      return {mk_or(a.built, b.built),
              [=](const Assignment& s) { return ea(s) | eb(s); }, w};
    case 5:
      return {mk_xor(a.built, b.built),
              [=](const Assignment& s) { return ea(s) ^ eb(s); }, w};
    case 6: {
      // widen via concat: (a ++ b) when total <= 64
      if (a.width + b.width <= 64) {
        const unsigned bw = b.width;
        return {mk_concat(a.built, b.built),
                [=](const Assignment& s) { return (ea(s) << bw) | eb(s); },
                a.width + b.width};
      }
      [[fallthrough]];
    }
    default: {
      // extract a random byte lane
      const unsigned lanes = w / 8;
      const unsigned lane = lanes > 0 ? static_cast<unsigned>(rng.below(lanes)) : 0;
      return {mk_extract(a.built, lane * 8, 8),
              [=](const Assignment& s) { return (ea(s) >> (lane * 8)) & 0xff; },
              8};
    }
  }
}

class SimplifySoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifySoundness, BuildersPreserveSemantics) {
  Rng rng(GetParam());
  auto array = std::make_shared<Array>(
      "simp" + std::to_string(GetParam()), 4);
  for (int trial = 0; trial < 100; ++trial) {
    // Random DAG of ~7 nodes.
    std::vector<RefNode> pool;
    for (int i = 0; i < 3; ++i) pool.push_back(make_leaf(array, rng));
    for (int i = 0; i < 4; ++i) {
      RefNode a = pool[rng.below(pool.size())];
      RefNode b = pool[rng.below(pool.size())];
      pool.push_back(combine(std::move(a), std::move(b), rng));
    }
    const RefNode& root = pool.back();

    for (int sample = 0; sample < 16; ++sample) {
      Assignment assignment;
      auto& bytes = assignment.mutable_bytes(array);
      for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng());
      EXPECT_EQ(evaluate(root.built, assignment), root.eval(assignment))
          << "simplified: " << root.built->to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySoundness,
                         ::testing::Values(101ull, 202ull, 303ull, 404ull,
                                           505ull, 606ull, 707ull, 808ull));

TEST(SimplifyComparisons, ComparisonRewritesPreserveTruth) {
  Rng rng(999);
  auto array = std::make_shared<Array>("cmp", 4);
  for (int trial = 0; trial < 300; ++trial) {
    const ExprRef x = mk_zext(mk_read(array, rng.below(2)), 16);
    const ExprRef y = rng.below(2) == 0
                          ? mk_zext(mk_read(array, 2 + rng.below(2)), 16)
                          : mk_const(rng() & 0x1ff, 16);
    // lnot(cmp) rewrites into the inverse comparison: verify truth tables.
    const ExprRef lt = mk_ult(x, y);
    const ExprRef not_lt = mk_lnot(lt);
    const ExprRef sle = mk_sle(x, y);
    const ExprRef not_sle = mk_lnot(sle);
    Assignment a;
    auto& bytes = a.mutable_bytes(array);
    for (int sample = 0; sample < 8; ++sample) {
      for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng());
      EXPECT_NE(evaluate_bool(lt, a), evaluate_bool(not_lt, a));
      EXPECT_NE(evaluate_bool(sle, a), evaluate_bool(not_sle, a));
    }
  }
}

}  // namespace
}  // namespace pbse
