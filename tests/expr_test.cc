// Expression library: construction, folding, interning, width semantics,
// and differential properties of the evaluator.
#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/expr.h"
#include "support/rng.h"

namespace pbse {
namespace {

ArrayRef make_array(std::uint32_t size = 64) {
  static int counter = 0;
  return std::make_shared<Array>("t" + std::to_string(counter++), size);
}

TEST(Expr, ConstantFoldingArithmetic) {
  EXPECT_EQ(mk_add(mk_const(3, 32), mk_const(4, 32))->constant_value(), 7u);
  EXPECT_EQ(mk_sub(mk_const(3, 32), mk_const(4, 32))->constant_value(),
            0xffffffffu);
  EXPECT_EQ(mk_mul(mk_const(200, 8), mk_const(2, 8))->constant_value(),
            144u);  // 400 mod 256
  EXPECT_EQ(mk_udiv(mk_const(7, 32), mk_const(2, 32))->constant_value(), 3u);
  EXPECT_EQ(mk_udiv(mk_const(7, 32), mk_const(0, 32))->constant_value(), 0u)
      << "division by zero folds to 0 (the VM guards real divisions)";
  EXPECT_EQ(mk_sdiv(mk_const(0xff, 8), mk_const(2, 8))->constant_value(),
            0xffu & static_cast<std::uint64_t>(-1 / 2 - 0))
      << "signed division of -1 by 2";
}

TEST(Expr, SignedFoldingUsesSignExtension) {
  // -8 (0xf8 as i8) >> 1 arithmetic = -4 (0xfc).
  EXPECT_EQ(mk_ashr(mk_const(0xf8, 8), mk_const(1, 8))->constant_value(),
            0xfcu);
  // slt: -1 < 1 at width 8.
  EXPECT_TRUE(mk_slt(mk_const(0xff, 8), mk_const(1, 8))->is_true());
  // ult: 0xff > 1 unsigned.
  EXPECT_TRUE(mk_ult(mk_const(1, 8), mk_const(0xff, 8))->is_true());
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0xffff, 16), -1);
}

TEST(Expr, IdentitySimplifications) {
  auto array = make_array();
  const ExprRef x = mk_read(array, 0);
  EXPECT_EQ(mk_add(x, mk_const(0, 8)).get(), x.get());
  EXPECT_EQ(mk_mul(x, mk_const(1, 8)).get(), x.get());
  EXPECT_TRUE(mk_mul(x, mk_const(0, 8))->is_constant());
  EXPECT_EQ(mk_and(x, mk_const(0xff, 8)).get(), x.get());
  EXPECT_TRUE(mk_and(x, mk_const(0, 8))->is_constant());
  EXPECT_EQ(mk_or(x, mk_const(0, 8)).get(), x.get());
  EXPECT_EQ(mk_xor(x, mk_const(0, 8)).get(), x.get());
  EXPECT_TRUE(mk_sub(x, x)->is_constant());
  EXPECT_TRUE(mk_eq(x, x)->is_true());
  EXPECT_TRUE(mk_ult(x, x)->is_false());
  EXPECT_TRUE(mk_ule(x, x)->is_true());
}

TEST(Expr, InterningGivesPointerIdentity) {
  auto array = make_array();
  const ExprRef a =
      mk_add(mk_zext(mk_read(array, 3), 32), mk_const(17, 32));
  const ExprRef b =
      mk_add(mk_zext(mk_read(array, 3), 32), mk_const(17, 32));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(expr_equal(a, b));
}

TEST(Expr, CommutativeCanonicalization) {
  auto array = make_array();
  const ExprRef x = mk_zext(mk_read(array, 0), 32);
  const ExprRef y = mk_zext(mk_read(array, 1), 32);
  EXPECT_EQ(mk_add(x, y).get(), mk_add(y, x).get());
  EXPECT_EQ(mk_mul(x, y).get(), mk_mul(y, x).get());
  EXPECT_EQ(mk_eq(x, y).get(), mk_eq(y, x).get());
  // Constant lands on the right.
  const ExprRef sum = mk_add(mk_const(5, 32), x);
  ASSERT_EQ(sum->num_kids(), 2u);
  EXPECT_TRUE(sum->kid(1)->is_constant());
}

TEST(Expr, ConcatExtractRoundtrip) {
  auto array = make_array();
  const ExprRef value =
      mk_or(mk_zext(mk_read(array, 0), 32),
            mk_shl(mk_zext(mk_read(array, 1), 32), mk_const(8, 32)));
  // Byte-split then reassemble must give back the identical node.
  const ExprRef b0 = mk_extract(value, 0, 8);
  const ExprRef b1 = mk_extract(value, 8, 8);
  const ExprRef b2 = mk_extract(value, 16, 8);
  const ExprRef b3 = mk_extract(value, 24, 8);
  const ExprRef joined =
      mk_concat(b3, mk_concat(b2, mk_concat(b1, b0)));
  EXPECT_EQ(joined.get(), value.get());
}

TEST(Expr, ExtractThroughConcatAndZext) {
  auto array = make_array();
  const ExprRef lo = mk_read(array, 0);
  const ExprRef hi = mk_read(array, 1);
  const ExprRef both = mk_concat(hi, lo);
  EXPECT_EQ(mk_extract(both, 0, 8).get(), lo.get());
  EXPECT_EQ(mk_extract(both, 8, 8).get(), hi.get());
  const ExprRef wide = mk_zext(lo, 32);
  EXPECT_EQ(mk_extract(wide, 0, 8).get(), lo.get());
  EXPECT_TRUE(mk_extract(wide, 16, 8)->is_constant());
}

TEST(Expr, LogicalNotInvertsComparisons) {
  auto array = make_array();
  const ExprRef x = mk_zext(mk_read(array, 0), 32);
  const ExprRef c = mk_const(10, 32);
  EXPECT_EQ(mk_lnot(mk_ult(x, c)).get(), mk_ule(c, x).get());
  EXPECT_EQ(mk_lnot(mk_lnot(mk_eq(x, c))).get(), mk_eq(x, c).get());
}

TEST(Expr, SelectSimplifications) {
  auto array = make_array();
  const ExprRef cond = mk_eq(mk_read(array, 0), mk_const(1, 8));
  const ExprRef a = mk_const(10, 32);
  const ExprRef b = mk_const(20, 32);
  EXPECT_EQ(mk_select(mk_bool(true), a, b).get(), a.get());
  EXPECT_EQ(mk_select(mk_bool(false), a, b).get(), b.get());
  EXPECT_EQ(mk_select(cond, a, a).get(), a.get());
  EXPECT_EQ(mk_select(cond, mk_bool(true), mk_bool(false)).get(), cond.get());
}

TEST(Expr, CollectReadsDeduplicates) {
  auto array = make_array();
  const ExprRef x = mk_zext(mk_read(array, 5), 32);
  const ExprRef e = mk_add(mk_mul(x, x), mk_zext(mk_read(array, 6), 32));
  std::vector<ReadSite> reads;
  collect_reads(e, reads);
  EXPECT_EQ(reads.size(), 2u);
}

// Property: evaluating a built expression equals computing the same
// operation natively, across random byte assignments and operators.
class ExprDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExprDifferential, BinaryOpsMatchNativeSemantics) {
  const unsigned width = GetParam();
  auto array = make_array(8);
  Rng rng(width * 7919);
  const std::uint64_t mask = truncate_to_width(~0ull, width);

  for (int trial = 0; trial < 200; ++trial) {
    Assignment assignment;
    auto& bytes = assignment.mutable_bytes(array);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());

    // a = zext(byte0, w) | (zext(byte1, w) << 8), b likewise from 2,3.
    auto mk_val = [&](unsigned base) {
      ExprRef v = mk_zext(mk_read(array, base), width);
      if (width > 8)
        v = mk_or(v, mk_shl(mk_zext(mk_read(array, base + 1), width),
                            mk_const(8, width)));
      return v;
    };
    const ExprRef ea = mk_val(0);
    const ExprRef eb = mk_val(2);
    const std::uint64_t a = evaluate(ea, assignment);
    const std::uint64_t b = evaluate(eb, assignment);

    EXPECT_EQ(evaluate(mk_add(ea, eb), assignment), (a + b) & mask);
    EXPECT_EQ(evaluate(mk_sub(ea, eb), assignment), (a - b) & mask);
    EXPECT_EQ(evaluate(mk_mul(ea, eb), assignment), (a * b) & mask);
    EXPECT_EQ(evaluate(mk_and(ea, eb), assignment), a & b);
    EXPECT_EQ(evaluate(mk_or(ea, eb), assignment), a | b);
    EXPECT_EQ(evaluate(mk_xor(ea, eb), assignment), a ^ b);
    EXPECT_EQ(evaluate(mk_udiv(ea, eb), assignment),
              b == 0 ? 0 : a / b);
    EXPECT_EQ(evaluate(mk_urem(ea, eb), assignment),
              b == 0 ? 0 : a % b);
    EXPECT_EQ(evaluate_bool(mk_ult(ea, eb), assignment), a < b);
    EXPECT_EQ(evaluate_bool(mk_eq(ea, eb), assignment), a == b);
    const std::int64_t sa = sign_extend(a, width);
    const std::int64_t sb = sign_extend(b, width);
    EXPECT_EQ(evaluate_bool(mk_slt(ea, eb), assignment), sa < sb);
    EXPECT_EQ(evaluate_bool(mk_sle(ea, eb), assignment), sa <= sb);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ExprDifferential,
                         ::testing::Values(8u, 16u, 24u, 32u, 64u));

TEST(Expr, DagSizeCountsSharedNodesOnce) {
  auto array = make_array();
  const ExprRef x = mk_zext(mk_read(array, 0), 32);
  const ExprRef e = mk_add(mk_mul(x, x), x);
  // nodes: read, zext, mul, add = 4 (x shared).
  EXPECT_EQ(expr_dag_size(e), 4u);
}

}  // namespace
}  // namespace pbse
