// Cross-module integration properties on the real targets:
//  * every bug witness replays concretely to the same bug site,
//  * pbSE finds deep-phase bugs the paper attributes to it,
//  * pbSE out-covers the best KLEE searcher on readelf (the headline),
//  * generated test cases replay cleanly.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "core/driver.h"
#include "targets/targets.h"

namespace pbse {
namespace {

/// Replays `input` concretely and returns the set of bug site keys hit.
std::set<std::string> replay_bug_sites(const ir::Module& module,
                                       const std::vector<std::uint8_t>& input) {
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions options;
  options.record_trace = false;
  options.offpath_bug_checks = false;  // pure replay: no solver bugs
  concolic::run_concolic(executor, "main", input, options);
  std::set<std::string> sites;
  for (const auto& bug : executor.bugs()) sites.insert(bug.site_key());
  return sites;
}

TEST(Integration, BugWitnessesReplayConcretely) {
  // Run pbSE briefly on each bug-bearing target and check every reported
  // witness reproduces its bug by plain concrete execution.
  for (const char* driver : {"tiff2bw", "readelf", "dwarfdump"}) {
    SCOPED_TRACE(driver);
    const targets::TargetInfo* info = nullptr;
    for (const auto& t : targets::all_targets())
      if (t.driver == driver) info = &t;
    ASSERT_NE(info, nullptr);
    ir::Module module = targets::build_target(info->source());
    core::PbseDriver pbse(module, "main");
    ASSERT_TRUE(pbse.prepare(info->seed(4)));
    pbse.run(2'000'000);
    for (const auto& bug : pbse.executor().bugs()) {
      const auto sites = replay_bug_sites(module, bug.input);
      EXPECT_TRUE(sites.count(bug.site_key()) == 1)
          << "witness for " << bug.site_key() << " must replay; replay hit: "
          << (sites.empty() ? "(nothing)" : *sites.begin());
    }
  }
}

TEST(Integration, PbseOutCoversBestKleeOnReadelf) {
  ir::Module module = targets::build_target(targets::readelf_source());
  const std::uint64_t budget = 1'500'000;

  std::uint64_t best_klee = 0;
  for (const auto kind :
       {search::SearcherKind::kDefault, search::SearcherKind::kRandomPath}) {
    core::KleeRunOptions options;
    options.searcher = kind;
    options.sym_file_size = 1000;
    core::KleeRun run(module, "main", options);
    run.run(budget);
    best_klee = std::max(best_klee, run.executor().num_covered());
  }

  core::PbseDriver pbse(module, "main");
  ASSERT_TRUE(pbse.prepare(targets::make_melf_seed(6)));
  pbse.run(budget - pbse.clock().now());

  EXPECT_GT(pbse.executor().num_covered(), best_klee)
      << "the paper's headline: pbSE covers more than the best KLEE config";
  EXPECT_GT(static_cast<double>(pbse.executor().num_covered()),
            1.3 * static_cast<double>(best_klee))
      << "and by a wide margin (paper: ~2x)";
}

TEST(Integration, PngCveAnalogsAreFoundByPbse) {
  ir::Module module = targets::build_target(targets::pngtest_source());
  core::PbseDriver pbse(module, "main");
  ASSERT_TRUE(pbse.prepare(targets::make_mpng_seed(4)));
  pbse.run(10'000'000);  // the Table III "10h" budget
  bool month_oob = false;   // CVE-2015-7981 analog
  bool keyword_under = false;  // CVE-2015-8540 analog
  for (const auto& bug : pbse.executor().bugs()) {
    if (bug.function == "png_convert_to_rfc1123") month_oob = true;
    if (bug.function == "png_check_keyword") keyword_under = true;
  }
  EXPECT_TRUE(month_oob) << "tIME month-0 OOB read not found";
  EXPECT_TRUE(keyword_under) << "keyword underflow not found";
}

TEST(Integration, TcpdumpYieldsNoBugs) {
  // The paper's negative result: tcpdump's shallow printing gives pbSE
  // nothing to find.
  ir::Module module = targets::build_target(targets::tcpdump_source());
  core::PbseDriver pbse(module, "main");
  ASSERT_TRUE(pbse.prepare(targets::make_mpcp_seed(4)));
  pbse.run(1'000'000);
  EXPECT_EQ(pbse.executor().bugs().size(), 0u);
}

TEST(Integration, ExitTestCasesReplayCleanly) {
  ir::Module module = targets::build_target(targets::tcpdump_source());
  core::KleeRunOptions options;
  options.sym_file_size = 64;
  core::KleeRun run(module, "main", options);
  run.run(300'000);
  ASSERT_FALSE(run.executor().test_cases().size() == 0);
  std::size_t checked = 0;
  for (const auto& tc : run.executor().test_cases()) {
    if (checked >= 16) break;
    if (tc.reason != "exit") continue;
    const auto sites = replay_bug_sites(module, tc.input);
    EXPECT_TRUE(sites.empty()) << "clean-exit test case must not crash";
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace pbse
