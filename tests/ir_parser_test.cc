// IR text parser: round-trips with the printer, and rejects malformed
// inputs with line-accurate errors.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "lang/codegen.h"
#include "solver/solver.h"
#include "targets/targets.h"
#include "vm/executor.h"

namespace pbse::ir {
namespace {

Module from_minic(const std::string& source) {
  Module module;
  std::string error;
  if (!minic::compile(source, module, error))
    ADD_FAILURE() << "minic: " << error;
  return module;
}

constexpr const char* kProgram = R"(
u16 table[4] = { 7, 8, 9, 10 };
u32 helper(u8* f, u32 n) {
  u32 sum = 0;
  for (u32 i = 0; i < n; ++i) {
    if (f[i] > 'a') { sum += (u32)table[i & 3]; }
  }
  return sum;
}
u32 main(u8* file, u32 size) {
  u8* p = &file[2];
  out(helper(file, size));
  out((u32)*p);
  check(size != 3);
  return checked_add(size, 1);
}
)";

TEST(IrParser, RoundTripsPrinterOutput) {
  Module original = from_minic(kProgram);
  const std::string text = to_string(original);

  Module reparsed;
  std::string error;
  ASSERT_TRUE(parse_module(text, reparsed, error)) << error;
  // Printing the reparsed module reproduces the text exactly.
  EXPECT_EQ(to_string(reparsed), text);

  reparsed.finalize();
  EXPECT_TRUE(verify(reparsed).empty());
}

TEST(IrParser, ReparsedModuleExecutesIdentically) {
  Module original = from_minic(kProgram);
  const std::string text = to_string(original);
  original.finalize();

  Module reparsed;
  std::string error;
  ASSERT_TRUE(parse_module(text, reparsed, error)) << error;
  reparsed.finalize();

  auto run = [](const Module& module) {
    VClock clock;
    Stats stats;
    Solver solver(clock, stats);
    vm::Executor executor(module, solver, clock, stats);
    concolic::ConcolicOptions options;
    options.record_trace = false;
    const std::vector<std::uint8_t> seed = {'x', 'b', 'z', 'a', 'q'};
    concolic::run_concolic(executor, "main", seed, options);
    return executor.out_log();
  };
  EXPECT_EQ(run(original), run(reparsed));
}

TEST(IrParser, RoundTripsEveryTarget) {
  for (const auto& target : targets::all_targets()) {
    SCOPED_TRACE(target.driver);
    Module original;
    std::string error;
    ASSERT_TRUE(minic::compile(target.source(), original, error)) << error;
    const std::string text = to_string(original);
    Module reparsed;
    ASSERT_TRUE(parse_module(text, reparsed, error)) << error;
    EXPECT_EQ(to_string(reparsed), text);
    reparsed.finalize();
    EXPECT_TRUE(verify(reparsed).empty());
  }
}

TEST(IrParser, RejectsMalformedInput) {
  Module module;
  std::string error;
  EXPECT_FALSE(parse_module("fn broken( -> u32 {", module, error));

  Module m2;
  error.clear();
  EXPECT_FALSE(parse_module("fn f() -> void {\nbb0:\n  bogus 1, 2\n}\n",
                            m2, error));
  EXPECT_NE(error.find("line"), std::string::npos);

  Module m3;
  error.clear();
  EXPECT_FALSE(parse_module("fn f() -> void {\nbb0:\n  ret\n", m3, error))
      << "unclosed function body must be rejected";
}

TEST(IrParser, ParsesGlobalsWithInit) {
  Module module;
  std::string error;
  ASSERT_TRUE(parse_module(
      "global tab[4] const = 1 2 3\nglobal buf[8]\n"
      "fn f() -> void {\nbb0:\n  ret\n}\n",
      module, error))
      << error;
  ASSERT_EQ(module.num_globals(), 2u);
  EXPECT_FALSE(module.global(0).writable);
  EXPECT_EQ(module.global(0).init,
            (std::vector<std::uint8_t>{1, 2, 3, 0}))
      << "init is zero-padded to the declared size";
  EXPECT_TRUE(module.global(1).writable);
}

}  // namespace
}  // namespace pbse::ir
