// IR: builder, verifier diagnostics, printer, CFG utilities and the
// distance-to-uncovered map.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/cfg.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace pbse::ir {
namespace {

/// fn diamond(x: i32) -> i32 { if (x == 0) return 1; else return 2; }
std::unique_ptr<Function> make_diamond(Module& module) {
  auto fn = std::make_unique<Function>(
      "diamond", std::vector<Type>{Type::int_ty(32)}, Type::int_ty(32));
  fn->new_reg(Type::int_ty(32));  // param
  Builder b(module, *fn);
  const auto entry = fn->add_block("entry");
  const auto then_bb = fn->add_block("then");
  const auto else_bb = fn->add_block("else");
  b.set_insert(entry);
  const Operand cond = b.emit_cmp(CmpPred::kEq,
                                  Operand::reg_of(0, Type::int_ty(32)),
                                  Builder::c(0, 32));
  b.emit_br(cond, then_bb, else_bb);
  b.set_insert(then_bb);
  b.emit_ret(Builder::c(1, 32));
  b.set_insert(else_bb);
  b.emit_ret(Builder::c(2, 32));
  return fn;
}

TEST(IrBuilder, BuildsWellFormedFunction) {
  Module module;
  module.add_function(make_diamond(module));
  module.finalize();
  EXPECT_TRUE(verify(module).empty());
  EXPECT_EQ(module.total_blocks(), 3u);
}

TEST(IrVerifier, CatchesMissingTerminator) {
  Module module;
  auto fn = std::make_unique<Function>("bad", std::vector<Type>{},
                                       Type::void_ty());
  Builder b(module, *fn);
  b.set_insert(fn->add_block("entry"));
  b.emit_alloca(4);  // no terminator
  module.add_function(std::move(fn));
  module.finalize();
  const auto problems = verify(module);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(IrVerifier, CatchesBranchTargetOutOfRange) {
  Module module;
  auto fn = std::make_unique<Function>("bad", std::vector<Type>{},
                                       Type::void_ty());
  Builder b(module, *fn);
  b.set_insert(fn->add_block("entry"));
  const Operand cond =
      b.emit_cmp(CmpPred::kEq, Builder::c(0, 8), Builder::c(0, 8));
  b.emit_br(cond, 7, 8);  // no such blocks
  module.add_function(std::move(fn));
  module.finalize();
  bool found = false;
  for (const auto& p : verify(module))
    found = found || p.find("target out of range") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(IrVerifier, CatchesCallArgumentMismatch) {
  Module module;
  module.add_function(make_diamond(module));  // index 0, takes one i32
  auto fn = std::make_unique<Function>("caller", std::vector<Type>{},
                                       Type::void_ty());
  Builder b(module, *fn);
  b.set_insert(fn->add_block("entry"));
  // Wrong arity is asserted in the builder, so hand-roll the instruction.
  Instruction bad;
  bad.op = Opcode::kCall;
  bad.callee = 0;
  bad.result = fn->new_reg(Type::int_ty(32));
  fn->block(0).insts.push_back(bad);
  b.emit_ret_void();
  module.add_function(std::move(fn));
  module.finalize();
  bool found = false;
  for (const auto& p : verify(module))
    found = found || p.find("argument count") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(IrPrinter, RendersInstructions) {
  Module module;
  module.add_function(make_diamond(module));
  module.finalize();
  const std::string text = to_string(module);
  EXPECT_NE(text.find("fn diamond"), std::string::npos);
  EXPECT_NE(text.find("cmp eq"), std::string::npos);
  EXPECT_NE(text.find("br"), std::string::npos);
  EXPECT_NE(text.find("ret 1:i32"), std::string::npos);
}

TEST(Cfg, SuccessorsOfTerminators) {
  Module module;
  module.add_function(make_diamond(module));
  module.finalize();
  const Function& fn = *module.function(0);
  EXPECT_EQ(block_successors(fn, 0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(block_successors(fn, 1).empty());
}

TEST(Cfg, DistanceToUncoveredShrinksTowardFrontier) {
  Module module;
  // chain: b0 -> b1 -> b2 -> b3 (ret)
  auto fn = std::make_unique<Function>("chain", std::vector<Type>{},
                                       Type::void_ty());
  Builder b(module, *fn);
  const auto b0 = fn->add_block("b0");
  const auto b1 = fn->add_block("b1");
  const auto b2 = fn->add_block("b2");
  const auto b3 = fn->add_block("b3");
  b.set_insert(b0);
  b.emit_jmp(b1);
  b.set_insert(b1);
  b.emit_jmp(b2);
  b.set_insert(b2);
  b.emit_jmp(b3);
  b.set_insert(b3);
  b.emit_ret_void();
  module.add_function(std::move(fn));
  module.finalize();

  BlockGraph graph(module);
  DistanceToUncovered distance(graph);
  std::vector<bool> covered = {true, true, false, false};
  distance.recompute(covered);
  EXPECT_EQ(distance.distance(0), 2u);
  EXPECT_EQ(distance.distance(1), 1u);
  EXPECT_EQ(distance.distance(2), 0u);

  covered = {true, true, true, true};
  distance.recompute(covered);
  EXPECT_EQ(distance.distance(0), DistanceToUncovered::kUnreachable);
}

TEST(Cfg, CallEdgesConnectFunctions) {
  Module module;
  const std::uint32_t callee_index = module.add_function(make_diamond(module));
  auto fn = std::make_unique<Function>("caller", std::vector<Type>{},
                                       Type::void_ty());
  Builder b(module, *fn);
  b.set_insert(fn->add_block("entry"));
  b.emit_call(callee_index, {Builder::c(0, 32)});
  b.emit_ret_void();
  module.add_function(std::move(fn));
  module.finalize();

  BlockGraph graph(module);
  const std::uint32_t caller_bb = module.function(1)->block(0).global_id;
  const std::uint32_t callee_entry = module.function(0)->block(0).global_id;
  bool has_call_edge = false;
  for (const auto succ : graph.successors(caller_bb))
    has_call_edge = has_call_edge || succ == callee_entry;
  EXPECT_TRUE(has_call_edge);
}

TEST(IrModule, GlobalsAreIndexedByName) {
  Module module;
  Global g;
  g.name = "table";
  g.size = 8;
  g.init = {1, 2, 3};
  const std::uint32_t index = module.add_global(std::move(g));
  EXPECT_EQ(module.global_index("table"), index);
  EXPECT_EQ(module.global(index).init.size(), 8u) << "init zero-padded";
  EXPECT_EQ(module.global_index("missing"), kNoFunc);
}

TEST(IrModule, LocateBlockRoundTrips) {
  Module module;
  module.add_function(make_diamond(module));
  module.add_function(make_diamond(module));
  module.finalize();
  for (std::uint32_t g = 0; g < module.total_blocks(); ++g) {
    const auto [fi, bi] = module.locate_block(g);
    EXPECT_EQ(module.function(fi)->block(bi).global_id, g);
  }
}

}  // namespace
}  // namespace pbse::ir
