// MiniC frontend: lexer, parser and codegen, validated by compiling
// snippets and running them concretely, checking the out() stream.
#include <gtest/gtest.h>

#include "concolic/concolic_executor.h"
#include "ir/verifier.h"
#include "lang/codegen.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "solver/solver.h"
#include "vm/executor.h"

namespace pbse {
namespace {

/// Compiles and concretely runs `body` (as main's body) on `seed`,
/// returning the out() values.
std::vector<std::uint64_t> run_outputs(const std::string& source,
                                       std::vector<std::uint8_t> seed = {0}) {
  ir::Module module;
  std::string error;
  if (!minic::compile(source, module, error)) {
    ADD_FAILURE() << "compile error: " << error;
    return {};
  }
  module.finalize();
  for (const auto& p : ir::verify(module)) ADD_FAILURE() << "verifier: " << p;
  VClock clock;
  Stats stats;
  Solver solver(clock, stats);
  vm::Executor executor(module, solver, clock, stats);
  concolic::ConcolicOptions options;
  options.record_trace = false;
  const auto result = run_concolic(executor, "main", seed, options);
  EXPECT_EQ(result.termination, vm::TerminationReason::kExit)
      << "program must exit cleanly";
  EXPECT_EQ(executor.bugs().size(), 0u) << "program must not trip checkers";
  return executor.out_log();
}

std::string wrap(const std::string& body) {
  return "u32 main(u8* file, u32 size) {\n" + body + "\nreturn 0;\n}\n";
}

std::string compile_error(const std::string& source) {
  ir::Module module;
  std::string error;
  EXPECT_FALSE(minic::compile(source, module, error))
      << "expected a compile error";
  return error;
}

// --- Lexer -----------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsLongestFirst) {
  std::vector<minic::Token> tokens;
  std::string error;
  ASSERT_TRUE(minic::lex("a <<= b << c <= d < e", tokens, error)) << error;
  ASSERT_EQ(tokens.size(), 10u);  // 5 idents + 4 ops + eof
  EXPECT_EQ(tokens[1].kind, minic::Tok::kShlAssign);
  EXPECT_EQ(tokens[3].kind, minic::Tok::kShl);
  EXPECT_EQ(tokens[5].kind, minic::Tok::kLe);
  EXPECT_EQ(tokens[7].kind, minic::Tok::kLt);
}

TEST(Lexer, NumbersCharsAndEscapes) {
  std::vector<minic::Token> tokens;
  std::string error;
  ASSERT_TRUE(minic::lex("0x2C 255 '\\n' '\\x41' 'z'", tokens, error)) << error;
  EXPECT_EQ(tokens[0].number, 0x2Cu);
  EXPECT_EQ(tokens[1].number, 255u);
  EXPECT_EQ(tokens[2].number, static_cast<std::uint64_t>('\n'));
  EXPECT_EQ(tokens[3].number, 0x41u);
  EXPECT_EQ(tokens[4].number, static_cast<std::uint64_t>('z'));
}

TEST(Lexer, CommentsAreSkipped) {
  std::vector<minic::Token> tokens;
  std::string error;
  ASSERT_TRUE(minic::lex("a // line\n /* block\nblock */ b", tokens, error));
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 3u);
}

TEST(Lexer, ReportsErrors) {
  std::vector<minic::Token> tokens;
  std::string error;
  EXPECT_FALSE(minic::lex("a $ b", tokens, error));
  EXPECT_NE(error.find("unexpected character"), std::string::npos);
  EXPECT_FALSE(minic::lex("\"unterminated", tokens, error));
}

// --- Parser ----------------------------------------------------------------

TEST(Parser, RejectsSyntaxErrors) {
  minic::Program program;
  std::string error;
  EXPECT_FALSE(minic::parse_program("u32 main( {", program, error));
  EXPECT_FALSE(minic::parse_program("u32 f() { if }", program, error));
  EXPECT_FALSE(minic::parse_program("u32 f() { return 1 }", program, error));
  EXPECT_NE(error.find("line"), std::string::npos);
}

TEST(Parser, BuildsProgramStructure) {
  minic::Program program;
  std::string error;
  ASSERT_TRUE(minic::parse_program(
      "u8 g[4] = {1, 2, 3, 4};\n"
      "u32 f(u32 x) { return x + 1; }\n"
      "u32 main(u8* file, u32 size) { return f(0); }\n",
      program, error))
      << error;
  ASSERT_EQ(program.globals.size(), 1u);
  EXPECT_EQ(program.globals[0].array_size, 4u);
  ASSERT_EQ(program.functions.size(), 2u);
  EXPECT_EQ(program.functions[1].params.size(), 2u);
}

// --- Codegen semantics --------------------------------------------------------

TEST(Codegen, ArithmeticAndPrecedence) {
  const auto outs = run_outputs(wrap(R"(
    out(2 + 3 * 4);
    out((2 + 3) * 4);
    out(20 / 3);
    out(20 % 3);
    out(1 << 4 | 2);
    out(0xF0 >> 2);
    out(7 & 3 ^ 1);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{14, 20, 6, 2, 18, 60, 2}));
}

TEST(Codegen, SignedSemantics) {
  const auto outs = run_outputs(wrap(R"(
    i32 a = -7;
    i32 b = 2;
    out((u32)(a / b));
    out((u32)(a % b));
    out((u32)(a >> 1));
    if (a < b) { out(1); } else { out(0); }
    u32 ua = (u32)a;
    if (ua < (u32)b) { out(1); } else { out(0); }
  )"));
  ASSERT_EQ(outs.size(), 5u);
  EXPECT_EQ(outs[0], static_cast<std::uint64_t>(static_cast<std::uint32_t>(-3)));
  EXPECT_EQ(outs[1], static_cast<std::uint64_t>(static_cast<std::uint32_t>(-1)));
  EXPECT_EQ(outs[2], static_cast<std::uint64_t>(static_cast<std::uint32_t>(-4)));
  EXPECT_EQ(outs[3], 1u);  // signed: -7 < 2
  EXPECT_EQ(outs[4], 0u);  // unsigned: huge > 2
}

TEST(Codegen, NarrowTypesWrap) {
  const auto outs = run_outputs(wrap(R"(
    u8 x = 250;
    x += 10;
    out(x);
    u16 y = 65535;
    y += 2;
    out(y);
    i8 z = 127;
    z += 1;
    out((u32)(i32)z);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{4, 1, 0xffffff80}));
}

TEST(Codegen, LoopsBreakContinue) {
  const auto outs = run_outputs(wrap(R"(
    u32 sum = 0;
    for (u32 i = 0; i < 10; ++i) {
      if (i == 3) { continue; }
      if (i == 7) { break; }
      sum += i;
    }
    out(sum);                          // 0+1+2+4+5+6 = 18
    u32 n = 0;
    while (true) {
      n += 1;
      if (n >= 5) { break; }
    }
    out(n);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{18, 5}));
}

TEST(Codegen, ShortCircuitEvaluation) {
  const auto outs = run_outputs(wrap(R"(
    u32 calls = 0;
    u32 zero = 0;
    // RHS of && must not run when LHS is false; we can't call functions
    // with side effects inline, so observe via division guarded by &&.
    u32 x = 5;
    if (zero != 0 && 10 / zero > 0) { calls = 99; }
    out(calls);
    if (x == 5 || 10 / zero > 0) { calls = 1; }
    out(calls);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{0, 1}));
}

TEST(Codegen, TernaryAndComparisonChains) {
  const auto outs = run_outputs(wrap(R"(
    u32 a = 3;
    out(a > 2 ? 100 : 200);
    out(a > 5 ? 100 : 200);
    bool flag = a == 3;
    out(flag ? 1 : 0);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{100, 200, 1}));
}

TEST(Codegen, ArraysAndPointers) {
  const auto outs = run_outputs(wrap(R"(
    u8 buf[8] = { 10, 20, 30, 40 };
    out(buf[2]);
    u8* p = &buf[1];
    out(*p);
    p = p + 2;
    out(*p);
    *p = 99;
    out(buf[3]);
    p -= 1;
    out(*p);
    out(*(p++));
    out(*p);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{30, 20, 40, 99, 30, 30, 99}));
}

TEST(Codegen, WideElementArrays) {
  const auto outs = run_outputs(wrap(R"(
    u16 words[4] = { 0x1234, 0xBEEF };
    out(words[0]);
    out(words[1]);
    words[2] = words[0] + 1;
    out(words[2]);
    u32 dwords[2];
    dwords[0] = 0xCAFEBABE;
    out(dwords[0]);
  )"));
  EXPECT_EQ(outs,
            (std::vector<std::uint64_t>{0x1234, 0xBEEF, 0x1235, 0xCAFEBABE}));
}

TEST(Codegen, GlobalsAndFunctions) {
  const auto outs = run_outputs(R"(
    u32 counter;
    u16 table[3] = { 5, 6, 7 };
    u32 bump(u32 by) {
      counter += by;
      return counter;
    }
    u32 main(u8* file, u32 size) {
      out(bump(2));
      out(bump(3));
      out(table[2]);
      return 0;
    }
  )");
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{2, 5, 7}));
}

TEST(Codegen, RecursionWorks) {
  const auto outs = run_outputs(R"(
    u32 fib(u32 n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    u32 main(u8* file, u32 size) {
      out(fib(10));
      return 0;
    }
  )");
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{55}));
}

TEST(Codegen, IncDecSemantics) {
  const auto outs = run_outputs(wrap(R"(
    u32 i = 5;
    out(i++);
    out(i);
    out(++i);
    out(i--);
    out(--i);
  )"));
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{5, 6, 7, 7, 5}));
}

TEST(Codegen, StringLiteralsAreReadable) {
  const auto outs = run_outputs(R"(
    u32 strlen8(u8* s) {
      u32 n = 0;
      while (s[n] != 0) { n += 1; }
      return n;
    }
    u32 main(u8* file, u32 size) {
      u8* msg = "IHDR";
      out(strlen8(msg));
      out(msg[0]);
      out(msg[3]);
      return 0;
    }
  )");
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{4, 'I', 'R'}));
}

TEST(Codegen, ReadsInputBytes) {
  const auto outs = run_outputs(
      wrap("out(file[0]); out(file[1]); out((u32)file[0] + (u32)file[1]);"),
      {40, 2});
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{40, 2, 42}));
}

// --- Codegen error reporting --------------------------------------------------

TEST(CodegenErrors, UnknownVariableAndFunction) {
  EXPECT_NE(compile_error("u32 main(u8* f, u32 s) { return nope; }")
                .find("unknown variable"),
            std::string::npos);
  EXPECT_NE(compile_error("u32 main(u8* f, u32 s) { return nope(); }")
                .find("unknown function"),
            std::string::npos);
}

TEST(CodegenErrors, TypeViolations) {
  EXPECT_NE(compile_error("u32 main(u8* f, u32 s) { u32 x = f; return 0; }")
                .find("convert"),
            std::string::npos);
  EXPECT_NE(
      compile_error("u32 main(u8* f, u32 s) { u8 a[2]; a = 0; return 0; }")
          .find("assign"),
      std::string::npos);
  EXPECT_NE(compile_error("u32 main(u8* f, u32 s) { break; }")
                .find("break outside"),
            std::string::npos);
}

TEST(CodegenErrors, Redefinitions) {
  EXPECT_NE(compile_error("u32 f() { return 0; }\nu32 f() { return 1; }\n"
                          "u32 main(u8* x, u32 s) { return 0; }")
                .find("redefinition"),
            std::string::npos);
  EXPECT_NE(
      compile_error("u32 main(u8* f, u32 s) { u32 a; u32 a; return 0; }")
          .find("redefinition"),
      std::string::npos);
}

TEST(CodegenErrors, BuiltinsAreChecked) {
  EXPECT_NE(compile_error("u32 main(u8* f, u32 s) { out(); return 0; }")
                .find("out()"),
            std::string::npos);
  EXPECT_NE(
      compile_error("u32 main(u8* f, u32 s) { checked_add(1); return 0; }")
          .find("2 arguments"),
      std::string::npos);
}

}  // namespace
}  // namespace pbse
